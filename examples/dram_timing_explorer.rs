//! DRAM timing explorer: drive a μbank channel at the command level and
//! watch the timing constraints play out — the low-level API the memory
//! controller is built on.
//!
//! Run with: `cargo run --release --example dram_timing_explorer`

use microbank::prelude::*;

fn main() {
    let cfg = MemConfig::lpddr_tsi().with_ubanks(4, 4).with_refresh(false);
    let t = cfg.timings();
    let map = AddressMap::new(&cfg);
    let mut ch = Channel::new(&cfg);

    println!(
        "LPDDR-TSI channel, (nW,nB) = (4,4): {} μbanks",
        ch.num_ubanks()
    );
    println!(
        "timings (cycles @2GHz): tRCD={} tAA={} tRAS={} tRP={} tRC={} burst={}",
        t.t_rcd,
        t.t_aa,
        t.t_ras,
        t.t_rp,
        t.t_rc(),
        t.t_burst
    );
    println!();

    // Scenario: a row hit, a row conflict in the same μbank, and an
    // independent μbank proceeding in parallel.
    let a = map.decode(0x0000); // row R of μbank A
    let b = map.decode(0x0040); // next line, same row (hit)
    let conflict_addr = map.encode(&Location {
        row: a.row + 1,
        ..a
    });
    let c = map.decode(conflict_addr); // same μbank, different row
    let other = map.decode(0x4000_0000); // far away: different μbank

    let mut now: Cycle = 0;
    let log = |ev: &str, at: Cycle| println!("t={at:>4}  {ev}");

    assert!(ch.can_activate(&a, now));
    ch.activate(&a, now);
    log("ACT   μbank A, row R", now);

    now += t.t_rcd;
    let done = ch.read(&a, now);
    log(
        &format!("RD    μbank A, col 0      (data done t={done})"),
        now,
    );

    // Row hit: the second line needs only a column command.
    let hit_at = now + t.t_ccd;
    assert!(ch.can_column(&b, false, hit_at));
    now = hit_at;
    let done = ch.read(&b, now);
    log(
        &format!("RD    μbank A, col 1 (hit, data done t={done})"),
        now,
    );

    // Independent μbank: overlaps freely while A is busy.
    let mut o = now + 2;
    while !ch.can_activate(&other, o) {
        o += 1;
    }
    ch.activate(&other, o);
    log("ACT   μbank B (parallel)", o);

    // Conflict: row R must close before row R+1 opens — tRAS/tRP enforced.
    let mut p = now;
    while !ch.can_precharge(&a, p) {
        p += 1;
    }
    ch.precharge(&a, p);
    log("PRE   μbank A (conflict: row R+1 wanted)", p);
    let mut q = p;
    while !ch.can_activate(&c, q) {
        q += 1;
    }
    ch.activate(&c, q);
    log("ACT   μbank A, row R+1", q);
    assert_eq!(q - p, t.t_rp, "PRE→ACT separated by exactly tRP");

    println!();
    println!(
        "stats: {} ACT, {} PRE, {} RD — row cycle (ACT→ACT same bank) ≥ tRC = {} cycles",
        ch.stats.activates,
        ch.stats.precharges,
        ch.stats.reads,
        t.t_rc()
    );
}
