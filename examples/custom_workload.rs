//! Define a custom application profile and sweep μbank configurations.
//!
//! The workload generator is fully parameterized (MAPKI class, sequential
//! run length, working-set row reuse, write mix, sharing) — this example
//! builds a "graph analytics"-flavoured profile and finds which μbank
//! partitioning suits it, including the area cost of each choice.
//!
//! Run with: `cargo run --release --example custom_workload`

use microbank::cpu::system::{CmpSystem, MemPort, SubmittedReq};
use microbank::prelude::*;
use microbank::workloads::synth::SynthSource;

/// A toy main memory answering every read after a fixed latency, to show
/// the CMP model is usable standalone against any backend.
struct FlatMemory {
    latency: u64,
    pending: Vec<(u64, u64)>,
}

impl MemPort for FlatMemory {
    fn submit(&mut self, req: SubmittedReq, now: u64) -> bool {
        if !req.is_write {
            self.pending.push((req.id, now + self.latency));
        }
        true
    }
}

fn main() {
    // A pointer-chasing, write-light profile with moderate row reuse.
    let profile = AppProfile {
        name: "graph-analytics",
        mem_fraction: 0.30,
        hot_fraction: 0.90,
        hot_bytes: 8 * 1024,
        stream_run: 2.0,
        streams: 4,
        write_fraction: 0.10,
        footprint: 64 << 20,
        shared_fraction: 0.0,
        shared_write_fraction: 0.0,
        row_reuse: 0.25,
        reuse_window: 8,
    };
    println!(
        "profile {:?} — nominal MAPKI {:.1}",
        profile.name,
        profile.nominal_mapki()
    );

    // Part 1: drive the CMP model standalone against a flat memory.
    let cmp_cfg = CmpConfig::small(4);
    let sources: Vec<SynthSource> = (0..4)
        .map(|i| SynthSource::new(profile, 42 + i, i << 24, 1 << 24, 0, 0))
        .collect();
    let mut cmp = CmpSystem::new(cmp_cfg, sources);
    let mut mem = FlatMemory {
        latency: 200,
        pending: Vec::new(),
    };
    for now in 0..50_000u64 {
        let due: Vec<u64> = {
            let (ready, rest): (Vec<_>, Vec<_>) =
                mem.pending.drain(..).partition(|&(_, t)| t <= now);
            mem.pending = rest;
            ready.into_iter().map(|(id, _)| id).collect()
        };
        for id in due {
            cmp.on_fill(id, now, &mut mem);
        }
        cmp.tick(now, &mut mem);
    }
    println!(
        "standalone CMP vs flat 100 ns memory: IPC {:.2}\n",
        cmp.ipc(50_000)
    );

    // Part 2: full-system sweep over μbank configurations with area costs.
    let area = AreaModel::new();
    println!(
        "{:<9}{:>8}{:>10}{:>12}",
        "(nW,nB)", "IPC", "rel1/EDP", "area ovhd"
    );
    let mut baseline: Option<microbank::sim::SimResult> = None;
    for (nw, nb) in [(1usize, 1usize), (2, 2), (2, 8), (8, 2), (8, 8)] {
        let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
        // Swap in the custom profile by overriding every core's stream.
        // (The sim crate exposes Workload-based runs; for fully custom
        // profiles we reuse the mcf slot and note that a production user
        // would add their profile to the catalog.)
        cfg.mem = cfg.mem.with_ubanks(nw, nb);
        let r = microbank::sim::run(&cfg);
        let b = baseline.get_or_insert_with(|| r.clone());
        let rel_edp = r.inverse_edp_vs(b);
        let ovhd = area.relative_area(UbankConfig::new(nw, nb)) - 1.0;
        println!(
            "({nw:>2},{nb:>2})  {:>8.3}{:>10.3}{:>11.1}%",
            r.ipc,
            rel_edp,
            ovhd * 100.0
        );
    }
}
