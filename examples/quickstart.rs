//! Quickstart: simulate the paper's headline comparison on a small scale —
//! a memory-intensive workload (429.mcf, rate mode) on the baseline memory
//! system and on a μbank-partitioned TSI system.
//!
//! Run with: `cargo run --release --example quickstart`

use microbank::prelude::*;
use microbank::sim;

fn main() {
    // The paper's single-channel SPEC setup (§VI-A), shortened for a demo.
    let baseline = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();

    // Same system with every bank split into 4×4 = 16 μbanks.
    let mut ubank = baseline.clone();
    ubank.mem = ubank.mem.with_ubanks(4, 4);

    println!("simulating baseline (1,1) …");
    let r0 = sim::run(&baseline);
    println!("simulating μbank (4,4) …");
    let r1 = sim::run(&ubank);

    println!();
    println!("                         baseline    (4,4) ubanks");
    println!(
        "IPC                      {:>8.3}    {:>8.3}",
        r0.ipc, r1.ipc
    );
    println!(
        "DRAM reads               {:>8}    {:>8}",
        r0.dram.reads, r1.dram.reads
    );
    println!(
        "row-buffer hit rate      {:>8.2}    {:>8.2}",
        r0.row_hit_rate, r1.row_hit_rate
    );
    println!(
        "mean read latency (cyc)  {:>8.0}    {:>8.0}",
        r0.mean_read_latency, r1.mean_read_latency
    );
    println!(
        "memory energy (µJ)       {:>8.1}    {:>8.1}",
        r0.mem_energy.total_nj() / 1000.0,
        r1.mem_energy.total_nj() / 1000.0
    );
    println!();
    println!("relative IPC:   {:.2}x", r1.ipc / r0.ipc);
    println!("relative 1/EDP: {:.2}x", r1.inverse_edp_vs(&r0));
}
