//! Interface comparison (paper Fig. 14): DDR3 over PCB vs DDR3-type dies
//! over TSI vs LPDDR-type dies over TSI, on the mix-high multiprogrammed
//! workload — no μbanks, isolating the interconnect technology.
//!
//! Run with: `cargo run --release --example interface_comparison`

use microbank::core::config::MemConfig;
use microbank::prelude::*;
use microbank::sim;

fn main() {
    let mut results = Vec::new();
    for interface in [Interface::Ddr3Pcb, Interface::Ddr3Tsi, Interface::LpddrTsi] {
        let mut cfg = SimConfig::paper_default(Workload::MixHigh).quick();
        cfg.mem = MemConfig::for_interface(interface);
        println!("simulating {} …", interface.name());
        results.push((interface, sim::run(&cfg)));
    }
    let base = results[0].1.clone();
    println!();
    println!(
        "{:<11}{:>7}{:>9}{:>10}{:>12}{:>12}",
        "interface", "IPC", "relIPC", "rel1/EDP", "mem pwr(W)", "ACT/PRE frac"
    );
    for (i, r) in &results {
        println!(
            "{:<11}{:>7.2}{:>9.3}{:>10.3}{:>12.2}{:>11.1}%",
            i.name(),
            r.ipc,
            r.ipc / base.ipc,
            r.inverse_edp_vs(&base),
            r.memory_power_w().total_w(),
            100.0 * r.mem_energy.act_pre_fraction()
        );
    }
    println!();
    println!("(paper: LPDDR-TSI roughly doubles mix-high IPC over DDR3-PCB and the");
    println!(" ACT/PRE share of memory power rises toward ~76% — the μbank motivation)");
}
