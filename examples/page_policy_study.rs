//! Page-management policy study (paper §V): compare close-page, open-page,
//! the local bimodal predictor, the tournament predictor, and the perfect
//! oracle on a pointer-chasing workload, with and without μbanks.
//!
//! Run with: `cargo run --release --example page_policy_study`

use microbank::prelude::*;
use microbank::sim;

fn main() {
    let policies = [
        PolicyKind::Close,
        PolicyKind::Open,
        PolicyKind::MinimalistOpen { window_cycles: 98 }, // tRC, after [32]
        PolicyKind::Predictive(PredictorKind::Local),
        PolicyKind::Predictive(PredictorKind::Tournament),
        PolicyKind::Predictive(PredictorKind::Perfect),
    ];
    for (nw, nb) in [(1usize, 1usize), (2, 8)] {
        println!("=== (nW, nB) = ({nw}, {nb}) — 429.mcf, 4 copies, 1 channel ===");
        println!(
            "{:<18}{:>8}{:>10}{:>12}",
            "policy", "IPC", "hit-rate", "ACT count"
        );
        for policy in policies {
            let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
            cfg.cmp.cores = 4; // moderate load: policy effects are latency effects
            cfg.mem = cfg.mem.with_ubanks(nw, nb);
            cfg.policy = policy;
            let r = sim::run(&cfg);
            println!(
                "{:<18}{:>8.3}{:>10.2}{:>12}",
                policy.label(),
                r.ipc,
                r.policy_hit_rate,
                r.dram.activates
            );
        }
        println!();
    }
    println!("(paper: close wins on mcf without μbanks; with μbanks the simple");
    println!(" open policy is within a few percent of the predictors — §V, Fig. 13)");
}
