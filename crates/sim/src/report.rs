//! Result reporting: CSV and Markdown emitters for experiment outputs, so
//! harness runs can be archived and diffed (EXPERIMENTS.md is generated
//! from these).

use crate::simulator::SimResult;

/// Escape a CSV field (quotes, commas, and both line-break characters — a
/// bare `\r` breaks RFC-4180 parsers just like `\n` does).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One row of a generic results table.
#[derive(Debug, Clone)]
pub struct Row {
    pub label: String,
    pub values: Vec<f64>,
}

/// A named results table with column headers.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl Table {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        let label = label.into();
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width mismatch in {}",
            self.title
        );
        self.rows.push(Row { label, values });
    }

    /// Render as CSV (header row + data rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("label");
        for c in &self.columns {
            out.push(',');
            out.push_str(&csv_field(c));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&csv_field(&r.label));
            for v in &r.values {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Render as JSON: `{"title":…,"columns":[…],"rows":[{"label":…,
    /// "values":[…]},…]}` via the telemetry crate's writer (no serializer
    /// dependency).
    pub fn to_json(&self) -> String {
        let mut w = microbank_telemetry::json::JsonWriter::new();
        w.begin_object().key("title").string(&self.title);
        w.key("columns").begin_array();
        for c in &self.columns {
            w.string(c);
        }
        w.end_array();
        w.key("rows").begin_array();
        for r in &self.rows {
            w.begin_object().key("label").string(&r.label);
            w.key("values").begin_array();
            for &v in &r.values {
                w.num(v);
            }
            w.end_array().end_object();
        }
        w.end_array().end_object();
        w.finish()
    }

    /// Render as a GitHub-flavored Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str("| label |");
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push_str("\n|---|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("| {} |", r.label));
            for v in &r.values {
                out.push_str(&format!(" {v:.3} |"));
            }
            out.push('\n');
        }
        out
    }
}

/// Standard per-run summary row used by several harnesses.
pub fn summary_columns() -> Vec<&'static str> {
    vec![
        "ipc",
        "mapki",
        "row_hit_rate",
        "mean_lat",
        "p50_lat",
        "p95_lat",
        "p99_lat",
        "mem_power_w",
        "actpre_frac",
    ]
}

/// Extract the standard summary values from a [`SimResult`].
pub fn summarize(r: &SimResult) -> Vec<f64> {
    vec![
        r.ipc,
        r.mapki,
        r.row_hit_rate,
        r.mean_read_latency,
        r.read_latency_hist.percentile(0.50) as f64,
        r.read_latency_hist.percentile(0.95) as f64,
        r.read_latency_hist.percentile(0.99) as f64,
        r.memory_power_w().total_w(),
        r.mem_energy.act_pre_fraction(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("test", &["a", "b"]);
        t.push("row1", vec![1.0, 2.0]);
        t.push("row,2", vec![3.5, 4.25]);
        t
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = table().to_csv();
        assert!(csv.contains("\"row,2\""));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("label,a,b"));
    }

    #[test]
    fn csv_quotes_carriage_returns() {
        let mut t = Table::new("t", &["a"]);
        t.push("bad\rlabel", vec![1.0]);
        let csv = t.to_csv();
        assert!(csv.contains("\"bad\rlabel\""), "{csv:?}");
    }

    #[test]
    fn json_round_trips() {
        let v = microbank_telemetry::json::parse(&table().to_json()).unwrap();
        assert_eq!(v.get("title").unwrap().as_str(), Some("test"));
        assert_eq!(v.get("columns").unwrap().items().len(), 2);
        let rows = v.get("rows").unwrap().items();
        assert_eq!(rows[1].get("label").unwrap().as_str(), Some("row,2"));
        assert_eq!(
            rows[1].get("values").unwrap().items()[1].as_f64(),
            Some(4.25)
        );
    }

    #[test]
    fn markdown_has_header_separator() {
        let md = table().to_markdown();
        assert!(md.contains("|---|---|---|"));
        assert!(md.contains("| row1 | 1.000 | 2.000 |"));
    }

    #[test]
    #[should_panic]
    fn width_mismatch_panics() {
        let mut t = Table::new("t", &["a"]);
        t.push("x", vec![1.0, 2.0]);
    }

    #[test]
    fn summary_columns_match_summarize() {
        use crate::simulator::{run, SimConfig};
        use microbank_workloads::suite::Workload;
        let mut cfg = SimConfig::spec_single_channel(Workload::Spec("456.hmmer")).quick();
        cfg.cmp.cores = 4;
        let r = run(&cfg);
        assert_eq!(summarize(&r).len(), summary_columns().len());
    }
}
