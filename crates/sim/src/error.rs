//! Typed errors for the run pipeline (DESIGN.md §5d).
//!
//! [`SimError`] is the error type of the fallible entry points
//! ([`crate::simulator::try_run`], [`crate::simulator::run_many_checked`],
//! [`crate::sweep::SweepRunner`]). The panicking wrappers
//! ([`crate::simulator::run`] and friends) format these errors into their
//! panic message, so existing callers keep their fail-fast behavior while
//! harnesses get a value they can match on, record in a manifest, and
//! retry around.

use microbank_core::validate::ConfigError;
use std::fmt;

/// Why a simulation could not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration failed the `validate()` ladder before any state
    /// was constructed. One [`ConfigError`] per rejecting component, each
    /// carrying the full list of diagnostics for that component.
    InvalidConfig { errors: Vec<ConfigError> },
    /// The channel-sharded drive's watchdog declared a worker stalled and
    /// tore the run down. Carries a snapshot of the dispatcher state at
    /// the moment the deadline expired. [`crate::simulator::try_run`]
    /// converts this into a sequential retry; only
    /// [`crate::simulator::try_run_once`] surfaces it. Boxed: the
    /// snapshot is large and the happy path should not pay for it in the
    /// `Result`'s size.
    ShardStall(Box<ShardDiagnostics>),
    /// The run panicked (an internal invariant tripped). Captured only by
    /// the harness entry points that isolate slots
    /// (`run_many_checked`, `SweepRunner`); `try_run` lets panics unwind.
    Panic { message: String },
    /// An artifact (manifest, CSV/JSON result file) could not be written
    /// or read.
    Artifact { path: String, message: String },
    /// The run was cooperatively cancelled through its
    /// [`crate::simulator::CancelToken`] — by an explicit request, a
    /// wall-clock deadline, or a service shutting down. The partially
    /// driven simulation state is discarded whole: cancellation can only
    /// ever shorten a run whose results are then thrown away, never
    /// change a result that is reported, so it is sound under the
    /// event-driven time-skip core (DESIGN.md §5i).
    Cancelled { kind: CancelKind, at_cycle: u64 },
}

/// Why a cancelled run's token was tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// Explicit cancellation (e.g. `DELETE /jobs/{id}`).
    Requested,
    /// The job's wall-clock deadline expired.
    Deadline,
    /// The executing service is shutting down; the run should be treated
    /// as never attempted (checkpointed, not failed).
    Shutdown,
}

impl CancelKind {
    pub fn label(&self) -> &'static str {
        match self {
            CancelKind::Requested => "requested",
            CancelKind::Deadline => "deadline",
            CancelKind::Shutdown => "shutdown",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { errors } => {
                write!(f, "invalid configuration ({} component(s))", errors.len())?;
                for e in errors {
                    write!(f, "\n{e}")?;
                }
                Ok(())
            }
            SimError::ShardStall(d) => write!(f, "sharded drive stalled: {d}"),
            SimError::Panic { message } => write!(f, "simulation panicked: {message}"),
            SimError::Artifact { path, message } => {
                write!(f, "artifact {path}: {message}")
            }
            SimError::Cancelled { kind, at_cycle } => {
                write!(
                    f,
                    "run cancelled ({}) at simulated cycle {at_cycle}",
                    kind.label()
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Dispatcher state captured by the coordinator when its progress watchdog
/// expires: enough to see *which* worker wedged and *what* it was (not)
/// doing, without attaching a debugger to a hung process.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardDiagnostics {
    /// Worker threads the drive was launched with.
    pub workers: usize,
    /// Index of the worker whose slot seal the coordinator timed out on.
    pub stalled_worker: usize,
    /// The slot count the coordinator was waiting for that worker to reach.
    pub waiting_for_slot: u64,
    /// The configured deadline that expired, in milliseconds.
    pub timeout_ms: u64,
    /// Coordinator-published mailbox watermark (cycles) at capture time.
    pub watermark: u64,
    /// The coordinator's current stride slot.
    pub cur_slot: u64,
    /// Last quantum sealed by each worker (`u64::MAX` = finished).
    pub worker_done: Vec<u64>,
    /// Queued-but-unreplayed ops per channel mailbox; `None` when the
    /// mailbox lock was held at capture time (itself a diagnostic: the
    /// lock holder is the likely culprit).
    pub mailbox_depths: Vec<Option<usize>>,
    /// Completions published but not yet drained, per worker.
    pub completion_backlogs: Vec<u64>,
    /// The coordinator's occupancy mirror, per channel: requests it
    /// believes are in flight.
    pub occupancy: Vec<usize>,
}

impl fmt::Display for ShardDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker {}/{} made no progress toward slot {} within {} ms \
             (watermark {}, coordinator slot {}; per-worker sealed slots {:?}; \
             mailbox depths {:?}; completion backlogs {:?}; occupancy mirror {:?})",
            self.stalled_worker,
            self.workers,
            self.waiting_for_slot,
            self.timeout_ms,
            self.watermark,
            self.cur_slot,
            self.worker_done,
            self.mailbox_depths,
            self.completion_backlogs,
            self.occupancy,
        )
    }
}

/// Panic payload the coordinator throws out of the shard scope when the
/// watchdog fires; `drive_sharded` downcasts it back into a typed error.
/// Public only so the payload type is nameable across modules.
#[doc(hidden)]
pub struct ShardStallPanic(pub ShardDiagnostics);

/// Panic payload the sharded coordinator throws when it observes a
/// tripped [`crate::simulator::CancelToken`]: the scope tears down via
/// the same abort-flag/unwind/join protocol as the watchdog, and
/// `drive_sharded` downcasts this back into
/// [`SimError::Cancelled`]-shaped data.
#[doc(hidden)]
pub struct CancelPanic {
    pub kind: CancelKind,
    pub at_cycle: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> ShardDiagnostics {
        ShardDiagnostics {
            workers: 2,
            stalled_worker: 1,
            waiting_for_slot: 7,
            timeout_ms: 250,
            watermark: 1024,
            cur_slot: 6,
            worker_done: vec![9, 6],
            mailbox_depths: vec![Some(3), None],
            completion_backlogs: vec![0, 12],
            occupancy: vec![1, 4],
        }
    }

    #[test]
    fn display_names_the_stalled_worker() {
        let shown = SimError::ShardStall(Box::new(diag())).to_string();
        assert!(shown.contains("worker 1/2"));
        assert!(shown.contains("slot 7"));
        assert!(shown.contains("250 ms"));
    }

    #[test]
    fn invalid_config_display_carries_component_diagnostics() {
        let err = SimError::InvalidConfig {
            errors: vec![ConfigError::new(
                "MemConfig",
                vec!["queue_size = 0: must be >= 1".into()],
            )],
        };
        let shown = err.to_string();
        assert!(shown.contains("MemConfig invalid:"));
        assert!(shown.contains("queue_size"));
    }
}
