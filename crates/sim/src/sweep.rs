//! Crash-safe, resumable sweep execution (DESIGN.md §5d).
//!
//! [`SweepRunner`] executes a list of [`SweepSlot`]s — `(id, SimConfig)`
//! pairs — with the guarantees a long figure sweep actually needs:
//!
//! * **Per-slot isolation**: a slot that panics or errors records a
//!   `Failed` outcome in its slot; the rest of the sweep still runs.
//! * **One automatic retry** per failed execution (validation failures
//!   are deterministic and are not retried).
//! * **Crash-safe resume**: after every slot the runner atomically
//!   rewrites `<dir>/<name>.manifest.json`, recording each slot's id, a
//!   fingerprint of its configuration, its outcome, and its projected
//!   values. A re-run skips any slot whose manifest entry matches
//!   (same id, same config fingerprint, `ok` status) and reuses the
//!   stored values — so a killed sweep continues where it stopped and
//!   produces byte-identical final artifacts.
//! * **Atomic artifacts**: every file written through the runner goes
//!   through [`microbank_telemetry::atomic_write`].
//!
//! The stored values survive the JSON round-trip exactly: the writer
//! emits f64s via the shortest-roundtrip `Display` path and the parser
//! reads them back with `str::parse::<f64>`, which inverts it bit-for-bit.

use crate::error::SimError;
use crate::report::Table;
use crate::simulator::{panic_message, try_run, SimConfig, SimResult};
use microbank_telemetry::artifact::atomic_write;
use microbank_telemetry::json::{self, JsonWriter};
use std::path::{Path, PathBuf};

/// One unit of sweep work: a stable identifier (the manifest key, also
/// used as the row label) and the configuration to run.
pub struct SweepSlot {
    pub id: String,
    pub cfg: SimConfig,
}

/// Outcome of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotStatus {
    Ok,
    Failed,
}

/// A slot's manifest record: identity, outcome, and the projected values
/// (the numbers the sweep's artifacts are built from).
#[derive(Debug, Clone)]
pub struct SlotRecord {
    pub id: String,
    /// Fingerprint of the slot's configuration (threads and test hooks
    /// masked out — parallelism does not change results).
    pub config_fp: String,
    pub status: SlotStatus,
    /// Executions spent on this record (1, or 2 after a retry).
    pub attempts: u32,
    /// The final error's rendering, for `Failed` records.
    pub error: Option<String>,
    pub values: Vec<f64>,
    /// True when this record was satisfied from a prior run's manifest
    /// instead of executed in this invocation.
    pub resumed: bool,
}

/// Executes sweep slots with isolation, retry, and manifest-based resume.
pub struct SweepRunner {
    name: String,
    dir: PathBuf,
    /// Records accumulated by this invocation, in slot order.
    records: Vec<SlotRecord>,
    /// Records loaded from a prior manifest, consulted for resume.
    prior: Vec<SlotRecord>,
    /// Test hook: abort (like a crash) after this many *executed* slots.
    #[doc(hidden)]
    pub kill_after: Option<usize>,
}

impl SweepRunner {
    /// A runner for sweep `name` writing under `dir`. Loads the prior
    /// manifest if one exists; an unreadable or malformed manifest is
    /// treated as absent (every slot re-executes — safe, just slower).
    pub fn new(name: impl Into<String>, dir: impl Into<PathBuf>) -> Self {
        let mut r = SweepRunner {
            name: name.into(),
            dir: dir.into(),
            records: Vec::new(),
            prior: Vec::new(),
            kill_after: None,
        };
        r.prior = r.load_manifest().unwrap_or_default();
        r
    }

    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(format!("{}.manifest.json", self.name))
    }

    /// Records produced so far this invocation (one per processed slot).
    pub fn records(&self) -> &[SlotRecord] {
        &self.records
    }

    /// FNV-1a over the config's `Debug` rendering, with the fields that
    /// cannot change results (thread count, test hooks) normalized out so
    /// a resume on a different machine still matches.
    fn config_fingerprint(cfg: &SimConfig) -> String {
        let mut c = cfg.clone();
        c.threads = None;
        c.test_stall_shard = None;
        let rendered = format!("{c:?}");
        let mut h = 0xcbf29ce484222325u64;
        for b in rendered.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
        format!("{h:016x}")
    }

    /// Run every slot, resuming from the manifest where possible, and
    /// return the records in slot order. `project` reduces a completed
    /// run to the values the sweep's artifacts need; only those values
    /// are stored, so resume never needs to re-run a completed slot.
    ///
    /// `Err` is reserved for harness-level failures (a manifest that
    /// cannot be written, or the injected test kill) — slot failures are
    /// reported in their records, not here.
    pub fn run_slots(
        &mut self,
        slots: &[SweepSlot],
        project: impl Fn(&SimResult) -> Vec<f64>,
    ) -> Result<Vec<SlotRecord>, SimError> {
        let mut executed = 0usize;
        for slot in slots {
            let fp = Self::config_fingerprint(&slot.cfg);
            let prior_hit = self
                .prior
                .iter()
                .find(|r| r.id == slot.id && r.config_fp == fp && r.status == SlotStatus::Ok);
            if let Some(prev) = prior_hit {
                let mut rec = prev.clone();
                rec.resumed = true;
                self.records.push(rec);
                self.write_manifest()?;
                continue;
            }
            if let Some(k) = self.kill_after {
                if executed >= k {
                    return Err(SimError::Panic {
                        message: format!(
                            "sweep '{}' killed after {k} executed slot(s) (test hook)",
                            self.name
                        ),
                    });
                }
            }
            let attempt = || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| try_run(&slot.cfg)))
                    .unwrap_or_else(|p| {
                        Err(SimError::Panic {
                            message: panic_message(p),
                        })
                    })
            };
            let mut attempts = 1u32;
            let mut outcome = attempt();
            let retryable =
                matches!(&outcome, Err(e) if !matches!(e, SimError::InvalidConfig { .. }));
            if retryable {
                eprintln!(
                    "microbank-sim: sweep '{}' slot '{}' failed; retrying once",
                    self.name, slot.id
                );
                attempts = 2;
                outcome = attempt();
            }
            executed += 1;
            let rec = match outcome {
                Ok(result) => SlotRecord {
                    id: slot.id.clone(),
                    config_fp: fp,
                    status: SlotStatus::Ok,
                    attempts,
                    error: None,
                    values: project(&result),
                    resumed: false,
                },
                Err(e) => SlotRecord {
                    id: slot.id.clone(),
                    config_fp: fp,
                    status: SlotStatus::Failed,
                    attempts,
                    error: Some(e.to_string()),
                    values: Vec::new(),
                    resumed: false,
                },
            };
            self.records.push(rec);
            self.write_manifest()?;
        }
        Ok(self.records.clone())
    }

    /// Atomically write `bytes` as `<dir>/<file_name>`.
    pub fn write_artifact(
        &self,
        file_name: &str,
        bytes: impl AsRef<[u8]>,
    ) -> Result<PathBuf, SimError> {
        let path = self.dir.join(file_name);
        write_atomic(&path, bytes)?;
        Ok(path)
    }

    /// Write a [`Table`] as `<dir>/<name>.csv` and `<dir>/<name>.json`.
    pub fn write_table(&self, table: &Table) -> Result<(), SimError> {
        self.write_artifact(&format!("{}.csv", self.name), table.to_csv())?;
        self.write_artifact(&format!("{}.json", self.name), table.to_json())?;
        Ok(())
    }

    fn write_manifest(&self) -> Result<(), SimError> {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("sweep").string(&self.name);
        w.key("slots").begin_array();
        for r in &self.records {
            w.begin_object();
            w.key("id").string(&r.id);
            w.key("config_fp").string(&r.config_fp);
            w.key("status").string(match r.status {
                SlotStatus::Ok => "ok",
                SlotStatus::Failed => "failed",
            });
            w.key("attempts").uint(u64::from(r.attempts));
            if let Some(e) = &r.error {
                w.key("error").string(e);
            }
            w.key("values").begin_array();
            for &v in &r.values {
                w.num(v);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        write_atomic(&self.manifest_path(), w.finish())
    }

    fn load_manifest(&self) -> Option<Vec<SlotRecord>> {
        let text = std::fs::read_to_string(self.manifest_path()).ok()?;
        let root = json::parse(&text).ok()?;
        let mut out = Vec::new();
        for slot in root.get("slots")?.items() {
            let status = match slot.get("status")?.as_str()? {
                "ok" => SlotStatus::Ok,
                _ => SlotStatus::Failed,
            };
            out.push(SlotRecord {
                id: slot.get("id")?.as_str()?.to_string(),
                config_fp: slot.get("config_fp")?.as_str()?.to_string(),
                status,
                attempts: slot.get("attempts")?.as_f64()? as u32,
                error: slot
                    .get("error")
                    .and_then(|e| e.as_str())
                    .map(|s| s.to_string()),
                values: slot
                    .get("values")?
                    .items()
                    .iter()
                    .map(|v| v.as_f64())
                    .collect::<Option<Vec<f64>>>()?,
                resumed: false,
            });
        }
        Some(out)
    }
}

fn write_atomic(path: &Path, bytes: impl AsRef<[u8]>) -> Result<(), SimError> {
    atomic_write(path, bytes).map_err(|e| SimError::Artifact {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_masks_parallelism_and_test_hooks() {
        let base = SimConfig::paper_default(microbank_workloads::suite::Workload::MixHigh);
        let fp0 = SweepRunner::config_fingerprint(&base);
        let mut threaded = base.clone();
        threaded.threads = Some(8);
        threaded.test_stall_shard = Some(3);
        assert_eq!(fp0, SweepRunner::config_fingerprint(&threaded));
        let mut different = base.clone();
        different.seed ^= 1;
        assert_ne!(fp0, SweepRunner::config_fingerprint(&different));
    }

    #[test]
    fn values_roundtrip_exactly_through_the_manifest() {
        let dir = std::env::temp_dir().join(format!("microbank_sweep_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let values = vec![0.1 + 0.2, 1.0 / 3.0, -0.0, 12345.0, 6.02e23];
        {
            let mut r = SweepRunner::new("roundtrip", &dir);
            r.records.push(SlotRecord {
                id: "a".into(),
                config_fp: "00".into(),
                status: SlotStatus::Ok,
                attempts: 1,
                error: None,
                values: values.clone(),
                resumed: false,
            });
            r.write_manifest().unwrap();
        }
        let loaded = SweepRunner::new("roundtrip", &dir).prior;
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].values, values, "bit-exact f64 round-trip");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
