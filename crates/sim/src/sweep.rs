//! Crash-safe, resumable sweep execution (DESIGN.md §5d).
//!
//! [`SweepRunner`] executes a list of [`SweepSlot`]s — `(id, SimConfig)`
//! pairs — with the guarantees a long figure sweep actually needs:
//!
//! * **Per-slot isolation**: a slot that panics or errors records a
//!   `Failed` outcome in its slot; the rest of the sweep still runs.
//! * **One automatic retry** per failed execution (validation failures
//!   are deterministic and are not retried).
//! * **Crash-safe resume**: after every slot the runner atomically
//!   rewrites `<dir>/<name>.manifest.json`, recording each slot's id, a
//!   fingerprint of its configuration, its outcome, and its projected
//!   values. A re-run skips any slot whose manifest entry matches
//!   (same id, same config fingerprint, `ok` status) and reuses the
//!   stored values — so a killed sweep continues where it stopped and
//!   produces byte-identical final artifacts.
//! * **Atomic artifacts**: every file written through the runner goes
//!   through [`microbank_telemetry::atomic_write`].
//!
//! The stored values survive the JSON round-trip exactly: the writer
//! emits f64s via the shortest-roundtrip `Display` path and the parser
//! reads them back with `str::parse::<f64>`, which inverts it bit-for-bit.

use crate::error::SimError;
use crate::report::Table;
use crate::simulator::{panic_message, try_run, SimConfig, SimResult};
use microbank_telemetry::artifact::atomic_write;
use microbank_telemetry::json::{self, JsonWriter};
use microbank_telemetry::{event, Level, MetricsRegistry, StatusServer, StatusShared};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// One unit of sweep work: a stable identifier (the manifest key, also
/// used as the row label) and the configuration to run.
pub struct SweepSlot {
    pub id: String,
    pub cfg: SimConfig,
}

/// Outcome of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotStatus {
    Ok,
    Failed,
}

/// A slot's manifest record: identity, outcome, and the projected values
/// (the numbers the sweep's artifacts are built from).
#[derive(Debug, Clone)]
pub struct SlotRecord {
    pub id: String,
    /// Fingerprint of the slot's configuration (threads and test hooks
    /// masked out — parallelism does not change results).
    pub config_fp: String,
    pub status: SlotStatus,
    /// Executions spent on this record (1, or 2 after a retry).
    pub attempts: u32,
    /// The final error's rendering, for `Failed` records.
    pub error: Option<String>,
    pub values: Vec<f64>,
    /// True when this record was satisfied from a prior run's manifest
    /// instead of executed in this invocation.
    pub resumed: bool,
    /// Wall seconds this invocation spent executing the slot (0 for
    /// resumed records). Observability only — never persisted to the
    /// manifest, so resumed and uninterrupted sweeps stay byte-identical.
    pub secs: f64,
}

/// Executes sweep slots with isolation, retry, and manifest-based resume.
///
/// # Observability
///
/// Every processed slot atomically rewrites `<dir>/<name>.status.json`
/// (per-slot states, ETA, throughput) and updates a [`MetricsRegistry`].
/// When `MICROBANK_STATUS_ADDR` is set (or [`serve_status`] is called),
/// both are additionally served live over HTTP at `/status` and
/// `/metrics` for the duration of the runner. The status surface is
/// best-effort and read-only: it cannot fail the sweep, and it cannot
/// change any simulated result or sweep artifact.
///
/// [`serve_status`]: SweepRunner::serve_status
pub struct SweepRunner {
    name: String,
    dir: PathBuf,
    /// Records accumulated by this invocation, in slot order.
    records: Vec<SlotRecord>,
    /// Records loaded from a prior manifest, consulted for resume.
    prior: Vec<SlotRecord>,
    metrics: Arc<MetricsRegistry>,
    status_shared: Option<Arc<StatusShared>>,
    /// Owned so the endpoint stays up as long as the runner lives.
    server: Option<StatusServer>,
    /// Test hook: abort (like a crash) after this many *executed* slots.
    #[doc(hidden)]
    pub kill_after: Option<usize>,
}

impl SweepRunner {
    /// A runner for sweep `name` writing under `dir`. Loads the prior
    /// manifest if one exists; an unreadable or malformed manifest is
    /// treated as absent (every slot re-executes — safe, just slower).
    /// If `MICROBANK_STATUS_ADDR` is set, the status endpoint is served
    /// there (a bind failure logs a warning and the sweep proceeds).
    pub fn new(name: impl Into<String>, dir: impl Into<PathBuf>) -> Self {
        let mut r = SweepRunner {
            name: name.into(),
            dir: dir.into(),
            records: Vec::new(),
            prior: Vec::new(),
            metrics: Arc::new(MetricsRegistry::new()),
            status_shared: None,
            server: None,
            kill_after: None,
        };
        r.prior = r.load_manifest().unwrap_or_default();
        if let Ok(addr) = std::env::var("MICROBANK_STATUS_ADDR") {
            if let Err(e) = r.serve_status(&addr) {
                event::emit(
                    Level::Warn,
                    "sim::sweep",
                    "could not bind MICROBANK_STATUS_ADDR; continuing without endpoint",
                    &[
                        ("addr", addr.as_str().into()),
                        ("error", e.to_string().into()),
                    ],
                );
            }
        }
        r
    }

    /// Serve `/status` and `/metrics` on `addr` (`127.0.0.1:0` picks an
    /// ephemeral port; see [`status_addr`](Self::status_addr)) until the
    /// runner is dropped.
    pub fn serve_status(&mut self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let shared = StatusShared::new(Arc::clone(&self.metrics));
        let server = StatusServer::start(addr, Arc::clone(&shared))?;
        let bound = server.local_addr();
        event::emit(
            Level::Info,
            "sim::sweep",
            "status endpoint listening",
            &[
                ("sweep", self.name.as_str().into()),
                ("addr", bound.to_string().into()),
            ],
        );
        self.status_shared = Some(shared);
        self.server = Some(server);
        Ok(bound)
    }

    /// Address the status endpoint is bound to, when serving.
    pub fn status_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(|s| s.local_addr())
    }

    /// The metrics registry this runner feeds (shareable; also exposed
    /// at `/metrics` when serving).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(format!("{}.manifest.json", self.name))
    }

    /// Live progress artifact, atomically rewritten after every slot.
    pub fn status_path(&self) -> PathBuf {
        self.dir.join(format!("{}.status.json", self.name))
    }

    /// Records produced so far this invocation (one per processed slot).
    pub fn records(&self) -> &[SlotRecord] {
        &self.records
    }

    /// FNV-1a over the config's `Debug` rendering, with the fields that
    /// cannot change results (thread count, span tracing, test hooks,
    /// cancellation token) normalized out so a resume on a different
    /// machine still matches. Shared with the sweep service, whose job
    /// manifests must certify slots with the same identity.
    pub(crate) fn config_fingerprint(cfg: &SimConfig) -> String {
        let mut c = cfg.clone();
        c.threads = None;
        c.spans = false;
        c.time_skip = None;
        c.test_stall_shard = None;
        // A token only shortens runs that are then discarded whole; a
        // certified result is identical with or without one. Masking it
        // also keeps the hash stable across token identities (the Debug
        // print shows live/tripped state, not a value).
        c.cancel = None;
        let rendered = format!("{c:?}");
        let mut h = 0xcbf29ce484222325u64;
        for b in rendered.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
        format!("{h:016x}")
    }

    /// Run every slot, resuming from the manifest where possible, and
    /// return the records in slot order. `project` reduces a completed
    /// run to the values the sweep's artifacts need; only those values
    /// are stored, so resume never needs to re-run a completed slot.
    ///
    /// `Err` is reserved for harness-level failures (a manifest that
    /// cannot be written, or the injected test kill) — slot failures are
    /// reported in their records, not here.
    pub fn run_slots(
        &mut self,
        slots: &[SweepSlot],
        project: impl Fn(&SimResult) -> Vec<f64>,
    ) -> Result<Vec<SlotRecord>, SimError> {
        let sweep_start = Instant::now();
        event::emit(
            Level::Info,
            "sim::sweep",
            "sweep starting",
            &[
                ("sweep", self.name.as_str().into()),
                ("slots", slots.len().into()),
                ("prior_records", self.prior.len().into()),
            ],
        );
        let mut executed = 0usize;
        // Seed the progress gauges before the first slot so an early
        // scrape already sees the sweep family (at zero).
        self.note_slot_metrics(sweep_start);
        self.publish_status(slots, sweep_start, None);
        for slot in slots {
            let fp = Self::config_fingerprint(&slot.cfg);
            let prior_hit = self
                .prior
                .iter()
                .find(|r| r.id == slot.id && r.config_fp == fp && r.status == SlotStatus::Ok);
            if let Some(prev) = prior_hit {
                event::emit(
                    Level::Debug,
                    "sim::sweep",
                    "slot resumed from manifest",
                    &[
                        ("sweep", self.name.as_str().into()),
                        ("slot", slot.id.as_str().into()),
                    ],
                );
                let mut rec = prev.clone();
                rec.resumed = true;
                rec.secs = 0.0;
                self.records.push(rec);
                self.write_manifest()?;
                self.note_slot_metrics(sweep_start);
                self.publish_status(slots, sweep_start, None);
                continue;
            }
            if let Some(k) = self.kill_after {
                if executed >= k {
                    return Err(SimError::Panic {
                        message: format!(
                            "sweep '{}' killed after {k} executed slot(s) (test hook)",
                            self.name
                        ),
                    });
                }
            }
            self.publish_status(slots, sweep_start, Some(&slot.id));
            let slot_start = Instant::now();
            let attempt = || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| try_run(&slot.cfg)))
                    .unwrap_or_else(|p| {
                        Err(SimError::Panic {
                            message: panic_message(p),
                        })
                    })
            };
            let mut attempts = 1u32;
            let mut outcome = attempt();
            let retryable =
                matches!(&outcome, Err(e) if !matches!(e, SimError::InvalidConfig { .. }));
            if retryable {
                let rendered = match &outcome {
                    Err(e) => e.to_string(),
                    Ok(_) => unreachable!("retryable implies Err"),
                };
                event::emit(
                    Level::Warn,
                    "sim::sweep",
                    "slot failed; retrying once",
                    &[
                        ("sweep", self.name.as_str().into()),
                        ("slot", slot.id.as_str().into()),
                        ("attempt", 1u64.into()),
                        ("error", rendered.into()),
                    ],
                );
                self.metrics
                    .counter_add("microbank_sweep_slot_retries_total", &[], 1);
                attempts = 2;
                outcome = attempt();
            }
            executed += 1;
            let secs = slot_start.elapsed().as_secs_f64();
            let rec = match outcome {
                Ok(result) => {
                    result.record_metrics(&self.metrics, &[("slot", slot.id.as_str())]);
                    event::emit(
                        Level::Debug,
                        "sim::sweep",
                        "slot completed",
                        &[
                            ("sweep", self.name.as_str().into()),
                            ("slot", slot.id.as_str().into()),
                            ("attempts", u64::from(attempts).into()),
                            ("secs", secs.into()),
                        ],
                    );
                    SlotRecord {
                        id: slot.id.clone(),
                        config_fp: fp,
                        status: SlotStatus::Ok,
                        attempts,
                        error: None,
                        values: project(&result),
                        resumed: false,
                        secs,
                    }
                }
                Err(e) => {
                    event::emit(
                        Level::Error,
                        "sim::sweep",
                        "slot failed permanently",
                        &[
                            ("sweep", self.name.as_str().into()),
                            ("slot", slot.id.as_str().into()),
                            ("attempts", u64::from(attempts).into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                    SlotRecord {
                        id: slot.id.clone(),
                        config_fp: fp,
                        status: SlotStatus::Failed,
                        attempts,
                        error: Some(e.to_string()),
                        values: Vec::new(),
                        resumed: false,
                        secs,
                    }
                }
            };
            self.metrics
                .observe("microbank_sweep_slot_seconds", &[], secs);
            self.records.push(rec);
            self.write_manifest()?;
            self.note_slot_metrics(sweep_start);
            self.publish_status(slots, sweep_start, None);
        }
        event::emit(
            Level::Info,
            "sim::sweep",
            "sweep finished",
            &[
                ("sweep", self.name.as_str().into()),
                ("slots", slots.len().into()),
                ("executed", executed.into()),
                ("secs", sweep_start.elapsed().as_secs_f64().into()),
            ],
        );
        Ok(self.records.clone())
    }

    /// Refresh the sweep-progress metric family from `self.records`.
    fn note_slot_metrics(&self, sweep_start: Instant) {
        let done = self.records.len() as f64;
        let ok = self
            .records
            .iter()
            .filter(|r| r.status == SlotStatus::Ok && !r.resumed)
            .count();
        let failed = self
            .records
            .iter()
            .filter(|r| r.status == SlotStatus::Failed)
            .count();
        let resumed = self.records.iter().filter(|r| r.resumed).count();
        let m = &self.metrics;
        m.register(
            "microbank_sweep_slots_done",
            microbank_telemetry::MetricKind::Gauge,
            "Slots processed so far (executed or resumed)",
        );
        m.gauge_set("microbank_sweep_slots_done", &[], done);
        m.gauge_set(
            "microbank_sweep_elapsed_seconds",
            &[],
            sweep_start.elapsed().as_secs_f64(),
        );
        for (outcome, n) in [("ok", ok), ("failed", failed), ("resumed", resumed)] {
            m.gauge_set(
                "microbank_sweep_slots",
                &[("sweep", self.name.as_str()), ("outcome", outcome)],
                n as f64,
            );
        }
    }

    /// Atomically rewrite `<dir>/<name>.status.json` and push the same
    /// document to the HTTP endpoint (when serving). Best-effort: status
    /// is observation, so I/O failures here never fail the sweep.
    fn publish_status(&self, slots: &[SweepSlot], sweep_start: Instant, running: Option<&str>) {
        let json = self.render_status(slots, sweep_start, running);
        let _ = atomic_write(self.status_path(), &json);
        if let Some(shared) = &self.status_shared {
            shared.set_status_json(json);
        }
    }

    /// Render the live progress document: per-slot states, wall-clock
    /// progress, throughput, and an ETA extrapolated from the mean
    /// executed-slot time (resumed slots are free and excluded).
    fn render_status(
        &self,
        slots: &[SweepSlot],
        sweep_start: Instant,
        running: Option<&str>,
    ) -> String {
        let elapsed = sweep_start.elapsed().as_secs_f64();
        let done = self.records.len();
        let failed = self
            .records
            .iter()
            .filter(|r| r.status == SlotStatus::Failed)
            .count();
        let resumed = self.records.iter().filter(|r| r.resumed).count();
        let exec_secs: f64 = self.records.iter().map(|r| r.secs).sum();
        let executed = done - resumed;
        let remaining = slots
            .len()
            .saturating_sub(done + usize::from(running.is_some()));
        let eta = if executed > 0 {
            Some(exec_secs / executed as f64 * (remaining + usize::from(running.is_some())) as f64)
        } else {
            None
        };
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("sweep").string(&self.name);
        w.key("total_slots").uint(slots.len() as u64);
        w.key("done").uint(done as u64);
        w.key("executed").uint(executed as u64);
        w.key("resumed").uint(resumed as u64);
        w.key("failed").uint(failed as u64);
        w.key("elapsed_secs").num(elapsed);
        match eta {
            Some(eta) => w.key("eta_secs").num(eta),
            None => w.key("eta_secs").null(),
        };
        w.key("slots_per_sec").num(if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        });
        match running {
            Some(id) => w.key("running").string(id),
            None => w.key("running").null(),
        };
        w.key("slots").begin_array();
        for (i, slot) in slots.iter().enumerate() {
            w.begin_object();
            w.key("id").string(&slot.id);
            let (state, rec) = match self.records.get(i) {
                Some(r) if r.resumed => ("resumed", Some(r)),
                Some(r) if r.status == SlotStatus::Ok => ("ok", Some(r)),
                Some(r) => ("failed", Some(r)),
                None if running == Some(slot.id.as_str()) => ("running", None),
                None => ("pending", None),
            };
            w.key("state").string(state);
            if let Some(r) = rec {
                w.key("attempts").uint(u64::from(r.attempts));
                w.key("secs").num(r.secs);
                if let Some(e) = &r.error {
                    w.key("error").string(e);
                }
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Atomically write `bytes` as `<dir>/<file_name>`.
    pub fn write_artifact(
        &self,
        file_name: &str,
        bytes: impl AsRef<[u8]>,
    ) -> Result<PathBuf, SimError> {
        let path = self.dir.join(file_name);
        write_atomic(&path, bytes)?;
        Ok(path)
    }

    /// Write a [`Table`] as `<dir>/<name>.csv` and `<dir>/<name>.json`.
    pub fn write_table(&self, table: &Table) -> Result<(), SimError> {
        self.write_artifact(&format!("{}.csv", self.name), table.to_csv())?;
        self.write_artifact(&format!("{}.json", self.name), table.to_json())?;
        Ok(())
    }

    fn write_manifest(&self) -> Result<(), SimError> {
        write_atomic(
            &self.manifest_path(),
            render_manifest(&self.name, &self.records),
        )
    }

    /// Load the prior manifest. A missing file is a fresh start; a file
    /// that exists but does not parse as a manifest is *quarantined* —
    /// renamed to `<name>.manifest.corrupt-<n>.json` with a warning —
    /// so a truncated write is visible instead of silently re-executing
    /// the whole sweep as if nothing had ever run.
    fn load_manifest(&self) -> Option<Vec<SlotRecord>> {
        let path = self.manifest_path();
        let text = std::fs::read_to_string(&path).ok()?;
        match parse_manifest(&text) {
            Some(records) => Some(records),
            None => {
                let quarantined = quarantine_manifest(&path);
                event::emit(
                    Level::Warn,
                    "sim::sweep",
                    "prior manifest is malformed; quarantined, sweep restarts from scratch",
                    &[
                        ("sweep", self.name.as_str().into()),
                        ("path", path.display().to_string().into()),
                        (
                            "quarantined_to",
                            quarantined
                                .map(|p| p.display().to_string())
                                .unwrap_or_else(|| "(rename failed)".into())
                                .into(),
                        ),
                    ],
                );
                None
            }
        }
    }
}

/// Free-function form of [`SweepRunner::config_fingerprint`] for the
/// sweep service, which certifies slots with the same identity.
pub(crate) fn config_fingerprint(cfg: &SimConfig) -> String {
    SweepRunner::config_fingerprint(cfg)
}

/// Render a manifest document for `records` — the format shared by
/// [`SweepRunner`] and the sweep service's per-job manifests. Byte-stable:
/// the same records always render identically.
pub(crate) fn render_manifest(name: &str, records: &[SlotRecord]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("sweep").string(name);
    w.key("slots").begin_array();
    for r in records {
        w.begin_object();
        w.key("id").string(&r.id);
        w.key("config_fp").string(&r.config_fp);
        w.key("status").string(match r.status {
            SlotStatus::Ok => "ok",
            SlotStatus::Failed => "failed",
        });
        w.key("attempts").uint(u64::from(r.attempts));
        if let Some(e) = &r.error {
            w.key("error").string(e);
        }
        w.key("values").begin_array();
        for &v in &r.values {
            w.num(v);
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Parse a manifest document back into records. `None` when the text is
/// not a structurally valid manifest.
pub(crate) fn parse_manifest(text: &str) -> Option<Vec<SlotRecord>> {
    let root = json::parse(text).ok()?;
    let mut out = Vec::new();
    for slot in root.get("slots")?.items() {
        let status = match slot.get("status")?.as_str()? {
            "ok" => SlotStatus::Ok,
            _ => SlotStatus::Failed,
        };
        out.push(SlotRecord {
            id: slot.get("id")?.as_str()?.to_string(),
            config_fp: slot.get("config_fp")?.as_str()?.to_string(),
            status,
            attempts: slot.get("attempts")?.as_f64()? as u32,
            error: slot
                .get("error")
                .and_then(|e| e.as_str())
                .map(|s| s.to_string()),
            values: slot
                .get("values")?
                .items()
                .iter()
                .map(|v| v.as_f64())
                .collect::<Option<Vec<f64>>>()?,
            resumed: false,
            secs: 0.0,
        });
    }
    Some(out)
}

/// Move a malformed manifest aside to the first free
/// `<stem>.corrupt-<n>.json` slot next to it. `None` when the rename
/// failed (the original is then left in place and will be retried — and
/// re-warned about — on the next start).
pub(crate) fn quarantine_manifest(path: &Path) -> Option<PathBuf> {
    let stem = path
        .file_name()
        .and_then(|n| n.to_str())
        .map(|n| n.strip_suffix(".json").unwrap_or(n))
        .unwrap_or("manifest");
    for n in 1u32..1000 {
        let candidate = path.with_file_name(format!("{stem}.corrupt-{n}.json"));
        if candidate.exists() {
            continue;
        }
        if std::fs::rename(path, &candidate).is_ok() {
            return Some(candidate);
        }
        return None;
    }
    None
}

pub(crate) fn write_atomic(path: &Path, bytes: impl AsRef<[u8]>) -> Result<(), SimError> {
    atomic_write(path, bytes).map_err(|e| SimError::Artifact {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_masks_parallelism_and_test_hooks() {
        let base = SimConfig::paper_default(microbank_workloads::suite::Workload::MixHigh);
        let fp0 = SweepRunner::config_fingerprint(&base);
        let mut threaded = base.clone();
        threaded.threads = Some(8);
        threaded.test_stall_shard = Some(3);
        threaded.spans = true;
        threaded.time_skip = Some(false);
        threaded.cancel = Some(crate::simulator::CancelToken::default());
        assert_eq!(fp0, SweepRunner::config_fingerprint(&threaded));
        // A tripped token must not change the hash either (Debug shows
        // the trip state; the mask removes it before rendering).
        let tripped = crate::simulator::CancelToken::default();
        tripped.cancel();
        let mut cancelled = base.clone();
        cancelled.cancel = Some(tripped);
        assert_eq!(fp0, SweepRunner::config_fingerprint(&cancelled));
        let mut different = base.clone();
        different.seed ^= 1;
        assert_ne!(fp0, SweepRunner::config_fingerprint(&different));
    }

    #[test]
    fn fingerprint_distinguishes_qos_configurations() {
        // QoS changes simulated behavior, so it must invalidate manifest
        // hits: arming it, and every knob inside it, alters the print.
        let base = SimConfig::paper_default(microbank_workloads::suite::Workload::MixHigh);
        let fp0 = SweepRunner::config_fingerprint(&base);
        let tracking = base
            .clone()
            .with_qos(microbank_ctrl::qos::QosConfig::tracking());
        let fp1 = SweepRunner::config_fingerprint(&tracking);
        assert_ne!(fp0, fp1, "arming QoS must change the fingerprint");
        let regulated = base
            .clone()
            .with_qos(microbank_ctrl::qos::QosConfig::tracking().with_tenant(Some(64), 1));
        let fp2 = SweepRunner::config_fingerprint(&regulated);
        assert_ne!(fp1, fp2, "tenant policies must change the fingerprint");
        assert_eq!(fp1, SweepRunner::config_fingerprint(&tracking.clone()));
    }

    #[test]
    fn fingerprint_distinguishes_device_variants() {
        use microbank_core::variant::{DeviceVariant, SalpMode};
        // The variant changes issue rules and energy, so manifests keyed
        // on the fingerprint must never resume across variants. The field
        // rides in MemConfig's Debug rendering automatically.
        let base = SimConfig::paper_default(microbank_workloads::suite::Workload::MixHigh);
        let fp0 = SweepRunner::config_fingerprint(&base);
        for v in [
            DeviceVariant::Conventional,
            DeviceVariant::Salp {
                subarrays: 8,
                mode: SalpMode::Salp1,
            },
            DeviceVariant::Salp {
                subarrays: 8,
                mode: SalpMode::Masa,
            },
            DeviceVariant::Sectored {
                sectors: 16,
                sectors_per_act: 2,
            },
        ] {
            let mut cfg = base.clone();
            cfg.mem = cfg.mem.with_variant(v);
            assert_ne!(
                fp0,
                SweepRunner::config_fingerprint(&cfg),
                "variant {} must change the fingerprint",
                v.label()
            );
        }
        // Same variant, same print: resume still works within a variant.
        let mut a = base.clone();
        a.mem = a.mem.with_variant(DeviceVariant::Conventional);
        let mut b = base.clone();
        b.mem = b.mem.with_variant(DeviceVariant::Conventional);
        assert_eq!(
            SweepRunner::config_fingerprint(&a),
            SweepRunner::config_fingerprint(&b)
        );
    }

    #[test]
    fn values_roundtrip_exactly_through_the_manifest() {
        let dir = std::env::temp_dir().join(format!("microbank_sweep_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let values = vec![0.1 + 0.2, 1.0 / 3.0, -0.0, 12345.0, 6.02e23];
        {
            let mut r = SweepRunner::new("roundtrip", &dir);
            r.records.push(SlotRecord {
                id: "a".into(),
                config_fp: "00".into(),
                status: SlotStatus::Ok,
                attempts: 1,
                error: None,
                values: values.clone(),
                resumed: false,
                secs: 0.0,
            });
            r.write_manifest().unwrap();
        }
        let loaded = SweepRunner::new("roundtrip", &dir).prior;
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].values, values, "bit-exact f64 round-trip");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_manifest_is_quarantined_not_silently_dropped() {
        let dir =
            std::env::temp_dir().join(format!("microbank_sweep_corrupt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("crashy.manifest.json");
        // A truncated write: valid prefix, cut mid-document.
        std::fs::write(&manifest, r#"{"sweep":"crashy","slots":[{"id":"a","#).unwrap();
        let r = SweepRunner::new("crashy", &dir);
        assert!(r.prior.is_empty(), "malformed manifest must not resume");
        assert!(!manifest.exists(), "original must be moved aside");
        let quarantined = dir.join("crashy.manifest.corrupt-1.json");
        assert!(quarantined.exists(), "quarantine file must exist");
        // A second corrupt manifest lands in the next slot, preserving
        // the first for inspection.
        std::fs::write(&manifest, "not json at all").unwrap();
        let _ = SweepRunner::new("crashy", &dir);
        assert!(dir.join("crashy.manifest.corrupt-2.json").exists());
        assert!(quarantined.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
