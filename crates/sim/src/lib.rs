//! # microbank-sim
//!
//! The full-system μbank simulator: wires the 64-core CMP model
//! (`microbank-cpu`) to the memory controllers (`microbank-ctrl`) and the
//! μbank DRAM devices (`microbank-core`), integrates energy
//! (`microbank-energy`), and drives the workload generators
//! (`microbank-workloads`).
//!
//! * [`simulator`] — [`simulator::SimConfig`] → [`simulator::SimResult`]:
//!   one run of the whole system, plus a parallel sweep runner.
//! * [`experiment`] — one driver per paper figure (Fig. 8–14 and the §I
//!   headline numbers), returning structured rows for the harness
//!   binaries in `microbank-bench`.
//! * [`error`] — the typed failure vocabulary ([`error::SimError`]) of the
//!   fallible entry points; see DESIGN.md §5d.
//! * [`sweep`] — crash-safe resumable sweep execution with per-slot
//!   isolation, an atomic on-disk manifest, and a live status surface
//!   (`<name>.status.json` + optional HTTP `/status` & `/metrics`).
//! * [`service`] — sweep-as-a-service: a fault-tolerant job daemon
//!   (durable write-ahead queue, worker pool with deadlines, backoff,
//!   cooperative cancellation, graceful drain) behind an HTTP job API
//!   (DESIGN.md §5i).

pub mod error;
pub mod experiment;
pub mod report;
pub mod service;
pub mod shard;
pub mod simulator;
pub mod sweep;

pub use error::{CancelKind, ShardDiagnostics, SimError};
pub use experiment::{
    base_cfg, headline, interface_study, interleave_policy_study, organization_comparison,
    predictor_study, representative_study, ubank_grid, GridResult, InterfaceRow, InterleaveRow,
    PredictorRow, RepresentativeRow, DEGREES, REPRESENTATIVE,
};
pub use report::{summarize, summary_columns, Table};
pub use service::{JobState, ServiceConfig, SweepService};
pub use simulator::{
    run, run_many, run_many_checked, try_run, try_run_once, CancelToken, DriveMode, QosReport,
    SequentialReason, SimConfig, SimResult, TenantMetrics,
};
pub use sweep::{SlotRecord, SlotStatus, SweepRunner, SweepSlot};

// QoS building blocks (DESIGN.md §5g), re-exported so harness binaries
// can build a `QosConfig` without depending on `microbank-ctrl` directly.
pub use microbank_ctrl::qos::{
    tenant_slot, QosConfig, QosGranularity, QosStats, TenantPolicy, MAX_TENANTS,
};

// Observability building blocks, re-exported so harness binaries need
// only this crate: span rows ride on `SimResult::profile`, the registry
// backs `/metrics`, and `http_get` is the matching scrape helper.
pub use microbank_telemetry::status::http_get;
pub use microbank_telemetry::{MetricsRegistry, SpanRow, SpanTracer, StatusServer, StatusShared};
