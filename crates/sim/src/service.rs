//! Sweep-as-a-service (DESIGN.md §5i): a fault-tolerant job daemon on
//! top of the crash-safe sweep machinery.
//!
//! [`SweepService`] accepts simulation jobs over HTTP (`POST /jobs`,
//! arrays of slot specs validated through the [`SimConfig::validate`]
//! ladder before admission), executes their slots on a supervised
//! worker pool, and survives hostile reality end to end:
//!
//! * **Durable write-ahead queue**: every admitted job is persisted to
//!   `<dir>/<name>.queue.json` (atomic rename) *before* the 202 goes
//!   out, and every state transition rewrites it, so `kill -9` +
//!   restart resumes every admitted job. Per-job results live in
//!   SweepRunner-format manifests (`<dir>/<job-id>.manifest.json`);
//!   resume re-executes only slots without a certified (`ok`, matching
//!   config fingerprint) record, and completed jobs' artifacts are
//!   byte-identical to an uninterrupted run.
//! * **Deadlines and cancellation**: each job carries a
//!   [`CancelToken`]; `DELETE /jobs/{id}` trips it as `Requested`, the
//!   monitor thread trips it as `Deadline` past the job's wall-clock
//!   budget, and both drive loops poll it every
//!   [`crate::simulator::CANCEL_CHECK_CYCLES`] simulated cycles.
//!   Cancellation is sound under time-skip: it only shortens runs whose
//!   state is discarded whole.
//! * **Error-class-aware retry**: deterministic `InvalidConfig` is
//!   never retried (it is rejected at admission anyway), `Cancelled` is
//!   never retried, `ShardStall` is already rescued sequentially inside
//!   [`try_run`], and `Panic`/`Artifact` retry with exponential backoff
//!   plus deterministic jitter up to a per-slot attempt cap.
//! * **Admission control**: a bounded queue answers 429 with
//!   `Retry-After` when full, and 503 once draining.
//! * **Graceful drain**: shutdown stops admission, waits a grace period
//!   for in-flight jobs, then trips their tokens as `Shutdown` — those
//!   slots are *checkpointed* (left unrecorded, job restored to
//!   `queued`), not failed — and exits with a clean queue manifest.

use crate::error::{CancelKind, SimError};
use crate::simulator::{
    golden_fingerprint, panic_message, try_run, CancelToken, SimConfig, SimResult,
};
use crate::sweep::{
    self, config_fingerprint, parse_manifest, quarantine_manifest, render_manifest, SlotRecord,
    SlotStatus,
};
use microbank_core::geometry::UbankConfig;
use microbank_ctrl::policy::PolicyKind;
use microbank_ctrl::predictor::PredictorKind;
use microbank_ctrl::scheduler::SchedulerKind;
use microbank_telemetry::json::{self, JsonValue, JsonWriter};
use microbank_telemetry::status::{HttpRequest, HttpResponse};
use microbank_telemetry::{event, Level, MetricKind, MetricsRegistry, StatusServer, StatusShared};
use microbank_workloads::{spec, suite::Workload};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon knobs. Everything is overridable; the defaults suit tests and
/// a small local daemon.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Stem for the queue file (`<dir>/<name>.queue.json`).
    pub name: String,
    /// Directory for the queue file and per-job manifests.
    pub dir: PathBuf,
    /// Worker threads executing slots (across jobs).
    pub workers: usize,
    /// Maximum live (queued + running) jobs; admission answers 429
    /// beyond this.
    pub queue_cap: usize,
    /// Default per-job wall-clock deadline in ms (0 = none); a job may
    /// override it at submission.
    pub default_deadline_ms: u64,
    /// How long a graceful drain waits for in-flight jobs before
    /// checkpointing them with `Shutdown` cancellation.
    pub drain_grace_ms: u64,
    /// Executions per slot before a retryable error becomes permanent.
    pub max_slot_attempts: u32,
    /// Base backoff before a retry (doubles per attempt, plus
    /// deterministic jitter).
    pub backoff_base_ms: u64,
}

impl ServiceConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            name: "sweepd".to_string(),
            dir: dir.into(),
            workers: 2,
            queue_cap: 16,
            default_deadline_ms: 0,
            drain_grace_ms: 2_000,
            max_slot_attempts: 3,
            backoff_base_ms: 50,
        }
    }
}

/// Lifecycle of one job (DESIGN.md §5i state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted and persisted; no slot executing yet (also the state a
    /// killed-mid-run or checkpointed job restarts in).
    Queued,
    /// At least one slot has started executing.
    Running,
    /// Every slot has a record (`ok` or `failed`).
    Done,
    /// Terminal via `DELETE /jobs/{id}`.
    Cancelled,
    /// Terminal via deadline expiry.
    TimedOut,
}

impl JobState {
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed-out",
        }
    }

    fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "cancelled" => JobState::Cancelled,
            "timed-out" => JobState::TimedOut,
            _ => return None,
        })
    }

    fn terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::TimedOut
        )
    }
}

/// One slot of a job: stable id, the canonical (normalized) spec JSON
/// persisted for restart, and the config it deterministically parses to.
#[derive(Debug, Clone)]
struct SlotSpec {
    id: String,
    canon: String,
    cfg: SimConfig,
}

#[derive(Debug)]
struct Job {
    id: String,
    name: String,
    state: JobState,
    deadline_ms: u64,
    specs: Vec<SlotSpec>,
    /// Per-slot outcome, slot order; `None` = not yet executed.
    records: Vec<Option<SlotRecord>>,
    token: CancelToken,
    started: Option<Instant>,
}

impl Job {
    fn pending(&self) -> usize {
        self.records.iter().filter(|r| r.is_none()).count()
    }

    fn live(&self) -> bool {
        !self.state.terminal()
    }

    /// The manifest rows: recorded slots, slot order (byte-stable under
    /// out-of-order concurrent completion).
    fn recorded(&self) -> Vec<SlotRecord> {
        self.records.iter().flatten().cloned().collect()
    }
}

#[derive(Default)]
struct ServiceState {
    jobs: Vec<Job>,
    next_id: u64,
    /// Work queue of (job index, slot index).
    ready: VecDeque<(usize, usize)>,
    /// Slots currently executing on workers.
    active: usize,
}

struct ServiceInner {
    cfg: ServiceConfig,
    state: Mutex<ServiceState>,
    work_cv: Condvar,
    idle_cv: Condvar,
    metrics: Arc<MetricsRegistry>,
    shared: Arc<StatusShared>,
    /// Admission stops the moment this is set; the monitor thread then
    /// runs the drain state machine.
    drain_requested: AtomicBool,
    /// Set by the monitor once the drain completed; workers exit.
    stop: AtomicBool,
}

impl ServiceInner {
    fn lock(&self) -> MutexGuard<'_, ServiceState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn queue_path(&self) -> PathBuf {
        self.cfg.dir.join(format!("{}.queue.json", self.cfg.name))
    }

    fn manifest_path(&self, job_id: &str) -> PathBuf {
        self.cfg.dir.join(format!("{job_id}.manifest.json"))
    }
}

/// The running daemon: worker pool + monitor thread + (optionally) the
/// HTTP endpoint. Dropping it performs a graceful drain.
pub struct SweepService {
    inner: Arc<ServiceInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    monitor: Option<JoinHandle<()>>,
    server: Option<StatusServer>,
}

impl SweepService {
    /// Start the daemon: load (or quarantine) the durable queue, resume
    /// every live job, and spawn the worker pool and monitor thread.
    /// HTTP is separate — call [`serve`](Self::serve) to bind.
    pub fn start(cfg: ServiceConfig) -> Result<SweepService, SimError> {
        std::fs::create_dir_all(&cfg.dir).map_err(|e| SimError::Artifact {
            path: cfg.dir.display().to_string(),
            message: e.to_string(),
        })?;
        let metrics = Arc::new(MetricsRegistry::new());
        let shared = StatusShared::new(Arc::clone(&metrics));
        let inner = Arc::new(ServiceInner {
            cfg,
            state: Mutex::new(ServiceState::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            metrics,
            shared,
            drain_requested: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });
        inner.lock().next_id = 1;
        load_queue(&inner)?;
        {
            let mut st = inner.lock();
            enqueue_resumable(&inner, &mut st);
            note_metrics(&inner, &st);
            publish_status(&inner, &st);
        }
        persist_queue(&inner, &inner.lock())?;
        let mut workers = Vec::with_capacity(inner.cfg.workers.max(1));
        for w in 0..inner.cfg.workers.max(1) {
            workers.push(spawn_worker(&inner, w));
        }
        let monitor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("sweepd-monitor".to_string())
                .spawn(move || monitor_loop(&inner))
                .map_err(|e| SimError::Artifact {
                    path: "sweepd-monitor".to_string(),
                    message: e.to_string(),
                })?
        };
        event::emit(
            Level::Info,
            "sim::service",
            "sweep service started",
            &[
                ("name", inner.cfg.name.as_str().into()),
                ("dir", inner.cfg.dir.display().to_string().into()),
                ("workers", (inner.cfg.workers.max(1) as u64).into()),
                ("resumed_jobs", {
                    let st = inner.lock();
                    (st.jobs.iter().filter(|j| j.live()).count() as u64).into()
                }),
            ],
        );
        Ok(SweepService {
            inner,
            workers: Mutex::new(workers),
            monitor: Some(monitor),
            server: None,
        })
    }

    /// Bind the HTTP endpoint (`127.0.0.1:0` for an ephemeral port) and
    /// register the job API on it alongside `/status` and `/metrics`.
    pub fn serve(&mut self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let inner = Arc::clone(&self.inner);
        self.inner
            .shared
            .set_handler(Some(Arc::new(move |req: &HttpRequest| route(&inner, req))));
        let server = StatusServer::start(addr, Arc::clone(&self.inner.shared))?;
        let bound = server.local_addr();
        event::emit(
            Level::Info,
            "sim::service",
            "job API listening",
            &[("addr", bound.to_string().into())],
        );
        self.server = Some(server);
        Ok(bound)
    }

    /// Route one request through the job API without a socket (tests,
    /// embedding). `None` = not a job-API path.
    pub fn route(&self, req: &HttpRequest) -> Option<HttpResponse> {
        route(&self.inner, req)
    }

    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.inner.metrics)
    }

    /// True once a drain (signal, `POST /shutdown`, or [`shutdown`])
    /// has completed and the workers stopped.
    pub fn stopped(&self) -> bool {
        self.inner.stop.load(Ordering::Acquire)
    }

    /// True once shutdown has been requested (admission is closed).
    pub fn draining(&self) -> bool {
        self.inner.drain_requested.load(Ordering::Acquire)
    }

    /// Block until every admitted job is terminal (test helper; does
    /// not stop the service).
    pub fn wait_idle(&self) {
        let mut st = self.inner.lock();
        while st.jobs.iter().any(|j| j.live()) && !self.inner.stop.load(Ordering::Acquire) {
            let (g, _) = self
                .inner
                .idle_cv
                .wait_timeout(st, Duration::from_millis(100))
                .unwrap_or_else(|p| p.into_inner());
            st = g;
        }
    }

    /// Graceful shutdown: stop admission, drain or checkpoint in-flight
    /// jobs (see module docs), persist the final queue, stop the
    /// workers, and unbind the job API. Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.drain_requested.store(true, Ordering::Release);
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
        self.inner.work_cv.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        // Break the shared→handler→inner cycle and stop routing jobs.
        self.inner.shared.set_handler(None);
        self.server = None;
        event::emit(
            Level::Info,
            "sim::service",
            "sweep service stopped",
            &[("name", self.inner.cfg.name.as_str().into())],
        );
    }
}

impl Drop for SweepService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------
// Jobspec codec
// ---------------------------------------------------------------------

/// Parse a workload label. Accepts the suite labels exactly as
/// `Workload::label` prints them (plus lowercase variants) and any SPEC
/// application name.
fn parse_workload(s: &str) -> Option<Workload> {
    Some(match s {
        "mix-high" => Workload::MixHigh,
        "mix-blend" => Workload::MixBlend,
        "spec-all" => Workload::SpecAll,
        "TPC-C" | "tpc-c" => Workload::TpcC,
        "TPC-H" | "tpc-h" => Workload::TpcH,
        "RADIX" | "radix" => Workload::Radix,
        "FFT" | "fft" => Workload::Fft,
        "canneal" => Workload::Canneal,
        s => {
            if let Some(n) = s.strip_prefix("tenant-mix-lc") {
                return n
                    .parse::<u16>()
                    .ok()
                    .map(|lc_cores| Workload::TenantMix { lc_cores });
            }
            // `AppProfile::name` is `&'static str`, recovering the
            // static name the `Workload::Spec` variant requires.
            return spec::by_name(s).map(|p| Workload::Spec(p.name));
        }
    })
}

fn parse_policy(s: &str) -> Option<PolicyKind> {
    Some(match s {
        "open" => PolicyKind::Open,
        "close" => PolicyKind::Close,
        s => {
            if let Some(n) = s.strip_prefix("minimalist-open:") {
                return n
                    .parse::<u64>()
                    .ok()
                    .map(|window_cycles| PolicyKind::MinimalistOpen { window_cycles });
            }
            let p = s.strip_prefix("predictive:")?;
            PolicyKind::Predictive(match p {
                "local" => PredictorKind::Local,
                "global" => PredictorKind::Global,
                "tournament" => PredictorKind::Tournament,
                "perfect" => PredictorKind::Perfect,
                _ => return None,
            })
        }
    })
}

fn parse_scheduler(s: &str) -> Option<SchedulerKind> {
    Some(match s {
        "fr-fcfs" => SchedulerKind::FrFcfs,
        "par-bs" => SchedulerKind::default(),
        s => {
            let cap = s.strip_prefix("par-bs:")?;
            SchedulerKind::ParBs {
                marking_cap: cap.parse().ok()?,
            }
        }
    })
}

fn as_uint(v: &JsonValue) -> Option<u64> {
    let x = v.as_f64()?;
    if x.is_finite() && x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53) {
        Some(x as u64)
    } else {
        None
    }
}

/// The slot-spec keys the codec understands; anything else is rejected
/// by name (a typo silently ignored is a config that silently ran with
/// defaults).
const SLOT_KEYS: &[&str] = &[
    "id",
    "workload",
    "ubanks",
    "channels",
    "queue_size",
    "scheduler",
    "policy",
    "warmup_cycles",
    "measure_cycles",
    "seed",
    "threads",
    "quick",
];

/// Parse one slot spec. On success returns the spec with its canonical
/// (normalized) JSON; on failure, the list of diagnostics.
fn parse_slot(index: usize, v: &JsonValue) -> Result<SlotSpec, Vec<String>> {
    let mut errs: Vec<String> = Vec::new();
    let obj = match v {
        JsonValue::Object(m) => m,
        _ => return Err(vec![format!("slot {index}: spec must be a JSON object")]),
    };
    for key in obj.keys() {
        if !SLOT_KEYS.contains(&key.as_str()) {
            errs.push(format!("unknown field {key:?} (accepted: {SLOT_KEYS:?})"));
        }
    }
    let workload = match obj.get("workload").and_then(|w| w.as_str()) {
        Some(s) => match parse_workload(s) {
            Some(w) => Some(w),
            None => {
                errs.push(format!("workload: unknown label {s:?}"));
                None
            }
        },
        None => {
            errs.push("workload: required (a suite label or SPEC app name)".to_string());
            None
        }
    };
    let Some(workload) = workload else {
        return Err(errs);
    };
    let mut cfg = SimConfig::paper_default(workload);
    if obj.get("quick").map(|q| q == &JsonValue::Bool(true)) == Some(true) {
        cfg = cfg.quick();
    }
    if let Some(u) = obj.get("ubanks") {
        let pair = u.items();
        match (
            pair.len(),
            pair.first().and_then(as_uint),
            pair.get(1).and_then(as_uint),
        ) {
            (2, Some(n_w), Some(n_b)) => {
                // Field-by-field like the fuzz harness: invalid values
                // flow to validate() for a structured report instead of
                // an assert in the builder. Interleaving follows the
                // row size only once the geometry is sane (the builder
                // would divide by n_w).
                cfg.mem.ubank = UbankConfig {
                    n_w: n_w as usize,
                    n_b: n_b as usize,
                };
                let ub = &cfg.mem.ubank;
                if ub.n_w.is_power_of_two()
                    && ub.n_w <= 16
                    && ub.n_b.is_power_of_two()
                    && ub.n_b <= 16
                {
                    cfg.mem.interleave_base = cfg.mem.max_interleave_base();
                }
            }
            _ => errs.push("ubanks: expected [n_w, n_b] (two non-negative integers)".to_string()),
        }
    }
    if let Some(c) = obj.get("channels") {
        match as_uint(c) {
            Some(n) => cfg.mem.channels = n as usize,
            None => errs.push("channels: expected a non-negative integer".to_string()),
        }
    }
    if let Some(q) = obj.get("queue_size") {
        match as_uint(q) {
            Some(n) => cfg.mem.queue_size = n as usize,
            None => errs.push("queue_size: expected a non-negative integer".to_string()),
        }
    }
    if let Some(s) = obj.get("scheduler") {
        match s.as_str().and_then(parse_scheduler) {
            Some(k) => cfg.scheduler = k,
            None => errs.push(
                "scheduler: expected \"fr-fcfs\", \"par-bs\", or \"par-bs:<cap>\"".to_string(),
            ),
        }
    }
    if let Some(p) = obj.get("policy") {
        match p.as_str().and_then(parse_policy) {
            Some(k) => cfg.policy = k,
            None => errs.push(
                "policy: expected \"open\", \"close\", \"minimalist-open:<cycles>\", or \
                 \"predictive:<local|global|tournament|perfect>\""
                    .to_string(),
            ),
        }
    }
    for (key, field) in [
        ("warmup_cycles", &mut cfg.warmup_cycles),
        ("measure_cycles", &mut cfg.measure_cycles),
        ("seed", &mut cfg.seed),
    ] {
        if let Some(v) = obj.get(key) {
            match as_uint(v) {
                Some(n) => *field = n,
                None => errs.push(format!("{key}: expected a non-negative integer")),
            }
        }
    }
    if let Some(t) = obj.get("threads") {
        match as_uint(t) {
            Some(n) => cfg.threads = Some(n as usize),
            None => errs.push("threads: expected a non-negative integer".to_string()),
        }
    }
    if let Some(id) = obj.get("id") {
        if id.as_str().is_none() {
            errs.push("id: expected a string".to_string());
        }
    }
    if !errs.is_empty() {
        return Err(errs);
    }
    // The PR 5 validation ladder: the full per-constraint report, at
    // admission, before anything is enqueued.
    if let Err(SimError::InvalidConfig { errors }) = cfg.validate() {
        for e in errors {
            for d in &e.diagnostics {
                errs.push(format!("{}: {d}", e.component));
            }
        }
        return Err(errs);
    }
    let id = obj
        .get("id")
        .and_then(|i| i.as_str())
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("slot-{index}-{}", workload.label()));
    Ok(SlotSpec {
        id,
        // Canonical rendering: the exact text persisted in the queue
        // file and re-parsed on restart, so the restart's SimConfig —
        // and therefore its config fingerprint — is reproduced exactly.
        canon: v.render(),
        cfg,
    })
}

struct JobRequest {
    name: String,
    deadline_ms: Option<u64>,
    slots: Vec<SlotSpec>,
}

/// Parse a `POST /jobs` body: either a bare array of slot specs, or an
/// object `{"name": ..., "deadline_ms": ..., "slots": [...]}`.
fn parse_job_request(body: &[u8]) -> Result<JobRequest, HttpResponse> {
    let text =
        std::str::from_utf8(body).map_err(|_| HttpResponse::text(400, "body is not UTF-8\n"))?;
    let root = json::parse(text).map_err(|off| {
        HttpResponse::json(
            400,
            format!("{{\"error\":\"body is not valid JSON (at byte {off})\"}}"),
        )
    })?;
    let (name, deadline_ms, slots_v) = match &root {
        JsonValue::Array(_) => ("job".to_string(), None, root.clone()),
        JsonValue::Object(m) => {
            for key in m.keys() {
                if !["name", "deadline_ms", "slots"].contains(&key.as_str()) {
                    return Err(HttpResponse::json(
                        400,
                        format!("{{\"error\":\"unknown job field {}\"}}", json::escape(key)),
                    ));
                }
            }
            let name = m
                .get("name")
                .and_then(|n| n.as_str())
                .unwrap_or("job")
                .to_string();
            let deadline = match m.get("deadline_ms") {
                None => None,
                Some(d) => Some(as_uint(d).ok_or_else(|| {
                    HttpResponse::json(
                        400,
                        "{\"error\":\"deadline_ms: expected a non-negative integer\"}",
                    )
                })?),
            };
            let slots = m.get("slots").cloned().ok_or_else(|| {
                HttpResponse::json(400, "{\"error\":\"missing \\\"slots\\\" array\"}")
            })?;
            (name, deadline, slots)
        }
        _ => {
            return Err(HttpResponse::json(
                400,
                "{\"error\":\"body must be a slot array or a job object\"}",
            ))
        }
    };
    let items = match &slots_v {
        JsonValue::Array(v) if !v.is_empty() => v,
        JsonValue::Array(_) => {
            return Err(HttpResponse::json(
                400,
                "{\"error\":\"a job needs at least one slot\"}",
            ))
        }
        _ => {
            return Err(HttpResponse::json(
                400,
                "{\"error\":\"\\\"slots\\\" must be an array\"}",
            ))
        }
    };
    let mut slots = Vec::with_capacity(items.len());
    let mut reject: Vec<(usize, Vec<String>)> = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match parse_slot(i, item) {
            Ok(s) => slots.push(s),
            Err(errs) => reject.push((i, errs)),
        }
    }
    if !reject.is_empty() {
        // The full per-constraint report, per slot — never enqueued.
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("error")
            .string("invalid job: one or more slots rejected");
        w.key("rejected").begin_array();
        for (i, errs) in &reject {
            w.begin_object();
            w.key("slot").uint(*i as u64);
            w.key("diagnostics").begin_array();
            for e in errs {
                w.string(e);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        return Err(HttpResponse::json(400, w.finish()));
    }
    // Duplicate slot ids would alias manifest records.
    for i in 1..slots.len() {
        if slots[..i].iter().any(|s| s.id == slots[i].id) {
            return Err(HttpResponse::json(
                400,
                format!(
                    "{{\"error\":\"duplicate slot id {}\"}}",
                    json::escape(&slots[i].id)
                ),
            ));
        }
    }
    Ok(JobRequest {
        name,
        deadline_ms,
        slots,
    })
}

// ---------------------------------------------------------------------
// Result projection
// ---------------------------------------------------------------------

/// The values a service-executed slot stores in its manifest: four
/// human-readable headline numbers followed by the 13-word golden
/// fingerprint split into exactly-representable 32-bit halves — so the
/// manifest certifies *bit-identity* with a direct `try_run`, not just
/// approximate agreement.
pub fn service_projection(r: &SimResult) -> Vec<f64> {
    let mut v = Vec::with_capacity(4 + 26);
    v.push(r.ipc);
    v.push(r.mapki);
    v.push(r.row_hit_rate);
    v.push(r.mean_read_latency);
    for word in golden_fingerprint(r) {
        v.push((word >> 32) as f64);
        v.push((word & 0xffff_ffff) as f64);
    }
    v
}

/// Recover the golden fingerprint from [`service_projection`] values.
pub fn golden_fp_from_values(values: &[f64]) -> Option<[u64; 13]> {
    let halves = values.get(4..30)?;
    let mut fp = [0u64; 13];
    for (i, pair) in halves.chunks(2).enumerate() {
        fp[i] = ((pair[0] as u64) << 32) | (pair[1] as u64);
    }
    Some(fp)
}

// ---------------------------------------------------------------------
// Durable queue
// ---------------------------------------------------------------------

fn persist_queue(inner: &ServiceInner, st: &ServiceState) -> Result<(), SimError> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("service").string(&inner.cfg.name);
    w.key("next_id").uint(st.next_id);
    w.key("jobs").begin_array();
    for job in &st.jobs {
        w.begin_object();
        w.key("id").string(&job.id);
        w.key("name").string(&job.name);
        // `running` is a volatile fact about a process that no longer
        // exists after a crash: persist it as `queued` so a restart
        // resumes it (only uncertified slots re-execute).
        let state = if job.state == JobState::Running {
            JobState::Queued
        } else {
            job.state
        };
        w.key("state").string(state.label());
        w.key("deadline_ms").uint(job.deadline_ms);
        w.key("slots").begin_array();
        for s in &job.specs {
            w.begin_object();
            w.key("id").string(&s.id);
            // Re-parse, don't re-serialize: the canonical spec text is
            // the durable source of truth for the SimConfig.
            w.key("spec");
            w.raw(&s.canon);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    sweep::write_atomic(&inner.queue_path(), w.finish())
}

/// Load the queue file into fresh state: terminal jobs keep their
/// records (for `GET /jobs/{id}`), live jobs resume with only certified
/// slots pre-filled. A malformed queue file is quarantined (same
/// contract as sweep manifests).
fn load_queue(inner: &ServiceInner) -> Result<(), SimError> {
    let path = inner.queue_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(_) => return Ok(()),
    };
    let root = match json::parse(&text) {
        Ok(r) => r,
        Err(_) => {
            let quarantined = quarantine_manifest(&path);
            event::emit(
                Level::Warn,
                "sim::service",
                "queue file is malformed; quarantined, service starts empty",
                &[
                    ("path", path.display().to_string().into()),
                    (
                        "quarantined_to",
                        quarantined
                            .map(|p| p.display().to_string())
                            .unwrap_or_else(|| "(rename failed)".into())
                            .into(),
                    ),
                ],
            );
            return Ok(());
        }
    };
    let mut st = inner.lock();
    st.next_id = root.get("next_id").and_then(as_uint).unwrap_or(1);
    for j in root.get("jobs").map(|v| v.items()).unwrap_or(&[]) {
        let (Some(id), Some(name), Some(state)) = (
            j.get("id").and_then(|v| v.as_str()),
            j.get("name").and_then(|v| v.as_str()),
            j.get("state")
                .and_then(|v| v.as_str())
                .and_then(JobState::parse),
        ) else {
            event::emit(
                Level::Warn,
                "sim::service",
                "skipping malformed job entry in queue file",
                &[("path", path.display().to_string().into())],
            );
            continue;
        };
        let mut specs = Vec::new();
        let mut broken = None;
        for (i, s) in j
            .get("slots")
            .map(|v| v.items())
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let slot_id = s.get("id").and_then(|v| v.as_str());
            let spec_v = s.get("spec");
            let parsed = spec_v.and_then(|v| parse_slot(i, v).ok());
            match (slot_id, parsed) {
                (Some(sid), Some(mut spec)) => {
                    spec.id = sid.to_string();
                    specs.push(spec);
                }
                _ => {
                    broken = Some(i);
                    break;
                }
            }
        }
        if let Some(i) = broken {
            // Specs were validated at admission; one that no longer
            // parses means the file was tampered with or the codec
            // regressed — surface it, do not guess.
            event::emit(
                Level::Warn,
                "sim::service",
                "job has an unparseable slot spec; dropping the job from the queue",
                &[("job", id.into()), ("slot_index", (i as u64).into())],
            );
            continue;
        }
        let n = specs.len();
        let mut job = Job {
            id: id.to_string(),
            name: name.to_string(),
            state,
            deadline_ms: j.get("deadline_ms").and_then(as_uint).unwrap_or(0),
            specs,
            records: vec![None; n],
            token: CancelToken::new(),
            started: None,
        };
        // Rehydrate records from the job's manifest: all of them for a
        // terminal job, only certified (ok + matching fingerprint) ones
        // for a live job being resumed.
        if let Ok(mtext) = std::fs::read_to_string(inner.manifest_path(&job.id)) {
            if let Some(prior) = parse_manifest(&mtext) {
                for (i, spec) in job.specs.iter().enumerate() {
                    let fp = config_fingerprint(&spec.cfg);
                    let hit = prior.iter().find(|r| {
                        r.id == spec.id
                            && r.config_fp == fp
                            && (job.state.terminal() || r.status == SlotStatus::Ok)
                    });
                    if let Some(r) = hit {
                        let mut rec = r.clone();
                        rec.resumed = true;
                        job.records[i] = Some(rec);
                    }
                }
            }
        }
        if job.live() {
            job.state = if job.pending() == 0 {
                // Crash landed between the last manifest write and the
                // terminal queue persist: the work is all done.
                JobState::Done
            } else {
                JobState::Queued
            };
        }
        st.jobs.push(job);
    }
    Ok(())
}

/// Queue every pending slot of every live job (start-up resume).
fn enqueue_resumable(_inner: &ServiceInner, st: &mut ServiceState) {
    let mut ready: Vec<(usize, usize)> = Vec::new();
    for (j, job) in st.jobs.iter().enumerate() {
        if !job.live() {
            continue;
        }
        for (s, rec) in job.records.iter().enumerate() {
            if rec.is_none() {
                ready.push((j, s));
            }
        }
    }
    st.ready.extend(ready);
}

// ---------------------------------------------------------------------
// Metrics + status surface
// ---------------------------------------------------------------------

const JOB_STATES: &[JobState] = &[
    JobState::Queued,
    JobState::Running,
    JobState::Done,
    JobState::Cancelled,
    JobState::TimedOut,
];

fn note_metrics(inner: &ServiceInner, st: &ServiceState) {
    let m = &inner.metrics;
    m.register(
        "microbank_service_queue_depth",
        MetricKind::Gauge,
        "Live (queued + running) jobs in the service queue",
    );
    m.register(
        "microbank_service_jobs",
        MetricKind::Gauge,
        "Jobs by lifecycle state",
    );
    let depth = st.jobs.iter().filter(|j| j.live()).count();
    m.gauge_set("microbank_service_queue_depth", &[], depth as f64);
    for state in JOB_STATES {
        let n = st.jobs.iter().filter(|j| j.state == *state).count();
        m.gauge_set(
            "microbank_service_jobs",
            &[("state", state.label())],
            n as f64,
        );
    }
}

fn publish_status(inner: &ServiceInner, st: &ServiceState) {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("service").string(&inner.cfg.name);
    w.key("draining")
        .boolean(inner.drain_requested.load(Ordering::Acquire));
    w.key("queue_depth")
        .uint(st.jobs.iter().filter(|j| j.live()).count() as u64);
    w.key("active_slots").uint(st.active as u64);
    w.key("jobs").begin_array();
    for job in &st.jobs {
        w.begin_object();
        w.key("id").string(&job.id);
        w.key("name").string(&job.name);
        w.key("state").string(job.state.label());
        w.key("slots").uint(job.specs.len() as u64);
        w.key("pending").uint(job.pending() as u64);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    inner.shared.set_status_json(w.finish());
}

// ---------------------------------------------------------------------
// HTTP routing
// ---------------------------------------------------------------------

fn route(inner: &Arc<ServiceInner>, req: &HttpRequest) -> Option<HttpResponse> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => Some(admit(inner, &req.body)),
        ("GET", "/jobs") => Some(list_jobs(inner)),
        ("POST", "/shutdown") => {
            inner.drain_requested.store(true, Ordering::Release);
            event::emit(
                Level::Info,
                "sim::service",
                "shutdown requested over HTTP; draining",
                &[],
            );
            Some(HttpResponse::json(202, "{\"state\":\"draining\"}"))
        }
        (method, path) => {
            let id = path.strip_prefix("/jobs/")?;
            if id.is_empty() || id.contains('/') {
                return None;
            }
            Some(match method {
                "GET" => job_detail(inner, id),
                "DELETE" => cancel_job(inner, id),
                _ => HttpResponse::text(405, "use GET or DELETE on /jobs/{id}\n"),
            })
        }
    }
}

fn admit(inner: &Arc<ServiceInner>, body: &[u8]) -> HttpResponse {
    if inner.drain_requested.load(Ordering::Acquire) {
        return HttpResponse::json(503, "{\"error\":\"service is draining\"}")
            .with_header("Retry-After", "10");
    }
    let request = match parse_job_request(body) {
        Ok(r) => r,
        Err(resp) => {
            inner
                .metrics
                .counter_add("microbank_service_jobs_rejected_total", &[], 1);
            return resp;
        }
    };
    let mut st = inner.lock();
    let live = st.jobs.iter().filter(|j| j.live()).count();
    if live >= inner.cfg.queue_cap {
        inner
            .metrics
            .counter_add("microbank_service_jobs_rejected_total", &[], 1);
        return HttpResponse::json(
            429,
            format!(
                "{{\"error\":\"queue full\",\"queue_depth\":{live},\"queue_cap\":{}}}",
                inner.cfg.queue_cap
            ),
        )
        .with_header("Retry-After", "1");
    }
    let id = format!("job-{}", st.next_id);
    st.next_id += 1;
    let n = request.slots.len();
    let job_idx = st.jobs.len();
    st.jobs.push(Job {
        id: id.clone(),
        name: request.name,
        state: JobState::Queued,
        deadline_ms: request.deadline_ms.unwrap_or(inner.cfg.default_deadline_ms),
        specs: request.slots,
        records: vec![None; n],
        token: CancelToken::new(),
        started: None,
    });
    // Write-ahead: the job is only admitted once it is durable. On
    // failure it is rolled back and the client gets a 500 to retry.
    if let Err(e) = persist_queue(inner, &st) {
        st.jobs.pop();
        return HttpResponse::json(
            500,
            format!(
                "{{\"error\":\"could not persist queue: {}\"}}",
                json_fragment(&e.to_string())
            ),
        );
    }
    for s in 0..n {
        st.ready.push_back((job_idx, s));
    }
    inner
        .metrics
        .counter_add("microbank_service_jobs_admitted_total", &[], 1);
    note_metrics(inner, &st);
    publish_status(inner, &st);
    event::emit(
        Level::Info,
        "sim::service",
        "job admitted",
        &[("job", id.as_str().into()), ("slots", (n as u64).into())],
    );
    drop(st);
    inner.work_cv.notify_all();
    HttpResponse::json(
        202,
        format!(
            "{{\"id\":{},\"slots\":{n},\"state\":\"queued\"}}",
            json::escape(&id)
        ),
    )
}

/// Escape a string for embedding inside a JSON string literal (without
/// the surrounding quotes).
fn json_fragment(s: &str) -> String {
    let quoted = json::escape(s);
    quoted[1..quoted.len() - 1].to_string()
}

fn list_jobs(inner: &ServiceInner) -> HttpResponse {
    let st = inner.lock();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("jobs").begin_array();
    for job in &st.jobs {
        w.begin_object();
        w.key("id").string(&job.id);
        w.key("name").string(&job.name);
        w.key("state").string(job.state.label());
        w.key("slots").uint(job.specs.len() as u64);
        w.key("pending").uint(job.pending() as u64);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    HttpResponse::json(200, w.finish())
}

fn job_detail(inner: &ServiceInner, id: &str) -> HttpResponse {
    let st = inner.lock();
    let Some(job) = st.jobs.iter().find(|j| j.id == id) else {
        return HttpResponse::json(404, "{\"error\":\"no such job\"}");
    };
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("id").string(&job.id);
    w.key("name").string(&job.name);
    w.key("state").string(job.state.label());
    w.key("deadline_ms").uint(job.deadline_ms);
    w.key("slots").begin_array();
    for (spec, rec) in job.specs.iter().zip(&job.records) {
        w.begin_object();
        w.key("id").string(&spec.id);
        match rec {
            None => {
                w.key("state").string("pending");
            }
            Some(r) => {
                w.key("state").string(match r.status {
                    SlotStatus::Ok => "ok",
                    SlotStatus::Failed => "failed",
                });
                w.key("attempts").uint(u64::from(r.attempts));
                if let Some(e) = &r.error {
                    w.key("error").string(e);
                }
                w.key("values").begin_array();
                for &v in &r.values {
                    w.num(v);
                }
                w.end_array();
                if let Some(fp) = golden_fp_from_values(&r.values) {
                    w.key("golden_fp").begin_array();
                    for word in fp {
                        w.string(&format!("{word:016x}"));
                    }
                    w.end_array();
                }
            }
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    HttpResponse::json(200, w.finish())
}

fn cancel_job(inner: &Arc<ServiceInner>, id: &str) -> HttpResponse {
    let mut st = inner.lock();
    let Some(job) = st.jobs.iter_mut().find(|j| j.id == id) else {
        return HttpResponse::json(404, "{\"error\":\"no such job\"}");
    };
    if job.state.terminal() {
        return HttpResponse::json(
            409,
            format!("{{\"error\":\"job already {}\"}}", job.state.label()),
        );
    }
    job.token.cancel();
    let job_id = job.id.clone();
    // Queued slots are cancelled by their workers observing the tripped
    // token before execution; if nothing is in flight, finalize any the
    // workers will never pick up now (the ready queue still feeds them
    // to workers, which record the cancellation — this path just makes
    // DELETE on an all-queued job prompt).
    inner
        .metrics
        .counter_add("microbank_service_jobs_cancelled_total", &[], 1);
    event::emit(
        Level::Info,
        "sim::service",
        "job cancellation requested",
        &[("job", job_id.as_str().into())],
    );
    publish_status(inner, &st);
    drop(st);
    inner.work_cv.notify_all();
    HttpResponse::json(202, "{\"state\":\"cancelling\"}")
}

// ---------------------------------------------------------------------
// Worker pool + monitor
// ---------------------------------------------------------------------

fn spawn_worker(inner: &Arc<ServiceInner>, index: usize) -> JoinHandle<()> {
    let inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name(format!("sweepd-worker-{index}"))
        .spawn(move || worker_loop(&inner))
        .expect("spawn sweepd worker")
}

fn worker_loop(inner: &Arc<ServiceInner>) {
    loop {
        let task = {
            let mut st = inner.lock();
            loop {
                if inner.stop.load(Ordering::Acquire) {
                    return;
                }
                if let Some(t) = st.ready.pop_front() {
                    st.active += 1;
                    break t;
                }
                let (g, _) = inner
                    .work_cv
                    .wait_timeout(st, Duration::from_millis(200))
                    .unwrap_or_else(|p| p.into_inner());
                st = g;
            }
        };
        execute_slot(inner, task.0, task.1);
        let mut st = inner.lock();
        st.active -= 1;
        note_metrics(inner, &st);
        publish_status(inner, &st);
        drop(st);
        inner.idle_cv.notify_all();
    }
}

/// Classify an error for the retry policy: deterministic failures never
/// retry; transient classes retry with backoff.
fn retryable(e: &SimError) -> bool {
    match e {
        SimError::InvalidConfig { .. } | SimError::Cancelled { .. } => false,
        // `try_run` already rescues stalls sequentially; if one still
        // surfaces, a fresh attempt is the right recovery, as are panic
        // and artifact-I/O classes.
        SimError::ShardStall(_) | SimError::Panic { .. } | SimError::Artifact { .. } => true,
    }
}

/// Deterministic backoff jitter: FNV-1a over the slot identity and
/// attempt number, folded into [0, base). No RNG state, reproducible in
/// tests.
fn jitter_ms(job_id: &str, slot_id: &str, attempt: u32, base: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in job_id
        .bytes()
        .chain([0u8])
        .chain(slot_id.bytes())
        .chain([0u8])
        .chain(attempt.to_le_bytes())
    {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    if base == 0 {
        0
    } else {
        h % base
    }
}

/// Sleep `total` in small increments, returning early if the token
/// trips (a cancel must not wait out a backoff).
fn backoff_sleep(total: Duration, token: &CancelToken) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline {
        if token.is_tripped() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10).min(deadline - Instant::now()));
    }
}

fn execute_slot(inner: &Arc<ServiceInner>, j: usize, s: usize) {
    // Snapshot what the run needs; drop the lock before executing.
    let (cfg, token, job_id, slot_id) = {
        let mut st = inner.lock();
        let job = &mut st.jobs[j];
        if job.records[s].is_some() {
            return; // already certified (resume pre-filled it)
        }
        if job.state == JobState::Queued && !job.token.is_tripped() {
            job.state = JobState::Running;
        }
        job.started.get_or_insert_with(Instant::now);
        (
            job.specs[s].cfg.clone(),
            job.token.clone(),
            job.id.clone(),
            job.specs[s].id.clone(),
        )
    };
    // Pre-execution token check: a cancelled or expired job's queued
    // slots are finalized without running; a shutdown checkpoint leaves
    // them unrecorded for the next start.
    if let Some(kind) = token.tripped() {
        if kind == CancelKind::Shutdown {
            return;
        }
        let err = SimError::Cancelled { kind, at_cycle: 0 };
        record_slot(inner, j, s, failed_record(&slot_id, &cfg, 1, &err));
        return;
    }
    let cfg = cfg.with_cancel(token.clone());
    let mut attempts = 0u32;
    let outcome = loop {
        attempts += 1;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| try_run(&cfg)))
            .unwrap_or_else(|p| {
                Err(SimError::Panic {
                    message: panic_message(p),
                })
            });
        match result {
            Ok(r) => break Ok(r),
            Err(e) if retryable(&e) && attempts < inner.cfg.max_slot_attempts => {
                let base = inner.cfg.backoff_base_ms << (attempts - 1).min(8);
                let delay = base + jitter_ms(&job_id, &slot_id, attempts, base.max(1));
                event::emit(
                    Level::Warn,
                    "sim::service",
                    "slot failed; backing off before retry",
                    &[
                        ("job", job_id.as_str().into()),
                        ("slot", slot_id.as_str().into()),
                        ("attempt", u64::from(attempts).into()),
                        ("backoff_ms", delay.into()),
                        ("error", e.to_string().into()),
                    ],
                );
                inner
                    .metrics
                    .counter_add("microbank_service_jobs_retried_total", &[], 1);
                backoff_sleep(Duration::from_millis(delay), &token);
                if let Some(kind) = token.tripped() {
                    break Err(SimError::Cancelled { kind, at_cycle: 0 });
                }
            }
            Err(e) => break Err(e),
        }
    };
    match outcome {
        Ok(result) => {
            let rec = SlotRecord {
                id: slot_id,
                config_fp: config_fingerprint(&cfg),
                status: SlotStatus::Ok,
                attempts,
                error: None,
                values: service_projection(&result),
                resumed: false,
                secs: 0.0,
            };
            record_slot(inner, j, s, rec);
        }
        Err(SimError::Cancelled {
            kind: CancelKind::Shutdown,
            ..
        }) => {
            // Checkpoint: the run's state is discarded whole and the
            // slot stays unrecorded, so the next start re-executes
            // exactly it — never a certified one.
        }
        Err(e) => {
            record_slot(inner, j, s, failed_record(&slot_id, &cfg, attempts, &e));
        }
    }
}

fn failed_record(slot_id: &str, cfg: &SimConfig, attempts: u32, e: &SimError) -> SlotRecord {
    SlotRecord {
        id: slot_id.to_string(),
        config_fp: config_fingerprint(cfg),
        status: SlotStatus::Failed,
        attempts,
        error: Some(e.to_string()),
        values: Vec::new(),
        resumed: false,
        secs: 0.0,
    }
}

/// Commit one slot outcome: store the record, rewrite the job manifest
/// (under the lock, so concurrent completions serialize their writes in
/// commit order), and finalize the job when its last slot lands.
fn record_slot(inner: &Arc<ServiceInner>, j: usize, s: usize, rec: SlotRecord) {
    let mut st = inner.lock();
    let failed = rec.status == SlotStatus::Failed;
    st.jobs[j].records[s] = Some(rec);
    let job = &st.jobs[j];
    let manifest = render_manifest(&job.id, &job.recorded());
    let mpath = inner.manifest_path(&job.id);
    if let Err(e) = sweep::write_atomic(&mpath, manifest) {
        event::emit(
            Level::Error,
            "sim::service",
            "could not write job manifest; resume will re-execute this slot",
            &[
                ("job", job.id.as_str().into()),
                ("error", e.to_string().into()),
            ],
        );
    }
    if failed {
        event::emit(
            Level::Warn,
            "sim::service",
            "slot failed permanently",
            &[
                ("job", st.jobs[j].id.as_str().into()),
                ("slot_index", (s as u64).into()),
            ],
        );
    }
    if st.jobs[j].pending() == 0 {
        let job = &mut st.jobs[j];
        job.state = match job.token.tripped() {
            Some(CancelKind::Requested) => JobState::Cancelled,
            Some(CancelKind::Deadline) => JobState::TimedOut,
            _ => JobState::Done,
        };
        let (id, state) = (job.id.clone(), job.state);
        if let Err(e) = persist_queue(inner, &st) {
            event::emit(
                Level::Error,
                "sim::service",
                "could not persist queue after job completion",
                &[("job", id.as_str().into()), ("error", e.to_string().into())],
            );
        }
        event::emit(
            Level::Info,
            "sim::service",
            "job finished",
            &[("job", id.as_str().into()), ("state", state.label().into())],
        );
    }
    note_metrics(inner, &st);
    publish_status(inner, &st);
    drop(st);
    inner.idle_cv.notify_all();
}

/// The monitor thread: deadline enforcement, worker supervision hooks,
/// and the graceful-drain state machine. Exits once the drain completes
/// (setting `stop` for the workers).
fn monitor_loop(inner: &Arc<ServiceInner>) {
    let mut drain_started: Option<Instant> = None;
    let mut tripped_shutdown = false;
    loop {
        std::thread::sleep(Duration::from_millis(20));
        // Deadline scan: expire running jobs past their wall budget.
        {
            let st = inner.lock();
            for job in &st.jobs {
                if job.live() && job.deadline_ms > 0 && !job.token.is_tripped() {
                    if let Some(start) = job.started {
                        if start.elapsed() >= Duration::from_millis(job.deadline_ms) {
                            job.token.expire();
                            event::emit(
                                Level::Warn,
                                "sim::service",
                                "job deadline expired; cancelling its remaining slots",
                                &[
                                    ("job", job.id.as_str().into()),
                                    ("deadline_ms", job.deadline_ms.into()),
                                ],
                            );
                        }
                    }
                }
            }
        }
        if !inner.drain_requested.load(Ordering::Acquire) {
            continue;
        }
        let started = *drain_started.get_or_insert_with(|| {
            event::emit(
                Level::Info,
                "sim::service",
                "drain started; admission closed",
                &[("grace_ms", inner.cfg.drain_grace_ms.into())],
            );
            Instant::now()
        });
        let mut st = inner.lock();
        let busy = st.jobs.iter().any(|j| j.live());
        if busy
            && started.elapsed() >= Duration::from_millis(inner.cfg.drain_grace_ms)
            && !tripped_shutdown
        {
            // Grace expired: checkpoint what is still in flight. The
            // tokens trip as Shutdown, so in-flight slots abandon
            // without recording and queued ones are skipped.
            for job in st.jobs.iter().filter(|j| j.live()) {
                job.token.shutdown();
            }
            tripped_shutdown = true;
            event::emit(
                Level::Info,
                "sim::service",
                "drain grace expired; checkpointing in-flight jobs",
                &[],
            );
        }
        let drained = st.active == 0 && (!busy || (tripped_shutdown && st.ready.is_empty()));
        if !drained {
            drop(st);
            inner.work_cv.notify_all();
            continue;
        }
        // Checkpointed jobs return to Queued for the next start.
        for job in st.jobs.iter_mut() {
            if job.live() {
                job.state = JobState::Queued;
                job.started = None;
            }
        }
        if let Err(e) = persist_queue(inner, &st) {
            event::emit(
                Level::Error,
                "sim::service",
                "could not persist final queue during drain",
                &[("error", e.to_string().into())],
            );
        }
        note_metrics(inner, &st);
        publish_status(inner, &st);
        drop(st);
        inner.stop.store(true, Ordering::Release);
        inner.work_cv.notify_all();
        inner.idle_cv.notify_all();
        event::emit(Level::Info, "sim::service", "drain complete", &[]);
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_labels_round_trip() {
        for w in [
            Workload::MixHigh,
            Workload::MixBlend,
            Workload::SpecAll,
            Workload::TpcC,
            Workload::TpcH,
            Workload::Radix,
            Workload::Fft,
            Workload::Canneal,
            Workload::TenantMix { lc_cores: 4 },
            Workload::Spec("429.mcf"),
        ] {
            assert_eq!(
                parse_workload(&w.label()),
                Some(w),
                "label {:?} must parse back",
                w.label()
            );
        }
        assert_eq!(parse_workload("no-such-workload"), None);
    }

    #[test]
    fn slot_codec_is_deterministic_through_canonical_text() {
        let text = r#"{ "workload": "mix-high", "ubanks": [4, 4],
                        "channels": 2, "seed": 7, "quick": true }"#;
        let v = json::parse(text).unwrap();
        let spec = parse_slot(0, &v).expect("valid spec");
        // Restart path: re-parse the canonical text.
        let v2 = json::parse(&spec.canon).unwrap();
        let spec2 = parse_slot(0, &v2).expect("canonical text must re-parse");
        assert_eq!(spec.canon, spec2.canon, "canonicalization is idempotent");
        assert_eq!(
            config_fingerprint(&spec.cfg),
            config_fingerprint(&spec2.cfg),
            "restart reconstructs the identical config"
        );
    }

    #[test]
    fn slot_codec_rejects_unknown_fields_and_bad_values() {
        let v = json::parse(r#"{"workload":"mix-high","wormup_cycles":5}"#).unwrap();
        let errs = parse_slot(0, &v).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("wormup_cycles")),
            "typo must be named: {errs:?}"
        );
        let v = json::parse(r#"{"workload":"mix-high","channels":3,"ubanks":[3,0]}"#).unwrap();
        let errs = parse_slot(0, &v).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("channels")),
            "validation ladder report must reach the client: {errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("n_w")), "{errs:?}");
    }

    #[test]
    fn projection_round_trips_the_golden_fingerprint() {
        let fp: [u64; 13] = [
            u64::MAX,
            0,
            0xdead_beef_cafe_f00d,
            1,
            2,
            3,
            4,
            5,
            6,
            7,
            8,
            9,
            10,
        ];
        let mut values = vec![1.0, 2.0, 3.0, 4.0];
        for w in fp {
            values.push((w >> 32) as f64);
            values.push((w & 0xffff_ffff) as f64);
        }
        assert_eq!(golden_fp_from_values(&values), Some(fp));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let a = jitter_ms("job-1", "s", 1, 100);
        assert_eq!(a, jitter_ms("job-1", "s", 1, 100));
        assert!(a < 100);
        assert_ne!(
            jitter_ms("job-1", "s", 1, 1 << 60),
            jitter_ms("job-1", "s", 2, 1 << 60),
            "attempts must decorrelate"
        );
    }
}
