//! The full-system simulator: CMP ⇄ memory controllers ⇄ μbank DRAM,
//! with energy integration and the metrics every figure reports.

use crate::error::{CancelKind, ShardDiagnostics, SimError};
use microbank_core::config::MemConfig;
use microbank_core::request::{MemRequest, ReqKind};
use microbank_core::stats::DramStats;
use microbank_core::validate::{Checker, ConfigError};
use microbank_core::Cycle;
use microbank_cpu::config::CmpConfig;
use microbank_cpu::system::{CmpSystem, MemPort, SubmittedReq};
use microbank_ctrl::controller::{Completion, MemoryController};
use microbank_ctrl::policy::PolicyKind;
use microbank_ctrl::qos::{tenant_slot, QosConfig, QosStats, MAX_TENANTS};
use microbank_ctrl::scheduler::SchedulerKind;
use microbank_energy::corepower::CorePowerModel;
use microbank_energy::energy::EnergyModel;
use microbank_energy::params::EnergyParams;
use microbank_energy::power::{MemoryEnergy, PowerIntegrator};
use microbank_faults::{FaultConfig, FaultSummary};
use microbank_telemetry::span::SpanRow;
use microbank_telemetry::{
    event, mcycles_per_sec, CmdRecord, HeatCounters, Level, MetricKind, MetricsRegistry,
    SpanTracer, TelemetryConfig, Timeline,
};
use microbank_workloads::suite::{build_sources, Workload};
use serde::Serialize;
use std::collections::BinaryHeap;

/// One simulation run's configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub mem: MemConfig,
    pub cmp: CmpConfig,
    pub scheduler: SchedulerKind,
    pub policy: PolicyKind,
    pub workload: Workload,
    /// Cycles before measurement starts (cache/predictor warmup).
    pub warmup_cycles: Cycle,
    /// Measured window length.
    pub measure_cycles: Cycle,
    pub seed: u64,
    /// Tick controllers every N CPU cycles. 2 matches the TSI command-bus
    /// slot (1 ns), so no command-issue opportunity is ever skipped.
    pub ctrl_stride: Cycle,
    /// When set, the run collects an epoch time-series, per-μbank heat
    /// counters, and a bounded command trace (see [`run_instrumented`]).
    /// `None` (the default) keeps every hot-path hook to a single branch.
    pub telemetry: Option<TelemetryConfig>,
    /// When set, the reliability subsystem is armed: fault injection, ECC,
    /// patrol scrubbing, and graceful degradation (crate
    /// `microbank-faults`). `None` (the default) keeps the golden path
    /// bit-identical to a build without the subsystem.
    pub faults: Option<FaultConfig>,
    /// When set, the multi-tenant QoS subsystem is armed: per-tenant
    /// token-bucket bandwidth regulation (channel or μbank granularity),
    /// the tenant-priority scheduler axis, and per-tenant accounting
    /// (latency histograms, bandwidth shares, throttle/reclaim counters,
    /// epoch columns). `None` (the default) keeps runs bit-identical to a
    /// build without the subsystem — the same Option pattern as `faults`.
    pub qos: Option<QosConfig>,
    /// Worker threads for channel-sharded execution (see [`crate::shard`]).
    /// `None` defers to the `MICROBANK_THREADS` environment variable, then
    /// to 1. Any value ≤ 1 runs the classic single-threaded loop. Results
    /// are bit-identical for every thread count — sharding only changes
    /// wall-clock time.
    pub threads: Option<usize>,
    /// Progress deadline for the sharded drive's coordinator: if a worker
    /// seals no new slot within this many wall-clock milliseconds while
    /// the coordinator is waiting on it, the run is torn down and
    /// reported as [`crate::error::SimError::ShardStall`] (and retried
    /// sequentially by [`try_run`]). `0` disables the watchdog. The
    /// default is deliberately generous — a healthy worker seals slots in
    /// microseconds, so only a genuine deadlock or livelock can spend a
    /// minute sealing nothing.
    pub watchdog_timeout_ms: u64,
    /// Fine-grained harness span tracing: the sequential drive times its
    /// controller ticks, sharded workers time their spin-waits and
    /// mailbox seals, and the coordinator its drain waits — all exported
    /// on [`RunProfile::spans`]. Off (the default), a run only records
    /// the coarse setup/drive/artifact phases. Spans observe wall time
    /// but never feed back into the simulated machine, so results are
    /// bit-identical with tracing on or off.
    pub spans: bool,
    /// Event-driven time skipping: when on (the default), the sequential
    /// drive advances `now` in jumps to the earliest component wake time
    /// (controller `next_event` horizons, CPU/NoC horizon, pending fill
    /// deliveries) instead of ticking through provably-quiet cycles, and
    /// both drive loops sleep controllers on their busy-horizon instead of
    /// only when fully idle. `None` defers to the `MICROBANK_NO_SKIP`
    /// environment variable (set non-`0` to force the per-cycle reference
    /// path). Results are bit-identical either way — skipping only changes
    /// wall-clock time (DESIGN §5f).
    pub time_skip: Option<bool>,
    /// Cooperative cancellation: when set, both drive loops poll the
    /// token every [`CANCEL_CHECK_CYCLES`] simulated cycles and abandon
    /// the run with [`SimError::Cancelled`] once it trips. Sound under
    /// the event-driven time-skip core: cancellation only ever shortens a
    /// run whose state is then discarded whole — it can never alter a
    /// result that is reported (DESIGN.md §5i). `None` (the default)
    /// keeps the hot path to a single branch, and the field is masked
    /// out of sweep/service fingerprints like `threads`.
    pub cancel: Option<CancelToken>,
    /// Test hook: make shard worker 0 stop sealing slots at this stride
    /// slot, simulating a wedged worker so the watchdog path can be
    /// exercised deterministically. Never set outside tests.
    #[doc(hidden)]
    pub test_stall_shard: Option<u64>,
}

/// How often (simulated cycles) the drive loops poll an armed
/// [`CancelToken`]. Epoch-boundary scale: coarse enough to stay off the
/// hot path, fine enough that a cancelled or deadline-expired job stops
/// within milliseconds of wall time.
pub const CANCEL_CHECK_CYCLES: Cycle = 16_384;

/// A shared cancellation flag for cooperative run teardown. Cloning
/// shares the underlying flag (it is an `Arc`), so a service can hand the
/// same token to every slot of a job and trip them all at once. The first
/// cause to trip wins: a deadline firing after an explicit cancel must
/// not relabel the outcome.
#[derive(Clone, Default)]
pub struct CancelToken(std::sync::Arc<std::sync::atomic::AtomicU8>);

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the token as an explicit cancellation request.
    pub fn cancel(&self) {
        self.trip(1);
    }

    /// Trip the token as a wall-clock deadline expiry.
    pub fn expire(&self) {
        self.trip(2);
    }

    /// Trip the token because the executing service is shutting down
    /// (the run is checkpointed, not failed).
    pub fn shutdown(&self) {
        self.trip(3);
    }

    fn trip(&self, cause: u8) {
        use std::sync::atomic::Ordering;
        let _ = self
            .0
            .compare_exchange(0, cause, Ordering::AcqRel, Ordering::Acquire);
    }

    /// The cause the token tripped with, if any.
    pub fn tripped(&self) -> Option<CancelKind> {
        match self.0.load(std::sync::atomic::Ordering::Acquire) {
            0 => None,
            1 => Some(CancelKind::Requested),
            2 => Some(CancelKind::Deadline),
            _ => Some(CancelKind::Shutdown),
        }
    }

    pub fn is_tripped(&self) -> bool {
        self.tripped().is_some()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.tripped() {
            None => write!(f, "CancelToken(live)"),
            Some(k) => write!(f, "CancelToken({})", k.label()),
        }
    }
}

impl SimConfig {
    /// Paper defaults: LPDDR-TSI, PAR-BS, open page, 64 cores.
    pub fn paper_default(workload: Workload) -> Self {
        SimConfig {
            mem: MemConfig::lpddr_tsi(),
            cmp: CmpConfig::paper(),
            scheduler: SchedulerKind::default(),
            policy: PolicyKind::Open,
            workload,
            warmup_cycles: 100_000,
            measure_cycles: 400_000,
            seed: 0xC0FFEE,
            ctrl_stride: 2,
            telemetry: None,
            faults: None,
            qos: None,
            threads: None,
            watchdog_timeout_ms: 60_000,
            spans: false,
            time_skip: None,
            cancel: None,
            test_stall_shard: None,
        }
    }

    /// Single-channel variant used for single-threaded SPEC runs (§VI-A:
    /// "we populated only one memory controller … to stress the main
    /// memory bandwidth").
    pub fn spec_single_channel(workload: Workload) -> Self {
        let mut c = Self::paper_default(workload);
        c.mem = c.mem.with_channels(1);
        c
    }

    /// Shrink the run for fast tests.
    pub fn quick(mut self) -> Self {
        self.warmup_cycles = 20_000;
        self.measure_cycles = 60_000;
        self
    }

    /// Enable telemetry collection with the given configuration.
    pub fn with_telemetry(mut self, tc: TelemetryConfig) -> Self {
        self.telemetry = Some(tc);
        self
    }

    /// Arm the reliability subsystem with the given fault configuration.
    pub fn with_faults(mut self, fc: FaultConfig) -> Self {
        self.faults = Some(fc);
        self
    }

    /// Arm the multi-tenant QoS subsystem with the given configuration.
    pub fn with_qos(mut self, qc: QosConfig) -> Self {
        self.qos = Some(qc);
        self
    }

    /// Number of tenant rows/columns a QoS-armed run reports: the larger
    /// of the workload's tenant count and the configured policy table,
    /// clamped to [`MAX_TENANTS`]; 0 when QoS is off.
    pub fn qos_tenants(&self) -> usize {
        match &self.qos {
            None => 0,
            Some(qc) => qc
                .tenants
                .len()
                .max(self.workload.num_tenants())
                .clamp(1, MAX_TENANTS),
        }
    }

    /// Pin the worker-thread count for this run (overrides the
    /// `MICROBANK_THREADS` environment variable).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Set the sharded drive's progress deadline (0 disables it).
    pub fn with_watchdog_timeout_ms(mut self, ms: u64) -> Self {
        self.watchdog_timeout_ms = ms;
        self
    }

    /// Enable fine-grained harness span tracing (see [`SimConfig::spans`]).
    pub fn with_spans(mut self, on: bool) -> Self {
        self.spans = on;
        self
    }

    /// Pin event-driven time skipping on or off for this run (overrides
    /// the `MICROBANK_NO_SKIP` environment variable).
    pub fn with_time_skip(mut self, on: bool) -> Self {
        self.time_skip = Some(on);
        self
    }

    /// Arm cooperative cancellation with the given token (see
    /// [`SimConfig::cancel`]).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Resolved time-skip setting: the explicit `time_skip` field, else
    /// off when the `MICROBANK_NO_SKIP` environment variable is set
    /// non-empty and non-`0`, else on.
    pub fn effective_time_skip(&self) -> bool {
        self.time_skip.unwrap_or_else(|| {
            !std::env::var("MICROBANK_NO_SKIP").is_ok_and(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            })
        })
    }

    /// Resolved worker-thread count: the explicit `threads` field, else the
    /// `MICROBANK_THREADS` environment variable, else 1 (sequential).
    pub fn effective_threads(&self) -> usize {
        self.threads
            .or_else(|| {
                std::env::var("MICROBANK_THREADS")
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
                    .filter(|&n: &usize| n > 0)
            })
            .unwrap_or(1)
    }

    /// Top of the validation ladder: check this run end to end —
    /// [`MemConfig::validate`], [`CmpConfig::validate`], plus the
    /// sim-level invariants (stride, window arithmetic, telemetry epoch,
    /// workload resolvability) — and report *every* problem at once.
    /// [`try_run`] calls this before constructing any state.
    pub fn validate(&self) -> Result<(), SimError> {
        let mut errors: Vec<ConfigError> = Vec::new();
        if let Err(e) = self.mem.validate() {
            errors.push(e);
        }
        if let Err(e) = self.cmp.validate() {
            errors.push(e);
        }
        let mut c = Checker::new();
        c.check(self.ctrl_stride >= 1, || {
            format!(
                "ctrl_stride = {}: controllers must tick at least every cycle",
                self.ctrl_stride
            )
        });
        c.check(self.measure_cycles >= 1, || {
            format!(
                "measure_cycles = {}: the measurement window must be non-empty",
                self.measure_cycles
            )
        });
        c.check(
            self.warmup_cycles
                .checked_add(self.measure_cycles)
                .is_some(),
            || {
                format!(
                    "warmup_cycles + measure_cycles overflows u64 ({} + {})",
                    self.warmup_cycles, self.measure_cycles
                )
            },
        );
        if let Some(tc) = self.telemetry {
            c.check(tc.epoch_cycles >= 1, || {
                "telemetry.epoch_cycles = 0: an epoch must span at least one cycle".to_string()
            });
        }
        if let Workload::Spec(name) = self.workload {
            c.check(microbank_workloads::spec::by_name(name).is_some(), || {
                format!("workload: unknown SPEC app {name:?}")
            });
        }
        if let Err(e) = c.finish("SimConfig") {
            errors.push(e);
        }
        if let Some(qc) = &self.qos {
            if let Err(e) = qc.validate() {
                errors.push(e);
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(SimError::InvalidConfig { errors })
        }
    }
}

/// Wall-clock self-profile of one run: how long the *simulator* spent in
/// each phase, and its simulated-cycles-per-second throughput. The coarse
/// phases (setup/warmup/measure/artifact) are tracked on every run — a
/// handful of `Instant::now` calls — so harness slowdowns show up in
/// result artifacts, not just simulated slowdowns. With
/// [`SimConfig::spans`] the span tree additionally carries the measured
/// coordinator/worker (sharded) or controller-tick (sequential)
/// breakdown.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RunProfile {
    pub setup_secs: f64,
    pub warmup_secs: f64,
    pub measure_secs: f64,
    pub total_secs: f64,
    /// Simulated megacycles per wall-second over the cycle loop.
    pub sim_mcycles_per_sec: f64,
    /// Flattened harness span tree (depth-first). Always contains the
    /// coarse phases; with [`SimConfig::spans`] also the fine-grained
    /// breakdown. Export via `microbank_telemetry::span::rows_to_json`
    /// or merge into a Chrome trace with
    /// `microbank_telemetry::trace::to_chrome_json_with_spans`.
    pub spans: Vec<SpanRow>,
}

/// Telemetry collected by an instrumented run, all restricted to the
/// measurement window (heat counters inherited from warmup are subtracted
/// at the boundary, with open rows attributed to the window — the same
/// convention as [`SimResult::dram`]).
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Epoch time-series over the whole run (warmup included; the cycle
    /// column is absolute, so the warmup boundary is visible in the data).
    pub timeline: Timeline,
    /// Per-channel μbank heat counters over the measurement window.
    pub heat: Vec<HeatCounters>,
    /// Command trace merged across channels, chronological. Bounded by the
    /// configured ring capacity per channel: the *latest* records survive.
    pub trace: Vec<CmdRecord>,
    /// Commands offered to the trace rings (before overwrite).
    pub trace_pushed: u64,
    /// Commands overwritten by ring wrap-around.
    pub trace_dropped: u64,
}

impl TelemetryReport {
    /// Heat counters summed over channels (shapes match by construction:
    /// all channels share one `MemConfig`).
    pub fn merged_heat(&self) -> HeatCounters {
        let mut it = self.heat.iter();
        let mut acc = it.next().expect("at least one channel").clone();
        for h in it {
            acc.merge(h);
        }
        acc
    }
}

/// Why a run executed on the classic single-threaded loop instead of the
/// channel-sharded drive. Surfaced on [`SimResult::drive`] so a harness
/// (or a confused user) can see *why* a run that asked for threads did
/// not shard, without reverse-engineering the dispatch rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SequentialReason {
    /// Effective thread count ≤ 1 (the default).
    SingleThread,
    /// The sharded drive's correctness precondition
    /// `noc_latency ≥ ctrl_stride` does not hold for this config, so the
    /// dispatcher refused to shard it.
    NocBelowStride,
    /// A sharded attempt stalled and the watchdog tore it down; this
    /// result came from the automatic slow-but-correct sequential retry.
    WatchdogRetry,
}

/// Which drive loop produced a [`SimResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DriveMode {
    Sequential { reason: SequentialReason },
    Sharded { workers: usize },
}

/// Per-tenant outcome of a QoS-armed run (measurement window unless noted).
#[derive(Debug, Clone, Serialize)]
pub struct TenantMetrics {
    /// Tenant slot (0 = latency-critical by `TenantMix` convention).
    pub tenant: u8,
    /// Read completions attributed to this tenant over the window.
    pub reads: u64,
    /// Column (data-burst) commands served for this tenant over the window.
    pub cols: u64,
    /// This tenant's fraction of all column commands in the window — its
    /// realized bandwidth share.
    pub share: f64,
    pub mean_lat: f64,
    pub p50_lat: f64,
    pub p95_lat: f64,
    pub p99_lat: f64,
    /// Scheduling slots denied by an empty token bucket (whole run).
    pub throttled: u64,
    /// Over-budget issues admitted by work-conserving reclaim (whole run).
    pub reclaimed: u64,
}

/// The QoS subsystem's run report: one row per tenant plus regulator
/// totals. Present on [`SimResult::qos`] iff the run was QoS-armed.
#[derive(Debug, Clone, Serialize)]
pub struct QosReport {
    pub tenants: Vec<TenantMetrics>,
    /// Total throttle events across tenants and channels (whole run).
    pub throttled: u64,
    /// Total work-conserving reclaims across tenants and channels.
    pub reclaimed: u64,
}

/// Measured outcome of one run (all values over the measurement window).
#[derive(Debug, Clone, Serialize)]
pub struct SimResult {
    pub label: String,
    pub cycles: Cycle,
    pub committed: u64,
    /// System IPC (sum over cores).
    pub ipc: f64,
    pub dram: DramStats,
    pub mem_energy: MemoryEnergy,
    pub core_energy_nj: f64,
    /// DRAM main-memory accesses per kilo-instruction (measured MAPKI).
    pub mapki: f64,
    pub row_hit_rate: f64,
    /// Page-policy speculative-decision hit rate (Fig. 13).
    pub policy_hit_rate: f64,
    pub mean_queue_occupancy: f64,
    /// Mean main-memory read latency in cycles (enqueue → data).
    pub mean_read_latency: f64,
    /// Full read-latency distribution (log buckets; p50/p95/p99 available
    /// via [`microbank_core::hist::Histogram::percentile`]).
    pub read_latency_hist: microbank_core::hist::Histogram,
    /// Per-core committed-instruction counts over the window (fairness:
    /// PAR-BS exists to bound the slowdown of individual threads).
    pub per_core_committed: Vec<u64>,
    /// Simulator self-profile (wall-clock per phase, Mcycles/s).
    pub profile: RunProfile,
    /// Reliability counters summed over channels, whole run (errors do not
    /// reset at the warmup boundary — retirement state is cumulative).
    /// `None` when the reliability subsystem is disabled.
    pub reliability: Option<FaultSummary>,
    /// Per-tenant QoS accounting; `None` when the QoS subsystem is
    /// disabled.
    pub qos: Option<QosReport>,
    /// Which drive loop executed this run, and — when sequential — why.
    pub drive: DriveMode,
}

impl SimResult {
    pub fn total_energy_nj(&self) -> f64 {
        self.core_energy_nj + self.mem_energy.total_nj()
    }

    /// Work-normalized energy-delay product: with a fixed-cycle window the
    /// completed work differs between runs, so EDP for the paper's
    /// fixed-work comparisons is `E/I × T/I` (energy and time per
    /// instruction). Ratios of this quantity equal ratios of fixed-work
    /// EDP.
    pub fn edp_per_work(&self) -> f64 {
        let i = self.committed.max(1) as f64;
        let seconds = self.cycles as f64 * 0.5e-9;
        (self.total_energy_nj() * 1e-9 / i) * (seconds / i)
    }

    /// Relative 1/EDP against a baseline (>1 = better, paper convention).
    pub fn inverse_edp_vs(&self, base: &SimResult) -> f64 {
        base.edp_per_work() / self.edp_per_work()
    }

    /// Memory power breakdown in watts.
    pub fn memory_power_w(&self) -> microbank_energy::power::MemoryPowerW {
        self.mem_energy.to_watts(self.cycles)
    }

    /// Jain's fairness index over per-core committed instructions: 1.0 =
    /// perfectly fair, 1/N = one core got everything. PAR-BS's purpose is
    /// to keep this high under shared-memory contention.
    pub fn fairness_index(&self) -> f64 {
        let n = self.per_core_committed.len() as f64;
        if n == 0.0 {
            return 1.0;
        }
        let sum: f64 = self.per_core_committed.iter().map(|&c| c as f64).sum();
        let sum_sq: f64 = self
            .per_core_committed
            .iter()
            .map(|&c| (c as f64).powi(2))
            .sum();
        if sum_sq == 0.0 {
            1.0
        } else {
            sum * sum / (n * sum_sq)
        }
    }

    /// Processor power in watts.
    pub fn processor_power_w(&self) -> f64 {
        let seconds = self.cycles as f64 * 0.5e-9;
        if seconds == 0.0 {
            0.0
        } else {
            self.core_energy_nj * 1e-9 / seconds
        }
    }

    /// Export this run's headline counters into a [`MetricsRegistry`]
    /// (for `/metrics` scraping during sweeps). `extra_labels` is merged
    /// into every series alongside the workload label. Counters add (a
    /// sweep accumulates), gauges overwrite, and the read-latency
    /// histogram bulk-feeds its power-of-two cycle buckets.
    pub fn record_metrics(&self, reg: &MetricsRegistry, extra_labels: &[(&str, &str)]) {
        let mut labels: Vec<(&str, &str)> = vec![("workload", &self.label)];
        labels.extend_from_slice(extra_labels);
        reg.register(
            "microbank_sim_cycles_total",
            MetricKind::Counter,
            "Simulated CPU cycles (warmup + measure)",
        );
        reg.counter_add("microbank_sim_cycles_total", &labels, self.cycles);
        reg.register(
            "microbank_sim_committed_instructions_total",
            MetricKind::Counter,
            "Instructions committed over the measured window",
        );
        reg.counter_add(
            "microbank_sim_committed_instructions_total",
            &labels,
            self.committed,
        );
        reg.register(
            "microbank_dram_commands_total",
            MetricKind::Counter,
            "DRAM commands issued over the measured window, by kind",
        );
        for (cmd, n) in [
            ("act", self.dram.activates),
            ("pre", self.dram.precharges),
            ("rd", self.dram.reads),
            ("wr", self.dram.writes),
            ("ref", self.dram.refreshes),
            ("scrub", self.dram.scrubs),
        ] {
            let mut l = labels.clone();
            l.push(("cmd", cmd));
            reg.counter_add("microbank_dram_commands_total", &l, n);
        }
        reg.register(
            "microbank_sim_ipc",
            MetricKind::Gauge,
            "System IPC (sum over cores) of the latest run",
        );
        reg.gauge_set("microbank_sim_ipc", &labels, self.ipc);
        reg.register(
            "microbank_sim_row_hit_rate",
            MetricKind::Gauge,
            "Row-buffer hit rate of the latest run",
        );
        reg.gauge_set("microbank_sim_row_hit_rate", &labels, self.row_hit_rate);
        reg.register(
            "microbank_sim_mem_power_watts",
            MetricKind::Gauge,
            "Total memory power of the latest run",
        );
        reg.gauge_set(
            "microbank_sim_mem_power_watts",
            &labels,
            self.memory_power_w().total_w(),
        );
        // Read-latency distribution: the simulator already aggregates into
        // power-of-two cycle buckets, so feed each bucket's upper bound in
        // bulk rather than replaying every request. The exposition bounds
        // mirror the Histogram's full 64-bucket range so tail latencies
        // never collapse into +Inf and `/metrics` percentiles agree with
        // `SimResult::read_latency_hist`.
        use microbank_core::hist::Histogram;
        let bounds: Vec<f64> = (0..Histogram::NUM_BUCKETS)
            .map(|i| Histogram::bucket_high(i) as f64)
            .collect();
        reg.register_histogram(
            "microbank_sim_read_latency_cycles",
            "Main-memory read latency (enqueue to data), CPU cycles",
            &bounds,
        );
        for (bound, n) in self.read_latency_hist.nonzero_buckets() {
            reg.observe_n(
                "microbank_sim_read_latency_cycles",
                &labels,
                bound as f64,
                n,
            );
        }
        if let Some(f) = &self.reliability {
            reg.register(
                "microbank_reliability_events_total",
                MetricKind::Counter,
                "Reliability-subsystem event counts, by kind",
            );
            for (kind, n) in [
                ("reads_checked", f.reads_checked),
                ("scrub_checks", f.scrub_checks),
                ("corrected", f.corrected),
                ("corrected_hard", f.corrected_hard),
                ("detected", f.detected),
                ("miscorrected", f.miscorrected),
                ("retries", f.retries),
                ("retired_rows", f.retired_rows),
                ("retired_ubanks", f.retired_ubanks),
                ("retire_refused", f.retire_refused),
            ] {
                let mut l = labels.clone();
                l.push(("kind", kind));
                reg.counter_add("microbank_reliability_events_total", &l, n);
            }
        }
        if let Some(q) = &self.qos {
            reg.register(
                "microbank_qos_tenant_columns_total",
                MetricKind::Counter,
                "Column commands served per tenant over the measured window",
            );
            reg.register(
                "microbank_qos_tenant_reads_total",
                MetricKind::Counter,
                "Read completions per tenant over the measured window",
            );
            reg.register(
                "microbank_qos_events_total",
                MetricKind::Counter,
                "QoS regulator events (throttle / reclaim), by tenant",
            );
            reg.register(
                "microbank_qos_tenant_read_latency_p99_cycles",
                MetricKind::Gauge,
                "Per-tenant p99 main-memory read latency of the latest run",
            );
            reg.register(
                "microbank_qos_tenant_bandwidth_share",
                MetricKind::Gauge,
                "Per-tenant realized bandwidth share of the latest run",
            );
            for t in &q.tenants {
                let tn = t.tenant.to_string();
                let mut l = labels.clone();
                l.push(("tenant", &tn));
                reg.counter_add("microbank_qos_tenant_columns_total", &l, t.cols);
                reg.counter_add("microbank_qos_tenant_reads_total", &l, t.reads);
                reg.gauge_set(
                    "microbank_qos_tenant_read_latency_p99_cycles",
                    &l,
                    t.p99_lat,
                );
                reg.gauge_set("microbank_qos_tenant_bandwidth_share", &l, t.share);
                for (kind, n) in [("throttled", t.throttled), ("reclaimed", t.reclaimed)] {
                    let mut le = l.clone();
                    le.push(("kind", kind));
                    reg.counter_add("microbank_qos_events_total", &le, n);
                }
            }
        }
    }
}

/// Enqueue-time store for latency accounting. Request ids come from one
/// monotone counter, so instead of hashing each id into a map, slot `id`
/// lives at `id - base` in a dense ring. Backlogged requests can enqueue
/// out of order (they keep their id across retries), so `base` advances
/// only past slots whose request has *completed* — an empty slot may still
/// be claimed later.
pub(crate) struct EnqueueSlab {
    base: u64,
    slots: std::collections::VecDeque<Cycle>,
}

/// Slot never filled (id not yet enqueued, or a request class the caller
/// doesn't track).
const SLOT_EMPTY: Cycle = Cycle::MAX;
/// Slot filled and consumed; safe for `base` to advance past.
const SLOT_CONSUMED: Cycle = Cycle::MAX - 1;

impl EnqueueSlab {
    pub(crate) fn new() -> Self {
        EnqueueSlab {
            base: 0,
            slots: std::collections::VecDeque::new(),
        }
    }

    pub(crate) fn insert(&mut self, id: u64, at: Cycle) {
        debug_assert!(at < SLOT_CONSUMED);
        if self.slots.is_empty() {
            self.base = id;
        }
        debug_assert!(id >= self.base, "slab advanced past a live id");
        let Some(idx) = id.checked_sub(self.base) else {
            return;
        };
        if idx as usize >= self.slots.len() {
            self.slots.resize(idx as usize + 1, SLOT_EMPTY);
        }
        self.slots[idx as usize] = at;
    }

    /// Consume `id`'s recorded cycle (None if never inserted).
    pub(crate) fn remove(&mut self, id: u64) -> Option<Cycle> {
        let idx = id.checked_sub(self.base)? as usize;
        let slot = self.slots.get_mut(idx)?;
        let out = (*slot < SLOT_CONSUMED).then_some(*slot);
        *slot = SLOT_CONSUMED;
        while self.slots.front() == Some(&SLOT_CONSUMED) {
            self.slots.pop_front();
            self.base += 1;
        }
        out
    }
}

#[derive(PartialEq, Eq)]
pub(crate) struct Delivery {
    pub(crate) at: Cycle,
    pub(crate) id: u64,
}

impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap via reversed comparison.
        other.at.cmp(&self.at).then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Run one simulation to completion. Honors `cfg.telemetry` for hook
/// enablement but discards the collected report; use [`run_instrumented`]
/// to keep it.
///
/// This is a thin panicking wrapper over [`try_run`]: an invalid
/// configuration or an unrecovered error panics with the formatted
/// [`SimError`]. Harnesses that want to match on the failure should call
/// [`try_run`] directly.
pub fn run(cfg: &SimConfig) -> SimResult {
    match try_run_full(cfg) {
        Ok((result, _)) => result,
        Err(e) => panic!("{e}"),
    }
}

/// Run with telemetry collection forced on (using `cfg.telemetry` if set,
/// the default [`TelemetryConfig`] otherwise) and return the report.
/// Panicking wrapper like [`run`].
pub fn run_instrumented(cfg: &SimConfig) -> (SimResult, TelemetryReport) {
    let mut cfg = cfg.clone();
    if cfg.telemetry.is_none() {
        cfg.telemetry = Some(TelemetryConfig::default());
    }
    match try_run_full(&cfg) {
        Ok((result, report)) => (result, report.expect("telemetry was enabled")),
        Err(e) => panic!("{e}"),
    }
}

/// The canonical fallible entry point: validate `cfg`, then run it. If
/// the sharded drive's watchdog declares a worker stalled, the stall is
/// reported to stderr and the run is retried once on the sequential loop
/// (`SimResult::drive` reports `WatchdogRetry`), so a sharding bug
/// degrades to slow-but-correct instead of a hung or dead process.
pub fn try_run(cfg: &SimConfig) -> Result<SimResult, SimError> {
    try_run_full(cfg).map(|(result, _)| result)
}

/// Like [`try_run`], but without the sequential retry: a watchdog-detected
/// stall surfaces as [`SimError::ShardStall`] with the captured
/// dispatcher diagnostics. Use when the caller wants to *see* stalls
/// (tests, bisection harnesses) rather than survive them.
pub fn try_run_once(cfg: &SimConfig) -> Result<SimResult, SimError> {
    cfg.validate()?;
    run_attempt(cfg, None)
        .map(|(result, _)| result)
        .map_err(RunAbort::into_sim_error)
}

/// Why one drive attempt was abandoned before completing its window.
/// Internal to the dispatch/retry logic: `try_run_full` converts stalls
/// into a sequential retry and cancellations into
/// [`SimError::Cancelled`].
pub(crate) enum RunAbort {
    /// The sharded coordinator's watchdog declared a worker stalled.
    Stall(Box<ShardDiagnostics>),
    /// The run's [`CancelToken`] tripped.
    Cancelled { kind: CancelKind, at_cycle: Cycle },
}

impl RunAbort {
    fn into_sim_error(self) -> SimError {
        match self {
            RunAbort::Stall(diag) => SimError::ShardStall(diag),
            RunAbort::Cancelled { kind, at_cycle } => SimError::Cancelled { kind, at_cycle },
        }
    }
}

/// Shared implementation: validation, the sharded attempt, and the
/// sequential rescue retry.
fn try_run_full(cfg: &SimConfig) -> Result<(SimResult, Option<TelemetryReport>), SimError> {
    cfg.validate()?;
    match run_attempt(cfg, None) {
        Ok(out) => Ok(out),
        Err(abort @ RunAbort::Cancelled { .. }) => Err(abort.into_sim_error()),
        Err(RunAbort::Stall(diag)) => {
            event::emit(
                Level::Warn,
                "sim::shard",
                "sharded drive stalled; retrying on the sequential loop",
                &[
                    ("workload", cfg.workload.label().into()),
                    ("stalled_worker", diag.stalled_worker.into()),
                    ("waiting_for_slot", diag.waiting_for_slot.into()),
                    ("timeout_ms", diag.timeout_ms.into()),
                    ("diag", diag.to_string().into()),
                ],
            );
            run_attempt(cfg, Some(SequentialReason::WatchdogRetry))
                .map_err(RunAbort::into_sim_error)
        }
    }
}

/// Field-wise `end - start` over every DRAM counter.
pub(crate) fn stats_delta(end: &DramStats, start: &DramStats) -> DramStats {
    DramStats {
        activates: end.activates - start.activates,
        precharges: end.precharges - start.precharges,
        reads: end.reads - start.reads,
        writes: end.writes - start.writes,
        refreshes: end.refreshes - start.refreshes,
        scrubs: end.scrubs - start.scrubs,
        data_bus_busy: end.data_bus_busy - start.data_bus_busy,
        row_hits: end.row_hits - start.row_hits,
        row_closed: end.row_closed - start.row_closed,
        row_conflicts: end.row_conflicts - start.row_conflicts,
        powerdown_rank_cycles: end.powerdown_rank_cycles - start.powerdown_rank_cycles,
        powerdown_entries: end.powerdown_entries - start.powerdown_entries,
    }
}

pub(crate) fn merged_stats(ctrls: &[MemoryController]) -> DramStats {
    let mut d = DramStats::default();
    for c in ctrls {
        d.merge(&c.channel.stats);
    }
    d
}

/// Per-tenant served-column totals summed over controllers (all-zero when
/// QoS is not armed).
pub(crate) fn merged_tenant_cols(ctrls: &[MemoryController]) -> [u64; MAX_TENANTS] {
    let mut acc = [0u64; MAX_TENANTS];
    for c in ctrls {
        for (a, v) in acc.iter_mut().zip(c.tenant_cols()) {
            *a += v;
        }
    }
    acc
}

/// One full simulation attempt. `force_sequential` pins the drive to the
/// sequential loop with the given reason (used for the watchdog rescue
/// retry); otherwise the dispatcher picks per the config. `Err` carries
/// the watchdog's stall diagnostics — all simulation state built here is
/// dropped with it, so a retry starts from scratch.
fn run_attempt(
    cfg: &SimConfig,
    force_sequential: Option<SequentialReason>,
) -> Result<(SimResult, Option<TelemetryReport>), RunAbort> {
    let mut tracer = SpanTracer::new();
    tracer.enter("setup");
    let capacity = cfg.mem.capacity_bytes();
    let sources = build_sources(cfg.workload, cfg.cmp.cores, capacity, cfg.seed);
    let mut cmp = CmpSystem::new(cfg.cmp, sources);
    let mut ctrls: Vec<MemoryController> = (0..cfg.mem.channels)
        .map(|_| MemoryController::new(&cfg.mem, cfg.scheduler, cfg.policy, cfg.cmp.cores))
        .collect();
    if let Some(tc) = cfg.telemetry {
        for (i, c) in ctrls.iter_mut().enumerate() {
            c.enable_telemetry(i as u16, tc.trace_capacity);
        }
    }
    if let Some(fc) = &cfg.faults {
        for (i, c) in ctrls.iter_mut().enumerate() {
            c.enable_faults(fc, i);
        }
    }
    if let Some(qc) = &cfg.qos {
        for c in ctrls.iter_mut() {
            c.enable_qos(qc);
        }
    }

    let emodel = EnergyModel::new(
        EnergyParams::for_interface(cfg.mem.interface),
        cfg.mem.ubank,
    )
    .with_variant(cfg.mem.variant);
    let integrator =
        PowerIntegrator::new(emodel, cfg.mem.channels).with_ranks(cfg.mem.ranks_per_channel);

    // Epoch sampler: per-epoch counter deltas plus instantaneous queue
    // depths, sampled every `epoch_cycles` over the whole run.
    let mut timeline = cfg.telemetry.map(|tc| {
        let mut names: Vec<String> = [
            "ipc",
            "reads",
            "writes",
            "activates",
            "precharges",
            "row_hits",
            "row_conflicts",
            "refreshes",
            "scrubs",
            "queue_occupancy",
            "backlog",
            "power_w",
            "powerdown_cycles",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        if cfg.mem.channels > 1 {
            for i in 0..cfg.mem.channels {
                names.push(format!("ch{i}.queue_len"));
            }
        }
        // Per-tenant served-column columns, only when QoS is armed — a
        // QoS-off timeline stays byte-identical to the pre-QoS format.
        for t in 0..cfg.qos_tenants() {
            names.push(format!("tenant{t}.cols"));
        }
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        Timeline::new(tc.epoch_cycles, &refs)
    });
    tracer.exit(); // setup
    tracer.enter("drive");

    // Dispatch: the classic single-threaded loop, or the channel-sharded
    // drive (bit-identical by construction; see `crate::shard`). Sharding
    // requires fills to cross the NoC no faster than the controller
    // stride (true for every paper config: noc = 8, stride = 2).
    let threads = cfg.effective_threads();
    let sequential_reason = if let Some(reason) = force_sequential {
        Some(reason)
    } else if threads <= 1 {
        Some(SequentialReason::SingleThread)
    } else if cfg.cmp.noc_latency < cfg.ctrl_stride {
        Some(SequentialReason::NocBelowStride)
    } else {
        None
    };
    let (out, drive) = match sequential_reason {
        Some(reason) => (
            drive_sequential(
                cfg,
                &mut cmp,
                ctrls,
                &integrator,
                &mut timeline,
                &mut tracer,
            )?,
            DriveMode::Sequential { reason },
        ),
        None => {
            let workers = threads.min(cfg.mem.channels).max(1);
            let out = crate::shard::drive_sharded(
                cfg,
                &mut cmp,
                ctrls,
                &integrator,
                &mut timeline,
                &mut tracer,
                workers,
            )?;
            (out, DriveMode::Sharded { workers })
        }
    };
    tracer.exit(); // drive
    tracer.enter("artifact");
    let DriveOutput {
        ctrls,
        committed_at_warmup,
        per_core_at_warmup,
        dram_at_warmup,
        heat_at_warmup,
        read_latency_acc,
        read_latency_hist,
        read_lat_samples,
        tenant_hists,
        tenant_cols_at_warmup,
    } = out;

    // Gather measurement-window deltas.
    let committed = cmp.total_committed() - committed_at_warmup;
    let dram = merged_stats(&ctrls);
    let delta = stats_delta(&dram, &dram_at_warmup);

    let mem_energy = integrator.integrate(&delta, cfg.measure_cycles);
    let core_energy_nj =
        CorePowerModel::default().energy_nj(committed, cfg.measure_cycles, cfg.cmp.cores);

    let policy_hits: (u64, u64) = ctrls.iter().fold((0, 0), |(c, t), ctrl| {
        (
            c + ctrl.stats.policy_stats.correct,
            t + ctrl.stats.policy_stats.predictions,
        )
    });
    let occupancy: f64 = ctrls
        .iter()
        .map(|c| c.stats.mean_queue_occupancy())
        .sum::<f64>()
        / ctrls.len() as f64;

    let reliability = cfg.faults.as_ref().map(|_| {
        let mut s = FaultSummary::default();
        for c in &ctrls {
            if let Some(eng) = &c.faults {
                s.merge(&eng.summary);
            }
        }
        s
    });

    let qos_report = cfg.qos.as_ref().map(|_| {
        let mut stats = QosStats::default();
        for c in &ctrls {
            if let Some(q) = &c.qos {
                stats.merge(&q.stats);
            }
        }
        let cols_now = merged_tenant_cols(&ctrls);
        let nt = cfg.qos_tenants();
        let window_cols: Vec<u64> = (0..nt)
            .map(|t| cols_now[t] - tenant_cols_at_warmup[t])
            .collect();
        let total_cols: u64 = window_cols.iter().sum();
        let tenants = (0..nt)
            .map(|t| {
                let hist = &tenant_hists[t];
                let reads = hist.count();
                TenantMetrics {
                    tenant: t as u8,
                    reads,
                    cols: window_cols[t],
                    share: if total_cols == 0 {
                        0.0
                    } else {
                        window_cols[t] as f64 / total_cols as f64
                    },
                    mean_lat: if reads == 0 {
                        0.0
                    } else {
                        hist.sum() as f64 / reads as f64
                    },
                    p50_lat: hist.percentile(0.50) as f64,
                    p95_lat: hist.percentile(0.95) as f64,
                    p99_lat: hist.percentile(0.99) as f64,
                    throttled: stats.throttled[t],
                    reclaimed: stats.reclaimed[t],
                }
            })
            .collect();
        QosReport {
            tenants,
            throttled: stats.total_throttled(),
            reclaimed: stats.total_reclaimed(),
        }
    });

    let report = cfg.telemetry.map(|_| {
        let heat: Vec<HeatCounters> = ctrls
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let tel = c.channel.telemetry.as_ref().expect("telemetry enabled");
                match heat_at_warmup.get(i) {
                    Some(earlier) => tel.heat.delta_since(earlier),
                    None => tel.heat.clone(),
                }
            })
            .collect();
        let mut trace: Vec<CmdRecord> = Vec::new();
        let mut trace_pushed = 0u64;
        let mut trace_dropped = 0u64;
        for c in &ctrls {
            if let Some(t) = &c.trace {
                trace.extend(t.records());
                trace_pushed += t.total_pushed();
                trace_dropped += t.dropped();
            }
        }
        trace.sort_by_key(|r| (r.cycle, r.channel));
        TelemetryReport {
            timeline: timeline.take().expect("telemetry implies timeline"),
            heat,
            trace,
            trace_pushed,
            trace_dropped,
        }
    });

    tracer.exit(); // artifact
    let warmup_secs = tracer.seconds("warmup");
    let measure_secs = tracer.seconds("measure");
    let profile = RunProfile {
        setup_secs: tracer.seconds("setup"),
        warmup_secs,
        measure_secs,
        total_secs: tracer.total_secs(),
        sim_mcycles_per_sec: mcycles_per_sec(
            cfg.warmup_cycles + cfg.measure_cycles,
            warmup_secs + measure_secs,
        ),
        spans: tracer.rows(),
    };

    let result = SimResult {
        label: cfg.workload.label(),
        cycles: cfg.measure_cycles,
        committed,
        ipc: committed as f64 / cfg.measure_cycles as f64,
        dram: delta,
        mem_energy,
        core_energy_nj,
        mapki: if committed == 0 {
            0.0
        } else {
            1000.0 * delta.columns() as f64 / committed as f64
        },
        row_hit_rate: delta.row_hit_rate(),
        policy_hit_rate: if policy_hits.1 == 0 {
            0.0
        } else {
            policy_hits.0 as f64 / policy_hits.1 as f64
        },
        mean_queue_occupancy: occupancy,
        mean_read_latency: if read_lat_samples == 0 {
            0.0
        } else {
            read_latency_acc as f64 / read_lat_samples as f64
        },
        read_latency_hist,
        per_core_committed: (0..cfg.cmp.cores)
            .map(|i| cmp.core(i).stats.committed - per_core_at_warmup[i])
            .collect(),
        profile,
        reliability,
        qos: qos_report,
        drive,
    };
    Ok((result, report))
}

/// Everything a drive loop (sequential or sharded) produces beyond the
/// mutations it leaves in `cmp`, the returned controllers, and the epoch
/// timeline: warmup-boundary snapshots and read-latency accounting.
pub(crate) struct DriveOutput {
    pub(crate) ctrls: Vec<MemoryController>,
    pub(crate) committed_at_warmup: u64,
    pub(crate) per_core_at_warmup: Vec<u64>,
    pub(crate) dram_at_warmup: DramStats,
    pub(crate) heat_at_warmup: Vec<HeatCounters>,
    pub(crate) read_latency_acc: u64,
    pub(crate) read_latency_hist: microbank_core::hist::Histogram,
    pub(crate) read_lat_samples: u64,
    /// Per-tenant read-latency histograms (one per tenant slot the run
    /// reports; empty when QoS is off — the hook stays a single branch).
    pub(crate) tenant_hists: Vec<microbank_core::hist::Histogram>,
    /// Per-tenant served-column totals at the warmup boundary.
    pub(crate) tenant_cols_at_warmup: [u64; MAX_TENANTS],
}

/// The classic single-threaded cycle loop. The sharded drive
/// (`crate::shard`) reproduces this loop's observable behavior
/// bit-for-bit; any change here needs a matching change there.
fn drive_sequential<S: microbank_cpu::instr::InstrSource>(
    cfg: &SimConfig,
    cmp: &mut CmpSystem<S>,
    mut ctrls: Vec<MemoryController>,
    integrator: &PowerIntegrator,
    timeline: &mut Option<Timeline>,
    tracer: &mut SpanTracer,
) -> Result<DriveOutput, RunAbort> {
    let epoch_cycles = cfg.telemetry.map_or(0, |tc| tc.epoch_cycles);
    // Fine-grained accounting (cfg.spans): wall time inside the
    // controller-tick block vs the rest of the loop. Two clock reads per
    // ctrl slot when enabled, none when disabled; either way nothing
    // simulated can observe the clock.
    let fine = cfg.spans;
    let mut ctrl_ns: u64 = 0;
    let mut ctrl_ticks: u64 = 0;
    let mut epoch_stats = DramStats::default();
    let mut epoch_committed = 0u64;

    let total = cfg.warmup_cycles + cfg.measure_cycles;
    let noc = cfg.cmp.noc_latency;
    let mut deliveries: BinaryHeap<Delivery> = BinaryHeap::new();
    let mut completions: Vec<Completion> = Vec::new();
    let mut read_latency_acc: u64 = 0;
    let mut read_latency_hist = microbank_core::hist::Histogram::new();

    // Per-tenant accounting, armed only with QoS (0 tenants otherwise).
    let qos_nt = cfg.qos_tenants();
    let mut tenant_hists = vec![microbank_core::hist::Histogram::new(); qos_nt];
    let mut tenant_cols_at_warmup = [0u64; MAX_TENANTS];
    let mut epoch_tenant_cols = [0u64; MAX_TENANTS];

    // Warmup boundary snapshots.
    let mut committed_at_warmup = 0u64;
    let mut per_core_at_warmup: Vec<u64> = vec![0; cfg.cmp.cores];
    let mut dram_at_warmup = DramStats::default();
    let mut heat_at_warmup: Vec<HeatCounters> = Vec::new();

    // Enqueue-time records for latency measurement (id → enqueue cycle).
    let mut enqueue_time = EnqueueSlab::new();
    let mut read_lat_samples: u64 = 0;

    // Event-skip state: `ctrl_wake[i]` is the first cycle at which
    // controller `i`'s tick could do anything beyond stats accounting
    // (its `next_event` horizon; an accepted enqueue resets it to the
    // arrival cycle). Skipped stride slots accumulate in `ctrl_skipped`
    // and are flushed — at the then-current queue depth — before every
    // tick, before every enqueue, and at loop end, which makes the bulk
    // accounting bit-identical to per-cycle ticking (DESIGN §5f).
    let skip = cfg.effective_time_skip();
    let mut ctrl_wake: Vec<Cycle> = vec![0; ctrls.len()];
    let mut ctrl_skipped: Vec<u64> = vec![0; ctrls.len()];

    // Cooperative cancellation: poll the token on a coarse simulated-cycle
    // cadence (epoch-boundary scale, not per tick). Abandoning the loop
    // mid-window is sound because the whole partially driven state is
    // discarded with the error — nothing measured escapes.
    let cancel = cfg.cancel.as_ref();
    let mut cancel_check_at: Cycle = 0;

    tracer.enter("warmup");
    let mut now: Cycle = 0;
    while now < total {
        if let Some(token) = cancel {
            if now >= cancel_check_at {
                if let Some(kind) = token.tripped() {
                    return Err(RunAbort::Cancelled {
                        kind,
                        at_cycle: now,
                    });
                }
                cancel_check_at = now.saturating_add(CANCEL_CHECK_CYCLES);
            }
        }
        if now == cfg.warmup_cycles {
            tracer.exit(); // warmup
            tracer.enter("measure");
            committed_at_warmup = cmp.total_committed();
            for (i, c) in per_core_at_warmup.iter_mut().enumerate() {
                *c = cmp.core(i).stats.committed;
            }
            let mut d = merged_stats(&ctrls);
            // Rows still open at the boundary were activated in warmup but
            // will be precharged inside the measured window. Attribute
            // those activates to the window — on both the stats and the
            // heat side — so the window delta keeps `precharges ≤
            // activates` and the heat map reconciles with it exactly.
            for c in &ctrls {
                let open = c.channel.open_ubanks();
                d.activates -= open.len() as u64;
                if let Some(tel) = &c.channel.telemetry {
                    let mut h = tel.heat.clone();
                    for flat in open {
                        h.activates[flat] = h.activates[flat].saturating_sub(1);
                    }
                    heat_at_warmup.push(h);
                }
            }
            dram_at_warmup = d;
            tenant_cols_at_warmup = merged_tenant_cols(&ctrls);
        }
        // Controllers issue commands on their slot cadence. A controller
        // that proved itself idle sleeps until its wake cycle (or until an
        // enqueue resets it — see `TrackingRouter::submit`).
        if now.is_multiple_of(cfg.ctrl_stride) {
            let t0 = fine.then(std::time::Instant::now);
            for (i, c) in ctrls.iter_mut().enumerate() {
                if ctrl_wake[i] > now {
                    ctrl_skipped[i] += 1;
                    continue;
                }
                let pending = std::mem::take(&mut ctrl_skipped[i]);
                if pending > 0 {
                    c.account_skipped_ticks(pending);
                }
                c.tick(now);
                c.take_completions(&mut completions);
                // `None` ("might act next tick") maps to `now + 1`, a real
                // wake cycle — never a sentinel a legitimate wake value
                // could alias.
                ctrl_wake[i] = if skip {
                    c.next_event(now).unwrap_or(now + 1)
                } else {
                    now + 1
                };
            }
            for comp in completions.drain(..) {
                if comp.is_write {
                    // Consume the slot so the slab's base can advance.
                    enqueue_time.remove(comp.id);
                } else {
                    if let Some(t0) = enqueue_time.remove(comp.id) {
                        if now >= cfg.warmup_cycles {
                            // A read enqueued during warmup but completed in
                            // the window counts only its in-window portion;
                            // latency accrued before measurement began is a
                            // warmup artifact, not window behavior.
                            let t0 = t0.max(cfg.warmup_cycles);
                            let lat = comp.at.saturating_sub(t0);
                            read_latency_acc += lat;
                            read_latency_hist.record(lat);
                            read_lat_samples += 1;
                            if qos_nt > 0 {
                                let t = tenant_slot(comp.tenant).min(qos_nt - 1);
                                tenant_hists[t].record(lat);
                            }
                        }
                    }
                    deliveries.push(Delivery {
                        at: comp.at.max(now) + noc,
                        id: comp.id,
                    });
                }
            }
            if let Some(t0) = t0 {
                ctrl_ns += t0.elapsed().as_nanos() as u64;
                ctrl_ticks += 1;
            }
        }
        // Deliver due fills to the CMP.
        while deliveries.peek().is_some_and(|d| d.at <= now) {
            let d = deliveries.pop().unwrap();
            let mut router = TrackingRouter {
                ctrls: &mut ctrls,
                enqueue_time: &mut enqueue_time,
                ctrl_wake: &mut ctrl_wake,
                ctrl_skipped: &mut ctrl_skipped,
            };
            cmp.on_fill(d.id, now, &mut router);
        }
        // Advance the cores.
        let mut router = TrackingRouter {
            ctrls: &mut ctrls,
            enqueue_time: &mut enqueue_time,
            ctrl_wake: &mut ctrl_wake,
            ctrl_skipped: &mut ctrl_skipped,
        };
        cmp.tick(now, &mut router);

        // Close the epoch ending with this cycle.
        if epoch_cycles > 0 && (now + 1).is_multiple_of(epoch_cycles) {
            let agg = merged_stats(&ctrls);
            let d = stats_delta(&agg, &epoch_stats);
            epoch_stats = agg;
            let committed_now = cmp.total_committed();
            let dc = committed_now - epoch_committed;
            epoch_committed = committed_now;
            let qlens: Vec<usize> = ctrls.iter().map(|c| c.queue_len()).collect();
            let q_mean = qlens.iter().sum::<usize>() as f64 / qlens.len().max(1) as f64;
            let power_w = integrator
                .integrate(&d, epoch_cycles)
                .to_watts(epoch_cycles)
                .total_w();
            let mut row = vec![
                dc as f64 / epoch_cycles as f64,
                d.reads as f64,
                d.writes as f64,
                d.activates as f64,
                d.precharges as f64,
                d.row_hits as f64,
                d.row_conflicts as f64,
                d.refreshes as f64,
                d.scrubs as f64,
                q_mean,
                cmp.backlog_len() as f64,
                power_w,
                d.powerdown_rank_cycles as f64,
            ];
            if ctrls.len() > 1 {
                row.extend(qlens.iter().map(|&q| q as f64));
            }
            if qos_nt > 0 {
                let cols = merged_tenant_cols(&ctrls);
                for t in 0..qos_nt {
                    row.push((cols[t] - epoch_tenant_cols[t]) as f64);
                }
                epoch_tenant_cols = cols;
            }
            timeline
                .as_mut()
                .expect("epoch implies timeline")
                .push(now + 1, row);
        }

        // Event-driven time skip: jump `now` to the earliest cycle any
        // component can act. Every cycle strictly inside the jump is
        // provably quiet — the CPU horizon covers all cores and the
        // backlog, the delivery heap's top bounds fill arrivals, and each
        // skipped controller slot lands strictly before its owner's wake —
        // so replaying them is pure bulk stats accounting.
        let next = now + 1;
        now = if !skip || next >= total {
            next
        } else {
            let mut h = cmp.core_horizon(now);
            // A non-empty submit backlog does not pin the clock: only the
            // head is retried each cycle, and against a *full* queue every
            // retry inside the jump provably fails (freeing a slot takes a
            // tick, and the wake fold below lands the jump no later than
            // that controller's next executed slot). Replay the failed
            // attempts in bulk; a head facing a non-full queue succeeds on
            // the very next cycle, so no jump.
            let mut backlog_ch = usize::MAX;
            if h > next {
                if let Some(addr) = cmp.backlog_head_addr() {
                    let ch = ctrls[0].map().decode(addr).channel as usize;
                    if ctrls[ch].free_slots() == 0 {
                        backlog_ch = ch;
                    } else {
                        h = next;
                    }
                }
            }
            if h > next {
                if let Some(d) = deliveries.peek() {
                    h = h.min(d.at.max(next));
                }
                for &w in &ctrl_wake {
                    let slot = w
                        .max(next)
                        .checked_next_multiple_of(cfg.ctrl_stride)
                        .unwrap_or(Cycle::MAX);
                    h = h.min(slot);
                }
                if now < cfg.warmup_cycles {
                    h = h.min(cfg.warmup_cycles);
                }
                if epoch_cycles > 0 {
                    // Smallest c ≥ next whose epoch closes at c (the body
                    // runs the close when `(now + 1) % epoch == 0`).
                    h = h.min((next + 1).div_ceil(epoch_cycles) * epoch_cycles - 1);
                }
                h = h.min(total);
            }
            if h > next {
                cmp.account_skipped_cycles(h - next);
                if backlog_ch != usize::MAX {
                    ctrls[backlog_ch].account_rejected(h - next);
                }
                let slots = (h - 1) / cfg.ctrl_stride - (next - 1) / cfg.ctrl_stride;
                if slots > 0 {
                    for s in &mut ctrl_skipped {
                        *s += slots;
                    }
                }
            }
            h.max(next)
        };
    }
    tracer.exit(); // measure

    // Attribute the drive wall between controller ticks and everything
    // else (cores, NoC, fill delivery) under the caller's `drive` span.
    if fine {
        let drive_ns = ((tracer.seconds("warmup") + tracer.seconds("measure")) * 1e9) as u64;
        tracer.add_ns("ctrl-tick", ctrl_ns, ctrl_ticks);
        tracer.add_ns("cpu-and-noc", drive_ns.saturating_sub(ctrl_ns), 1);
    }

    // Fold any remaining skipped slots back into controller stats so
    // occupancy accounting is identical to per-cycle ticking (the queue
    // cannot have changed since the last flush point).
    for (c, &n) in ctrls.iter_mut().zip(&ctrl_skipped) {
        c.account_skipped_ticks(n);
    }

    Ok(DriveOutput {
        ctrls,
        committed_at_warmup,
        per_core_at_warmup,
        dram_at_warmup,
        heat_at_warmup,
        read_latency_acc,
        read_latency_hist,
        read_lat_samples,
        tenant_hists,
        tenant_cols_at_warmup,
    })
}

/// Compact behavior fingerprint for the golden determinism suite:
/// committed instructions, the full DRAM counter set, the read-latency
/// histogram's (count, sum), and an order-sensitive FNV checksum of
/// per-core committed counts. Every element is a function of *simulated*
/// behavior only (never wall clock), so hot-path refactors must keep it
/// bit-identical. Regenerate the committed table with the `golden_dump`
/// binary when a PR deliberately changes simulated behavior.
pub fn golden_fingerprint(r: &SimResult) -> [u64; 13] {
    let per_core = r
        .per_core_committed
        .iter()
        .fold(0xcbf29ce484222325u64, |h, &c| {
            (h ^ c).wrapping_mul(0x100000001b3)
        });
    [
        r.committed,
        r.dram.reads,
        r.dram.writes,
        r.dram.activates,
        r.dram.precharges,
        r.dram.refreshes,
        r.dram.row_hits,
        r.dram.row_conflicts,
        r.dram.row_closed,
        r.dram.data_bus_busy,
        r.read_latency_hist.count(),
        r.read_latency_hist.sum(),
        per_core,
    ]
}

/// Router that also records enqueue times for read-latency accounting and
/// wakes event-skipped controllers on arrival.
struct TrackingRouter<'a> {
    ctrls: &'a mut [MemoryController],
    enqueue_time: &'a mut EnqueueSlab,
    ctrl_wake: &'a mut [Cycle],
    ctrl_skipped: &'a mut [u64],
}

impl MemPort for TrackingRouter<'_> {
    fn submit(&mut self, req: SubmittedReq, now: Cycle) -> bool {
        let loc = self.ctrls[0].map().decode(req.addr);
        let ch = loc.channel as usize;
        let ctrl = &mut self.ctrls[ch];
        // Flush skipped-slot accounting at the pre-enqueue queue depth:
        // every slot skipped so far saw the queue as it stands right now,
        // and the enqueue below is about to change it.
        let pending = std::mem::take(&mut self.ctrl_skipped[ch]);
        if pending > 0 {
            ctrl.account_skipped_ticks(pending);
        }
        let kind = if req.is_write {
            ReqKind::Write
        } else {
            ReqKind::Read
        };
        let mut r = MemRequest::new(req.id, req.addr, kind, req.thread, now);
        r.loc = loc;
        r.tenant = req.tenant;
        let ok = ctrl.enqueue(r, now);
        if ok {
            // Writes are tracked too (and consumed at completion) so the
            // slab's base is never pinned by an id that will never arrive.
            self.enqueue_time.insert(req.id, now);
            // The arrival invalidates any previously proven horizon; the
            // wake value is the arrival cycle itself, never a sentinel.
            self.ctrl_wake[ch] = now;
        }
        ok
    }
}

/// Thread budget for a configuration sweep: the `MICROBANK_THREADS`
/// environment variable when set (and positive), else the machine's
/// available parallelism, else 4.
fn sweep_threads() -> usize {
    std::env::var("MICROBANK_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
}

pub(crate) fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "run panicked".to_string()
    }
}

/// Run many configurations concurrently, one `Result` slot per config.
/// Each slot goes through [`try_run`] (validation, watchdog, sequential
/// rescue) with a panic net on top: a run that fails reports its typed
/// [`SimError`] in its slot instead of tearing down the whole sweep — the
/// surviving slots still come back.
///
/// The thread budget ([`sweep_threads`]) is split between sweep-level
/// concurrency and per-run channel sharding: configs with `threads: None`
/// get the cores the sweep leaves idle (a 2-config study on a 16-way
/// machine shards each simulation 8 ways). Explicit `threads` settings
/// are honored untouched.
pub fn run_many_checked(cfgs: &[SimConfig]) -> Vec<Result<SimResult, SimError>> {
    let budget = sweep_threads();
    let sweep = budget.min(cfgs.len().max(1));
    let per_run = (budget / sweep).max(1);
    let mut results: Vec<Option<Result<SimResult, SimError>>> = vec![None; cfgs.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mx = parking_lot::Mutex::new(&mut results);
    std::thread::scope(|s| {
        for _ in 0..sweep {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= cfgs.len() {
                    break;
                }
                let mut cfg = cfgs[i].clone();
                if cfg.threads.is_none() {
                    cfg.threads = Some(per_run);
                }
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| try_run(&cfg)))
                    .unwrap_or_else(|p| {
                        Err(SimError::Panic {
                            message: panic_message(p),
                        })
                    });
                results_mx.lock()[i] = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker completed"))
        .collect()
}

/// Run many configurations in parallel and unwrap the results, panicking
/// with a per-slot summary if any run failed (see [`run_many_checked`]
/// for the error-tolerant variant).
pub fn run_many(cfgs: &[SimConfig]) -> Vec<SimResult> {
    let results = run_many_checked(cfgs);
    let failed: Vec<String> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| {
            r.as_ref()
                .err()
                .map(|e| format!("#{i} ({}): {e}", cfgs[i].workload.label()))
        })
        .collect();
    assert!(
        failed.is_empty(),
        "{} of {} runs failed:\n  {}",
        failed.len(),
        results.len(),
        failed.join("\n  ")
    );
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use microbank_workloads::suite::Workload;

    #[test]
    fn enqueue_slab_roundtrips_in_order() {
        let mut s = EnqueueSlab::new();
        for id in 10..20u64 {
            s.insert(id, id * 7);
        }
        for id in 10..20u64 {
            assert_eq!(s.remove(id), Some(id * 7));
            assert_eq!(s.remove(id), None, "double-remove yields nothing");
        }
        assert!(s.slots.is_empty(), "fully drained slab frees its slots");
    }

    #[test]
    fn enqueue_slab_handles_gaps_and_stragglers() {
        let mut s = EnqueueSlab::new();
        // id 7 lags (backlogged); 6 and 8 land and complete first.
        s.insert(6, 60);
        s.insert(8, 80);
        assert_eq!(s.remove(6), Some(60));
        assert_eq!(s.remove(8), Some(80));
        // Base must not advance past id 7's still-empty slot…
        s.insert(7, 70);
        assert_eq!(s.remove(7), Some(70));
        assert!(s.slots.is_empty());
        // …and never-inserted ids resolve to None.
        assert_eq!(s.remove(4), None);
        assert_eq!(s.remove(1_000), None);
    }

    #[test]
    fn quick_run_produces_sane_metrics() {
        let cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
        let r = run(&cfg);
        assert!(r.ipc > 0.05, "ipc {}", r.ipc);
        assert!(r.committed > 1000);
        assert!(r.dram.reads > 100, "{:?}", r.dram);
        assert!(r.mapki > 5.0, "mapki {}", r.mapki);
        assert!(r.mem_energy.total_nj() > 0.0);
        assert!(r.mean_read_latency > 20.0, "{}", r.mean_read_latency);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = SimConfig::spec_single_channel(Workload::Spec("450.soplex")).quick();
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.dram, b.dram);
    }

    #[test]
    fn microbanks_help_mcf() {
        let base = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
        let mut ub = base.clone();
        ub.mem = ub.mem.with_ubanks(8, 8);
        let r0 = run(&base);
        let r1 = run(&ub);
        assert!(
            r1.ipc > 1.10 * r0.ipc,
            "ubank ipc {} vs baseline {}",
            r1.ipc,
            r0.ipc
        );
    }

    #[test]
    fn nw_partitioning_cuts_act_pre_energy() {
        let base = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
        let mut ub = base.clone();
        ub.mem = ub.mem.with_ubanks(8, 2);
        let r0 = run(&base);
        let r1 = run(&ub);
        let e0 = r0.mem_energy.act_pre_nj / r0.dram.activates.max(1) as f64;
        let e1 = r1.mem_energy.act_pre_nj / r1.dram.activates.max(1) as f64;
        assert!(e1 < e0 / 6.0, "per-ACT energy {e1} vs {e0}");
    }

    #[test]
    fn run_many_matches_run() {
        let cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
        let solo = run(&cfg);
        let many = run_many(&[cfg.clone(), cfg.clone()]);
        assert_eq!(many[0].committed, solo.committed);
        assert_eq!(many[1].committed, solo.committed);
    }

    #[test]
    fn instrumented_run_reconciles_heat_with_stats() {
        let cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf"))
            .quick()
            .with_telemetry(microbank_telemetry::TelemetryConfig::new(5_000, 4096));
        let (r, rep) = run_instrumented(&cfg);
        // Heat map totals must reconcile exactly with the window stats.
        let heat = rep.merged_heat();
        assert_eq!(heat.total_activates(), r.dram.activates);
        assert_eq!(heat.total_hits(), r.dram.row_hits);
        assert_eq!(heat.total_conflicts(), r.dram.row_conflicts);
        // Epoch series: 80k cycles / 5k epoch = 16 samples, ≥6 metrics.
        assert_eq!(rep.timeline.len(), 16);
        assert!(rep.timeline.metrics().len() >= 6);
        let acts = rep.timeline.series("activates").unwrap();
        assert!(acts.iter().sum::<f64>() > 0.0);
        // Trace captured commands with coherent ordering.
        assert!(!rep.trace.is_empty());
        assert!(rep.trace.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert_eq!(rep.trace_pushed - rep.trace_dropped, rep.trace.len() as u64);
    }

    #[test]
    fn telemetry_does_not_change_results() {
        let base = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
        let plain = run(&base);
        let (instr, _) = run_instrumented(&base.clone().with_telemetry(Default::default()));
        assert_eq!(plain.committed, instr.committed);
        assert_eq!(plain.dram, instr.dram);
    }

    #[test]
    fn profile_is_populated() {
        let cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
        let r = run(&cfg);
        assert!(r.profile.total_secs > 0.0);
        assert!(r.profile.sim_mcycles_per_sec > 0.0);
        assert!(r.profile.measure_secs > 0.0);
    }

    #[test]
    fn compute_bound_workload_is_memory_insensitive() {
        let base = SimConfig::paper_default(Workload::Spec("453.povray")).quick();
        let mut ub = base.clone();
        ub.mem = ub.mem.with_ubanks(16, 16);
        let r0 = run(&base);
        let r1 = run(&ub);
        assert!(
            r0.ipc > 1.0 * 32.0 / 64.0,
            "povray should be fast: {}",
            r0.ipc
        );
        let rel = r1.ipc / r0.ipc;
        assert!((rel - 1.0).abs() < 0.05, "compute-bound moved {rel}");
    }
}
