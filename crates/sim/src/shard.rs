//! Channel-sharded parallel drive: one simulation spread across OS
//! threads by memory channel, bit-identical to the sequential loop.
//!
//! # Architecture
//!
//! The coordinating thread keeps everything that is globally ordered —
//! the CPU system (cores, caches, NoC), fill delivery, the enqueue-time
//! slab, and the epoch timeline. Each worker thread owns a disjoint set
//! of [`MemoryController`]s and ticks them on the controller stride,
//! exactly as the sequential loop would.
//!
//! Time is cut into *slots* of `ctrl_stride` cycles. The two sides run
//! one slot apart in a pipeline:
//!
//! - The coordinator processes CPU cycles `S..S+stride`, appending every
//!   enqueue *attempt* (accepted or rejected) to the owning channel's
//!   mailbox, then publishes `watermark = S+stride` — a promise that the
//!   enqueue stream for all cycles `< S+stride` is sealed.
//! - A worker may tick slot `S` once `watermark ≥ S`: it first replays
//!   the mailbox ops with `cycle < S` into its controllers (asserting
//!   each replay matches the coordinator's accept/reject decision), then
//!   ticks, then publishes its completions and bumps its `done` counter.
//! - At the end of phase `S` the coordinator waits for every worker's
//!   `done` to cover slot `S` and drains their completion mailboxes.
//!
//! # Why the result is bit-identical
//!
//! The only information the coordinator needs *before* a worker has
//! caught up is the enqueue accept/reject decision (the CPU model's
//! entire interaction with memory is `submit → bool` plus fills). The
//! coordinator mirrors per-channel queue occupancy: `+1` per accepted
//! enqueue, `-1` per drained completion. A controller removes at most
//! one request per tick, so while slot `S` is in flight the mirror can
//! only *overestimate* the queue by the removals of that one slot. If
//! the mirror says `occ < capacity` the accept is provably correct; if
//! it says full, the coordinator syncs with the owning worker through
//! slot `S` — after which the mirror is exact — and then decides. Every
//! other cross-thread quantity (read latencies, fill deliveries, epoch
//! rows, warmup snapshots) is either commutative or re-ordered behind a
//! unique total key, so the merge reproduces the sequential values
//! exactly. Fill deliveries stay complete because a completion from
//! slot `T` is delivered at `≥ T + noc_latency`, and the drive requires
//! `noc_latency ≥ ctrl_stride` (checked by the dispatcher in
//! `run_inner`).
//!
//! Warmup and epoch snapshots are taken *inside* the workers at the
//! exact replay point the sequential loop would take them: before the
//! first op or tick at a cycle `≥` the snapshot threshold. Epoch rows
//! are assembled by the coordinator once every channel's snapshot for a
//! boundary has arrived, in boundary order, so the timeline is
//! identical row for row.

use crate::error::{CancelPanic, ShardDiagnostics, ShardStallPanic};
use crate::simulator::{
    stats_delta, Delivery, DriveOutput, EnqueueSlab, RunAbort, SimConfig, CANCEL_CHECK_CYCLES,
};
use microbank_core::address::AddressMap;
use microbank_core::request::{MemRequest, ReqKind};
use microbank_core::stats::DramStats;
use microbank_core::Cycle;
use microbank_cpu::system::{CmpSystem, MemPort, SubmittedReq};
use microbank_ctrl::controller::{Completion, MemoryController};
use microbank_ctrl::qos::{tenant_slot, MAX_TENANTS};
use microbank_energy::power::PowerIntegrator;
use microbank_telemetry::{HeatCounters, SpanTracer, Timeline};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One enqueue attempt crossing from coordinator to worker. Rejected
/// attempts are shipped too: the replay must reproduce the controller's
/// `rejected` counter and the replay-divergence assert needs both sides.
pub(crate) struct EnqOp {
    pub(crate) cycle: Cycle,
    pub(crate) req: MemRequest,
    pub(crate) accepted: bool,
}

/// Per-channel epoch snapshot: the channel's cumulative counters and
/// instantaneous queue depth at an epoch boundary.
struct ChanSnap {
    channel: usize,
    boundary: Cycle,
    stats: DramStats,
    qlen: usize,
    /// Cumulative per-tenant served columns (all-zero when QoS is off).
    tenant_cols: [u64; MAX_TENANTS],
}

/// Per-channel warmup-boundary snapshot, open-row adjusted exactly like
/// the sequential loop (open rows' activates belong to the window).
struct WarmupSnap {
    channel: usize,
    stats: DramStats,
    heat: Option<HeatCounters>,
    /// Cumulative per-tenant served columns at the boundary.
    tenant_cols: [u64; MAX_TENANTS],
}

/// Mailboxes owned by one worker thread.
struct WorkerShared {
    /// `(slot_cycle, channel, completion)` batches, appended per slot.
    comps: Mutex<Vec<(Cycle, usize, Completion)>>,
    /// Cumulative count of tuples ever pushed into `comps`, stored with
    /// `Release` before the slot's `done` bump. Lets the coordinator
    /// skip locking a mailbox that has nothing new.
    comps_pushed: AtomicU64,
    snaps: Mutex<Vec<ChanSnap>>,
    warmups: Mutex<Vec<WarmupSnap>>,
    /// Slots completed (`k+1` after slot index `k`; [`DONE_FINAL`] after
    /// the trailing drain). Stored with `Release` after the slot's
    /// mailbox pushes, so a reader that observes `done ≥ k+1` and then
    /// locks a mailbox sees everything slot `k` produced.
    done: AtomicU64,
}

const DONE_FINAL: u64 = u64::MAX;

/// One channel's enqueue mailbox. `pushed` counts ops ever pushed and is
/// bumped (`Release`) after each push, so a consumer that tracks how many
/// it has taken can skip the lock when nothing new arrived — the common
/// case, since a phase's handful of submits is spread over all channels.
struct ChanMailbox {
    ops: Mutex<VecDeque<EnqOp>>,
    pushed: AtomicU64,
}

impl ChanMailbox {
    fn new() -> Self {
        ChanMailbox {
            ops: Mutex::new(VecDeque::new()),
            pushed: AtomicU64::new(0),
        }
    }

    fn push(&self, op: EnqOp) {
        self.ops.lock().push_back(op);
        self.pushed.fetch_add(1, Ordering::Release);
    }

    /// Move every available op into `into`, returning how many moved.
    /// `taken` is the consumer's cumulative take count.
    fn take_into(&self, taken: u64, into: &mut VecDeque<EnqOp>) -> u64 {
        if self.pushed.load(Ordering::Acquire) == taken {
            return 0;
        }
        let mut mb = self.ops.lock();
        let n = mb.len() as u64;
        into.append(&mut mb);
        n
    }
}

struct Shared {
    /// Spin budget for every wait in this drive (see [`spin_budget`]).
    spin: u32,
    /// Enqueue streams for all cycles `< watermark` are sealed.
    watermark: AtomicU64,
    /// Set by whichever side panics, so every spin loop can bail out.
    aborted: AtomicBool,
    /// Per-channel enqueue mailboxes, in emission (= cycle) order.
    chans: Vec<ChanMailbox>,
    workers: Vec<WorkerShared>,
}

/// Sets the abort flag if its scope unwinds, so the other side's spin
/// loops fail fast instead of hanging.
struct AbortGuard<'a>(&'a AtomicBool);

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

/// Spin up to `budget` iterations, then yield, until `cond` holds,
/// panicking if the other side aborted. The budget matters in both
/// directions: the pipeline hands off every `ctrl_stride` cycles
/// (hundreds of nanoseconds of work), so on a host with a core per
/// thread a descheduled waiter — `yield_now` costs microseconds —
/// would serialize the whole drive; on an oversubscribed host the
/// opposite holds and spinning starves the very thread being waited
/// on, so the caller passes a tiny budget there.
fn wait_until(aborted: &AtomicBool, budget: u32, what: &str, cond: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !cond() {
        if aborted.load(Ordering::Acquire) {
            panic!("sharded drive aborted while waiting for {what}");
        }
        spins = spins.wrapping_add(1);
        if spins < budget {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// [`wait_until`] with a progress deadline: gives up and returns `false`
/// once `cond` has stayed false for `deadline` (when set) instead of
/// waiting forever. The clock is started lazily after the spin budget is
/// exhausted and read only on the yield path, so a wait satisfied at spin
/// speed — every wait of a healthy run — never touches it.
fn wait_until_deadline(
    aborted: &AtomicBool,
    budget: u32,
    deadline: Option<std::time::Duration>,
    what: &str,
    cond: impl Fn() -> bool,
) -> bool {
    let mut spins = 0u32;
    let mut started: Option<std::time::Instant> = None;
    while !cond() {
        if aborted.load(Ordering::Acquire) {
            panic!("sharded drive aborted while waiting for {what}");
        }
        spins = spins.wrapping_add(1);
        if spins < budget {
            std::hint::spin_loop();
        } else {
            if let Some(limit) = deadline {
                let t0 = *started.get_or_insert_with(std::time::Instant::now);
                if t0.elapsed() > limit {
                    return false;
                }
            }
            std::thread::yield_now();
        }
    }
    true
}

/// Spin budget for this drive's waits: generous when the host has a
/// hardware thread for every participant (coordinator + workers),
/// near-zero when oversubscribed.
fn spin_budget(workers: usize) -> u32 {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host > workers {
        1 << 14
    } else {
        8
    }
}

/// Loop constants shared by workers and coordinator.
#[derive(Clone, Copy)]
struct Params {
    total: Cycle,
    stride: Cycle,
    warmup: Cycle,
    /// 0 = no epoch sampling.
    epoch_cycles: Cycle,
    /// Test hook (`SimConfig::test_stall_shard`): worker 0 stops sealing
    /// slots at this slot index, simulating a wedged worker.
    test_stall: Option<u64>,
    /// Fine-grained span accounting (`SimConfig::spans`): workers time
    /// their spin-waits and mailbox seals, the coordinator its drain
    /// waits. Wall-clock observation only — never fed back into the
    /// simulated machine, so results are bit-identical either way.
    spans: bool,
    /// Event-driven controller skipping (`SimConfig::effective_time_skip`):
    /// workers sleep each controller on its `next_event` horizon. Off,
    /// every controller ticks every slot (the per-cycle reference path).
    skip: bool,
}

/// Wall-clock accounting one worker hands back for span grafting.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct WorkerSpans {
    /// Whole `worker_loop` duration.
    pub(crate) total_ns: u64,
    /// Time blocked on the coordinator's watermark.
    pub(crate) spin_ns: u64,
    pub(crate) spin_waits: u64,
    /// Time publishing completion batches + sealing slots.
    pub(crate) seal_ns: u64,
    pub(crate) seals: u64,
    /// Slots processed.
    pub(crate) slots: u64,
}

/// Per-channel worker-side state.
struct ChanState {
    /// Global channel index.
    chan: usize,
    /// Ops drained from the mailbox but not yet applicable (their cycle
    /// is at or past the slot being processed).
    pending: VecDeque<EnqOp>,
    /// Ops taken from the mailbox so far (vs. its `pushed` counter).
    taken: u64,
    wake: Cycle,
    skipped: u64,
    warmup_fired: bool,
    /// Next epoch boundary to snapshot (`Cycle::MAX` = none).
    next_epoch: Cycle,
}

fn worker_loop(
    w: usize,
    mut ctrls: Vec<MemoryController>,
    chan_ids: Vec<usize>,
    shared: &Shared,
    p: Params,
) -> (Vec<(usize, MemoryController)>, WorkerSpans) {
    let loop_start = p.spans.then(std::time::Instant::now);
    let mut spans = WorkerSpans::default();
    let mut st: Vec<ChanState> = chan_ids
        .iter()
        .map(|&chan| ChanState {
            chan,
            pending: VecDeque::new(),
            taken: 0,
            wake: 0,
            skipped: 0,
            // The sequential loop only reaches the warmup boundary when
            // measurement cycles follow it.
            warmup_fired: p.warmup >= p.total,
            next_epoch: if p.epoch_cycles > 0 {
                p.epoch_cycles
            } else {
                Cycle::MAX
            },
        })
        .collect();
    let me = &shared.workers[w];
    let mut tmp: Vec<Completion> = Vec::new();
    let mut batch: Vec<(Cycle, usize, Completion)> = Vec::new();
    let mut pushed_total: u64 = 0;

    // Fire every snapshot point with threshold ≤ `t` for channel `i`.
    // A snapshot at threshold `q` covers exactly ops with `cycle < q`
    // and ticks at slots `< q` — the sequential boundary semantics.
    let fire = |ctrls: &[MemoryController], st: &mut ChanState, i: usize, t: Cycle| {
        if !st.warmup_fired && p.warmup <= t {
            st.warmup_fired = true;
            let c = &ctrls[i];
            let open = c.channel.open_ubanks();
            let mut stats = c.channel.stats;
            stats.activates -= open.len() as u64;
            let heat = c.channel.telemetry.as_ref().map(|tel| {
                let mut h = tel.heat.clone();
                for &flat in &open {
                    h.activates[flat] = h.activates[flat].saturating_sub(1);
                }
                h
            });
            me.warmups.lock().push(WarmupSnap {
                channel: st.chan,
                stats,
                heat,
                tenant_cols: c.tenant_cols(),
            });
        }
        while st.next_epoch <= t {
            let c = &ctrls[i];
            me.snaps.lock().push(ChanSnap {
                channel: st.chan,
                boundary: st.next_epoch,
                stats: c.channel.stats,
                qlen: c.queue_len(),
                tenant_cols: c.tenant_cols(),
            });
            st.next_epoch += p.epoch_cycles;
        }
    };

    let mut slot_idx: u64 = 0;
    let mut cycle: Cycle = 0;
    while cycle < p.total {
        // Time the wait only when spans are on *and* we would actually
        // block — the fast path costs one extra atomic load, no clock.
        if p.spans && shared.watermark.load(Ordering::Acquire) < cycle {
            let t0 = std::time::Instant::now();
            wait_until(&shared.aborted, shared.spin, "watermark", || {
                shared.watermark.load(Ordering::Acquire) >= cycle
            });
            spans.spin_ns += t0.elapsed().as_nanos() as u64;
            spans.spin_waits += 1;
        } else {
            wait_until(&shared.aborted, shared.spin, "watermark", || {
                shared.watermark.load(Ordering::Acquire) >= cycle
            });
        }
        for i in 0..ctrls.len() {
            st[i].taken += shared.chans[st[i].chan].take_into(st[i].taken, &mut st[i].pending);
            // Replay sealed enqueues: everything the coordinator emitted
            // for cycles before this slot, in cycle order.
            while st[i].pending.front().is_some_and(|op| op.cycle < cycle) {
                let op = st[i].pending.pop_front().unwrap();
                fire(&ctrls, &mut st[i], i, op.cycle);
                // Flush skipped-slot accounting at the pre-enqueue queue
                // depth (slots skipped so far all predate this arrival —
                // mailbox ops replay in cycle order per channel).
                let pending_skips = std::mem::take(&mut st[i].skipped);
                if pending_skips > 0 {
                    ctrls[i].account_skipped_ticks(pending_skips);
                }
                let ok = ctrls[i].enqueue(op.req, op.cycle);
                assert_eq!(
                    ok, op.accepted,
                    "shard replay diverged from the coordinator's occupancy mirror \
                     (channel {}, cycle {})",
                    st[i].chan, op.cycle
                );
                if ok {
                    st[i].wake = op.cycle;
                }
            }
            fire(&ctrls, &mut st[i], i, cycle);
            if st[i].wake > cycle {
                st[i].skipped += 1;
            } else {
                let pending_skips = std::mem::take(&mut st[i].skipped);
                if pending_skips > 0 {
                    ctrls[i].account_skipped_ticks(pending_skips);
                }
                ctrls[i].tick(cycle);
                ctrls[i].take_completions(&mut tmp);
                for comp in tmp.drain(..) {
                    batch.push((cycle, st[i].chan, comp));
                }
                // `None` maps to `cycle + 1` — a real wake cycle, never a
                // sentinel a legitimate wake value could alias.
                st[i].wake = if p.skip {
                    ctrls[i].next_event(cycle).unwrap_or(cycle + 1)
                } else {
                    cycle + 1
                };
            }
        }
        if !batch.is_empty() {
            let t0 = p.spans.then(std::time::Instant::now);
            pushed_total += batch.len() as u64;
            me.comps.lock().append(&mut batch);
            me.comps_pushed.store(pushed_total, Ordering::Release);
            if let Some(t0) = t0 {
                spans.seal_ns += t0.elapsed().as_nanos() as u64;
                spans.seals += 1;
            }
        }
        if w == 0 && p.test_stall == Some(slot_idx) {
            // Wedge here without sealing the slot; the coordinator's
            // watchdog must notice and abort, which makes this wait panic
            // (tearing the thread down like any aborted wait).
            wait_until(&shared.aborted, shared.spin, "test stall release", || false);
        }
        me.done.store(slot_idx + 1, Ordering::Release);
        slot_idx += 1;
        cycle += p.stride;
    }

    // Trailing drain: ops emitted during the final phase (cycle < total)
    // still mutate queues, predictor-pending resolution, and `rejected`
    // counters exactly as the sequential loop applies them; then fire any
    // snapshot point at the very end of the run (e.g. an epoch boundary
    // at `total`), then fold idle-skip accounting back in.
    if p.spans && shared.watermark.load(Ordering::Acquire) < p.total {
        let t0 = std::time::Instant::now();
        wait_until(&shared.aborted, shared.spin, "final watermark", || {
            shared.watermark.load(Ordering::Acquire) >= p.total
        });
        spans.spin_ns += t0.elapsed().as_nanos() as u64;
        spans.spin_waits += 1;
    } else {
        wait_until(&shared.aborted, shared.spin, "final watermark", || {
            shared.watermark.load(Ordering::Acquire) >= p.total
        });
    }
    for i in 0..ctrls.len() {
        st[i].taken += shared.chans[st[i].chan].take_into(st[i].taken, &mut st[i].pending);
        while let Some(op) = st[i].pending.pop_front() {
            debug_assert!(op.cycle < p.total);
            fire(&ctrls, &mut st[i], i, op.cycle);
            // Every slot skipped so far predates this trailing arrival:
            // flush at the pre-enqueue queue depth, like the main loop.
            let pending_skips = std::mem::take(&mut st[i].skipped);
            if pending_skips > 0 {
                ctrls[i].account_skipped_ticks(pending_skips);
            }
            let ok = ctrls[i].enqueue(op.req, op.cycle);
            assert_eq!(ok, op.accepted, "shard replay diverged in final drain");
            if ok {
                st[i].wake = op.cycle;
            }
        }
        fire(&ctrls, &mut st[i], i, p.total);
        ctrls[i].account_skipped_ticks(st[i].skipped);
    }
    me.done.store(DONE_FINAL, Ordering::Release);

    spans.slots = slot_idx;
    if let Some(t0) = loop_start {
        spans.total_ns = t0.elapsed().as_nanos() as u64;
    }
    (chan_ids.into_iter().zip(ctrls).collect(), spans)
}

/// An epoch row the coordinator has opened but cannot finish until every
/// channel's boundary snapshot arrives.
struct PendingRow {
    boundary: Cycle,
    /// Instructions committed in the epoch (CPU-side, exact).
    dc: u64,
    backlog: usize,
}

/// Accumulates per-channel boundary snapshots until all channels report.
struct BoundaryAcc {
    stats: DramStats,
    qlens: Vec<usize>,
    tenant_cols: [u64; MAX_TENANTS],
    seen: usize,
}

/// Coordinator-side mutable state; doubles as the [`MemPort`] the CPU
/// system submits through.
struct Coord<'a> {
    shared: &'a Shared,
    map: AddressMap,
    /// channel → owning worker.
    owner: Vec<usize>,
    cap: usize,
    /// Mirrored per-channel queue occupancy (never underestimates).
    occ: Vec<usize>,
    /// Per worker: `done` level whose completion batches are processed.
    drained: Vec<u64>,
    /// Per worker: tuples consumed from its `comps` mailbox, mirrored
    /// against `comps_pushed` to skip locking an unchanged mailbox.
    comps_seen: Vec<u64>,
    /// Slot index the workers may be ticking concurrently.
    cur_slot: u64,
    enqueue_time: EnqueueSlab,
    deliveries: BinaryHeap<Delivery>,
    read_latency_acc: u64,
    read_latency_hist: microbank_core::hist::Histogram,
    read_lat_samples: u64,
    /// Tenant rows the run reports (0 = QoS off); sizes `tenant_hists`.
    qos_nt: usize,
    /// Per-tenant read-latency histograms (empty when QoS is off).
    tenant_hists: Vec<microbank_core::hist::Histogram>,
    noc: Cycle,
    warmup: Cycle,
    /// Watchdog deadline per coordinator wait (`None` = disabled). The
    /// coordinator is the only side with a deadline: every worker wait is
    /// on a value the coordinator publishes, so a wedged worker always
    /// surfaces as a coordinator-side timeout.
    watchdog: Option<std::time::Duration>,
    /// Fine-grained span accounting (see [`Params::spans`]).
    spans: bool,
    /// Wall time spent blocked in [`Coord::drain_worker`].
    wait_ns: u64,
    waits: u64,
}

impl Coord<'_> {
    /// Apply one drained completion: occupancy mirror, latency
    /// accounting (against the completion's *slot* cycle, matching the
    /// sequential drain point), and fill delivery scheduling.
    fn process_completion(&mut self, slot: Cycle, chan: usize, comp: Completion) {
        self.occ[chan] -= 1;
        if comp.is_write {
            self.enqueue_time.remove(comp.id);
        } else {
            if let Some(t0) = self.enqueue_time.remove(comp.id) {
                if slot >= self.warmup {
                    let t0 = t0.max(self.warmup);
                    let lat = comp.at.saturating_sub(t0);
                    self.read_latency_acc += lat;
                    self.read_latency_hist.record(lat);
                    self.read_lat_samples += 1;
                    if self.qos_nt > 0 {
                        let t = tenant_slot(comp.tenant).min(self.qos_nt - 1);
                        self.tenant_hists[t].record(lat);
                    }
                }
            }
            self.deliveries.push(Delivery {
                at: comp.at.max(slot) + self.noc,
                id: comp.id,
            });
        }
    }

    /// Fold in whatever worker `w` has already published, without
    /// waiting. Skips the mailbox lock entirely when the push counter
    /// says nothing new arrived.
    fn take_batches(&mut self, w: usize) {
        let ws = &self.shared.workers[w];
        if ws.comps_pushed.load(Ordering::Acquire) == self.comps_seen[w] {
            return;
        }
        let batches = std::mem::take(&mut *ws.comps.lock());
        self.comps_seen[w] += batches.len() as u64;
        for (slot, chan, comp) in batches {
            self.process_completion(slot, chan, comp);
        }
    }

    /// Ensure worker `w` has completed `through` slots and its published
    /// completions are folded into the mirror. If the worker seals
    /// nothing within the watchdog deadline, capture diagnostics and
    /// panic with [`ShardStallPanic`] — `drive_sharded` converts that
    /// into a typed error after tearing the scope down.
    fn drain_worker(&mut self, w: usize, through: u64) {
        if self.drained[w] >= through {
            return;
        }
        let done = &self.shared.workers[w].done;
        // Time the wait only when spans are on and the worker is actually
        // behind; the satisfied-at-spin-speed path never reads the clock.
        let t0 =
            (self.spans && done.load(Ordering::Acquire) < through).then(std::time::Instant::now);
        // Re-arm the deadline whenever the worker seals *something*: the
        // watchdog detects absence of progress, not slowness.
        let mut last_seen = done.load(Ordering::Acquire);
        loop {
            let sealed = wait_until_deadline(
                &self.shared.aborted,
                self.shared.spin,
                self.watchdog,
                "worker slot",
                || done.load(Ordering::Acquire) >= through,
            );
            if sealed {
                break;
            }
            let seen = done.load(Ordering::Acquire);
            if seen > last_seen {
                last_seen = seen;
                continue;
            }
            std::panic::panic_any(ShardStallPanic(self.stall_diagnostics(w, through)));
        }
        if let Some(t0) = t0 {
            self.wait_ns += t0.elapsed().as_nanos() as u64;
            self.waits += 1;
        }
        // Everything pushed before the observed `done` is visible once we
        // take the mailbox lock; batches from an even newer slot may ride
        // along, which is safe (their removals precede any enqueue the
        // coordinator has yet to emit) — but `drained` only advances to
        // the observed level.
        let observed = done.load(Ordering::Acquire);
        self.take_batches(w);
        self.drained[w] = observed;
    }

    /// Snapshot the dispatcher for the stall report: per-worker sealed
    /// slots and completion backlogs, per-channel mailbox depths (via
    /// `try_lock` — a held lock is reported as `None`, never waited on),
    /// and the occupancy mirror.
    fn stall_diagnostics(&self, w: usize, through: u64) -> ShardDiagnostics {
        let shared = self.shared;
        ShardDiagnostics {
            workers: shared.workers.len(),
            stalled_worker: w,
            waiting_for_slot: through,
            timeout_ms: self.watchdog.map_or(0, |d| d.as_millis() as u64),
            watermark: shared.watermark.load(Ordering::Acquire),
            cur_slot: self.cur_slot,
            worker_done: shared
                .workers
                .iter()
                .map(|ws| ws.done.load(Ordering::Acquire))
                .collect(),
            mailbox_depths: shared
                .chans
                .iter()
                .map(|c| c.ops.try_lock().map(|g| g.len()))
                .collect(),
            completion_backlogs: shared
                .workers
                .iter()
                .enumerate()
                .map(|(i, ws)| {
                    ws.comps_pushed
                        .load(Ordering::Acquire)
                        .saturating_sub(self.comps_seen[i])
                })
                .collect(),
            occupancy: self.occ.clone(),
        }
    }

    /// Non-waiting sync: advance the mirror with everything the worker
    /// has published so far.
    fn drain_published(&mut self, w: usize) {
        let observed = self.shared.workers[w].done.load(Ordering::Acquire);
        self.take_batches(w);
        if observed > self.drained[w] {
            self.drained[w] = observed;
        }
    }
}

impl MemPort for Coord<'_> {
    fn submit(&mut self, req: SubmittedReq, now: Cycle) -> bool {
        let loc = self.map.decode(req.addr);
        let ch = loc.channel as usize;
        if self.occ[ch] >= self.cap {
            // Cheap first: fold in whatever the owner already published —
            // with lazy draining the mirror may simply be stale.
            self.drain_published(self.owner[ch]);
        }
        if self.occ[ch] >= self.cap {
            // The mirror now overestimates by at most the removals of the
            // slot currently in flight (a worker cannot tick past it: the
            // watermark for the next slot is unpublished). Sync with the
            // owner through that slot; afterwards the mirror is exact and
            // the decision below equals the sequential one.
            self.drain_worker(self.owner[ch], self.cur_slot + 1);
        }
        let accepted = self.occ[ch] < self.cap;
        let kind = if req.is_write {
            ReqKind::Write
        } else {
            ReqKind::Read
        };
        let mut r = MemRequest::new(req.id, req.addr, kind, req.thread, now);
        r.loc = loc;
        r.tenant = req.tenant;
        self.shared.chans[ch].push(EnqOp {
            cycle: now,
            req: r,
            accepted,
        });
        if accepted {
            self.occ[ch] += 1;
            self.enqueue_time.insert(req.id, now);
        }
        accepted
    }
}

/// The channel-sharded drive. Same contract as `drive_sequential`: takes
/// the freshly built controllers, returns them (final state identical to
/// a sequential run) plus warmup snapshots and latency accounting, and
/// pushes the same epoch rows into `timeline`.
///
/// `Err(diagnostics)` means the coordinator's watchdog declared a worker
/// stalled: the scope was torn down (abort flag, worker unwind, full
/// join) and no simulation state survives. Any *other* panic from inside
/// the scope resumes unwinding untouched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_sharded<S: microbank_cpu::instr::InstrSource>(
    cfg: &SimConfig,
    cmp: &mut CmpSystem<S>,
    ctrls: Vec<MemoryController>,
    integrator: &PowerIntegrator,
    timeline: &mut Option<Timeline>,
    tracer: &mut SpanTracer,
    workers: usize,
) -> Result<DriveOutput, RunAbort> {
    let channels = ctrls.len();
    let workers = workers.min(channels).max(1);
    let p = Params {
        total: cfg.warmup_cycles + cfg.measure_cycles,
        stride: cfg.ctrl_stride.max(1),
        warmup: cfg.warmup_cycles,
        epoch_cycles: cfg.telemetry.map_or(0, |tc| tc.epoch_cycles),
        test_stall: cfg.test_stall_shard,
        spans: cfg.spans,
        skip: cfg.effective_time_skip(),
    };
    debug_assert!(cfg.cmp.noc_latency >= p.stride, "dispatcher invariant");
    let map = ctrls[0].map().clone();

    // Contiguous channel partition, remainder spread over the first
    // workers: worker `w` owns `chunks[w]`.
    let mut chunks: Vec<(Vec<MemoryController>, Vec<usize>)> = Vec::with_capacity(workers);
    let mut owner = vec![0usize; channels];
    {
        let base = channels / workers;
        let rem = channels % workers;
        let mut it = ctrls.into_iter().enumerate();
        for w in 0..workers {
            let take = base + usize::from(w < rem);
            let mut cs = Vec::with_capacity(take);
            let mut ids = Vec::with_capacity(take);
            for _ in 0..take {
                let (chan, c) = it.next().expect("partition covers all channels");
                owner[chan] = w;
                ids.push(chan);
                cs.push(c);
            }
            chunks.push((cs, ids));
        }
    }

    let shared = Shared {
        spin: spin_budget(workers),
        watermark: AtomicU64::new(0),
        aborted: AtomicBool::new(false),
        chans: (0..channels).map(|_| ChanMailbox::new()).collect(),
        workers: (0..workers)
            .map(|_| WorkerShared {
                comps: Mutex::new(Vec::new()),
                comps_pushed: AtomicU64::new(0),
                snaps: Mutex::new(Vec::new()),
                warmups: Mutex::new(Vec::new()),
                done: AtomicU64::new(0),
            })
            .collect(),
    };

    // The watchdog fires as a coordinator-side `panic_any(ShardStallPanic)`.
    // `thread::scope` joins every worker before re-raising the closure's
    // panic (the abort flag set during unwind breaks the workers out of
    // their waits), so catching here observes a fully torn-down drive.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let shared = &shared;
            let handles: Vec<_> = chunks
                .into_iter()
                .enumerate()
                .map(|(w, (cs, ids))| {
                    std::thread::Builder::new()
                        .name(format!("ubank-shard-{w}"))
                        .spawn_scoped(s, move || {
                            let _guard = AbortGuard(&shared.aborted);
                            worker_loop(w, cs, ids, shared, p)
                        })
                        .expect("spawn shard worker")
                })
                .collect();

            let _guard = AbortGuard(&shared.aborted);
            let mut coord = Coord {
                shared,
                map,
                owner,
                cap: cfg.mem.queue_size,
                occ: vec![0; channels],
                drained: vec![0; workers],
                comps_seen: vec![0; workers],
                cur_slot: 0,
                enqueue_time: EnqueueSlab::new(),
                deliveries: BinaryHeap::new(),
                read_latency_acc: 0,
                read_latency_hist: microbank_core::hist::Histogram::new(),
                read_lat_samples: 0,
                qos_nt: cfg.qos_tenants(),
                tenant_hists: vec![microbank_core::hist::Histogram::new(); cfg.qos_tenants()],
                noc: cfg.cmp.noc_latency,
                warmup: cfg.warmup_cycles,
                watchdog: (cfg.watchdog_timeout_ms > 0)
                    .then(|| std::time::Duration::from_millis(cfg.watchdog_timeout_ms)),
                spans: p.spans,
                wait_ns: 0,
                waits: 0,
            };
            let drive_start_ns = tracer.now_ns();
            tracer.enter("warmup");

            let mut committed_at_warmup = 0u64;
            let mut per_core_at_warmup: Vec<u64> = vec![0; cfg.cmp.cores];
            let mut epoch_committed = 0u64;
            let mut epoch_stats_prev = DramStats::default();
            let mut epoch_tenant_prev = [0u64; MAX_TENANTS];
            let qos_nt = cfg.qos_tenants();
            let mut pending_rows: VecDeque<PendingRow> = VecDeque::new();
            let mut accs: BTreeMap<Cycle, BoundaryAcc> = BTreeMap::new();

            // Fold newly arrived boundary snapshots in and finish every
            // pending epoch row whose channels have all reported, in order.
            let finalize = |coordless_shared: &Shared,
                            accs: &mut BTreeMap<Cycle, BoundaryAcc>,
                            pending_rows: &mut VecDeque<PendingRow>,
                            epoch_stats_prev: &mut DramStats,
                            epoch_tenant_prev: &mut [u64; MAX_TENANTS],
                            timeline: &mut Option<Timeline>| {
                for ws in &coordless_shared.workers {
                    let snaps = std::mem::take(&mut *ws.snaps.lock());
                    for sn in snaps {
                        let acc = accs.entry(sn.boundary).or_insert_with(|| BoundaryAcc {
                            stats: DramStats::default(),
                            qlens: vec![0; channels],
                            tenant_cols: [0; MAX_TENANTS],
                            seen: 0,
                        });
                        acc.stats.merge(&sn.stats);
                        acc.qlens[sn.channel] = sn.qlen;
                        for (a, v) in acc.tenant_cols.iter_mut().zip(sn.tenant_cols) {
                            *a += v;
                        }
                        acc.seen += 1;
                    }
                }
                while let Some(front) = pending_rows.front() {
                    let complete = accs
                        .get(&front.boundary)
                        .is_some_and(|a| a.seen == channels);
                    if !complete {
                        break;
                    }
                    let row_info = pending_rows.pop_front().unwrap();
                    let acc = accs.remove(&row_info.boundary).unwrap();
                    let d = stats_delta(&acc.stats, epoch_stats_prev);
                    *epoch_stats_prev = acc.stats;
                    let e = p.epoch_cycles;
                    let q_mean =
                        acc.qlens.iter().sum::<usize>() as f64 / acc.qlens.len().max(1) as f64;
                    let power_w = integrator.integrate(&d, e).to_watts(e).total_w();
                    let mut row = vec![
                        row_info.dc as f64 / e as f64,
                        d.reads as f64,
                        d.writes as f64,
                        d.activates as f64,
                        d.precharges as f64,
                        d.row_hits as f64,
                        d.row_conflicts as f64,
                        d.refreshes as f64,
                        d.scrubs as f64,
                        q_mean,
                        row_info.backlog as f64,
                        power_w,
                        d.powerdown_rank_cycles as f64,
                    ];
                    if channels > 1 {
                        row.extend(acc.qlens.iter().map(|&q| q as f64));
                    }
                    for (cols, prev) in acc
                        .tenant_cols
                        .iter()
                        .zip(epoch_tenant_prev.iter())
                        .take(qos_nt)
                    {
                        row.push((cols - prev) as f64);
                    }
                    *epoch_tenant_prev = acc.tenant_cols;
                    timeline
                        .as_mut()
                        .expect("epoch implies timeline")
                        .push(row_info.boundary, row);
                }
            };

            // Cooperative cancellation mirrors the sequential loop: poll on
            // the same coarse cadence and tear the scope down through the
            // watchdog's abort-flag/unwind/join protocol, so workers exit
            // their waits and every thread is joined before the payload is
            // downcast back into a typed error.
            let cancel = cfg.cancel.as_ref();
            let mut cancel_check_at: Cycle = 0;
            let mut now: Cycle = 0;
            let mut slot_cycle: Cycle = 0;
            let mut slot_idx: u64 = 0;
            while slot_cycle < p.total {
                if let Some(token) = cancel {
                    if slot_cycle >= cancel_check_at {
                        if let Some(kind) = token.tripped() {
                            std::panic::panic_any(CancelPanic {
                                kind,
                                at_cycle: now,
                            });
                        }
                        cancel_check_at = slot_cycle.saturating_add(CANCEL_CHECK_CYCLES);
                    }
                }
                coord.cur_slot = slot_idx;
                let phase_end = (slot_cycle + p.stride).min(p.total);
                // Lazy drain: a completion from slot `k` surfaces as a fill no
                // earlier than cycle `k·stride + noc`, so only slots whose
                // fills could come due inside this phase must be synced now.
                // `noc ≥ stride` gives the pipeline `noc/stride` slots of
                // slack before the coordinator ever waits on a worker.
                let due = {
                    let last = phase_end - 1;
                    if last >= coord.noc {
                        (last - coord.noc) / p.stride + 1
                    } else {
                        0
                    }
                };
                for w in 0..workers {
                    coord.drain_worker(w, due);
                }
                while now < phase_end {
                    if now == cfg.warmup_cycles {
                        tracer.exit(); // warmup
                        tracer.enter("measure");
                        committed_at_warmup = cmp.total_committed();
                        for (i, c) in per_core_at_warmup.iter_mut().enumerate() {
                            *c = cmp.core(i).stats.committed;
                        }
                    }
                    while coord.deliveries.peek().is_some_and(|d| d.at <= now) {
                        let d = coord.deliveries.pop().unwrap();
                        cmp.on_fill(d.id, now, &mut coord);
                    }
                    cmp.tick(now, &mut coord);
                    if p.epoch_cycles > 0 && (now + 1).is_multiple_of(p.epoch_cycles) {
                        let committed_now = cmp.total_committed();
                        pending_rows.push_back(PendingRow {
                            boundary: now + 1,
                            dc: committed_now - epoch_committed,
                            backlog: cmp.backlog_len(),
                        });
                        epoch_committed = committed_now;
                    }
                    now += 1;
                }
                shared.watermark.store(phase_end, Ordering::Release);
                if !pending_rows.is_empty() {
                    finalize(
                        shared,
                        &mut accs,
                        &mut pending_rows,
                        &mut epoch_stats_prev,
                        &mut epoch_tenant_prev,
                        timeline,
                    );
                }
                slot_idx += 1;
                slot_cycle += p.stride;
            }

            // Let the workers run their trailing drain, fold in the tail of
            // the completion stream the lazy drain never needed, then collect
            // the end-of-run snapshots (an epoch boundary can land exactly at
            // `total`).
            for w in 0..workers {
                coord.drain_worker(w, DONE_FINAL);
            }
            finalize(
                shared,
                &mut accs,
                &mut pending_rows,
                &mut epoch_stats_prev,
                &mut epoch_tenant_prev,
                timeline,
            );
            assert!(pending_rows.is_empty(), "unfinished epoch rows");
            tracer.exit(); // measure

            // Reassemble controllers in channel order and fold in the warmup
            // snapshots.
            let mut slots: Vec<Option<MemoryController>> = (0..channels).map(|_| None).collect();
            let mut worker_spans: Vec<WorkerSpans> = Vec::with_capacity(workers);
            for h in handles {
                match h.join() {
                    Ok((pairs, spans)) => {
                        for (chan, c) in pairs {
                            slots[chan] = Some(c);
                        }
                        worker_spans.push(spans);
                    }
                    Err(e) => std::panic::resume_unwind(e),
                }
            }

            // Graft the measured coordinator/worker breakdown into the span
            // tree (under the caller's open `drive` span). Coordinator busy
            // time is the drive wall minus its drain waits; worker work is
            // the loop total minus spin-waits and mailbox seals.
            if p.spans {
                let drive_ns = tracer.now_ns().saturating_sub(drive_start_ns);
                tracer.enter("coordinator");
                tracer.set_start_ns(drive_start_ns);
                tracer.add_ns("drain-wait", coord.wait_ns, coord.waits);
                tracer.exit_with_ns(drive_ns.saturating_sub(coord.wait_ns));
                for (w, ws) in worker_spans.iter().enumerate() {
                    tracer.enter(&format!("worker-{w}"));
                    tracer.set_lane((w + 1) as u16);
                    tracer.set_start_ns(drive_start_ns);
                    tracer.add_ns(
                        "work",
                        ws.total_ns.saturating_sub(ws.spin_ns + ws.seal_ns),
                        ws.slots,
                    );
                    tracer.add_ns("spin-wait", ws.spin_ns, ws.spin_waits);
                    tracer.add_ns("mailbox-seal", ws.seal_ns, ws.seals);
                    tracer.exit_with_ns(ws.total_ns);
                }
            }
            let ctrls: Vec<MemoryController> = slots
                .into_iter()
                .map(|c| c.expect("every channel returned"))
                .collect();

            let mut dram_at_warmup = DramStats::default();
            let mut tenant_cols_at_warmup = [0u64; MAX_TENANTS];
            let mut heat_slots: Vec<Option<HeatCounters>> = vec![None; channels];
            for ws in &shared.workers {
                for snap in std::mem::take(&mut *ws.warmups.lock()) {
                    dram_at_warmup.merge(&snap.stats);
                    for (a, v) in tenant_cols_at_warmup.iter_mut().zip(snap.tenant_cols) {
                        *a += v;
                    }
                    heat_slots[snap.channel] = snap.heat;
                }
            }
            let heat_at_warmup: Vec<HeatCounters> = heat_slots.into_iter().flatten().collect();

            DriveOutput {
                ctrls,
                committed_at_warmup,
                per_core_at_warmup,
                dram_at_warmup,
                heat_at_warmup,
                read_latency_acc: coord.read_latency_acc,
                read_latency_hist: coord.read_latency_hist,
                read_lat_samples: coord.read_lat_samples,
                tenant_hists: coord.tenant_hists,
                tenant_cols_at_warmup,
            }
        })
    }));
    match outcome {
        Ok(out) => Ok(out),
        Err(payload) => {
            let payload = match payload.downcast::<ShardStallPanic>() {
                Ok(stall) => return Err(RunAbort::Stall(Box::new(stall.0))),
                Err(p) => p,
            };
            match payload.downcast::<CancelPanic>() {
                Ok(c) => Err(RunAbort::Cancelled {
                    kind: c.kind,
                    at_cycle: c.at_cycle,
                }),
                Err(other) => std::panic::resume_unwind(other),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn req(id: u64, cycle: Cycle) -> MemRequest {
        MemRequest::new(id, id * 64, ReqKind::Read, 0, cycle)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The mailbox + watermark protocol: every op the coordinator
        /// emits is observed by the owning consumer exactly once, in
        /// emission order within its channel, and never before its cycle
        /// has been sealed by the watermark.
        #[test]
        fn mailbox_loses_nothing_and_keeps_channel_order(
            n_chan in 1usize..5,
            plan in prop::collection::vec((0u8..4, 0u64..3), 1..300),
            batch in 1usize..8,
        ) {
            let shared = Shared {
                spin: spin_budget(2),
                watermark: AtomicU64::new(0),
                aborted: AtomicBool::new(false),
                chans: (0..n_chan).map(|_| ChanMailbox::new()).collect(),
                workers: Vec::new(),
            };
            // Pre-compute the expected per-channel (id, cycle) sequences.
            let mut expected: Vec<Vec<(u64, Cycle)>> = vec![Vec::new(); n_chan];
            {
                let mut cycle: Cycle = 0;
                for (i, &(ch_sel, gap)) in plan.iter().enumerate() {
                    cycle += gap;
                    expected[ch_sel as usize % n_chan].push((i as u64, cycle));
                }
            }
            let done = AtomicBool::new(false);
            // Two consumers splitting the channels, like shard workers do.
            let split = n_chan.div_ceil(2);
            let got = std::thread::scope(|s| {
                let shared = &shared;
                let done = &done;
                let consumers: Vec<_> = [(0..split), (split..n_chan)]
                    .into_iter()
                    .map(|chans| {
                        s.spawn(move || {
                            let mut got: Vec<Vec<(u64, Cycle)>> =
                                vec![Vec::new(); n_chan];
                            loop {
                                let finished = done.load(Ordering::Acquire);
                                let wm = shared.watermark.load(Ordering::Acquire);
                                for ch in chans.clone() {
                                    let mut mb = shared.chans[ch].ops.lock();
                                    while mb.front().is_some_and(|op| op.cycle < wm) {
                                        let op = mb.pop_front().unwrap();
                                        // Sealed: the coordinator may not
                                        // emit anything below the watermark
                                        // after publishing it.
                                        assert!(op.cycle < wm);
                                        got[ch].push((op.req.id, op.cycle));
                                    }
                                }
                                if finished && wm == Cycle::MAX {
                                    let empty = chans
                                        .clone()
                                        .all(|ch| shared.chans[ch].ops.lock().is_empty());
                                    if empty {
                                        break;
                                    }
                                }
                                std::thread::yield_now();
                            }
                            got
                        })
                    })
                    .collect();

                // Producer (this thread): emit in global cycle order,
                // publishing the watermark every `batch` ops.
                let mut cycle: Cycle = 0;
                for (i, &(ch_sel, gap)) in plan.iter().enumerate() {
                    cycle += gap;
                    shared.chans[ch_sel as usize % n_chan].push(EnqOp {
                        cycle,
                        req: req(i as u64, cycle),
                        accepted: true,
                    });
                    if (i + 1) % batch == 0 {
                        shared.watermark.store(cycle + 1, Ordering::Release);
                    }
                }
                shared.watermark.store(Cycle::MAX, Ordering::Release);
                done.store(true, Ordering::Release);

                let mut merged: Vec<Vec<(u64, Cycle)>> = vec![Vec::new(); n_chan];
                for c in consumers {
                    for (ch, seq) in c.join().expect("consumer").into_iter().enumerate() {
                        if !seq.is_empty() {
                            merged[ch] = seq;
                        }
                    }
                }
                merged
            });
            prop_assert_eq!(got, expected);
        }
    }
}
