//! Experiment drivers: one function per paper figure. Each builds the run
//! matrix, executes it in parallel, and returns structured results the
//! `microbank-bench` harness binaries print as the paper's rows/series.

use crate::simulator::{run_many, SimConfig, SimResult};
use microbank_core::config::{Interface, MemConfig};
use microbank_ctrl::policy::PolicyKind;
use microbank_ctrl::predictor::PredictorKind;
use microbank_workloads::spec::SpecGroup;
use microbank_workloads::suite::Workload;

/// The partitioning degrees of the Fig. 6/8/9 sweeps.
pub const DEGREES: [usize; 5] = [1, 2, 4, 8, 16];

/// The <3%-area-overhead representative configurations of Fig. 10/12/13.
pub const REPRESENTATIVE: [(usize, usize); 4] = [(1, 1), (2, 8), (4, 4), (8, 2)];

/// Base configuration for a workload: single-threaded SPEC runs populate a
/// single memory controller (§VI-A); everything else uses all 16.
pub fn base_cfg(workload: Workload, quick: bool) -> SimConfig {
    let cfg = match workload {
        Workload::Spec(_) | Workload::SpecGroupAvg(_) | Workload::SpecAll => {
            SimConfig::spec_single_channel(workload)
        }
        _ => SimConfig::paper_default(workload),
    };
    if quick {
        cfg.quick()
    } else {
        cfg
    }
}

/// Fig. 8 + Fig. 9: the 5×5 (nW, nB) sweep for one workload. Matrices are
/// indexed `[iB][iW]` over [`DEGREES`], normalized to (1,1).
#[derive(Debug, Clone)]
pub struct GridResult {
    pub workload: String,
    pub rel_ipc: Vec<Vec<f64>>,
    pub rel_inv_edp: Vec<Vec<f64>>,
    pub raw: Vec<Vec<SimResult>>,
}

pub fn ubank_grid(workload: Workload, quick: bool) -> GridResult {
    let base = base_cfg(workload, quick);
    let mut cfgs = Vec::new();
    for &nb in &DEGREES {
        for &nw in &DEGREES {
            let mut c = base.clone();
            c.mem = c.mem.with_ubanks(nw, nb);
            cfgs.push(c);
        }
    }
    let results = run_many(&cfgs);
    let baseline = &results[0];
    let mut rel_ipc = Vec::new();
    let mut rel_edp = Vec::new();
    let mut raw = Vec::new();
    for (ib, _) in DEGREES.iter().enumerate() {
        let row = &results[ib * 5..(ib + 1) * 5];
        rel_ipc.push(row.iter().map(|r| r.ipc / baseline.ipc).collect());
        rel_edp.push(row.iter().map(|r| r.inverse_edp_vs(baseline)).collect());
        raw.push(row.to_vec());
    }
    GridResult {
        workload: workload.label(),
        rel_ipc,
        rel_inv_edp: rel_edp,
        raw,
    }
}

/// One Fig. 10 bar group: a workload on a representative configuration.
#[derive(Debug, Clone)]
pub struct RepresentativeRow {
    pub workload: String,
    pub ubank: (usize, usize),
    pub rel_ipc: f64,
    pub rel_inv_edp: f64,
    /// Power breakdown in watts: processor, ACT/PRE, DRAM static(+refresh),
    /// RD/WR, I/O (the Fig. 10/14 stacking order).
    pub power_w: [f64; 5],
}

/// Fig. 10: representative configurations across workloads.
pub fn representative_study(workloads: &[Workload], quick: bool) -> Vec<RepresentativeRow> {
    let mut cfgs = Vec::new();
    for &w in workloads {
        for &(nw, nb) in &REPRESENTATIVE {
            let mut c = base_cfg(w, quick);
            c.mem = c.mem.with_ubanks(nw, nb);
            cfgs.push(c);
        }
    }
    let results = run_many(&cfgs);
    let mut rows = Vec::new();
    for (wi, &w) in workloads.iter().enumerate() {
        let group = &results[wi * REPRESENTATIVE.len()..(wi + 1) * REPRESENTATIVE.len()];
        let baseline = &group[0];
        for (ci, r) in group.iter().enumerate() {
            let p = r.memory_power_w();
            rows.push(RepresentativeRow {
                workload: w.label(),
                ubank: REPRESENTATIVE[ci],
                rel_ipc: r.ipc / baseline.ipc,
                rel_inv_edp: r.inverse_edp_vs(baseline),
                power_w: [
                    r.processor_power_w(),
                    p.act_pre_w,
                    p.static_w + p.refresh_w,
                    p.rdwr_w,
                    p.io_w,
                ],
            });
        }
    }
    rows
}

/// Base configuration for the page-policy-sensitivity studies (Fig. 12,
/// Fig. 13). Single-app SPEC runs are populated with 4 copies instead of
/// 64: page-management and interleaving effects are latency effects, and a
/// hard-saturated channel (64 rate-mode copies) hides them entirely —
/// demand at the bandwidth knee is where the paper's §V queue-occupancy
/// argument plays out.
pub fn policy_study_cfg(workload: Workload, quick: bool) -> SimConfig {
    let mut c = base_cfg(workload, quick);
    if matches!(
        workload,
        Workload::Spec(_) | Workload::SpecGroupAvg(_) | Workload::SpecAll
    ) {
        c.cmp.cores = 4;
    }
    c
}

/// One Fig. 12 point: policy × interleaving base bit on a configuration.
#[derive(Debug, Clone)]
pub struct InterleaveRow {
    pub workload: String,
    pub ubank: (usize, usize),
    pub interleave_base: u32,
    pub policy: PolicyKind,
    pub rel_ipc: f64,
    pub rel_inv_edp: f64,
}

/// Fig. 12: open/close × iB ∈ {6, 8, 10, …, max} on the representative
/// configurations. Everything is normalized to (1,1)/open/iB=13.
pub fn interleave_policy_study(workloads: &[Workload], quick: bool) -> Vec<InterleaveRow> {
    let mut cfgs = Vec::new();
    let mut keys = Vec::new();
    for &w in workloads {
        for &(nw, nb) in &REPRESENTATIVE {
            let probe = policy_study_cfg(w, quick).mem.with_ubanks(nw, nb);
            let max_ib = probe.max_interleave_base();
            let mut ibs: Vec<u32> = (6..max_ib).step_by(2).collect();
            ibs.push(max_ib);
            for ib in ibs {
                for policy in [PolicyKind::Open, PolicyKind::Close] {
                    let mut c = policy_study_cfg(w, quick);
                    c.mem = c.mem.with_ubanks(nw, nb).with_interleave_base(ib);
                    c.policy = policy;
                    cfgs.push(c);
                    keys.push((w, (nw, nb), ib, policy));
                }
            }
        }
    }
    let results = run_many(&cfgs);
    let mut rows = Vec::new();
    for (i, &(w, ubank, ib, policy)) in keys.iter().enumerate() {
        // Baseline: first entry for this workload with (1,1), open, max iB.
        let base_idx = keys
            .iter()
            .position(|&(bw, bu, bib, bp)| {
                bw == w && bu == (1, 1) && bp == PolicyKind::Open && bib == 13
            })
            .expect("baseline present");
        let r = &results[i];
        let b = &results[base_idx];
        rows.push(InterleaveRow {
            workload: w.label(),
            ubank,
            interleave_base: ib,
            policy,
            rel_ipc: r.ipc / b.ipc,
            rel_inv_edp: r.inverse_edp_vs(b),
        });
    }
    rows
}

/// The Fig. 13 policy set: close, open, local, tournament, perfect.
pub const FIG13_POLICIES: [PolicyKind; 5] = [
    PolicyKind::Close,
    PolicyKind::Open,
    PolicyKind::Predictive(PredictorKind::Local),
    PolicyKind::Predictive(PredictorKind::Tournament),
    PolicyKind::Predictive(PredictorKind::Perfect),
];

/// One Fig. 13 bar: a page-management scheme on a workload/configuration.
#[derive(Debug, Clone)]
pub struct PredictorRow {
    pub workload: String,
    pub ubank: (usize, usize),
    pub policy: PolicyKind,
    pub rel_ipc: f64,
    pub hit_rate: f64,
}

/// Fig. 13: page-management schemes (C/O/L/T/P) across workloads and
/// configurations, IPC relative to the open policy at (1,1) per workload.
pub fn predictor_study(
    workloads: &[Workload],
    configs: &[(usize, usize)],
    quick: bool,
) -> Vec<PredictorRow> {
    let mut cfgs = Vec::new();
    let mut keys = Vec::new();
    for &w in workloads {
        for &(nw, nb) in configs {
            for policy in FIG13_POLICIES {
                let mut c = policy_study_cfg(w, quick);
                c.mem = c.mem.with_ubanks(nw, nb);
                c.policy = policy;
                cfgs.push(c);
                keys.push((w, (nw, nb), policy));
            }
        }
    }
    let results = run_many(&cfgs);
    let mut rows = Vec::new();
    for (i, &(w, ubank, policy)) in keys.iter().enumerate() {
        let base_idx = keys
            .iter()
            .position(|&(bw, bu, bp)| bw == w && bu == configs[0] && bp == PolicyKind::Open)
            .unwrap();
        rows.push(PredictorRow {
            workload: w.label(),
            ubank,
            policy,
            rel_ipc: results[i].ipc / results[base_idx].ipc,
            hit_rate: results[i].policy_hit_rate,
        });
    }
    rows
}

/// One Fig. 14 bar: an interface on a workload (no μbanks).
#[derive(Debug, Clone)]
pub struct InterfaceRow {
    pub workload: String,
    pub interface: Interface,
    pub ipc: f64,
    pub rel_ipc: f64,
    pub rel_inv_edp: f64,
    /// Same stacking as [`RepresentativeRow::power_w`].
    pub power_w: [f64; 5],
    /// ACT/PRE share of memory power (the paper's 76.2% observation).
    pub act_pre_fraction: f64,
}

/// Fig. 14: DDR3-PCB vs DDR3-TSI vs LPDDR-TSI without μbanks.
pub fn interface_study(workloads: &[Workload], quick: bool) -> Vec<InterfaceRow> {
    let interfaces = [Interface::Ddr3Pcb, Interface::Ddr3Tsi, Interface::LpddrTsi];
    let mut cfgs = Vec::new();
    for &w in workloads {
        for &i in &interfaces {
            let mut c = base_cfg(w, quick);
            c.mem = MemConfig::for_interface(i);
            cfgs.push(c);
        }
    }
    let results = run_many(&cfgs);
    let mut rows = Vec::new();
    for (wi, &w) in workloads.iter().enumerate() {
        let group = &results[wi * 3..wi * 3 + 3];
        let base = &group[0]; // DDR3-PCB
        for (ii, r) in group.iter().enumerate() {
            let p = r.memory_power_w();
            rows.push(InterfaceRow {
                workload: w.label(),
                interface: interfaces[ii],
                ipc: r.ipc,
                rel_ipc: r.ipc / base.ipc,
                rel_inv_edp: r.inverse_edp_vs(base),
                power_w: [
                    r.processor_power_w(),
                    p.act_pre_w,
                    p.static_w + p.refresh_w,
                    p.rdwr_w,
                    p.io_w,
                ],
                act_pre_fraction: r.mem_energy.act_pre_fraction(),
            });
        }
    }
    rows
}

/// Related-work comparison (§VII): the same workload on the named bank
/// organizations — conventional, SALP (bitline-only partitioning),
/// Half-DRAM (2×2 point), and μbank — all on the LPDDR-TSI substrate.
/// Returns `(label, result)` pairs; index 0 is the conventional baseline.
pub fn organization_comparison(workload: Workload, quick: bool) -> Vec<(String, SimResult)> {
    use microbank_core::organization::Organization;
    let orgs = Organization::comparison_set();
    let cfgs: Vec<SimConfig> = orgs
        .iter()
        .map(|o| {
            let mut c = base_cfg(workload, quick);
            c.mem = c.mem.with_organization(*o);
            c
        })
        .collect();
    let results = run_many(&cfgs);
    orgs.iter().map(|o| o.label()).zip(results).collect()
}

/// The §I headline pair: (DDR3-PCB baseline, μbank LPDDR-TSI proposed).
/// Shared between [`headline`] and the `headline` harness binary so the
/// sweep-runner path runs exactly the same configurations.
pub fn headline_cfgs(quick: bool) -> (SimConfig, SimConfig) {
    // Full-system comparison (the §I summary compares complete memory
    // systems): 64 cores, rate-mode spec-high, DDR3-PCB with its 8
    // controllers vs the 16-channel LPDDR-TSI system with (4,4) μbanks.
    let w = Workload::SpecGroupAvg(SpecGroup::High);
    let mut base = SimConfig::paper_default(w);
    base.mem = MemConfig::ddr3_pcb();
    let mut ub = SimConfig::paper_default(w);
    ub.mem = ub.mem.with_ubanks(4, 4);
    if quick {
        base = base.quick();
        ub = ub.quick();
    }
    (base, ub)
}

/// §I headline: best μbank LPDDR-TSI system vs the DDR3-PCB baseline on
/// the memory-intensive third of SPEC (spec-high). Returns
/// (IPC ratio, 1/EDP ratio).
pub fn headline(quick: bool) -> (f64, f64, SimResult, SimResult) {
    let (base, ub) = headline_cfgs(quick);
    let results = run_many(&[base, ub]);
    let (b, u) = (&results[0], &results[1]);
    (u.ipc / b.ipc, u.inverse_edp_vs(b), b.clone(), u.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_baseline_cell_is_one() {
        let g = ubank_grid(Workload::Spec("429.mcf"), true);
        assert!((g.rel_ipc[0][0] - 1.0).abs() < 1e-9);
        assert!((g.rel_inv_edp[0][0] - 1.0).abs() < 1e-9);
        // The best cell must be meaningfully better than baseline.
        let best = g.rel_ipc.iter().flatten().cloned().fold(0.0, f64::max);
        assert!(best > 1.1, "best rel IPC {best}");
    }

    #[test]
    fn representative_rows_shape() {
        let rows = representative_study(&[Workload::Spec("429.mcf")], true);
        assert_eq!(rows.len(), 4);
        assert!((rows[0].rel_ipc - 1.0).abs() < 1e-9);
        for r in &rows {
            assert!(r.power_w.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn interface_study_orders_interfaces() {
        let rows = interface_study(&[Workload::MixHigh], true);
        assert_eq!(rows.len(), 3);
        assert!((rows[0].rel_ipc - 1.0).abs() < 1e-9, "PCB is the baseline");
        // TSI interfaces beat PCB on IPC (more channels, faster bursts).
        assert!(rows[2].rel_ipc > rows[0].rel_ipc);
    }
}
