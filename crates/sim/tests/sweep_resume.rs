//! Crash-safe sweep resume (DESIGN.md §5d): a sweep killed mid-flight and
//! re-run must skip the slots its manifest already certifies and finish
//! with final artifacts *byte-identical* to an uninterrupted run's. A
//! failing slot stays isolated in its own record and is re-executed on
//! the next invocation.

use microbank_sim::report::Table;
use microbank_sim::simulator::{SimConfig, SimResult};
use microbank_sim::{SimError, SlotStatus, SweepRunner, SweepSlot};
use microbank_workloads::suite::Workload;
use std::path::PathBuf;

fn slot(id: &str, nw: usize, nb: usize) -> SweepSlot {
    let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
    cfg.mem = cfg.mem.with_ubanks(nw, nb);
    cfg.warmup_cycles = 2_000;
    cfg.measure_cycles = 4_000;
    SweepSlot {
        id: id.to_string(),
        cfg,
    }
}

fn four_slots() -> Vec<SweepSlot> {
    vec![
        slot("ubank_1x1", 1, 1),
        slot("ubank_2x2", 2, 2),
        slot("ubank_4x4", 4, 4),
        slot("ubank_8x8", 8, 8),
    ]
}

fn project(r: &SimResult) -> Vec<f64> {
    vec![r.ipc, r.mean_read_latency, r.cycles as f64]
}

fn table_from(records: &[microbank_sim::SlotRecord]) -> Table {
    let mut t = Table::new("sweep-resume demo", &["ipc", "mean_lat", "cycles"]);
    for r in records {
        t.push(r.id.clone(), r.values.clone());
    }
    t
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("microbank_sweep_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Acceptance: kill a 4-slot sweep after 2 executed slots, re-run, and
/// the resumed sweep (a) skips slots 1–2 via the manifest, (b) executes
/// only 3–4, and (c) produces final artifacts byte-identical to a sweep
/// that was never interrupted.
#[test]
fn killed_sweep_resumes_and_matches_uninterrupted_artifacts() {
    let dir_ref = fresh_dir("ref");
    let dir_killed = fresh_dir("killed");

    // Uninterrupted reference.
    let mut reference = SweepRunner::new("demo", &dir_ref);
    let ref_records = reference.run_slots(&four_slots(), project).unwrap();
    assert_eq!(ref_records.len(), 4);
    assert!(ref_records.iter().all(|r| r.status == SlotStatus::Ok));
    reference.write_table(&table_from(&ref_records)).unwrap();

    // Interrupted run: the injected kill fires before slot 3 executes.
    let mut interrupted = SweepRunner::new("demo", &dir_killed);
    interrupted.kill_after = Some(2);
    let err = interrupted
        .run_slots(&four_slots(), project)
        .expect_err("the injected kill must abort the sweep");
    assert!(matches!(err, SimError::Panic { .. }));
    assert_eq!(
        interrupted.records().len(),
        2,
        "exactly two slots completed before the kill"
    );

    // Resume: a fresh runner on the same directory.
    let mut resumed = SweepRunner::new("demo", &dir_killed);
    let records = resumed.run_slots(&four_slots(), project).unwrap();
    assert_eq!(records.len(), 4);
    assert!(
        records[0].resumed && records[1].resumed,
        "slots 1-2 must be satisfied from the manifest"
    );
    assert!(
        !records[2].resumed && !records[3].resumed,
        "slots 3-4 must actually execute"
    );
    assert!(records.iter().all(|r| r.status == SlotStatus::Ok));
    resumed.write_table(&table_from(&records)).unwrap();

    // Byte-identical artifacts.
    for name in ["demo.csv", "demo.json"] {
        let a = std::fs::read(dir_ref.join(name)).unwrap();
        let b = std::fs::read(dir_killed.join(name)).unwrap();
        assert_eq!(a, b, "{name} diverged between resumed and uninterrupted");
    }

    let _ = std::fs::remove_dir_all(&dir_ref);
    let _ = std::fs::remove_dir_all(&dir_killed);
}

/// A config change invalidates only its own slot: the resume re-executes
/// the slot whose fingerprint no longer matches and reuses the rest.
#[test]
fn resume_reexecutes_slots_whose_config_changed() {
    let dir = fresh_dir("fpchange");
    let mut first = SweepRunner::new("demo", &dir);
    first.run_slots(&four_slots(), project).unwrap();

    let mut slots = four_slots();
    slots[1].cfg.seed ^= 1; // behavior-relevant change to slot 2 only
    let mut second = SweepRunner::new("demo", &dir);
    let records = second.run_slots(&slots, project).unwrap();
    assert!(records[0].resumed && records[2].resumed && records[3].resumed);
    assert!(
        !records[1].resumed,
        "a changed fingerprint must force re-execution"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Per-slot isolation: an invalid config records a `Failed` outcome with
/// the rendered error (no retry — validation is deterministic) while the
/// surrounding slots complete; a later invocation re-attempts it.
#[test]
fn failed_slot_is_isolated_and_reattempted_on_resume() {
    let dir = fresh_dir("failiso");
    let mut slots = four_slots();
    slots[2].cfg = SimConfig::spec_single_channel(Workload::Spec("no.such.app")).quick();

    let mut runner = SweepRunner::new("demo", &dir);
    let records = runner.run_slots(&slots, project).unwrap();
    assert_eq!(records.len(), 4, "a failing slot must not stop the sweep");
    assert_eq!(records[2].status, SlotStatus::Failed);
    assert_eq!(
        records[2].attempts, 1,
        "validation failures are deterministic: no retry"
    );
    let msg = records[2].error.as_deref().unwrap();
    assert!(msg.contains("unknown SPEC app"), "{msg}");
    for i in [0, 1, 3] {
        assert_eq!(records[i].status, SlotStatus::Ok, "slot {i} isolated");
    }

    // A re-run does not treat the failed record as done.
    let mut again = SweepRunner::new("demo", &dir);
    let records = again.run_slots(&slots, project).unwrap();
    assert!(
        !records[2].resumed,
        "failed slots must be re-attempted, not resumed"
    );
    assert!(records[0].resumed && records[1].resumed && records[3].resumed);
    let _ = std::fs::remove_dir_all(&dir);
}
