//! Integration tests for the sweep service daemon (DESIGN.md §5i).
//!
//! Everything here drives the real job API through [`SweepService::route`]
//! (no sockets — the HTTP listener has its own fuzz suite in the
//! telemetry crate) and asserts the service-level contracts: admission
//! validation, golden-fingerprint identity with direct `try_run`,
//! cancellation, deadlines, bounded admission, and checkpoint/resume
//! byte-identity of the durable artifacts.

use microbank_sim::service::{golden_fp_from_values, ServiceConfig, SweepService};
use microbank_sim::simulator::{golden_fingerprint, try_run, SimConfig};
use microbank_telemetry::json::{self, JsonValue};
use microbank_telemetry::{HttpRequest, HttpResponse};
use microbank_workloads::suite::Workload;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("microbank-service-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn req(method: &str, path: &str, body: &str) -> HttpRequest {
    HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        body: body.as_bytes().to_vec(),
    }
}

fn send(service: &SweepService, method: &str, path: &str, body: &str) -> HttpResponse {
    service
        .route(&req(method, path, body))
        .unwrap_or_else(|| panic!("{method} {path}: not a job-API route"))
}

/// Poll `GET /jobs/{id}` until the job reaches `state` (label) or the
/// deadline passes; returns the parsed detail body.
fn wait_for_state(service: &SweepService, id: &str, state: &str, within: Duration) -> JsonValue {
    let deadline = Instant::now() + within;
    loop {
        let resp = send(service, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(resp.code, 200, "detail: {}", resp.body);
        let v = json::parse(&resp.body).expect("detail is valid JSON");
        if v.get("state").and_then(|s| s.as_str()) == Some(state) {
            return v;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never reached {state:?}; last detail: {}",
            resp.body
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Extract one slot's golden fingerprint from a parsed job detail.
fn slot_fp(detail: &JsonValue, slot_id: &str) -> [u64; 13] {
    let slots = detail.get("slots").expect("slots array").items();
    let slot = slots
        .iter()
        .find(|s| s.get("id").and_then(|i| i.as_str()) == Some(slot_id))
        .unwrap_or_else(|| panic!("no slot {slot_id}"));
    assert_eq!(slot.get("state").and_then(|s| s.as_str()), Some("ok"));
    let values: Vec<f64> = slot
        .get("values")
        .expect("values")
        .items()
        .iter()
        .map(|v| match v {
            JsonValue::Number(n) => *n,
            other => panic!("non-numeric value {other:?}"),
        })
        .collect();
    golden_fp_from_values(&values).expect("projection carries the fingerprint")
}

/// The quick two-slot jobspec used by the identity and resume tests,
/// alongside the SimConfigs the codec is expected to reconstruct.
const TWO_SLOTS: &str = r#"{"name":"identity","slots":[
    {"id":"mix","workload":"mix-high","quick":true},
    {"id":"mcf","workload":"429.mcf","quick":true,"seed":7}
]}"#;

fn two_slot_configs() -> [(&'static str, SimConfig); 2] {
    let mix = SimConfig::paper_default(Workload::MixHigh).quick();
    let mut mcf = SimConfig::paper_default(Workload::Spec("429.mcf")).quick();
    mcf.seed = 7;
    [("mix", mix), ("mcf", mcf)]
}

/// Tentpole acceptance: results served by the daemon are bit-identical
/// to direct `try_run`, at 1 and 2 workers.
#[test]
fn service_results_match_direct_try_run_at_1_and_2_workers() {
    let mut manifests = Vec::new();
    for workers in [1usize, 2] {
        let mut cfg = ServiceConfig::new(test_dir(&format!("golden-w{workers}")));
        cfg.workers = workers;
        let dir = cfg.dir.clone();
        let service = SweepService::start(cfg).expect("start");
        let resp = send(&service, "POST", "/jobs", TWO_SLOTS);
        assert_eq!(resp.code, 202, "admit: {}", resp.body);
        service.wait_idle();
        let detail = wait_for_state(&service, "job-1", "done", Duration::from_secs(60));
        for (slot_id, direct_cfg) in two_slot_configs() {
            let direct = try_run(&direct_cfg).expect("direct run");
            assert_eq!(
                slot_fp(&detail, slot_id),
                golden_fingerprint(&direct),
                "slot {slot_id} diverged from direct try_run at {workers} workers"
            );
        }
        drop(service);
        manifests.push(std::fs::read(dir.join("job-1.manifest.json")).expect("manifest"));
    }
    assert_eq!(
        manifests[0], manifests[1],
        "manifest bytes must not depend on worker count"
    );
}

/// Invalid configs are rejected with the full per-constraint report and
/// never enqueued.
#[test]
fn invalid_jobs_are_rejected_with_a_report_and_never_enqueued() {
    let service = SweepService::start(ServiceConfig::new(test_dir("reject"))).expect("start");

    // Unknown workload label.
    let resp = send(
        &service,
        "POST",
        "/jobs",
        r#"[{"workload":"no-such-suite"}]"#,
    );
    assert_eq!(resp.code, 400);
    assert!(resp.body.contains("unknown label"), "{}", resp.body);

    // Unknown field + validation-ladder failure (zero channels), both
    // reported in one response.
    let resp = send(
        &service,
        "POST",
        "/jobs",
        r#"[{"workload":"mix-high","quick":true,"channels":0,"bogus":1}]"#,
    );
    assert_eq!(resp.code, 400);
    assert!(resp.body.contains("unknown field"), "{}", resp.body);
    assert!(resp.body.contains("channels"), "{}", resp.body);

    // Duplicate slot ids.
    let resp = send(
        &service,
        "POST",
        "/jobs",
        r#"[{"id":"a","workload":"mix-high","quick":true},{"id":"a","workload":"mix-high","quick":true}]"#,
    );
    assert_eq!(resp.code, 400, "{}", resp.body);

    // Nothing was admitted.
    let resp = send(&service, "GET", "/jobs", "");
    let v = json::parse(&resp.body).expect("list is JSON");
    assert_eq!(v.get("jobs").expect("jobs").items().len(), 0);
}

/// A slot spec slow enough that cancellation/deadline always lands
/// mid-run (quick warmup, but a long measure phase).
const SLOW_JOB: &str = r#"{"name":"slow","slots":[
    {"id":"long","workload":"mix-high","quick":true,"measure_cycles":40000000}
]}"#;

#[test]
fn delete_cancels_a_running_job() {
    let mut cfg = ServiceConfig::new(test_dir("cancel"));
    cfg.workers = 1;
    let service = SweepService::start(cfg).expect("start");
    let resp = send(&service, "POST", "/jobs", SLOW_JOB);
    assert_eq!(resp.code, 202, "{}", resp.body);
    wait_for_state(&service, "job-1", "running", Duration::from_secs(10));

    let resp = send(&service, "DELETE", "/jobs/job-1", "");
    assert_eq!(resp.code, 202, "{}", resp.body);
    let detail = wait_for_state(&service, "job-1", "cancelled", Duration::from_secs(20));
    let slot = &detail.get("slots").unwrap().items()[0];
    assert_eq!(slot.get("state").and_then(|s| s.as_str()), Some("failed"));
    let err = slot.get("error").and_then(|e| e.as_str()).unwrap_or("");
    assert!(err.contains("cancelled"), "slot error: {err:?}");

    // Cancelling a terminal job is a conflict, not a crash.
    let resp = send(&service, "DELETE", "/jobs/job-1", "");
    assert_eq!(resp.code, 409, "{}", resp.body);
}

#[test]
fn deadline_expiry_times_a_job_out() {
    let mut cfg = ServiceConfig::new(test_dir("deadline"));
    cfg.workers = 1;
    let service = SweepService::start(cfg).expect("start");
    let body = r#"{"name":"slow","deadline_ms":400,"slots":[
        {"id":"long","workload":"mix-high","quick":true,"measure_cycles":40000000}
    ]}"#;
    let resp = send(&service, "POST", "/jobs", body);
    assert_eq!(resp.code, 202, "{}", resp.body);
    let detail = wait_for_state(&service, "job-1", "timed-out", Duration::from_secs(20));
    let slot = &detail.get("slots").unwrap().items()[0];
    let err = slot.get("error").and_then(|e| e.as_str()).unwrap_or("");
    assert!(err.contains("deadline"), "slot error: {err:?}");
}

#[test]
fn full_queue_yields_429_with_retry_after() {
    let mut cfg = ServiceConfig::new(test_dir("backpressure"));
    cfg.workers = 1;
    cfg.queue_cap = 1;
    let service = SweepService::start(cfg).expect("start");
    let resp = send(&service, "POST", "/jobs", SLOW_JOB);
    assert_eq!(resp.code, 202, "{}", resp.body);

    let resp = send(&service, "POST", "/jobs", SLOW_JOB);
    assert_eq!(resp.code, 429, "{}", resp.body);
    assert!(
        resp.headers.iter().any(|(k, _)| *k == "Retry-After"),
        "429 must carry Retry-After"
    );

    // Freeing the slot re-opens admission.
    send(&service, "DELETE", "/jobs/job-1", "");
    wait_for_state(&service, "job-1", "cancelled", Duration::from_secs(20));
    let resp = send(&service, "POST", "/jobs", SLOW_JOB);
    assert_eq!(resp.code, 202, "{}", resp.body);
    send(&service, "DELETE", "/jobs/job-2", "");
    wait_for_state(&service, "job-2", "cancelled", Duration::from_secs(20));
}

/// Checkpoint/resume byte-identity: interrupt a job mid-flight via
/// graceful drain, restart the service over the same directory, and the
/// final manifest must be byte-identical to an uninterrupted control
/// run — certified slots are never re-executed, and nothing about the
/// interruption leaks into the durable artifacts.
#[test]
fn drain_checkpoint_then_restart_resumes_byte_identically() {
    let body = r#"{"name":"resume","slots":[
        {"id":"s0","workload":"mix-high","quick":true},
        {"id":"s1","workload":"mix-high","quick":true,"seed":11},
        {"id":"s2","workload":"mix-high","quick":true,"seed":12}
    ]}"#;

    // Control: run to completion uninterrupted.
    let control_dir = test_dir("resume-control");
    {
        let mut cfg = ServiceConfig::new(&control_dir);
        cfg.workers = 1;
        let service = SweepService::start(cfg).expect("start control");
        assert_eq!(send(&service, "POST", "/jobs", body).code, 202);
        service.wait_idle();
        wait_for_state(&service, "job-1", "done", Duration::from_secs(90));
    }
    let control = std::fs::read(control_dir.join("job-1.manifest.json")).expect("control manifest");

    // Interrupted: drain after the first slot certifies, mid-second-slot.
    let dir = test_dir("resume-victim");
    {
        let mut cfg = ServiceConfig::new(&dir);
        cfg.workers = 1;
        cfg.drain_grace_ms = 100;
        let mut service = SweepService::start(cfg).expect("start victim");
        assert_eq!(send(&service, "POST", "/jobs", body).code, 202);
        // Wait for slot s0 to certify, then pull the plug.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let resp = send(&service, "GET", "/jobs/job-1", "");
            if resp.body.contains("\"id\":\"s0\",\"state\":\"ok\"") {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "s0 never certified: {}",
                resp.body
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        assert_eq!(send(&service, "POST", "/shutdown", "").code, 202);
        service.shutdown();
        // The checkpoint persisted the job as queued with its certified
        // records; the in-flight slot was discarded whole.
        let queue = std::fs::read_to_string(dir.join("sweepd.queue.json")).expect("queue file");
        assert!(queue.contains("\"state\":\"queued\""), "{queue}");
    }

    // Restart over the same directory and let it finish.
    {
        let mut cfg = ServiceConfig::new(&dir);
        cfg.workers = 1;
        let service = SweepService::start(cfg).expect("restart");
        service.wait_idle();
        wait_for_state(&service, "job-1", "done", Duration::from_secs(90));
    }
    let resumed = std::fs::read(dir.join("job-1.manifest.json")).expect("resumed manifest");
    assert_eq!(
        control, resumed,
        "resumed manifest must be byte-identical to the uninterrupted run"
    );
}
