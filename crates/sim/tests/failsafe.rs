//! Fail-safe pipeline suite (DESIGN.md §5d): the validation ladder, the
//! typed-error entry points, the sharded drive's watchdog, and the
//! sequential rescue retry. The cross-cutting invariant: a healthy run
//! through `try_run` is bit-identical to `run`, and *no* configuration —
//! valid, invalid, or stalled — may take the process down when entering
//! through the fallible API.

use microbank_ctrl::policy::PolicyKind;
use microbank_ctrl::predictor::PredictorKind;
use microbank_ctrl::scheduler::SchedulerKind;
use microbank_sim::simulator::{
    golden_fingerprint, run, try_run, try_run_once, DriveMode, SequentialReason, SimConfig,
};
use microbank_sim::SimError;
use microbank_workloads::suite::Workload;

/// The golden suite's configuration grid (kept in sync with
/// `integration_golden.rs` and `parallel_invariance.rs`).
fn golden_grid() -> Vec<SimConfig> {
    let mut out = Vec::new();
    for &(nw, nb) in &[(1, 1), (8, 8)] {
        for sched in [
            SchedulerKind::FrFcfs,
            SchedulerKind::ParBs { marking_cap: 5 },
        ] {
            for policy in [
                PolicyKind::Open,
                PolicyKind::Close,
                PolicyKind::Predictive(PredictorKind::Local),
            ] {
                let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
                cfg.mem = cfg.mem.with_ubanks(nw, nb);
                cfg.warmup_cycles = 10_000;
                cfg.measure_cycles = 30_000;
                cfg.scheduler = sched;
                cfg.policy = policy;
                out.push(cfg);
            }
        }
    }
    assert_eq!(out.len(), 12);
    out
}

/// A short multi-channel run: the class where the sharded drive actually
/// distributes work, and therefore where the watchdog matters.
fn multi_channel_cfg() -> SimConfig {
    let mut cfg = SimConfig::paper_default(Workload::MixHigh);
    cfg.warmup_cycles = 2_000;
    cfg.measure_cycles = 6_000;
    cfg
}

/// Acceptance: all 12 golden configs produce bit-identical fingerprints
/// through `run()` and `try_run()` at 1 and 2 worker threads, with the
/// watchdog armed (the default) and never firing on a healthy run.
#[test]
fn try_run_matches_run_on_every_golden_config() {
    for cfg in golden_grid() {
        assert!(cfg.watchdog_timeout_ms > 0, "watchdog armed by default");
        let via_run = run(&cfg.clone().with_threads(1));
        let via_try = try_run(&cfg.clone().with_threads(2)).expect("healthy config");
        assert_eq!(
            golden_fingerprint(&via_run),
            golden_fingerprint(&via_try),
            "run/try_run diverged for {:?}/{:?}/{:?}",
            cfg.mem.ubank,
            cfg.scheduler,
            cfg.policy
        );
        assert!(
            !matches!(
                via_try.drive,
                DriveMode::Sequential {
                    reason: SequentialReason::WatchdogRetry
                }
            ),
            "watchdog must not fire on a healthy run"
        );
    }
}

/// `SimResult::drive` truthfully reports which loop ran and why.
#[test]
fn drive_mode_reports_dispatch_decision() {
    let cfg = multi_channel_cfg();
    let seq = try_run(&cfg.clone().with_threads(1)).unwrap();
    assert_eq!(
        seq.drive,
        DriveMode::Sequential {
            reason: SequentialReason::SingleThread
        }
    );
    let sharded = try_run(&cfg.clone().with_threads(2)).unwrap();
    assert_eq!(sharded.drive, DriveMode::Sharded { workers: 2 });
}

/// Satellite: when `noc_latency < ctrl_stride` the dispatcher must refuse
/// to shard, report why, and produce exactly the sequential result.
#[test]
fn noc_below_stride_falls_back_sequential_with_identical_fingerprint() {
    let mut cfg = multi_channel_cfg();
    cfg.ctrl_stride = cfg.cmp.noc_latency + 2; // violate the shard precondition
    let threaded = try_run(&cfg.clone().with_threads(4)).unwrap();
    assert_eq!(
        threaded.drive,
        DriveMode::Sequential {
            reason: SequentialReason::NocBelowStride
        },
        "dispatcher must surface why it refused to shard"
    );
    let sequential = try_run(&cfg.clone().with_threads(1)).unwrap();
    assert_eq!(
        golden_fingerprint(&threaded),
        golden_fingerprint(&sequential),
        "fallback path must be bit-identical to the sequential loop"
    );
}

/// An injected worker stall must surface as `SimError::ShardStall` with
/// coherent diagnostics when the retry is disabled (`try_run_once`).
#[test]
fn watchdog_surfaces_stall_with_diagnostics() {
    let mut cfg = multi_channel_cfg().with_threads(2);
    cfg.watchdog_timeout_ms = 150;
    cfg.test_stall_shard = Some(100);
    let err = try_run_once(&cfg).expect_err("stalled run must not succeed");
    match err {
        SimError::ShardStall(d) => {
            assert_eq!(d.workers, 2);
            assert_eq!(d.stalled_worker, 0, "worker 0 carries the injected stall");
            assert_eq!(d.worker_done.len(), 2);
            assert_eq!(
                d.worker_done[0], 100,
                "worker 0 sealed exactly the slots before the stall"
            );
            assert!(d.waiting_for_slot > 100);
            assert_eq!(d.timeout_ms, 150);
            assert_eq!(d.mailbox_depths.len(), cfg.mem.channels);
            assert_eq!(d.occupancy.len(), cfg.mem.channels);
            let shown = SimError::ShardStall(d).to_string();
            assert!(
                shown.contains("worker 0/2"),
                "display names the worker: {shown}"
            );
        }
        other => panic!("expected ShardStall, got: {other}"),
    }
}

/// The tentpole degradation property: with the retry enabled (`try_run`),
/// a stalled sharded run degrades to slow-but-correct — the sequential
/// rescue produces exactly the fingerprint a healthy run produces.
#[test]
fn watchdog_retry_degrades_to_correct_sequential_run() {
    let mut stalled = multi_channel_cfg().with_threads(2);
    stalled.watchdog_timeout_ms = 150;
    stalled.test_stall_shard = Some(50);
    let rescued = try_run(&stalled).expect("retry must rescue the run");
    assert_eq!(
        rescued.drive,
        DriveMode::Sequential {
            reason: SequentialReason::WatchdogRetry
        }
    );
    let healthy = try_run(&multi_channel_cfg().with_threads(1)).unwrap();
    assert_eq!(
        golden_fingerprint(&rescued),
        golden_fingerprint(&healthy),
        "rescued run must be bit-identical to a healthy sequential run"
    );
}

/// Observability under degradation: the watchdog-retry path must stay
/// bit-identical with span tracing enabled — the rescue's tracer is
/// rebuilt for the sequential attempt, and none of it may leak into
/// simulated state.
#[test]
fn watchdog_retry_is_identical_with_span_tracing_enabled() {
    let mut stalled = multi_channel_cfg().with_threads(2).with_spans(true);
    stalled.watchdog_timeout_ms = 150;
    stalled.test_stall_shard = Some(50);
    let rescued = try_run(&stalled).expect("retry must rescue the traced run");
    assert_eq!(
        rescued.drive,
        DriveMode::Sequential {
            reason: SequentialReason::WatchdogRetry
        }
    );
    let healthy = try_run(&multi_channel_cfg().with_threads(1)).unwrap();
    assert_eq!(
        golden_fingerprint(&rescued),
        golden_fingerprint(&healthy),
        "traced rescue must be bit-identical to a healthy sequential run"
    );
    // The rescue ran sequentially, so its fine spans are the sequential
    // breakdown, not stale sharded rows from the failed attempt.
    let paths: Vec<&str> = rescued
        .profile
        .spans
        .iter()
        .map(|s| s.path.as_str())
        .collect();
    assert!(
        paths.contains(&"drive/ctrl-tick"),
        "rescued traced run missing sequential spans: {paths:?}"
    );
    assert!(
        !paths.iter().any(|p| p.contains("coordinator")),
        "rescued run leaked sharded spans from the failed attempt: {paths:?}"
    );
}

/// The validation ladder rejects a bad config with per-component
/// diagnostics instead of panicking mid-construction.
#[test]
fn invalid_configs_yield_typed_errors_not_panics() {
    // Several independent problems across components, reported at once.
    let mut cfg = SimConfig::paper_default(Workload::MixHigh);
    cfg.mem.queue_size = 0;
    cfg.mem.ubank.n_w = 3; // not a power of two
    cfg.mem.timing.t_ras_ns = 5.0; // < tRCD: impossible device
    cfg.cmp.mshrs_per_core = 0;
    cfg.ctrl_stride = 0;
    let err = try_run(&cfg).expect_err("invalid config must be rejected");
    match &err {
        SimError::InvalidConfig { errors } => {
            let components: Vec<&str> = errors.iter().map(|e| e.component).collect();
            assert!(components.contains(&"MemConfig"), "{components:?}");
            assert!(components.contains(&"CmpConfig"), "{components:?}");
            assert!(components.contains(&"SimConfig"), "{components:?}");
            for e in errors {
                assert!(!e.diagnostics.is_empty(), "diagnostics never empty");
            }
        }
        other => panic!("expected InvalidConfig, got: {other}"),
    }
    let shown = err.to_string();
    assert!(shown.contains("queue_size"), "{shown}");
    assert!(shown.contains("tRAS"), "{shown}");
}

/// The panicking wrapper stays a wrapper: same rejection, as a panic
/// whose message carries the diagnostics.
#[test]
#[should_panic(expected = "unknown SPEC app")]
fn run_panics_with_formatted_diagnostics_on_invalid_config() {
    let cfg = SimConfig::spec_single_channel(Workload::Spec("no.such.app")).quick();
    let _ = run(&cfg);
}
