//! Multi-tenant QoS suite (DESIGN §5g): the golden-identity pin — an
//! accounting-only `QosConfig` must be invisible to every simulated
//! behavior — plus determinism and worker-count invariance of the
//! regulated path, and validation routing through `SimConfig::validate`.

use microbank_ctrl::policy::PolicyKind;
use microbank_ctrl::predictor::PredictorKind;
use microbank_ctrl::scheduler::SchedulerKind;
use microbank_sim::simulator::{golden_fingerprint, run, run_instrumented, SimConfig};
use microbank_sim::{QosConfig, QosGranularity};
use microbank_telemetry::TelemetryConfig;
use microbank_workloads::suite::Workload;

/// Two corners of the golden grid (kept in sync with
/// `integration_golden.rs`): the degenerate partition and the μbank one.
fn golden_corner(part: (usize, usize), sched: SchedulerKind, policy: PolicyKind) -> SimConfig {
    let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
    cfg.mem = cfg.mem.with_ubanks(part.0, part.1);
    cfg.warmup_cycles = 10_000;
    cfg.measure_cycles = 30_000;
    cfg.scheduler = sched;
    cfg.policy = policy;
    cfg
}

fn corners() -> Vec<SimConfig> {
    vec![
        golden_corner((1, 1), SchedulerKind::FrFcfs, PolicyKind::Open),
        golden_corner(
            (8, 8),
            SchedulerKind::ParBs { marking_cap: 5 },
            PolicyKind::Predictive(PredictorKind::Local),
        ),
    ]
}

/// A short multi-channel TenantMix run under active regulation: the
/// latency-critical tenant is unregulated at priority 0, the batch tenant
/// carries a per-μbank budget at priority 1.
fn regulated_cfg() -> SimConfig {
    let mut cfg = SimConfig::paper_default(Workload::TenantMix { lc_cores: 8 });
    cfg.warmup_cycles = 5_000;
    cfg.measure_cycles = 15_000;
    cfg.with_qos(
        QosConfig::tracking()
            .with_granularity(QosGranularity::Ubank)
            .with_replenish_period(1_000)
            .with_tenant(None, 0)
            .with_tenant(Some(4), 1),
    )
}

/// The golden-identity pin: a constructed-but-disabled regulator
/// (`QosConfig::tracking()` — no budgets, no priorities) reproduces the
/// unarmed run bit for bit on every simulated-behavior surface, at 1 and
/// 2 workers and on both sides of the skip axis. Mirrors the
/// clean-armed-fault-engine neutrality pin.
#[test]
fn tracking_qos_is_behavior_neutral() {
    for cfg in corners() {
        let base = run(&cfg);
        for workers in [1usize, 2] {
            for skip in [true, false] {
                let armed = run(&cfg
                    .clone()
                    .with_qos(QosConfig::tracking())
                    .with_threads(workers)
                    .with_time_skip(skip));
                let tag = format!(
                    "{:?}/{:?}, {workers} workers, skip {skip}",
                    cfg.mem.ubank, cfg.scheduler
                );
                assert_eq!(
                    golden_fingerprint(&base),
                    golden_fingerprint(&armed),
                    "{tag}: tracking QoS perturbed simulated behavior"
                );
                assert_eq!(base.dram, armed.dram, "{tag}: DRAM counters diverged");
                assert_eq!(
                    base.read_latency_hist, armed.read_latency_hist,
                    "{tag}: latency histogram diverged"
                );
                let report = armed.qos.expect("tracking config arms the report");
                assert_eq!(report.throttled, 0, "{tag}: tracking config throttled");
                assert_eq!(report.reclaimed, 0, "{tag}: tracking config reclaimed");
                let shares: f64 = report.tenants.iter().map(|t| t.share).sum();
                assert!(
                    (shares - 1.0).abs() < 1e-9,
                    "{tag}: bandwidth shares sum to {shares}, not 1"
                );
            }
        }
        assert!(base.qos.is_none(), "unarmed run must not report QoS");
    }
}

/// Telemetry identity under the tracking config: heat maps and command
/// traces byte-identical; the epoch timeline may only *append* the
/// per-tenant columns — every pre-existing column stays byte-identical —
/// and those appended columns are worker-count invariant.
#[test]
fn tracking_qos_only_appends_timeline_columns() {
    let cfg = corners()
        .pop()
        .unwrap()
        .with_telemetry(TelemetryConfig::new(5_000, 1_024));
    let (_, t_base) = run_instrumented(&cfg.clone());
    let (_, t_armed) = run_instrumented(&cfg.clone().with_qos(QosConfig::tracking()));
    assert_eq!(t_base.heat[0].to_csv(), t_armed.heat[0].to_csv());
    assert_eq!(t_base.trace, t_armed.trace, "command trace diverged");
    let base_csv = t_base.timeline.to_csv();
    let armed_csv = t_armed.timeline.to_csv();
    let (base_lines, armed_lines): (Vec<&str>, Vec<&str>) =
        (base_csv.lines().collect(), armed_csv.lines().collect());
    assert_eq!(base_lines.len(), armed_lines.len(), "epoch count diverged");
    assert!(
        armed_lines[0].ends_with(",tenant0.cols"),
        "{}",
        armed_lines[0]
    );
    for (b, a) in base_lines.iter().zip(&armed_lines) {
        assert!(
            a.starts_with(*b) && a.as_bytes()[b.len()] == b',',
            "timeline row rewritten, not appended:\n  base  {b}\n  armed {a}"
        );
    }
    // The appended columns are themselves sharding-invariant.
    let (_, t_shard) =
        run_instrumented(&cfg.clone().with_qos(QosConfig::tracking()).with_threads(2));
    assert_eq!(
        armed_csv,
        t_shard.timeline.to_csv(),
        "tenant columns diverged at 2 workers"
    );
}

/// Active regulation is deterministic and worker-count invariant: repeat
/// runs, the sharded drive, and the per-cycle reference all agree on the
/// fingerprint AND the full per-tenant report (shares, percentiles,
/// throttle/reclaim counters).
#[test]
fn regulated_tenant_mix_is_deterministic_and_invariant() {
    let cfg = regulated_cfg();
    let reference = run(&cfg.clone().with_threads(1));
    let report = format!("{:?}", reference.qos);
    for (tag, variant) in [
        ("repeat", cfg.clone().with_threads(1)),
        ("2 workers", cfg.clone().with_threads(2)),
        (
            "skip off",
            cfg.clone().with_threads(1).with_time_skip(false),
        ),
        (
            "2 workers, skip off",
            cfg.clone().with_threads(2).with_time_skip(false),
        ),
    ] {
        let r = run(&variant);
        assert_eq!(
            golden_fingerprint(&reference),
            golden_fingerprint(&r),
            "{tag}: regulated fingerprint diverged"
        );
        assert_eq!(report, format!("{:?}", r.qos), "{tag}: QoS report diverged");
    }
    let q = reference.qos.expect("regulated run reports QoS");
    assert_eq!(q.tenants.len(), 2, "TenantMix reports both tenants");
    assert!(
        q.tenants.iter().all(|t| t.cols > 0),
        "both tenants must see service: {q:?}"
    );
    assert!(
        q.throttled + q.reclaimed > 0,
        "a 4-token/μbank/1k-cycle budget must bind on the batch tenant"
    );
}

/// Bad QoS knobs are rejected through `SimConfig::validate` alongside
/// every other component, not at arm time.
#[test]
fn invalid_qos_config_is_rejected_by_sim_validate() {
    let cfg = regulated_cfg();
    assert!(cfg.validate().is_ok(), "the regulated config must be valid");
    let bad = cfg.with_qos(QosConfig::tracking().with_replenish_period(0));
    match bad.validate() {
        Err(microbank_sim::SimError::InvalidConfig { errors }) => {
            assert!(
                errors
                    .iter()
                    .any(|e| e.diagnostics.iter().any(|d| d.contains("replenish_period"))),
                "diagnostics should name the bad knob: {errors:?}"
            );
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}
