//! Golden determinism suite: the hot-path refactors in the controller and
//! simulator (incremental queue indexes, pending-precharge sets, idle-tick
//! skipping, the enqueue slab, blocked-core skipping) are required to be
//! *behavior-preserving*. Each {scheduler} × {page policy} × {μbank
//! partition} configuration below must reproduce its committed fingerprint
//! exactly — every element is a function of simulated behavior only, never
//! wall clock.
//!
//! If a PR deliberately changes simulated behavior, regenerate the table
//! with the `golden_dump` binary (`cargo run --release -p microbank-bench
//! --bin golden_dump`) and scrutinize the diff in review.

use microbank_ctrl::policy::PolicyKind;
use microbank_ctrl::predictor::PredictorKind;
use microbank_ctrl::scheduler::SchedulerKind;
use microbank_faults::FaultConfig;
use microbank_sim::simulator::{golden_fingerprint, run, SimConfig};
use microbank_workloads::suite::Workload;

/// Committed fingerprints (regenerated only on deliberate behavior change).
const GOLDEN: &[(&str, &str, &str, [u64; 13])] = &[
    (
        "1x1",
        "frfcfs",
        "open",
        [
            7996,
            2140,
            0,
            2151,
            2145,
            2,
            0,
            1620,
            520,
            17120,
            2140,
            1015732,
            13233932962532133159,
        ],
    ),
    (
        "1x1",
        "frfcfs",
        "close",
        [
            8011,
            2146,
            0,
            2155,
            2149,
            2,
            0,
            1485,
            661,
            17168,
            2146,
            1016160,
            5121743617116882432,
        ],
    ),
    (
        "1x1",
        "frfcfs",
        "pred",
        [
            8023,
            2150,
            0,
            2154,
            2152,
            2,
            0,
            1462,
            688,
            17200,
            2150,
            1015492,
            3737647099831144546,
        ],
    ),
    (
        "1x1",
        "parbs",
        "open",
        [
            7999,
            2136,
            0,
            2145,
            2139,
            2,
            0,
            1688,
            448,
            17088,
            2136,
            1013420,
            14269536547925486192,
        ],
    ),
    (
        "1x1",
        "parbs",
        "close",
        [
            7926,
            2125,
            0,
            2135,
            2128,
            2,
            0,
            1536,
            589,
            17000,
            2125,
            1012892,
            617837831381716189,
        ],
    ),
    (
        "1x1",
        "parbs",
        "pred",
        [
            7980,
            2139,
            0,
            2147,
            2143,
            2,
            0,
            1496,
            643,
            17112,
            2139,
            1010202,
            12543753609092321841,
        ],
    ),
    (
        "8x8",
        "frfcfs",
        "open",
        [
            15237,
            3552,
            0,
            4082,
            3637,
            2,
            2,
            2633,
            917,
            28416,
            3552,
            1069632,
            8031994372379810256,
        ],
    ),
    (
        "8x8",
        "frfcfs",
        "close",
        [
            15240,
            3552,
            0,
            3648,
            3615,
            2,
            0,
            209,
            3343,
            28416,
            3552,
            1069504,
            2274558660540245059,
        ],
    ),
    (
        "8x8",
        "frfcfs",
        "pred",
        [
            15240,
            3552,
            0,
            3910,
            3877,
            2,
            0,
            525,
            3027,
            28416,
            3552,
            1069504,
            2274558660540245059,
        ],
    ),
    (
        "8x8",
        "parbs",
        "open",
        [
            15193,
            3550,
            0,
            4080,
            3639,
            2,
            2,
            2626,
            922,
            28400,
            3550,
            1068824,
            17821259411051779570,
        ],
    ),
    (
        "8x8",
        "parbs",
        "close",
        [
            15177,
            3551,
            0,
            3646,
            3611,
            2,
            0,
            209,
            3342,
            28408,
            3551,
            1068224,
            14940451591944711862,
        ],
    ),
    (
        "8x8",
        "parbs",
        "pred",
        [
            15223,
            3550,
            0,
            3905,
            3872,
            2,
            0,
            531,
            3019,
            28400,
            3550,
            1069040,
            7364169726719467890,
        ],
    ),
];

fn config_for(part: &str, sched: &str, policy: &str) -> SimConfig {
    let (nw, nb) = match part {
        "1x1" => (1, 1),
        "8x8" => (8, 8),
        other => panic!("unknown partition {other}"),
    };
    let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
    cfg.mem = cfg.mem.with_ubanks(nw, nb);
    cfg.warmup_cycles = 10_000;
    cfg.measure_cycles = 30_000;
    cfg.scheduler = match sched {
        "frfcfs" => SchedulerKind::FrFcfs,
        "parbs" => SchedulerKind::ParBs { marking_cap: 5 },
        other => panic!("unknown scheduler {other}"),
    };
    cfg.policy = match policy {
        "open" => PolicyKind::Open,
        "close" => PolicyKind::Close,
        "pred" => PolicyKind::Predictive(PredictorKind::Local),
        other => panic!("unknown policy {other}"),
    };
    cfg
}

#[test]
fn golden_fingerprints_are_reproduced() {
    let mut failures = Vec::new();
    for &(part, sched, policy, ref want) in GOLDEN {
        let r = run(&config_for(part, sched, policy));
        let got = golden_fingerprint(&r);
        if got != *want {
            failures.push(format!(
                "{part}/{sched}/{policy}:\n  want {want:?}\n  got  {got:?}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "behavior drift in {} golden config(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn golden_runs_are_deterministic_across_repeats() {
    // Same config twice → identical fingerprint (no hidden wall-clock or
    // iteration-order dependence anywhere in the simulated path).
    let (part, sched, policy) = ("8x8", "parbs", "pred");
    let a = golden_fingerprint(&run(&config_for(part, sched, policy)));
    let b = golden_fingerprint(&run(&config_for(part, sched, policy)));
    assert_eq!(a, b);
}

/// The reliability subsystem's hooks must be invisible when disabled:
/// `SimConfig.faults` defaults to `None`, and the table test above already
/// pins that path to the committed fingerprints. This test pins the
/// *stronger* claim: even with a fault engine attached, a clean
/// [`FaultConfig`] (no defects, zero flip rates, no scrubber) reproduces
/// the committed fingerprint bit-identically — the per-read ECC
/// assessment, the remap shim, and the loss of the idle-tick fast path are
/// all behavior-neutral.
#[test]
fn clean_fault_engine_reproduces_golden_fingerprint() {
    for &(part, sched, policy) in &[("8x8", "parbs", "pred"), ("1x1", "frfcfs", "open")] {
        let want = GOLDEN
            .iter()
            .find(|g| g.0 == part && g.1 == sched && g.2 == policy)
            .map(|g| g.3)
            .unwrap();
        let cfg = config_for(part, sched, policy).with_faults(FaultConfig::new(7));
        let r = run(&cfg);
        assert_eq!(
            golden_fingerprint(&r),
            want,
            "{part}/{sched}/{policy}: clean fault engine perturbed the simulated behavior"
        );
        let summary = r.reliability.expect("engine was armed");
        assert!(summary.reads_checked > 0, "ECC hook never ran");
        assert_eq!(
            summary.corrected + summary.detected + summary.miscorrected,
            0
        );
    }
}

/// The event-driven time-skip core (DESIGN §5f) defaults on, so the
/// fingerprint table above is continuously validated against the skipping
/// path. This test pins the other side: disabling skipping via the config
/// knob reproduces the same committed fingerprints with pure per-cycle
/// ticking, so the two drive modes can never drift apart silently. (The
/// CI job that reruns this suite under `MICROBANK_NO_SKIP=1` covers the
/// environment override.)
#[test]
fn per_cycle_reference_reproduces_golden_fingerprints() {
    for &(part, sched, policy) in &[
        ("1x1", "frfcfs", "open"),
        ("8x8", "parbs", "pred"),
        ("8x8", "frfcfs", "close"),
    ] {
        let want = GOLDEN
            .iter()
            .find(|g| g.0 == part && g.1 == sched && g.2 == policy)
            .map(|g| g.3)
            .unwrap();
        let r = run(&config_for(part, sched, policy).with_time_skip(false));
        assert_eq!(
            golden_fingerprint(&r),
            want,
            "{part}/{sched}/{policy}: per-cycle reference diverged from golden"
        );
    }
}

/// Satellite of the `faults.is_some()` horizon fix: a clean-*armed* fault
/// engine (ECC on, no scrubber) no longer pins the controller to
/// per-cycle ticking, and the skipping run is fingerprint-identical to
/// the per-cycle reference with the same engine attached.
#[test]
fn clean_armed_fault_engine_is_skip_neutral() {
    for &(part, sched, policy) in &[("8x8", "parbs", "pred"), ("1x1", "frfcfs", "open")] {
        let mk = || config_for(part, sched, policy).with_faults(FaultConfig::new(7));
        let per_cycle = run(&mk().with_time_skip(false));
        let skipping = run(&mk().with_time_skip(true));
        assert_eq!(
            golden_fingerprint(&per_cycle),
            golden_fingerprint(&skipping),
            "{part}/{sched}/{policy}: clean-armed engine diverged across the skip axis"
        );
    }
}

/// With faults armed at a fixed seed, repeat runs must be bit-identical:
/// same fingerprint AND same reliability counters. Fault sampling, ECC
/// verdicts, retries, scrub scheduling, and retirement are all seeded
/// state machines with no ambient entropy.
#[test]
fn faults_enabled_runs_are_repeat_deterministic() {
    for &(part, sched, policy) in &[("8x8", "parbs", "pred"), ("1x1", "frfcfs", "close")] {
        let mk = || config_for(part, sched, policy).with_faults(FaultConfig::stress(0xFA_017));
        let a = run(&mk());
        let b = run(&mk());
        assert_eq!(
            golden_fingerprint(&a),
            golden_fingerprint(&b),
            "{part}/{sched}/{policy}: faults-enabled fingerprint drifted between repeats"
        );
        assert_eq!(a.reliability, b.reliability);
        let s = a.reliability.unwrap();
        assert!(
            s.corrected + s.detected > 0,
            "{part}/{sched}/{policy}: stress config injected no observable errors"
        );
    }
}

/// The blast-radius argument (§ retirement granularity): the same physical
/// defects, projected onto finer μbank partitions, retire smaller units
/// and therefore cost strictly less effective capacity.
#[test]
fn finer_partitions_lose_less_capacity_to_the_same_defects() {
    let lost = |part: &str| {
        let cfg = config_for(part, "parbs", "open").with_faults(FaultConfig::stress(0xFA_017));
        run(&cfg).reliability.unwrap().capacity_lost_bytes
    };
    let coarse = lost("1x1");
    let fine = lost("8x8");
    assert!(
        fine < coarse,
        "(8,8) should lose strictly less capacity than (1,1): {fine} vs {coarse}"
    );
    assert!(coarse > 0, "stress config retired nothing at (1,1)");
}

/// Regression test for the warmup latency clamp: a read enqueued during
/// warmup but completing inside the measurement window must have its
/// enqueue time clamped to the warmup boundary, so no recorded latency can
/// exceed the measurement window length. Before the fix, a backlogged
/// (1,1) run recorded multi-window latencies for warmup stragglers,
/// poisoning the histogram tail.
#[test]
fn warmup_stragglers_cannot_exceed_window_latency() {
    let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
    cfg.mem = cfg.mem.with_ubanks(1, 1); // minimum BLP → deep backlog
    cfg.warmup_cycles = 20_000;
    cfg.measure_cycles = 10_000;
    let r = run(&cfg);
    assert!(r.read_latency_hist.count() > 0, "no reads completed");
    assert!(
        r.read_latency_hist.max() <= cfg.measure_cycles,
        "read latency {} exceeds the {}-cycle measurement window: \
         warmup enqueue times are leaking into window latencies",
        r.read_latency_hist.max(),
        cfg.measure_cycles
    );
}
