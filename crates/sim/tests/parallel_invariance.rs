//! Worker-count invariance suite: the channel-sharded drive
//! (`microbank_sim::shard`) must be *bit-identical* to the sequential
//! loop for every worker count — the golden fingerprints, the telemetry
//! epoch series, the per-μbank heat maps, the command trace, and the
//! reliability counters are all compared byte for byte between runs at
//! 1, 2, and max (= channel count) workers. Sharding is allowed to change
//! wall-clock time and nothing else.

use microbank_ctrl::policy::PolicyKind;
use microbank_ctrl::predictor::PredictorKind;
use microbank_ctrl::scheduler::SchedulerKind;
use microbank_faults::FaultConfig;
use microbank_sim::simulator::{
    golden_fingerprint, run, run_instrumented, run_many_checked, SimConfig,
};
use microbank_telemetry::TelemetryConfig;
use microbank_workloads::suite::Workload;

/// The golden suite's configuration grid (kept in sync with
/// `integration_golden.rs`): {μbank partition} × {scheduler} × {policy}.
fn golden_grid() -> Vec<SimConfig> {
    let mut out = Vec::new();
    for &(nw, nb) in &[(1, 1), (8, 8)] {
        for sched in [
            SchedulerKind::FrFcfs,
            SchedulerKind::ParBs { marking_cap: 5 },
        ] {
            for policy in [
                PolicyKind::Open,
                PolicyKind::Close,
                PolicyKind::Predictive(PredictorKind::Local),
            ] {
                let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
                cfg.mem = cfg.mem.with_ubanks(nw, nb);
                cfg.warmup_cycles = 10_000;
                cfg.measure_cycles = 30_000;
                cfg.scheduler = sched;
                cfg.policy = policy;
                out.push(cfg);
            }
        }
    }
    assert_eq!(out.len(), 12);
    out
}

/// A short multi-channel run — the configuration class where sharding
/// actually distributes work (16 channels at the paper default).
fn multi_channel_cfg() -> SimConfig {
    let mut cfg = SimConfig::paper_default(Workload::MixHigh);
    cfg.warmup_cycles = 5_000;
    cfg.measure_cycles = 15_000;
    cfg
}

/// Full-result equality beyond the fingerprint: every simulated-behavior
/// field must match bit for bit (profile timings excluded — they are wall
/// clock by definition).
fn assert_results_identical(a: &microbank_sim::SimResult, b: &microbank_sim::SimResult, tag: &str) {
    assert_eq!(
        golden_fingerprint(a),
        golden_fingerprint(b),
        "{tag}: fingerprint diverged"
    );
    assert_eq!(a.dram, b.dram, "{tag}: DRAM counter delta diverged");
    assert_eq!(
        a.per_core_committed, b.per_core_committed,
        "{tag}: per-core committed diverged"
    );
    assert_eq!(
        a.mean_read_latency.to_bits(),
        b.mean_read_latency.to_bits(),
        "{tag}: mean read latency diverged"
    );
    assert_eq!(
        a.mean_queue_occupancy.to_bits(),
        b.mean_queue_occupancy.to_bits(),
        "{tag}: queue occupancy diverged"
    );
    assert_eq!(
        a.policy_hit_rate.to_bits(),
        b.policy_hit_rate.to_bits(),
        "{tag}: policy hit rate diverged"
    );
    assert_eq!(
        a.read_latency_hist, b.read_latency_hist,
        "{tag}: latency histogram diverged"
    );
    assert_eq!(a.reliability, b.reliability, "{tag}: reliability diverged");
}

/// All 12 golden configurations, sequential vs. sharded. These are
/// single-channel, so the sharded run collapses to one worker — the test
/// pins down that the coordinator/worker machinery itself (mailboxes,
/// watermark pipeline, occupancy mirror, snapshot replay) is
/// behavior-neutral even in the degenerate partition.
#[test]
fn golden_configs_are_invariant_under_sharding() {
    for cfg in golden_grid() {
        let seq = run(&cfg.clone().with_threads(1));
        let shard = run(&cfg.clone().with_threads(2));
        assert_results_identical(
            &seq,
            &shard,
            &format!("{:?}/{:?}/{:?}", cfg.mem.ubank, cfg.scheduler, cfg.policy),
        );
    }
}

/// The real parallel case: 16 channels sharded over 1, 2, and 16 (= max)
/// workers must agree with the sequential loop on every reported value.
#[test]
fn multi_channel_runs_are_worker_count_invariant() {
    let cfg = multi_channel_cfg();
    let channels = cfg.mem.channels;
    assert!(channels > 1, "test requires a multi-channel config");
    let seq = run(&cfg.clone().with_threads(1));
    for workers in [2, channels] {
        let shard = run(&cfg.clone().with_threads(workers));
        assert_results_identical(&seq, &shard, &format!("{workers} workers"));
    }
}

/// Telemetry merge invariance: the epoch time-series CSV, the per-channel
/// heat-map CSVs, and the command trace must be byte-identical across
/// worker counts — cross-shard merging may not change a single reported
/// value.
#[test]
fn telemetry_artifacts_are_worker_count_invariant() {
    let cfg = multi_channel_cfg().with_telemetry(TelemetryConfig::new(2_500, 4_096));
    let (r1, t1) = run_instrumented(&cfg.clone().with_threads(1));
    for workers in [2, cfg.mem.channels] {
        let (rn, tn) = run_instrumented(&cfg.clone().with_threads(workers));
        assert_results_identical(&r1, &rn, &format!("instrumented, {workers} workers"));
        assert_eq!(
            t1.timeline.to_csv(),
            tn.timeline.to_csv(),
            "{workers} workers: epoch time-series diverged"
        );
        assert_eq!(t1.heat.len(), tn.heat.len());
        for (ch, (a, b)) in t1.heat.iter().zip(&tn.heat).enumerate() {
            assert_eq!(
                a.to_csv(),
                b.to_csv(),
                "{workers} workers: channel {ch} heat map diverged"
            );
        }
        assert_eq!(
            t1.trace, tn.trace,
            "{workers} workers: command trace diverged"
        );
        assert_eq!(t1.trace_pushed, tn.trace_pushed);
        assert_eq!(t1.trace_dropped, tn.trace_dropped);
    }
}

/// Reliability counters merge invariance under fault injection: same
/// fingerprint AND same `FaultSummary` at every worker count. Fault
/// sampling is per-channel-seeded, so channel ownership moving between
/// threads must not perturb it.
#[test]
fn reliability_counters_are_worker_count_invariant() {
    let cfg = multi_channel_cfg().with_faults(FaultConfig::stress(0xFA_017));
    let seq = run(&cfg.clone().with_threads(1));
    let s = seq.reliability.expect("faults armed");
    assert!(
        s.corrected + s.detected > 0,
        "stress config injected no observable errors"
    );
    for workers in [2, cfg.mem.channels] {
        let shard = run(&cfg.clone().with_threads(workers));
        assert_results_identical(&seq, &shard, &format!("faulted, {workers} workers"));
    }
}

/// Sharding and telemetry compose with the quick golden partition grid:
/// an instrumented single-channel run through the sharded path matches
/// the sequential artifacts exactly.
#[test]
fn single_channel_telemetry_survives_sharded_path() {
    let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
    cfg.mem = cfg.mem.with_ubanks(8, 8);
    cfg.warmup_cycles = 10_000;
    cfg.measure_cycles = 30_000;
    let cfg = cfg.with_telemetry(TelemetryConfig::new(5_000, 1_024));
    let (r1, t1) = run_instrumented(&cfg.clone().with_threads(1));
    let (r2, t2) = run_instrumented(&cfg.clone().with_threads(4));
    assert_results_identical(&r1, &r2, "single-channel instrumented");
    assert_eq!(t1.timeline.to_csv(), t2.timeline.to_csv());
    assert_eq!(t1.heat[0].to_csv(), t2.heat[0].to_csv());
    assert_eq!(t1.trace, t2.trace);
}

/// Observability invariance: span tracing is wall-clock observation and
/// must never feed back into simulated state. Every result field and
/// every telemetry artifact (epoch series, heat maps, command trace)
/// must be byte-identical with spans on vs. off, at 1 and 2 workers —
/// and the span-traced runs must produce the fine-grained rows while
/// the plain runs keep only the coarse phases.
#[test]
fn span_tracing_is_behavior_neutral_at_every_worker_count() {
    let cfg = multi_channel_cfg().with_telemetry(TelemetryConfig::new(2_500, 4_096));
    let (r_off, t_off) = run_instrumented(&cfg.clone().with_threads(1));
    for workers in [1usize, 2] {
        let on = cfg.clone().with_threads(workers).with_spans(true);
        let (r_on, t_on) = run_instrumented(&on);
        assert_results_identical(&r_off, &r_on, &format!("spans on, {workers} workers"));
        assert_eq!(
            t_off.timeline.to_csv(),
            t_on.timeline.to_csv(),
            "spans on, {workers} workers: epoch time-series diverged"
        );
        for (ch, (a, b)) in t_off.heat.iter().zip(&t_on.heat).enumerate() {
            assert_eq!(
                a.to_csv(),
                b.to_csv(),
                "spans on, {workers} workers: channel {ch} heat map diverged"
            );
        }
        assert_eq!(
            t_off.trace, t_on.trace,
            "spans on, {workers} workers: command trace diverged"
        );
        // The traced run actually produced the fine breakdown.
        let paths: Vec<&str> = r_on.profile.spans.iter().map(|s| s.path.as_str()).collect();
        if workers == 1 {
            assert!(
                paths.contains(&"drive/ctrl-tick"),
                "sequential traced run missing ctrl-tick span: {paths:?}"
            );
        } else {
            assert!(
                paths.contains(&"drive/coordinator"),
                "sharded traced run missing coordinator span: {paths:?}"
            );
            assert!(
                paths.iter().any(|p| p.starts_with("drive/worker-0/")),
                "sharded traced run missing worker spans: {paths:?}"
            );
        }
    }
    // The untraced run keeps only the coarse phases.
    assert!(
        r_off
            .profile
            .spans
            .iter()
            .all(
                |s| !["ctrl-tick", "cpu-and-noc", "coordinator"].contains(&s.name.as_str())
                    && !s.name.starts_with("worker-")
            ),
        "untraced run leaked fine-grained spans: {:?}",
        r_off.profile.spans
    );
}

/// The hardened sweep runner: a bad configuration reports a typed `Err`
/// in its own slot while the surviving runs still come back.
#[test]
fn run_many_checked_captures_per_slot_failures() {
    let good = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
    let bad = SimConfig::spec_single_channel(Workload::Spec("no.such.app")).quick();
    let results = run_many_checked(&[good, bad]);
    assert_eq!(results.len(), 2);
    assert!(results[0].is_ok(), "healthy run must survive the sweep");
    let err = results[1]
        .as_ref()
        .expect_err("unknown app must be rejected");
    match err {
        microbank_sim::SimError::InvalidConfig { errors } => {
            assert!(
                errors
                    .iter()
                    .any(|e| e.diagnostics.iter().any(|d| d.contains("unknown SPEC app"))),
                "diagnostics should name the unknown app, got: {errors:?}"
            );
        }
        other => panic!("expected InvalidConfig, got: {other}"),
    }
}

/// Event-driven time skipping (DESIGN §5f) is a pure reordering of when
/// work executes, never of what executes: the per-cycle reference run
/// must be reproduced bit-for-bit — every result field, the epoch
/// time-series, the per-μbank heat maps, and the command trace — by the
/// skipping run at every combination of worker count and span tracing.
/// This is the full skip-granularity cross: {skip on, skip off} ×
/// {1, 2 workers} × {traced, untraced}.
#[test]
fn time_skip_is_behavior_neutral_at_every_worker_count() {
    let cfg = multi_channel_cfg().with_telemetry(TelemetryConfig::new(2_500, 4_096));
    let (r_ref, t_ref) = run_instrumented(&cfg.clone().with_threads(1).with_time_skip(false));
    for workers in [1usize, 2] {
        for spans in [false, true] {
            let on = cfg
                .clone()
                .with_threads(workers)
                .with_time_skip(true)
                .with_spans(spans);
            let (r_on, t_on) = run_instrumented(&on);
            let tag = format!("skip on, {workers} workers, spans {spans}");
            assert_results_identical(&r_ref, &r_on, &tag);
            assert_eq!(
                t_ref.timeline.to_csv(),
                t_on.timeline.to_csv(),
                "{tag}: epoch time-series diverged"
            );
            for (ch, (a, b)) in t_ref.heat.iter().zip(&t_on.heat).enumerate() {
                assert_eq!(
                    a.to_csv(),
                    b.to_csv(),
                    "{tag}: channel {ch} heat map diverged"
                );
            }
            assert_eq!(t_ref.trace, t_on.trace, "{tag}: command trace diverged");
        }
    }
    // Close the cross: per-cycle ticking under the sharded drive matches
    // the sequential per-cycle reference too.
    let (r_off2, t_off2) = run_instrumented(&cfg.clone().with_threads(2).with_time_skip(false));
    assert_results_identical(&r_ref, &r_off2, "skip off, 2 workers");
    assert_eq!(
        t_ref.trace, t_off2.trace,
        "skip off, 2 workers: command trace diverged"
    );
}

/// The skip axis composes with the reliability engine: a stress fault
/// configuration (defects, flips, scrubber armed) runs largely per-cycle
/// — the scrub schedule and demand retries pin the horizon — but whatever
/// skipping remains must still be invisible at every worker count.
#[test]
fn time_skip_is_behavior_neutral_under_faults() {
    let cfg = multi_channel_cfg().with_faults(FaultConfig::stress(0xFA_017));
    let seq = run(&cfg.clone().with_threads(1).with_time_skip(false));
    for workers in [1usize, 2] {
        let skip = run(&cfg.clone().with_threads(workers).with_time_skip(true));
        assert_results_identical(&seq, &skip, &format!("faults, skip on, {workers} workers"));
    }
}

/// Thread-count resolution precedence: an explicit `threads` setting wins;
/// the unset default is sequential (the environment override is covered by
/// the CI job that runs this whole suite under `MICROBANK_THREADS=2`).
#[test]
fn explicit_thread_setting_wins() {
    let cfg = SimConfig::paper_default(Workload::MixHigh);
    assert_eq!(cfg.clone().with_threads(3).effective_threads(), 3);
    assert!(cfg.effective_threads() >= 1);
}
