//! Validation-ladder fuzz (DESIGN.md §5d): an arbitrary bounded
//! `SimConfig` must either be rejected by `validate()` — as a typed
//! `SimError::InvalidConfig` whose every component carries non-empty
//! diagnostics — or complete a tiny `try_run` without panicking. There is
//! no third outcome: the fallible entry point never takes the process
//! down on a bad configuration.
//!
//! The default case count is a CI smoke; `cargo test -- --ignored` runs
//! the full-depth variant.

use microbank_core::geometry::UbankConfig;
use microbank_sim::simulator::{try_run, SimConfig};
use microbank_sim::SimError;
use microbank_workloads::suite::Workload;
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)]
fn build_cfg(
    channels: usize,
    nw: usize,
    nb: usize,
    queue: usize,
    stride: u64,
    measure: u64,
    tras: f64,
    trefi: f64,
    cores: usize,
    ib: u32,
    workload: usize,
) -> SimConfig {
    let workload = [Workload::Spec("429.mcf"), Workload::Spec("no.such.app")][workload];
    let mut cfg = SimConfig::paper_default(workload);
    cfg.warmup_cycles = 200;
    cfg.measure_cycles = measure;
    cfg.mem.channels = channels;
    cfg.mem.ubank = UbankConfig { n_w: nw, n_b: nb };
    cfg.mem.queue_size = queue;
    cfg.mem.interleave_base = ib;
    cfg.mem.timing.t_ras_ns = tras;
    cfg.mem.timing.t_refi_ns = trefi;
    cfg.cmp.cores = cores;
    cfg.ctrl_stride = stride;
    cfg
}

/// The property: `try_run` on any generated config either succeeds or
/// returns `InvalidConfig` with substantive diagnostics — never a panic,
/// never an empty rejection.
fn exercise(cfg: SimConfig) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| try_run(&cfg)));
    let result = match outcome {
        Ok(r) => r,
        Err(_) => panic!("try_run panicked instead of returning SimError for {cfg:?}"),
    };
    match result {
        Ok(r) => assert!(r.cycles > 0, "a completed run covers its window"),
        Err(SimError::InvalidConfig { errors }) => {
            assert!(!errors.is_empty(), "rejection must carry a component");
            for e in &errors {
                assert!(
                    !e.diagnostics.is_empty(),
                    "{} rejected with no diagnostics",
                    e.component
                );
            }
        }
        Err(other) => panic!("unexpected error class for {cfg:?}: {other}"),
    }
}

/// Deterministic anchor: the all-valid corner of the fuzz domain reaches
/// the run path. Guards against the generators drifting into a
/// reject-everything domain where the Ok branch is never exercised.
#[test]
fn valid_corner_of_fuzz_domain_completes_a_run() {
    let cfg = build_cfg(1, 1, 1, 4, 1, 400, 35.0, 7800.0, 1, 6, 0);
    let r = try_run(&cfg).expect("the valid corner must pass validation");
    assert!(r.cycles > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_configs_validate_or_run_smoke(
        (channels, nw, nb, queue) in (
            prop::sample::select(vec![0usize, 1, 2]),
            prop::sample::select(vec![0usize, 1, 3, 4, 16, 32]),
            prop::sample::select(vec![0usize, 1, 3, 4, 16, 32]),
            prop::sample::select(vec![0usize, 1, 4]),
        ),
        (stride, measure) in (
            prop::sample::select(vec![0u64, 1, 2, 3]),
            prop::sample::select(vec![0u64, 400]),
        ),
        (tras, trefi) in (
            prop::sample::select(vec![-1.0f64, 0.0, 5.0, 35.0, f64::NAN]),
            prop::sample::select(vec![100.0f64, 7800.0]),
        ),
        (cores, ib, workload) in (
            prop::sample::select(vec![0usize, 1, 2]),
            prop::sample::select(vec![6u32, 9, 60]),
            0usize..2,
        ),
    ) {
        exercise(build_cfg(
            channels, nw, nb, queue, stride, measure, tras, trefi, cores, ib, workload,
        ));
    }
}

proptest! {
    // Full depth (256 cases), opt-in: `cargo test -- --ignored`.
    #[test]
    #[ignore]
    fn arbitrary_configs_validate_or_run_full(
        (channels, nw, nb, queue) in (
            prop::sample::select(vec![0usize, 1, 2, 4, 16]),
            prop::sample::select(vec![0usize, 1, 2, 3, 4, 8, 16, 32]),
            prop::sample::select(vec![0usize, 1, 2, 3, 4, 8, 16, 32]),
            prop::sample::select(vec![0usize, 1, 2, 4, 64]),
        ),
        (stride, measure) in (
            prop::sample::select(vec![0u64, 1, 2, 3, 5]),
            prop::sample::select(vec![0u64, 400, 1000]),
        ),
        (tras, trefi) in (
            prop::sample::select(vec![-1.0f64, 0.0, 5.0, 35.0, 1e9, f64::NAN, f64::INFINITY]),
            prop::sample::select(vec![100.0f64, 351.0, 7800.0]),
        ),
        (cores, ib, workload) in (
            prop::sample::select(vec![0usize, 1, 2, 4]),
            prop::sample::select(vec![6u32, 8, 9, 12, 60]),
            0usize..2,
        ),
    ) {
        exercise(build_cfg(
            channels, nw, nb, queue, stride, measure, tras, trefi, cores, ib, workload,
        ));
    }
}
