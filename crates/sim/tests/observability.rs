//! Live observability suite: the sweep status surface (status.json +
//! HTTP endpoint), the metrics exposition, and the result exporter.
//! Everything here is observation — the companion invariance tests
//! (`parallel_invariance.rs`, `failsafe.rs`) pin down that none of it
//! can change simulated results.

use microbank_sim::simulator::{try_run, SimConfig};
use microbank_sim::{http_get, summarize, MetricsRegistry, SlotStatus, SweepRunner, SweepSlot};
use microbank_telemetry::json::parse;
use microbank_telemetry::metrics::validate_exposition;
use microbank_workloads::suite::Workload;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn quick_cfg(seed_shift: u64) -> SimConfig {
    let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
    cfg.warmup_cycles = 5_000;
    cfg.measure_cycles = 15_000;
    cfg.seed ^= seed_shift;
    cfg
}

fn slots(n: u64) -> Vec<SweepSlot> {
    (0..n)
        .map(|i| SweepSlot {
            id: format!("slot_{i}"),
            cfg: quick_cfg(i),
        })
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("microbank_obs_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tentpole acceptance: while slots execute, a concurrent scraper can
/// fetch `/status` and `/metrics`; every fetched status document is
/// well-formed JSON, every exposition passes the Prometheus validator,
/// and the final state reports the whole sweep done.
#[test]
fn status_endpoint_serves_parseable_documents_during_a_live_sweep() {
    let dir = temp_dir("live");
    let slots = slots(3);
    let mut runner = SweepRunner::new("live", &dir);
    let addr = runner
        .serve_status("127.0.0.1:0")
        .expect("ephemeral bind must succeed");

    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut snapshots = Vec::new();
            while !stop.load(Ordering::Acquire) {
                let status = http_get(&addr, "/status");
                let metrics = http_get(&addr, "/metrics");
                if let (Ok(s), Ok(m)) = (status, metrics) {
                    snapshots.push((s, m));
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            snapshots
        })
    };

    let records = runner.run_slots(&slots, summarize).expect("sweep runs");
    assert_eq!(records.len(), 3);
    assert!(records.iter().all(|r| r.status == SlotStatus::Ok));
    assert!(
        records.iter().all(|r| !r.resumed && r.secs > 0.0),
        "executed slots must report wall time"
    );

    // Final state, fetched over the live endpoint.
    let final_status = http_get(&addr, "/status").unwrap();
    let doc = parse(&final_status).expect("final status is JSON");
    assert_eq!(doc.get("sweep").unwrap().as_str(), Some("live"));
    assert_eq!(doc.get("total_slots").unwrap().as_f64(), Some(3.0));
    assert_eq!(doc.get("done").unwrap().as_f64(), Some(3.0));
    assert_eq!(doc.get("failed").unwrap().as_f64(), Some(0.0));
    let final_metrics = http_get(&addr, "/metrics").unwrap();
    validate_exposition(&final_metrics).expect("final exposition valid");
    assert!(final_metrics.contains("microbank_sweep_slots_done 3"));
    assert!(
        final_metrics.contains("microbank_sim_ipc"),
        "per-slot result metrics must be exported:\n{final_metrics}"
    );
    assert!(final_metrics.contains("microbank_sweep_slot_seconds_bucket"));

    stop.store(true, Ordering::Release);
    let snapshots = scraper.join().unwrap();
    for (status, metrics) in &snapshots {
        parse(status).expect("every scraped status parses");
        validate_exposition(metrics).expect("every scraped exposition parses");
    }

    drop(runner); // stops the server
    let _ = std::fs::remove_dir_all(&dir);
}

/// The on-disk status artifact: written per slot even with no endpoint,
/// and a resumed re-run reports every slot as `resumed`.
#[test]
fn status_file_tracks_progress_and_resume() {
    let dir = temp_dir("file");
    let slots = slots(2);
    {
        let mut runner = SweepRunner::new("filetest", &dir);
        runner.run_slots(&slots, summarize).unwrap();
        let text = std::fs::read_to_string(runner.status_path()).expect("status.json written");
        let doc = parse(&text).unwrap();
        assert_eq!(doc.get("done").unwrap().as_f64(), Some(2.0));
        assert_eq!(doc.get("resumed").unwrap().as_f64(), Some(0.0));
        let states: Vec<&str> = doc
            .get("slots")
            .unwrap()
            .items()
            .iter()
            .map(|s| s.get("state").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(states, ["ok", "ok"]);
    }
    // Second invocation: everything resumes from the manifest.
    let mut runner = SweepRunner::new("filetest", &dir);
    let records = runner.run_slots(&slots, summarize).unwrap();
    assert!(records.iter().all(|r| r.resumed && r.secs == 0.0));
    let doc = parse(&std::fs::read_to_string(runner.status_path()).unwrap()).unwrap();
    assert_eq!(doc.get("resumed").unwrap().as_f64(), Some(2.0));
    assert_eq!(
        doc.get("eta_secs").unwrap().as_f64(),
        None,
        "all-resumed sweep has no ETA"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `SimResult::record_metrics` exports a valid exposition: command
/// counters by kind, headline gauges, and a monotone read-latency
/// histogram consistent with its `_count`.
#[test]
fn sim_result_exports_a_valid_exposition() {
    let r = try_run(&quick_cfg(0)).unwrap();
    let reg = MetricsRegistry::new();
    r.record_metrics(&reg, &[("slot", "unit")]);
    let text = reg.render_prometheus();
    let n = validate_exposition(&text).expect("exposition must validate");
    assert!(n > 10, "expected a real sample set, got {n}:\n{text}");
    for needle in [
        "microbank_sim_cycles_total",
        "microbank_dram_commands_total",
        "cmd=\"rd\"",
        "microbank_sim_ipc",
        "microbank_sim_row_hit_rate",
        "microbank_sim_read_latency_cycles_bucket",
        "slot=\"unit\"",
    ] {
        assert!(text.contains(needle), "missing {needle}:\n{text}");
    }
    // Counters accumulate across runs (sweep semantics), gauges overwrite.
    r.record_metrics(&reg, &[("slot", "unit")]);
    let text2 = reg.render_prometheus();
    validate_exposition(&text2).unwrap();
    let cycles = |t: &str| -> f64 {
        t.lines()
            .find(|l| l.starts_with("microbank_sim_cycles_total{"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap()
    };
    assert_eq!(cycles(&text2), 2.0 * cycles(&text));
}
