//! Device-variant seam identity suite (DESIGN §5h).
//!
//! The variant abstraction routes *every* configuration — including the
//! pre-seam Conventional and Microbank models — through one code path:
//! `VariantRules` in the channel, the controller's victim-precharge arm,
//! and the energy model's latch dispatch. For the two legacy variants the
//! rules are `NONE`, so the seam must be invisible: bit-identical
//! fingerprints against both the legacy `with_ubanks` construction and the
//! committed golden table, at 1 and 2 workers, with time-skip on and off.
//!
//! SALP and Sectored have no legacy reference, so their pinned property is
//! internal consistency: the event-driven time-skip drive must reproduce
//! the per-cycle reference exactly (the `earliest_*`/`act_blocker` duals
//! are the proof obligations), and worker count must not matter.

use microbank_core::variant::{DeviceVariant, SalpMode};
use microbank_ctrl::policy::PolicyKind;
use microbank_ctrl::scheduler::SchedulerKind;
use microbank_sim::simulator::{golden_fingerprint, run, SimConfig};
use microbank_workloads::suite::Workload;

/// Committed fingerprint of ("1x1", "frfcfs", "open") from the golden
/// table in `integration_golden.rs` — duplicated here so the seam test
/// pins against the *committed* behavior, not just a sibling run.
const GOLDEN_1X1_FRFCFS_OPEN: [u64; 13] = [
    7996,
    2140,
    0,
    2151,
    2145,
    2,
    0,
    1620,
    520,
    17120,
    2140,
    1015732,
    13233932962532133159,
];

fn base_cfg() -> SimConfig {
    let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
    cfg.warmup_cycles = 10_000;
    cfg.measure_cycles = 30_000;
    cfg.scheduler = SchedulerKind::FrFcfs;
    cfg.policy = PolicyKind::Open;
    cfg
}

fn fp(cfg: &SimConfig) -> [u64; 13] {
    golden_fingerprint(&run(cfg))
}

#[test]
fn conventional_through_seam_matches_committed_golden() {
    let mut cfg = base_cfg();
    cfg.mem = cfg.mem.with_variant(DeviceVariant::Conventional);
    assert_eq!(
        fp(&cfg),
        GOLDEN_1X1_FRFCFS_OPEN,
        "Conventional via the variant seam drifted from the committed (1,1) golden"
    );
}

#[test]
fn conventional_seam_is_identical_to_legacy_1x1_everywhere() {
    let seam = |threads: usize, skip: bool| {
        let mut cfg = base_cfg().with_threads(threads).with_time_skip(skip);
        cfg.mem = cfg.mem.with_variant(DeviceVariant::Conventional);
        fp(&cfg)
    };
    let legacy = |threads: usize, skip: bool| {
        let mut cfg = base_cfg().with_threads(threads).with_time_skip(skip);
        cfg.mem = cfg.mem.with_ubanks(1, 1);
        fp(&cfg)
    };
    for threads in [1, 2] {
        for skip in [false, true] {
            assert_eq!(
                seam(threads, skip),
                legacy(threads, skip),
                "Conventional vs legacy (1,1) diverged at threads={threads}, skip={skip}"
            );
        }
    }
}

#[test]
fn microbank_seam_is_identical_to_legacy_8x8_everywhere() {
    let seam = |threads: usize, skip: bool| {
        let mut cfg = base_cfg().with_threads(threads).with_time_skip(skip);
        // with_variant(Microbank) preserves the configured geometry.
        cfg.mem = cfg
            .mem
            .with_ubanks(8, 8)
            .with_variant(DeviceVariant::Microbank);
        fp(&cfg)
    };
    let legacy = |threads: usize, skip: bool| {
        let mut cfg = base_cfg().with_threads(threads).with_time_skip(skip);
        cfg.mem = cfg.mem.with_ubanks(8, 8);
        fp(&cfg)
    };
    for threads in [1, 2] {
        for skip in [false, true] {
            assert_eq!(
                seam(threads, skip),
                legacy(threads, skip),
                "Microbank vs legacy (8,8) diverged at threads={threads}, skip={skip}"
            );
        }
    }
}

/// The structural variants exercise the new legality rules; the time-skip
/// horizon must stay an exact dual of the per-cycle predicates (a victim
/// blocked by variant state folds the victim's precharge, a shared-bitline
/// wait folds the burst end). Any inexactness shows up as a fingerprint
/// mismatch between the two drive modes.
#[test]
fn structural_variants_are_skip_exact_and_worker_invariant() {
    let variants = [
        DeviceVariant::Salp {
            subarrays: 8,
            mode: SalpMode::Salp1,
        },
        DeviceVariant::Salp {
            subarrays: 8,
            mode: SalpMode::Salp2,
        },
        DeviceVariant::Salp {
            subarrays: 8,
            mode: SalpMode::Masa,
        },
        DeviceVariant::Sectored {
            sectors: 16,
            sectors_per_act: 8,
        },
        DeviceVariant::Sectored {
            sectors: 16,
            sectors_per_act: 2,
        },
    ];
    for v in variants {
        let mk = |threads: usize, skip: bool| {
            let mut cfg = base_cfg().with_threads(threads).with_time_skip(skip);
            cfg.mem = cfg.mem.with_variant(v);
            cfg
        };
        let reference = fp(&mk(1, false));
        assert_eq!(
            fp(&mk(1, true)),
            reference,
            "{}: time-skip drive diverged from the per-cycle reference",
            v.label()
        );
        assert_eq!(
            fp(&mk(2, true)),
            reference,
            "{}: 2-worker run diverged from the single-worker reference",
            v.label()
        );
        let r = run(&mk(1, true));
        assert!(
            r.dram.reads > 0,
            "{}: no reads completed — variant deadlocked",
            v.label()
        );
    }
}

/// Variant structural pressure is visible in the stats: MASA may hold all
/// eight subarray rows open where SALP-1 keeps one per bank, so on the
/// same workload MASA preserves at least SALP-1's row-buffer locality and
/// serves at least as many reads in the fixed measurement window (this is
/// the SALP paper's whole argument for MASA over SALP-1).
#[test]
fn masa_dominates_salp1_on_locality_and_throughput() {
    let run_with = |mode: SalpMode| {
        let mut cfg = base_cfg();
        cfg.mem = cfg
            .mem
            .with_variant(DeviceVariant::Salp { subarrays: 8, mode });
        run(&cfg)
    };
    let salp1 = run_with(SalpMode::Salp1);
    let masa = run_with(SalpMode::Masa);
    assert!(
        masa.row_hit_rate >= salp1.row_hit_rate,
        "MASA row-hit rate {} below SALP-1's {}",
        masa.row_hit_rate,
        salp1.row_hit_rate
    );
    assert!(
        masa.dram.reads >= salp1.dram.reads,
        "MASA served {} reads, fewer than SALP-1's {}",
        masa.dram.reads,
        salp1.dram.reads
    );
}
