//! Hostile-input fuzzing of the status HTTP listener (DESIGN.md §5i).
//!
//! One long-lived `StatusServer` receives arbitrary bytes, oversized
//! headers, and partial (never-completed) requests. The contract under
//! attack is *answer-or-close within the connection deadline, then keep
//! serving*: no input may wedge the acceptor, panic a connection
//! thread, or poison subsequent well-formed requests.

use microbank_telemetry::status::http_get;
use microbank_telemetry::{MetricsRegistry, StatusServer, StatusShared};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on answer-or-close, comfortably above the server's 5 s
/// connection deadline but far below a test hang.
const ATTACK_TIMEOUT: Duration = Duration::from_secs(8);

fn start_server() -> StatusServer {
    let shared = StatusShared::new(Arc::new(MetricsRegistry::new()));
    shared.set_status_json("{\"fuzz\":true}".to_string());
    StatusServer::start("127.0.0.1:0", shared).expect("bind loopback")
}

/// Send `payload`, optionally shutting down the write half (a complete
/// but possibly garbage request) or leaving it open (a stalled client).
/// Returns once the server answers or closes the connection.
fn attack(server: &StatusServer, payload: &[u8], finish_write: bool) {
    let addr = server.local_addr();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(ATTACK_TIMEOUT)).unwrap();
    conn.set_write_timeout(Some(ATTACK_TIMEOUT)).unwrap();
    // The server may close mid-write on oversized input; a broken pipe
    // here is the defense working, not a test failure.
    let _ = conn.write_all(payload);
    if finish_write {
        let _ = conn.shutdown(std::net::Shutdown::Write);
    }
    // Drain until EOF. The read timeout converts a wedged server into a
    // test failure; a response or clean close passes.
    let mut sink = [0u8; 4096];
    loop {
        match conn.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) => panic!("server neither answered nor closed: {e}"),
        }
    }
}

/// After any attack the server must still answer a well-formed request.
fn assert_still_serving(server: &StatusServer) {
    let body = http_get(&server.local_addr(), "/status").expect("server still serving");
    assert!(body.contains("fuzz"), "unexpected /status body: {body}");
}

proptest! {
    // TCP round trips per case make this slower than a pure in-memory
    // property; a few dozen cases keeps the suite under a few seconds.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_bytes_are_answered_or_closed(
        payload in prop::collection::vec(any::<u8>(), 1..2048),
    ) {
        let server = start_server();
        attack(&server, &payload, true);
        assert_still_serving(&server);
    }

    #[test]
    fn mangled_request_lines_do_not_wedge(
        method in prop::collection::vec(65u8..91, 1..12),
        path in prop::collection::vec(32u8..127, 1..64),
        trailer in prop::collection::vec(any::<u8>(), 1..256),
    ) {
        let server = start_server();
        let mut payload = method;
        payload.extend_from_slice(b" /");
        payload.extend_from_slice(&path);
        payload.extend_from_slice(b" HTTP/1.1\r\n");
        payload.extend_from_slice(&trailer);
        payload.extend_from_slice(b"\r\n\r\n");
        attack(&server, &payload, true);
        assert_still_serving(&server);
    }

}

/// Truncated requests with the write half left open: the client stalls
/// forever and only the server's connection deadline can reap the
/// thread. Each stalled connection costs the full deadline, so the
/// prefixes attack concurrently instead of as sequential proptest cases.
#[test]
fn partial_requests_are_reaped_not_leaked() {
    let server = start_server();
    let full = b"GET /status HTTP/1.1\r\nHost: x\r\n\r\n";
    std::thread::scope(|scope| {
        for prefix_len in [1usize, 4, 12, 21, full.len() - 2] {
            let server = &server;
            scope.spawn(move || attack(server, &full[..prefix_len], false));
        }
    });
    assert_still_serving(&server);
}

#[test]
fn oversized_header_block_is_rejected_with_431() {
    let server = start_server();
    let mut payload = b"GET /status HTTP/1.1\r\n".to_vec();
    // 16 KiB of headers against the 8 KiB cap.
    for i in 0..256 {
        payload.extend_from_slice(format!("X-Filler-{i}: {}\r\n", "y".repeat(48)).as_bytes());
    }
    payload.extend_from_slice(b"\r\n");

    let addr = server.local_addr();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(ATTACK_TIMEOUT)).unwrap();
    let _ = conn.write_all(&payload);
    let mut resp = String::new();
    let _ = conn.take(4096).read_to_string(&mut resp);
    assert!(
        resp.starts_with("HTTP/1.1 431") || resp.is_empty(),
        "expected 431 or close, got: {resp}"
    );
    assert_still_serving(&server);
}

#[test]
fn oversized_body_is_rejected_with_413() {
    let server = start_server();
    let addr = server.local_addr();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(ATTACK_TIMEOUT)).unwrap();
    let head = format!(
        "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        2 * 1024 * 1024
    );
    let _ = conn.write_all(head.as_bytes());
    let mut resp = String::new();
    let _ = conn.take(4096).read_to_string(&mut resp);
    assert!(
        resp.starts_with("HTTP/1.1 413") || resp.is_empty(),
        "expected 413 or close, got: {resp}"
    );
    assert_still_serving(&server);
}
