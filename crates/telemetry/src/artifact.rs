//! Atomic artifact writes: never leave a half-written result file.
//!
//! Every file the harness binaries emit under `results/` — CSVs, JSON
//! exports, sweep manifests — goes through [`atomic_write`]. A plain
//! `std::fs::write` interrupted by a crash (or an over-eager Ctrl-C)
//! leaves a truncated file that a later resume would happily trust; the
//! write-to-temp + fsync + rename dance guarantees a reader only ever
//! observes either the old content or the complete new content.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Write `bytes` to `path` atomically: create the parent directory if
/// needed, write `<path>.<pid>.tmp`, fsync it, then rename over `path`.
/// The PID suffix keeps concurrent writers (e.g. parallel test
/// processes) off each other's temp files; rename settles the race with
/// last-writer-wins, which is also what direct writes would give.
pub fn atomic_write(path: impl AsRef<Path>, bytes: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}.tmp", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes.as_ref())?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best-effort cleanup; the original error is the one to report.
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("microbank_artifact_{}_{name}", std::process::id()))
    }

    #[test]
    fn writes_and_replaces_content() {
        let p = tmp_path("replace");
        atomic_write(&p, "first").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "first");
        atomic_write(&p, "second").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "second");
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = tmp_path("nested_dir");
        let _ = fs::remove_dir_all(&dir);
        let p = dir.join("a/b/out.csv");
        atomic_write(&p, "x,y\n").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "x,y\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leaves_no_temp_file_behind() {
        let p = tmp_path("no_tmp");
        atomic_write(&p, "data").unwrap();
        let tmp = format!("{}.{}.tmp", p.display(), std::process::id());
        assert!(!Path::new(&tmp).exists());
        let _ = fs::remove_file(&p);
    }
}
