//! # microbank-telemetry
//!
//! The observability layer for the μbank simulator stack: everything the
//! end-of-run aggregates in `SimResult` cannot explain. Dependency-free
//! (std only) so the innermost crates (`microbank-core`,
//! `microbank-ctrl`) can own telemetry state without widening the
//! workspace's dependency graph.
//!
//! * [`series`] — [`series::Timeline`]: a metrics registry sampled every
//!   epoch, exported as CSV or column-oriented JSON.
//! * [`heat`] — [`heat::HeatCounters`]: per-μbank activate / row-hit /
//!   conflict counters, rendered as `nW×nB`-aware heat maps.
//! * [`trace`] — [`trace::CmdTrace`]: a bounded ring buffer of issued DRAM
//!   commands, exported as Chrome `trace_event` JSON for
//!   `chrome://tracing`.
//! * [`profile`] — [`profile::PhaseTimer`]: wall-clock self-profiling of
//!   the harness (simulated Mcycles per wall-second).
//! * [`json`] — the minimal writer/parser backing the JSON exports.
//! * [`artifact`] — [`artifact::atomic_write`]: temp-file + fsync + rename
//!   writes, so a crash never leaves a truncated result artifact.
//!
//! All hot-path hooks are designed to sit behind an `Option<Box<…>>` on
//! the owning component: disabled (the default) costs one branch.

pub mod artifact;
pub mod heat;
pub mod json;
pub mod profile;
pub mod series;
pub mod trace;

pub use artifact::atomic_write;
pub use heat::{ChannelTelemetry, HeatCounters};
pub use profile::{mcycles_per_sec, PhaseTimer};
pub use series::Timeline;
pub use trace::{CmdKind, CmdRecord, CmdTrace};

/// Knobs for enabling telemetry on a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Cycles per epoch sample.
    pub epoch_cycles: u64,
    /// Command-trace ring capacity per controller (0 disables tracing).
    pub trace_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            epoch_cycles: 10_000,
            trace_capacity: 65_536,
        }
    }
}

impl TelemetryConfig {
    pub fn new(epoch_cycles: u64, trace_capacity: usize) -> Self {
        assert!(epoch_cycles > 0, "epoch length must be positive");
        TelemetryConfig {
            epoch_cycles,
            trace_capacity,
        }
    }
}
