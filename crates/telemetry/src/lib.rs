//! # microbank-telemetry
//!
//! The observability layer for the μbank simulator stack: everything the
//! end-of-run aggregates in `SimResult` cannot explain. Dependency-free
//! (std only) so the innermost crates (`microbank-core`,
//! `microbank-ctrl`) can own telemetry state without widening the
//! workspace's dependency graph.
//!
//! * [`series`] — [`series::Timeline`]: a metrics registry sampled every
//!   epoch, exported as CSV or column-oriented JSON.
//! * [`heat`] — [`heat::HeatCounters`]: per-μbank activate / row-hit /
//!   conflict counters, rendered as `nW×nB`-aware heat maps.
//! * [`trace`] — [`trace::CmdTrace`]: a bounded ring buffer of issued DRAM
//!   commands, exported as Chrome `trace_event` JSON for
//!   `chrome://tracing`.
//! * [`span`] — [`span::SpanTracer`]: hierarchical wall-clock
//!   self-profiling of the harness (setup/drive/artifact phases, and in
//!   sharded runs the per-worker work/spin/seal breakdown).
//! * [`metrics`] — [`metrics::MetricsRegistry`]: counters, gauges, and
//!   histograms with Prometheus text exposition and JSON snapshots.
//! * [`event`] — leveled structured event logging (`MICROBANK_LOG`),
//!   human one-liners on stderr or JSONL.
//! * [`status`] — [`status::StatusServer`]: a dependency-free blocking
//!   HTTP listener serving `/status` and `/metrics` for a live sweep.
//! * [`profile`] — [`profile::mcycles_per_sec`]: the harness-throughput
//!   metric (simulated Mcycles per wall-second).
//! * [`json`] — the minimal writer/parser backing the JSON exports.
//! * [`artifact`] — [`artifact::atomic_write`]: temp-file + fsync + rename
//!   writes, so a crash never leaves a truncated result artifact.
//!
//! All hot-path hooks are designed to sit behind an `Option<Box<…>>` on
//! the owning component: disabled (the default) costs one branch. The
//! observability layer as a whole is read-only with respect to the
//! simulated machine: spans, metrics, events, and the status server
//! observe wall-clock and counter state but never feed back, so enabling
//! any of it cannot perturb golden fingerprints or telemetry artifacts.

pub mod artifact;
pub mod event;
pub mod heat;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod series;
pub mod span;
pub mod status;
pub mod trace;

pub use artifact::atomic_write;
pub use event::Level;
pub use heat::{ChannelTelemetry, HeatCounters};
pub use metrics::{MetricKind, MetricsRegistry};
pub use profile::mcycles_per_sec;
pub use series::Timeline;
pub use span::{SpanRow, SpanTracer};
pub use status::{HttpRequest, HttpResponse, StatusServer, StatusShared};
pub use trace::{CmdKind, CmdRecord, CmdTrace};

/// Knobs for enabling telemetry on a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Cycles per epoch sample.
    pub epoch_cycles: u64,
    /// Command-trace ring capacity per controller (0 disables tracing).
    pub trace_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            epoch_cycles: 10_000,
            trace_capacity: 65_536,
        }
    }
}

impl TelemetryConfig {
    pub fn new(epoch_cycles: u64, trace_capacity: usize) -> Self {
        assert!(epoch_cycles > 0, "epoch length must be positive");
        TelemetryConfig {
            epoch_cycles,
            trace_capacity,
        }
    }
}
