//! A minimal JSON writer and parser, so the telemetry crate can emit and
//! round-trip its artifacts (time-series, heat maps, Chrome trace events)
//! without pulling a serialization dependency into the simulator's
//! innermost crates.
//!
//! The subset is exactly what the exporters produce: objects, arrays,
//! strings, finite numbers, booleans, and null. The parser exists so
//! exports can be validated in tests (and by downstream tooling) — it is
//! not a general-purpose JSON library.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (object keys sorted, as emitted by [`JsonWriter`]).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on an object (None for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Array elements ([] for other variants).
    pub fn items(&self) -> &[JsonValue] {
        match self {
            JsonValue::Array(v) => v,
            _ => &[],
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Render back to JSON text in the same canonical form [`JsonWriter`]
    /// produces (object keys in `BTreeMap` order, [`number`] formatting,
    /// no whitespace). parse → render is therefore a *normalizing*
    /// round-trip: any two texts denoting the same value render
    /// identically, which is what durable artifacts diffed byte-for-byte
    /// across process restarts need.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => out.push_str(&number(*n)),
            JsonValue::String(s) => out.push_str(&escape(s)),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escape a string into a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a number the way JSON requires: finite, no NaN/Inf (mapped to 0),
/// integers without a trailing `.0`.
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// An append-only JSON builder. The caller is responsible for structural
/// validity (the exporters in this crate always produce balanced output;
/// the parser-backed tests catch regressions).
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// Whether the next element at the current nesting level needs a comma.
    need_comma: Vec<bool>,
}

impl JsonWriter {
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.need_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('{');
        self.need_comma.push(false);
        self
    }

    pub fn end_object(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.buf.push('}');
        self
    }

    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('[');
        self.need_comma.push(false);
        self
    }

    pub fn end_array(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.buf.push(']');
        self
    }

    /// Emit `"key":` inside an object; the next call supplies the value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre_value();
        self.buf.push_str(&escape(k));
        self.buf.push(':');
        // The value after a key must not get its own comma.
        if let Some(last) = self.need_comma.last_mut() {
            *last = false;
        }
        self
    }

    pub fn string(&mut self, s: &str) -> &mut Self {
        self.pre_value();
        self.buf.push_str(&escape(s));
        self
    }

    pub fn num(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        self.buf.push_str(&number(v));
        self
    }

    pub fn uint(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        let _ = write!(self.buf, "{v}");
        self
    }

    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn null(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push_str("null");
        self
    }

    /// Append pre-rendered JSON text as the next value. The caller
    /// guarantees `text` is itself a complete, valid JSON value (e.g.
    /// [`JsonValue::render`] output) — the writer only handles the
    /// surrounding commas.
    pub fn raw(&mut self, text: &str) -> &mut Self {
        self.pre_value();
        self.buf.push_str(text);
        self
    }

    pub fn finish(self) -> String {
        debug_assert!(self.need_comma.is_empty(), "unbalanced JSON writer");
        self.buf
    }
}

/// Parse a JSON document. Returns `Err(offset)` with the byte offset of the
/// first error.
pub fn parse(s: &str) -> Result<JsonValue, usize> {
    let b = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(pos);
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), usize> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(*pos)
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, usize> {
    skip_ws(b, pos);
    match b.get(*pos).ok_or(*pos)? {
        b'n' => expect(b, pos, "null").map(|_| JsonValue::Null),
        b't' => expect(b, pos, "true").map(|_| JsonValue::Bool(true)),
        b'f' => expect(b, pos, "false").map(|_| JsonValue::Bool(false)),
        b'"' => parse_string(b, pos).map(JsonValue::String),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos).ok_or(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(*pos),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(*pos);
                }
                *pos += 1;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos).ok_or(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Ok(JsonValue::Object(map));
                    }
                    _ => return Err(*pos),
                }
            }
        }
        _ => parse_number(b, pos).map(JsonValue::Number),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, usize> {
    if b.get(*pos) != Some(&b'"') {
        return Err(*pos);
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos).ok_or(*pos)? {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos).ok_or(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or(*pos)?;
                        let hex = std::str::from_utf8(hex).map_err(|_| *pos)?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| *pos)?;
                        out.push(char::from_u32(code).ok_or(*pos)?);
                        *pos += 4;
                    }
                    _ => return Err(*pos),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|_| start)?);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, usize> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("name")
            .string("ACT")
            .key("vals")
            .begin_array();
        w.num(1.0).num(2.5).uint(u64::MAX);
        w.end_array()
            .key("ok")
            .begin_object()
            .end_object()
            .end_object();
        let s = w.finish();
        assert_eq!(
            s,
            format!(
                "{{\"name\":\"ACT\",\"vals\":[1,2.5,{}],\"ok\":{{}}}}",
                u64::MAX
            )
        );
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("a,b\"c")
            .string("line\nbreak")
            .key("n")
            .num(-2.75)
            .key("arr")
            .begin_array()
            .num(0.0)
            .end_array()
            .end_object();
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v.get("a,b\"c").unwrap().as_str(), Some("line\nbreak"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-2.75));
        assert_eq!(v.get("arr").unwrap().items().len(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn number_formatting_is_json_safe() {
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(3.5), "3.5");
        assert_eq!(parse(&number(0.1)).unwrap().as_f64(), Some(0.1));
    }

    #[test]
    fn unicode_and_control_escapes_round_trip() {
        let s = "μbank \u{1} ✓";
        let v = parse(&escape(s)).unwrap();
        assert_eq!(v.as_str(), Some(s));
    }

    #[test]
    fn render_normalizes_to_writer_form() {
        // Whitespace, key order, and number spellings all collapse to
        // the canonical rendering.
        let messy = "{ \"b\" : 2.0 ,\n \"a\" : [ true, null, \"x\" ] }";
        let v = parse(messy).unwrap();
        assert_eq!(v.render(), "{\"a\":[true,null,\"x\"],\"b\":2}");
        // render ∘ parse is idempotent.
        let again = parse(&v.render()).unwrap();
        assert_eq!(again.render(), v.render());
        assert_eq!(again, v);
    }
}
