//! Hierarchical wall-clock span tracing for the harness itself.
//!
//! Supersedes the flat `PhaseTimer`: instead of a linear sequence of
//! phase marks, the tracer maintains a tree of named spans, so sharded
//! runs can attribute wall time to the coordinator, each worker, and —
//! within a worker — to useful work vs spin-waits vs mailbox sealing.
//!
//! Spans with the same name under the same parent are *aggregated*
//! (total time + entry count), never duplicated: the sequential drive
//! loop can cheaply account thousands of controller ticks into a single
//! `ctrl-tick` node via [`SpanTracer::add_ns`].
//!
//! Determinism contract: the tracer observes wall time but never feeds
//! it back — nothing in the simulated machine reads a span. Enabling or
//! disabling tracing cannot change simulated state.

use crate::json::JsonWriter;
use std::time::Instant;

/// One node in the span tree, flattened for export.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRow {
    /// Slash-joined path from the root, e.g. `drive/worker-0/spin-wait`.
    pub path: String,
    /// Leaf name, e.g. `spin-wait`.
    pub name: String,
    /// Depth in the tree (roots are 0).
    pub depth: u16,
    /// Display lane: 0 = main thread / coordinator, 1+w = shard worker w.
    pub lane: u16,
    /// Wall seconds from tracer construction to the span's first entry.
    pub start_secs: f64,
    /// Total wall seconds accumulated across all entries.
    pub secs: f64,
    /// Number of entries (or accumulated events for `add_ns` spans).
    pub count: u64,
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    lane: u16,
    start_ns: u64,
    total_ns: u64,
    count: u64,
    children: Vec<usize>,
    open_since: Option<Instant>,
}

/// A tree-shaped wall-clock profiler. See the module docs.
#[derive(Debug, Clone)]
pub struct SpanTracer {
    epoch: Instant,
    nodes: Vec<Node>,
    roots: Vec<usize>,
    stack: Vec<usize>,
}

impl Default for SpanTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanTracer {
    pub fn new() -> Self {
        SpanTracer {
            epoch: Instant::now(),
            nodes: Vec::new(),
            roots: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Nanoseconds since tracer construction.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Wall seconds since tracer construction.
    pub fn total_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn child_of(&mut self, parent: Option<usize>, name: &str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&idx) = siblings.iter().find(|&&i| self.nodes[i].name == name) {
            return idx;
        }
        let lane = match parent {
            Some(p) => self.nodes[p].lane,
            None => 0,
        };
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_string(),
            lane,
            start_ns: self.now_ns(),
            total_ns: 0,
            count: 0,
            children: Vec::new(),
            open_since: None,
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    /// Open (or re-open) a span named `name` under the current span.
    pub fn enter(&mut self, name: &str) {
        let parent = self.stack.last().copied();
        let idx = self.child_of(parent, name);
        let node = &mut self.nodes[idx];
        node.count += 1;
        node.open_since = Some(Instant::now());
        self.stack.push(idx);
    }

    /// Close the innermost open span, accumulating its elapsed time.
    pub fn exit(&mut self) {
        let idx = self.stack.pop().expect("exit without matching enter");
        let node = &mut self.nodes[idx];
        if let Some(t0) = node.open_since.take() {
            node.total_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Close the innermost open span, charging an explicit duration
    /// instead of the measured one. Used when grafting time measured on
    /// another thread (a shard worker) into the tree.
    pub fn exit_with_ns(&mut self, total_ns: u64) {
        let idx = self.stack.pop().expect("exit without matching enter");
        let node = &mut self.nodes[idx];
        node.open_since = None;
        node.total_ns += total_ns;
    }

    /// Accumulate `ns` nanoseconds over `count` events into a child of
    /// the current span without opening/closing it — the cheap path for
    /// time measured by an external accumulator.
    pub fn add_ns(&mut self, name: &str, ns: u64, count: u64) {
        let parent = self.stack.last().copied();
        let idx = self.child_of(parent, name);
        let node = &mut self.nodes[idx];
        node.total_ns += ns;
        node.count += count;
    }

    /// Tag the innermost open span (and its future children) with a
    /// display lane. Lane 0 is the main thread; shard workers use 1+w.
    pub fn set_lane(&mut self, lane: u16) {
        if let Some(&idx) = self.stack.last() {
            self.nodes[idx].lane = lane;
        }
    }

    /// Override the innermost open span's start offset (nanoseconds from
    /// tracer construction) — grafted worker spans start when the drive
    /// started, not when the graft happens.
    pub fn set_start_ns(&mut self, ns: u64) {
        if let Some(&idx) = self.stack.last() {
            self.nodes[idx].start_ns = ns;
        }
    }

    fn node_total_ns(&self, idx: usize) -> u64 {
        let node = &self.nodes[idx];
        let open = node
            .open_since
            .map(|t0| t0.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        node.total_ns + open
    }

    /// Total seconds accumulated under every span named `name`, anywhere
    /// in the tree. Still-open spans count their elapsed-so-far time.
    pub fn seconds(&self, name: &str) -> f64 {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].name == name)
            .map(|i| self.node_total_ns(i) as f64 / 1e9)
            .sum()
    }

    fn push_rows(&self, idx: usize, path: &str, depth: u16, out: &mut Vec<SpanRow>) {
        let node = &self.nodes[idx];
        let path = if path.is_empty() {
            node.name.clone()
        } else {
            format!("{path}/{}", node.name)
        };
        out.push(SpanRow {
            path: path.clone(),
            name: node.name.clone(),
            depth,
            lane: node.lane,
            start_secs: node.start_ns as f64 / 1e9,
            secs: self.node_total_ns(idx) as f64 / 1e9,
            count: node.count,
        });
        for &c in &node.children {
            self.push_rows(c, &path, depth + 1, out);
        }
    }

    /// Flatten the tree depth-first into export rows. Still-open spans
    /// report their elapsed-so-far time.
    pub fn rows(&self) -> Vec<SpanRow> {
        let mut out = Vec::with_capacity(self.nodes.len());
        for &r in &self.roots {
            self.push_rows(r, "", 0, &mut out);
        }
        out
    }

    /// Export the tree as a nested JSON document.
    pub fn to_json(&self) -> String {
        fn write_node(t: &SpanTracer, idx: usize, w: &mut JsonWriter) {
            let node = &t.nodes[idx];
            w.begin_object()
                .key("name")
                .string(&node.name)
                .key("lane")
                .uint(node.lane as u64)
                .key("start_secs")
                .num(node.start_ns as f64 / 1e9)
                .key("secs")
                .num(t.node_total_ns(idx) as f64 / 1e9)
                .key("count")
                .uint(node.count);
            w.key("children").begin_array();
            for &c in &node.children {
                write_node(t, c, w);
            }
            w.end_array().end_object();
        }
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("total_secs")
            .num(self.total_secs())
            .key("spans")
            .begin_array();
        for &r in &self.roots {
            write_node(self, r, &mut w);
        }
        w.end_array().end_object();
        w.finish()
    }
}

/// Render flattened span rows (typically [`SpanTracer::rows`], as
/// carried on a run profile) as a standalone JSON document.
pub fn rows_to_json(rows: &[SpanRow]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().key("spans").begin_array();
    for r in rows {
        w.begin_object()
            .key("path")
            .string(&r.path)
            .key("name")
            .string(&r.name)
            .key("depth")
            .uint(r.depth as u64)
            .key("lane")
            .uint(r.lane as u64)
            .key("start_secs")
            .num(r.start_secs)
            .key("secs")
            .num(r.secs)
            .key("count")
            .uint(r.count)
            .end_object();
    }
    w.end_array().end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn nesting_builds_paths_and_aggregates_reentries() {
        let mut t = SpanTracer::new();
        t.enter("drive");
        t.enter("warmup");
        t.exit();
        t.enter("measure");
        t.exit();
        // Re-entering an existing name aggregates into the same node.
        t.enter("measure");
        t.exit();
        t.exit();
        let rows = t.rows();
        let paths: Vec<&str> = rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, vec!["drive", "drive/warmup", "drive/measure"]);
        let measure = rows.iter().find(|r| r.name == "measure").unwrap();
        assert_eq!(measure.count, 2);
        assert_eq!(measure.depth, 1);
    }

    #[test]
    fn add_ns_accumulates_without_clock_reads() {
        let mut t = SpanTracer::new();
        t.enter("drive");
        t.add_ns("ctrl-tick", 500, 3);
        t.add_ns("ctrl-tick", 1_500, 2);
        t.exit();
        let rows = t.rows();
        let ctrl = rows.iter().find(|r| r.name == "ctrl-tick").unwrap();
        assert_eq!(ctrl.count, 5);
        assert!((ctrl.secs - 2e-6).abs() < 1e-12);
        assert_eq!(ctrl.path, "drive/ctrl-tick");
    }

    #[test]
    fn exit_with_ns_charges_grafted_time_and_lane() {
        let mut t = SpanTracer::new();
        t.enter("drive");
        t.enter("worker-0");
        t.set_lane(3);
        t.set_start_ns(7_000);
        t.add_ns("spin-wait", 250, 4);
        t.exit_with_ns(1_000_000);
        t.exit();
        let rows = t.rows();
        let w0 = rows.iter().find(|r| r.name == "worker-0").unwrap();
        assert_eq!(w0.lane, 3);
        assert!((w0.secs - 1e-3).abs() < 1e-12);
        assert!((w0.start_secs - 7e-6).abs() < 1e-12);
        // Children created after set_lane inherit the lane.
        let spin = rows.iter().find(|r| r.name == "spin-wait").unwrap();
        assert_eq!(spin.lane, 3);
        assert_eq!(spin.path, "drive/worker-0/spin-wait");
    }

    #[test]
    fn seconds_sums_across_tree_and_open_spans_report_elapsed() {
        let mut t = SpanTracer::new();
        t.enter("a");
        t.add_ns("x", 2_000_000_000, 1);
        t.exit();
        t.enter("b");
        t.add_ns("x", 1_000_000_000, 1);
        t.exit();
        assert!((t.seconds("x") - 3.0).abs() < 1e-9);
        t.enter("open");
        // Open span reports non-negative elapsed without exit.
        assert!(t.seconds("open") >= 0.0);
        assert_eq!(t.rows().iter().filter(|r| r.name == "open").count(), 1);
        t.exit();
    }

    #[test]
    fn json_exports_parse_and_round_trip_structure() {
        let mut t = SpanTracer::new();
        t.enter("setup");
        t.exit();
        t.enter("drive");
        t.add_ns("ctrl-tick", 42, 7);
        t.exit();
        let doc = parse(&t.to_json()).unwrap();
        let spans = doc.get("spans").unwrap().items();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].get("name").unwrap().as_str(), Some("drive"));
        assert_eq!(
            spans[1].get("children").unwrap().items()[0]
                .get("count")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );

        let flat = parse(&rows_to_json(&t.rows())).unwrap();
        let rows = flat.get("spans").unwrap().items();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[2].get("path").unwrap().as_str(),
            Some("drive/ctrl-tick")
        );
    }
}
