//! Epoch time-series: a metrics registry plus the sampled rows. The
//! simulator closes each epoch by pushing one value per registered metric;
//! the exporters turn the series into CSV (one row per epoch) or JSON
//! (column-oriented, one array per metric).

use crate::json::JsonWriter;
use std::fmt::Write as _;

/// One sampled epoch: the cycle the epoch *ended* plus one value per
/// registered metric, in registration order.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSample {
    pub cycle: u64,
    pub values: Vec<f64>,
}

/// A named set of metrics sampled on a fixed cycle cadence.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Cycles per epoch (informational; the pusher owns the cadence).
    pub epoch_cycles: u64,
    metrics: Vec<String>,
    samples: Vec<EpochSample>,
}

impl Timeline {
    pub fn new(epoch_cycles: u64, metrics: &[&str]) -> Self {
        Timeline {
            epoch_cycles,
            metrics: metrics.iter().map(|m| m.to_string()).collect(),
            samples: Vec::new(),
        }
    }

    /// Names of the registered metrics, in column order.
    pub fn metrics(&self) -> &[String] {
        &self.metrics
    }

    pub fn samples(&self) -> &[EpochSample] {
        &self.samples
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Record the epoch ending at `cycle`. `values` must match the
    /// registered metric count.
    pub fn push(&mut self, cycle: u64, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.metrics.len(),
            "timeline row width mismatch"
        );
        self.samples.push(EpochSample { cycle, values });
    }

    /// The full series for one metric by name.
    pub fn series(&self, metric: &str) -> Option<Vec<f64>> {
        let i = self.metrics.iter().position(|m| m == metric)?;
        Some(self.samples.iter().map(|s| s.values[i]).collect())
    }

    /// CSV with a `cycle` column followed by one column per metric.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycle");
        for m in &self.metrics {
            out.push(',');
            // Metric names are identifiers chosen by this crate's callers;
            // quote defensively anyway.
            if m.contains([',', '"', '\n', '\r']) {
                let _ = write!(out, "\"{}\"", m.replace('"', "\"\""));
            } else {
                out.push_str(m);
            }
        }
        out.push('\n');
        for s in &self.samples {
            let _ = write!(out, "{}", s.cycle);
            for v in &s.values {
                let _ = write!(out, ",{v}");
            }
            out.push('\n');
        }
        out
    }

    /// Column-oriented JSON:
    /// `{"epoch_cycles":N,"cycle":[...],"series":{"ipc":[...],...}}`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object().key("epoch_cycles").uint(self.epoch_cycles);
        w.key("cycle").begin_array();
        for s in &self.samples {
            w.uint(s.cycle);
        }
        w.end_array();
        w.key("series").begin_object();
        for (i, m) in self.metrics.iter().enumerate() {
            w.key(m).begin_array();
            for s in &self.samples {
                w.num(s.values[i]);
            }
            w.end_array();
        }
        w.end_object().end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn tl() -> Timeline {
        let mut t = Timeline::new(100, &["ipc", "row_hits"]);
        t.push(100, vec![1.5, 30.0]);
        t.push(200, vec![1.25, 42.0]);
        t
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = tl().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "cycle,ipc,row_hits");
        assert_eq!(lines[1], "100,1.5,30");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn json_round_trips() {
        let v = parse(&tl().to_json()).unwrap();
        assert_eq!(v.get("epoch_cycles").unwrap().as_f64(), Some(100.0));
        assert_eq!(v.get("cycle").unwrap().items().len(), 2);
        let ipc = v.get("series").unwrap().get("ipc").unwrap();
        assert_eq!(ipc.items()[1].as_f64(), Some(1.25));
    }

    #[test]
    fn series_extraction() {
        assert_eq!(tl().series("row_hits"), Some(vec![30.0, 42.0]));
        assert_eq!(tl().series("nope"), None);
    }

    #[test]
    #[should_panic]
    fn width_mismatch_panics() {
        let mut t = Timeline::new(10, &["a"]);
        t.push(10, vec![1.0, 2.0]);
    }
}
