//! Leveled structured event logging for the harness. Events carry a
//! level, a target (the emitting subsystem), a human message, and typed
//! key/value context fields (run, slot, worker, …). Two renderings:
//!
//! * **human** — a single-line stderr rendering, the default, matching
//!   what the old ad-hoc `eprintln!` sites printed;
//! * **json** — one JSON object per line (JSONL), machine-ingestable.
//!
//! Controlled by environment variables, read once on first use:
//!
//! * `MICROBANK_LOG` — minimum level: `error`, `warn` (default),
//!   `info`, `debug`, `trace`, or `off`.
//! * `MICROBANK_LOG_FORMAT` — `human` (default) or `json`.
//!
//! Logging observes the simulation but never feeds back into it:
//! enabling any level cannot change simulated state, only stderr.

use crate::json::JsonWriter;
use std::io::Write as _;
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error,
    Warn,
    Info,
    Debug,
    Trace,
}

impl Level {
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a `MICROBANK_LOG` value. `Some(None)` means logging is off;
    /// outer `None` means the value was unrecognized.
    pub fn parse(s: &str) -> Option<Option<Level>> {
        Some(Some(match s.trim().to_ascii_lowercase().as_str() {
            "error" => Level::Error,
            "warn" | "warning" => Level::Warn,
            "info" => Level::Info,
            "debug" => Level::Debug,
            "trace" => Level::Trace,
            "off" | "none" | "0" => return Some(None),
            _ => return None,
        }))
    }
}

/// A typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One event, borrowed for rendering.
#[derive(Debug)]
pub struct Event<'a> {
    pub level: Level,
    /// Emitting subsystem, e.g. `sim::shard`, `sim::sweep`.
    pub target: &'a str,
    pub message: &'a str,
    pub fields: &'a [(&'a str, Value)],
}

/// Render an event as the single-line human form:
/// `microbank[warn] sim::sweep: message (k=v, k=v)`.
pub fn render_human(ev: &Event) -> String {
    let mut out = format!(
        "microbank[{}] {}: {}",
        ev.level.name(),
        ev.target,
        ev.message
    );
    if !ev.fields.is_empty() {
        out.push_str(" (");
        for (i, (k, v)) in ev.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(k);
            out.push('=');
            match v {
                Value::Str(s) => out.push_str(s),
                Value::U64(n) => out.push_str(&n.to_string()),
                Value::I64(n) => out.push_str(&n.to_string()),
                Value::F64(n) => out.push_str(&format!("{n:.3}")),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push(')');
    }
    out
}

/// Render an event as one JSONL line (no trailing newline), with a
/// caller-supplied millisecond UNIX timestamp so rendering is pure.
pub fn render_json(ev: &Event, ts_ms: u64) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .key("ts_ms")
        .uint(ts_ms)
        .key("level")
        .string(ev.level.name())
        .key("target")
        .string(ev.target)
        .key("message")
        .string(ev.message);
    for (k, v) in ev.fields {
        w.key(k);
        match v {
            Value::Str(s) => {
                w.string(s);
            }
            Value::U64(n) => {
                w.uint(*n);
            }
            Value::I64(n) => {
                w.num(*n as f64);
            }
            Value::F64(n) => {
                w.num(*n);
            }
            Value::Bool(b) => {
                w.boolean(*b);
            }
        }
    }
    w.end_object();
    w.finish()
}

#[derive(Debug)]
struct Logger {
    level: Option<Level>,
    json: bool,
}

static LOGGER: OnceLock<Logger> = OnceLock::new();

fn logger() -> &'static Logger {
    LOGGER.get_or_init(|| {
        let level = match std::env::var("MICROBANK_LOG") {
            Ok(v) => Level::parse(&v).unwrap_or(Some(Level::Warn)),
            Err(_) => Some(Level::Warn),
        };
        let json = matches!(
            std::env::var("MICROBANK_LOG_FORMAT").as_deref(),
            Ok("json") | Ok("jsonl")
        );
        Logger { level, json }
    })
}

/// Whether an event at `level` would be emitted under the current
/// configuration. Use to skip building expensive fields.
pub fn enabled(level: Level) -> bool {
    matches!(logger().level, Some(max) if level <= max)
}

/// Emit an event to stderr if its level passes the configured filter.
pub fn emit(level: Level, target: &str, message: &str, fields: &[(&str, Value)]) {
    let logger = logger();
    if !matches!(logger.level, Some(max) if level <= max) {
        return;
    }
    let ev = Event {
        level,
        target,
        message,
        fields,
    };
    let line = if logger.json {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        render_json(&ev, ts_ms)
    } else {
        render_human(&ev)
    };
    // A broken stderr pipe must not kill the simulation.
    let _ = writeln!(std::io::stderr().lock(), "{line}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(Level::parse("warn"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("TRACE"), Some(Some(Level::Trace)));
        assert_eq!(Level::parse(" off "), Some(None));
        assert_eq!(Level::parse("verbose"), None);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Trace);
    }

    #[test]
    fn human_rendering_matches_expected_shape() {
        let ev = Event {
            level: Level::Warn,
            target: "sim::sweep",
            message: "slot failed; retrying once",
            fields: &[
                ("sweep", Value::from("headline")),
                ("slot", Value::from("16x16")),
                ("attempt", Value::from(1u64)),
            ],
        };
        assert_eq!(
            render_human(&ev),
            "microbank[warn] sim::sweep: slot failed; retrying once \
             (sweep=headline, slot=16x16, attempt=1)"
        );
        let bare = Event {
            level: Level::Info,
            target: "sim",
            message: "done",
            fields: &[],
        };
        assert_eq!(render_human(&bare), "microbank[info] sim: done");
    }

    #[test]
    fn json_rendering_is_one_parseable_object() {
        let ev = Event {
            level: Level::Error,
            target: "sim::shard",
            message: "stall \"detected\"",
            fields: &[
                ("worker", Value::from(3u64)),
                ("ratio", Value::from(0.5)),
                ("fatal", Value::from(false)),
                ("note", Value::from("a\nb")),
            ],
        };
        let line = render_json(&ev, 1_700_000_000_123);
        assert!(!line.contains('\n'));
        let doc = parse(&line).unwrap();
        assert_eq!(doc.get("level").unwrap().as_str(), Some("error"));
        assert_eq!(
            doc.get("ts_ms").unwrap().as_f64(),
            Some(1_700_000_000_123.0)
        );
        assert_eq!(doc.get("worker").unwrap().as_f64(), Some(3.0));
        assert_eq!(doc.get("note").unwrap().as_str(), Some("a\nb"));
        assert_eq!(doc.get("fatal"), Some(&crate::json::JsonValue::Bool(false)));
    }
}
