//! A tiny blocking HTTP server: serves a caller-maintained JSON status
//! document at `/status` and the metrics registry's Prometheus
//! exposition at `/metrics`, plus any routes a registered
//! [`handler`](StatusShared::set_handler) claims (the sweep service's
//! job API). Dependency-free (std `TcpListener`), one accept thread,
//! `Connection: close` per request — enough for a human with `curl`, a
//! scraper, or a sweep submitter, while staying trivially auditable.
//!
//! Hostile-input posture: the read loop is bounded three ways — header
//! bytes (8 KiB → 431), declared body bytes (1 MiB → 413), and wall
//! clock (a slowloris trickling bytes gets at most
//! [`CONN_DEADLINE`] before a 408-and-close) — and a handler that
//! panics is caught and answered with a 500, never killing the accept
//! thread. Binding to port 0 picks an ephemeral port, reported by
//! [`StatusServer::local_addr`].

use crate::metrics::MetricsRegistry;
use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum header-section bytes accepted before answering 431.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Maximum request-body bytes accepted before answering 413.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Wall-clock budget for reading one request; a client that has not
/// delivered a complete request by then gets a 408 and the socket is
/// closed. This is the slowloris bound: one connection can occupy the
/// (single-threaded) server for at most this long.
pub const CONN_DEADLINE: Duration = Duration::from_secs(5);

/// Concurrent connection threads before new connections are served
/// inline on the acceptor (backpressure against connection floods).
const MAX_CONN_THREADS: usize = 32;

/// A parsed request handed to the registered [`Handler`].
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Uppercase method token as sent (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path with any `?query` stripped.
    pub path: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// A response a [`Handler`] (or the built-in router) produces.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    pub code: u16,
    pub content_type: &'static str,
    pub body: String,
    /// Extra headers, e.g. `("Retry-After", "2")` on a 429.
    pub headers: Vec<(&'static str, String)>,
}

impl HttpResponse {
    pub fn json(code: u16, body: impl Into<String>) -> Self {
        HttpResponse {
            code,
            content_type: "application/json; charset=utf-8",
            body: body.into(),
            headers: Vec::new(),
        }
    }

    pub fn text(code: u16, body: impl Into<String>) -> Self {
        HttpResponse {
            code,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            headers: Vec::new(),
        }
    }

    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }
}

/// Canonical reason phrases for the codes this server emits.
fn reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// A route handler: returns `Some(response)` to claim the request,
/// `None` to fall through to the built-in `/status`-`/metrics` routes.
pub type Handler = dyn Fn(&HttpRequest) -> Option<HttpResponse> + Send + Sync;

/// State shared between the producer (e.g. `SweepRunner`) and the
/// server thread.
pub struct StatusShared {
    status_json: Mutex<String>,
    metrics: Arc<MetricsRegistry>,
    handler: Mutex<Option<Arc<Handler>>>,
}

impl std::fmt::Debug for StatusShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatusShared")
            .field("metrics", &self.metrics)
            .finish_non_exhaustive()
    }
}

impl StatusShared {
    pub fn new(metrics: Arc<MetricsRegistry>) -> Arc<Self> {
        Arc::new(StatusShared {
            status_json: Mutex::new("{}".to_string()),
            metrics,
            handler: Mutex::new(None),
        })
    }

    /// Install (or, with `None`, remove) the route handler consulted
    /// before the built-in routes. The sweep service registers its job
    /// API here; clearing it at shutdown also breaks the
    /// `StatusShared → handler → service → StatusShared` reference
    /// cycle so everything drops.
    pub fn set_handler(&self, h: Option<Arc<Handler>>) {
        let mut g = self.handler.lock().unwrap_or_else(|p| p.into_inner());
        *g = h;
    }

    fn handler(&self) -> Option<Arc<Handler>> {
        self.handler
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Replace the document served at `/status`.
    ///
    /// A thread that panicked mid-update (e.g. a crashing sweep slot)
    /// poisons the mutex; the status surface is diagnostic read-only
    /// state, so both accessors recover the guard — serving the
    /// last-known document — and log a `warn` instead of propagating the
    /// panic into the producer or the server thread.
    pub fn set_status_json(&self, s: String) {
        let mut g = self.status_json.lock().unwrap_or_else(|poisoned| {
            warn_poisoned("set_status_json");
            poisoned.into_inner()
        });
        *g = s;
    }

    pub fn status_json(&self) -> String {
        self.status_json
            .lock()
            .unwrap_or_else(|poisoned| {
                warn_poisoned("status_json");
                poisoned.into_inner()
            })
            .clone()
    }

    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Poison the status mutex the only way a mutex gets poisoned: by
    /// panicking while holding the guard. Production code never holds
    /// the guard across fallible work, so the recovery paths can only be
    /// exercised by a deliberately crashing thread.
    #[cfg(test)]
    fn poison_for_test(self: &Arc<Self>) {
        let me = Arc::clone(self);
        let res = std::thread::Builder::new()
            .name("poisoner".to_string())
            .spawn(move || {
                let _guard = me.status_json.lock().unwrap();
                panic!("deliberate poison");
            })
            .unwrap()
            .join();
        assert!(res.is_err(), "poisoner thread must panic");
    }
}

/// A poisoned status mutex means some slot panicked while holding it;
/// the document itself (a whole `String` swap) is never torn, so keep
/// serving and leave a trail in the event log.
fn warn_poisoned(site: &str) {
    crate::event::emit(
        crate::Level::Warn,
        "telemetry::status",
        "status mutex poisoned by a panicked producer; serving last-known document",
        &[("site", site.into())],
    );
}

/// Handle to a running server; stops (thread joined) on drop.
#[derive(Debug)]
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatusServer {
    /// Bind `addr` (e.g. `127.0.0.1:7878`, port 0 for ephemeral) and
    /// serve `shared` until dropped.
    pub fn start(addr: &str, shared: Arc<StatusShared>) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("microbank-status".to_string())
            .spawn(move || {
                // Each connection gets its own short-lived thread so a
                // stalled peer can only hold its own slot (reaped by
                // CONN_DEADLINE), never the acceptor. The slot count
                // bounds what a connection flood can pin; at the cap the
                // flood is served inline, which is backpressure, not a
                // hang: inline connections still answer-or-close within
                // the deadline.
                let slots = Arc::new(AtomicUsize::new(0));
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        if slots.load(Ordering::Acquire) < MAX_CONN_THREADS {
                            slots.fetch_add(1, Ordering::AcqRel);
                            let shared = Arc::clone(&shared);
                            let slots2 = Arc::clone(&slots);
                            let spawned = std::thread::Builder::new()
                                .name("microbank-status-conn".to_string())
                                .spawn(move || {
                                    let _ = handle_conn(stream, &shared);
                                    slots2.fetch_sub(1, Ordering::AcqRel);
                                });
                            if spawned.is_err() {
                                // The closure (and the stream with it) was
                                // dropped without running; free its slot.
                                slots.fetch_sub(1, Ordering::AcqRel);
                            }
                        } else {
                            let _ = handle_conn(stream, &shared);
                        }
                    }
                }
            })?;
        Ok(StatusServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection. When the
        // listener was bound to a wildcard address, `self.addr` is
        // `0.0.0.0:<port>` (or `[::]:<port>`) — not connectable on every
        // platform — so dial the matching loopback with the bound port.
        let ip = match self.addr.ip() {
            ip if ip.is_unspecified() && ip.is_ipv4() => IpAddr::V4(Ipv4Addr::LOCALHOST),
            ip if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
            ip => ip,
        };
        let wake = SocketAddr::new(ip, self.addr.port());
        let _ = TcpStream::connect_timeout(&wake, Duration::from_millis(500));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Read one request within the caps and deadline. `Ok(Err(resp))` is a
/// protocol-level rejection to send; `Err(_)` means the peer vanished
/// (nothing useful to send).
fn read_request(stream: &mut TcpStream) -> std::io::Result<Result<HttpRequest, HttpResponse>> {
    let deadline = Instant::now() + CONN_DEADLINE;
    // Short per-read timeout so the deadline is checked between reads
    // even against a peer that sends nothing at all.
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Phase 1: accumulate until end-of-headers.
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Ok(Err(HttpResponse::text(431, "header section too large\n")));
        }
        if Instant::now() >= deadline {
            return Ok(Err(HttpResponse::text(
                408,
                "request not received in time\n",
            )));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(std::io::Error::other("peer closed before headers")),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Per-read timeout: loop back to the deadline check.
            }
            Err(e) => return Err(e),
        }
    };

    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.lines();
    let mut parts = lines.next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() {
        return Ok(Err(HttpResponse::text(400, "malformed request line\n")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    // Content-Length is the only body framing we speak (no chunked).
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                match value.trim().parse::<usize>() {
                    Ok(n) => content_length = n,
                    Err(_) => {
                        return Ok(Err(HttpResponse::text(400, "bad Content-Length\n")));
                    }
                }
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Err(HttpResponse::text(413, "request body too large\n")));
    }

    // Phase 2: drain the declared body (part may already be buffered).
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        if Instant::now() >= deadline {
            return Ok(Err(HttpResponse::text(
                408,
                "request body not received in time\n",
            )));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(std::io::Error::other("peer closed mid-body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
    body.truncate(content_length);
    Ok(Ok(HttpRequest { method, path, body }))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn handle_conn(mut stream: TcpStream, shared: &StatusShared) -> std::io::Result<()> {
    let request = match read_request(&mut stream)? {
        Ok(req) => req,
        Err(resp) => return write_response(&mut stream, &resp),
    };

    // Registered handler first: it may claim any method/path. A panic in
    // the handler must not take down the accept thread — answer 500 and
    // keep serving (the panic itself is already reported by the hook).
    if let Some(handler) = shared.handler() {
        let claimed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&request)))
            .unwrap_or_else(|_| Some(HttpResponse::text(500, "handler panicked\n")));
        if let Some(resp) = claimed {
            return write_response(&mut stream, &resp);
        }
    }

    let resp = if request.method != "GET" {
        HttpResponse::text(405, "method not supported on this path\n")
    } else {
        match request.path.as_str() {
            "/status" => HttpResponse::json(200, shared.status_json()),
            "/metrics" => HttpResponse {
                code: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: shared.metrics().render_prometheus(),
                headers: Vec::new(),
            },
            "/" => HttpResponse::text(
                200,
                "microbank status server\nendpoints: /status /metrics\n",
            ),
            _ => HttpResponse::text(404, "not found; try /status or /metrics\n"),
        }
    };
    write_response(&mut stream, &resp)
}

fn write_response(stream: &mut TcpStream, resp: &HttpResponse) -> std::io::Result<()> {
    let mut extra = String::new();
    for (name, value) in &resp.headers {
        extra.push_str(name);
        extra.push_str(": ");
        extra.push_str(value);
        extra.push_str("\r\n");
    }
    let response = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\n\
         Content-Length: {}\r\n{extra}Connection: close\r\n\r\n{}",
        resp.code,
        reason(resp.code),
        resp.content_type,
        resp.body.len(),
        resp.body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Minimal blocking HTTP GET against a status server; returns the body.
/// Test/CLI helper — not a general HTTP client.
pub fn http_get(addr: &SocketAddr, path: &str) -> std::io::Result<String> {
    let (code, body) = http_request(addr, "GET", path, b"")?;
    if code != 200 {
        return Err(std::io::Error::other(format!("HTTP error: {code}")));
    }
    Ok(body)
}

/// Minimal blocking HTTP request with a body; returns `(status, body)`.
/// Test/CLI helper for exercising the job API — not a general client.
pub fn http_request(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status_line = response.lines().next().unwrap_or("");
    let code = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::other(format!("malformed status line: {status_line}")))?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok((code, body.to_string())),
        None => Err(std::io::Error::other("malformed HTTP response")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::metrics::validate_exposition;

    #[test]
    fn serves_status_and_metrics_then_stops() {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.counter_add("smoke_total", &[], 2);
        let shared = StatusShared::new(Arc::clone(&metrics));
        shared.set_status_json("{\"state\":\"running\"}".to_string());
        let server = StatusServer::start("127.0.0.1:0", Arc::clone(&shared)).unwrap();
        let addr = server.local_addr();

        let status = http_get(&addr, "/status").unwrap();
        assert_eq!(
            parse(&status).unwrap().get("state").unwrap().as_str(),
            Some("running")
        );

        // The producer can update between requests.
        shared.set_status_json("{\"state\":\"done\"}".to_string());
        let status = http_get(&addr, "/status").unwrap();
        assert!(status.contains("done"));

        let metrics_text = http_get(&addr, "/metrics").unwrap();
        assert!(metrics_text.contains("smoke_total 2"));
        validate_exposition(&metrics_text).unwrap();

        assert!(http_get(&addr, "/nope").is_err());
        let index = http_get(&addr, "/").unwrap();
        assert!(index.contains("/metrics"));

        drop(server);
        // After drop the port no longer accepts (may take a moment for
        // the OS to tear down; connection may succeed but read fails, so
        // just assert the request no longer round-trips).
        assert!(http_get(&addr, "/status").is_err());
    }

    /// A producer thread that panics while updating poisons the status
    /// mutex. The surface is diagnostic-only, so both accessors must
    /// recover: `/status` keeps serving the last-known document instead
    /// of killing the server thread, and later updates still land.
    #[test]
    fn poisoned_status_mutex_serves_last_known_document() {
        let metrics = Arc::new(MetricsRegistry::new());
        let shared = StatusShared::new(Arc::clone(&metrics));
        shared.set_status_json("{\"state\":\"running\"}".to_string());
        shared.poison_for_test();

        // Reader recovers and sees the pre-poison document.
        assert_eq!(shared.status_json(), "{\"state\":\"running\"}");

        // The server thread survives requests against the poisoned lock.
        let server = StatusServer::start("127.0.0.1:0", Arc::clone(&shared)).unwrap();
        let addr = server.local_addr();
        let status = http_get(&addr, "/status").unwrap();
        assert!(status.contains("running"), "lost document: {status}");

        // Writer recovers too: updates keep flowing after the poison.
        shared.set_status_json("{\"state\":\"done\"}".to_string());
        let status = http_get(&addr, "/status").unwrap();
        assert!(status.contains("done"), "post-poison update lost: {status}");
    }
}
