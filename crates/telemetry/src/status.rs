//! A tiny blocking HTTP status server: serves a caller-maintained JSON
//! status document at `/status` and the metrics registry's Prometheus
//! exposition at `/metrics`. Dependency-free (std `TcpListener`), one
//! accept thread, `Connection: close` per request — exactly enough for
//! a human with `curl` or a scraper polling a running sweep, and the
//! groundwork for sweep-as-a-service.
//!
//! The server only *reads* shared state; it can never influence the
//! simulation. Binding to port 0 picks an ephemeral port, reported by
//! [`StatusServer::local_addr`].

use crate::metrics::MetricsRegistry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// State shared between the producer (e.g. `SweepRunner`) and the
/// server thread.
#[derive(Debug)]
pub struct StatusShared {
    status_json: Mutex<String>,
    metrics: Arc<MetricsRegistry>,
}

impl StatusShared {
    pub fn new(metrics: Arc<MetricsRegistry>) -> Arc<Self> {
        Arc::new(StatusShared {
            status_json: Mutex::new("{}".to_string()),
            metrics,
        })
    }

    /// Replace the document served at `/status`.
    ///
    /// A thread that panicked mid-update (e.g. a crashing sweep slot)
    /// poisons the mutex; the status surface is diagnostic read-only
    /// state, so both accessors recover the guard — serving the
    /// last-known document — and log a `warn` instead of propagating the
    /// panic into the producer or the server thread.
    pub fn set_status_json(&self, s: String) {
        let mut g = self.status_json.lock().unwrap_or_else(|poisoned| {
            warn_poisoned("set_status_json");
            poisoned.into_inner()
        });
        *g = s;
    }

    pub fn status_json(&self) -> String {
        self.status_json
            .lock()
            .unwrap_or_else(|poisoned| {
                warn_poisoned("status_json");
                poisoned.into_inner()
            })
            .clone()
    }

    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Poison the status mutex the only way a mutex gets poisoned: by
    /// panicking while holding the guard. Production code never holds
    /// the guard across fallible work, so the recovery paths can only be
    /// exercised by a deliberately crashing thread.
    #[cfg(test)]
    fn poison_for_test(self: &Arc<Self>) {
        let me = Arc::clone(self);
        let res = std::thread::Builder::new()
            .name("poisoner".to_string())
            .spawn(move || {
                let _guard = me.status_json.lock().unwrap();
                panic!("deliberate poison");
            })
            .unwrap()
            .join();
        assert!(res.is_err(), "poisoner thread must panic");
    }
}

/// A poisoned status mutex means some slot panicked while holding it;
/// the document itself (a whole `String` swap) is never torn, so keep
/// serving and leave a trail in the event log.
fn warn_poisoned(site: &str) {
    crate::event::emit(
        crate::Level::Warn,
        "telemetry::status",
        "status mutex poisoned by a panicked producer; serving last-known document",
        &[("site", site.into())],
    );
}

/// Handle to a running server; stops (thread joined) on drop.
#[derive(Debug)]
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatusServer {
    /// Bind `addr` (e.g. `127.0.0.1:7878`, port 0 for ephemeral) and
    /// serve `shared` until dropped.
    pub fn start(addr: &str, shared: Arc<StatusShared>) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("microbank-status".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // One request at a time: responses are tiny and the
                        // producer must never block on a slow scraper.
                        let _ = handle_conn(stream, &shared);
                    }
                }
            })?;
        Ok(StatusServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_conn(mut stream: TcpStream, shared: &StatusShared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until end of headers (or a small cap — requests are GETs).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => break,
        };
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    let (code, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        match path {
            "/status" => (
                "200 OK",
                "application/json; charset=utf-8",
                shared.status_json(),
            ),
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                shared.metrics().render_prometheus(),
            ),
            "/" => (
                "200 OK",
                "text/plain; charset=utf-8",
                "microbank status server\nendpoints: /status /metrics\n".to_string(),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found; try /status or /metrics\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {code}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Minimal blocking HTTP GET against a status server; returns the body.
/// Test/CLI helper — not a general HTTP client.
pub fn http_get(addr: &SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(std::io::Error::other(format!("HTTP error: {status}")));
    }
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::other("malformed HTTP response")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::metrics::validate_exposition;

    #[test]
    fn serves_status_and_metrics_then_stops() {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.counter_add("smoke_total", &[], 2);
        let shared = StatusShared::new(Arc::clone(&metrics));
        shared.set_status_json("{\"state\":\"running\"}".to_string());
        let server = StatusServer::start("127.0.0.1:0", Arc::clone(&shared)).unwrap();
        let addr = server.local_addr();

        let status = http_get(&addr, "/status").unwrap();
        assert_eq!(
            parse(&status).unwrap().get("state").unwrap().as_str(),
            Some("running")
        );

        // The producer can update between requests.
        shared.set_status_json("{\"state\":\"done\"}".to_string());
        let status = http_get(&addr, "/status").unwrap();
        assert!(status.contains("done"));

        let metrics_text = http_get(&addr, "/metrics").unwrap();
        assert!(metrics_text.contains("smoke_total 2"));
        validate_exposition(&metrics_text).unwrap();

        assert!(http_get(&addr, "/nope").is_err());
        let index = http_get(&addr, "/").unwrap();
        assert!(index.contains("/metrics"));

        drop(server);
        // After drop the port no longer accepts (may take a moment for
        // the OS to tear down; connection may succeed but read fails, so
        // just assert the request no longer round-trips).
        assert!(http_get(&addr, "/status").is_err());
    }

    /// A producer thread that panics while updating poisons the status
    /// mutex. The surface is diagnostic-only, so both accessors must
    /// recover: `/status` keeps serving the last-known document instead
    /// of killing the server thread, and later updates still land.
    #[test]
    fn poisoned_status_mutex_serves_last_known_document() {
        let metrics = Arc::new(MetricsRegistry::new());
        let shared = StatusShared::new(Arc::clone(&metrics));
        shared.set_status_json("{\"state\":\"running\"}".to_string());
        shared.poison_for_test();

        // Reader recovers and sees the pre-poison document.
        assert_eq!(shared.status_json(), "{\"state\":\"running\"}");

        // The server thread survives requests against the poisoned lock.
        let server = StatusServer::start("127.0.0.1:0", Arc::clone(&shared)).unwrap();
        let addr = server.local_addr();
        let status = http_get(&addr, "/status").unwrap();
        assert!(status.contains("running"), "lost document: {status}");

        // Writer recovers too: updates keep flowing after the poison.
        shared.set_status_json("{\"state\":\"done\"}".to_string());
        let status = http_get(&addr, "/status").unwrap();
        assert!(status.contains("done"), "post-poison update lost: {status}");
    }
}
