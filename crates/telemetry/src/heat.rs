//! Per-μbank heat counters. Every activate and row-buffer outcome is
//! attributed to the flat μbank index that caused it, so a run can be
//! rendered as an `nW×nB` heat map: which μbanks the address interleave
//! actually spreads traffic across, and where conflicts concentrate.

use crate::json::JsonWriter;
use std::fmt::Write as _;

/// Activity counters indexed by flat μbank id (see the channel's flat
/// index layout: `(rank·banksPerRank + bank)·nW·nB + b·nW + w`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeatCounters {
    /// Row-partition degree (sub-row width divisor).
    pub n_w: usize,
    /// Bank-partition degree (rows-per-μbank divisor).
    pub n_b: usize,
    pub activates: Vec<u64>,
    pub row_hits: Vec<u64>,
    pub row_conflicts: Vec<u64>,
    pub row_closed: Vec<u64>,
    /// ECC-corrected errors attributed to the μbank (reliability
    /// subsystem; all-zero when fault injection is disabled).
    pub corrected: Vec<u64>,
}

impl HeatCounters {
    pub fn new(n_ubanks: usize, n_w: usize, n_b: usize) -> Self {
        HeatCounters {
            n_w,
            n_b,
            activates: vec![0; n_ubanks],
            row_hits: vec![0; n_ubanks],
            row_conflicts: vec![0; n_ubanks],
            row_closed: vec![0; n_ubanks],
            corrected: vec![0; n_ubanks],
        }
    }

    pub fn num_ubanks(&self) -> usize {
        self.activates.len()
    }

    pub fn total_activates(&self) -> u64 {
        self.activates.iter().sum()
    }

    pub fn total_hits(&self) -> u64 {
        self.row_hits.iter().sum()
    }

    pub fn total_conflicts(&self) -> u64 {
        self.row_conflicts.iter().sum()
    }

    /// Accumulate another channel's counters (element-wise; shapes must
    /// match — i.e. both channels share one `MemConfig`). Saturating, so a
    /// cross-shard merge of counters near `u64::MAX` pins at the ceiling
    /// instead of wrapping (the same contract as `Histogram::merge`).
    pub fn merge(&mut self, other: &HeatCounters) {
        assert_eq!(self.num_ubanks(), other.num_ubanks(), "heat shape mismatch");
        for (a, b) in self.activates.iter_mut().zip(&other.activates) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.row_hits.iter_mut().zip(&other.row_hits) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.row_conflicts.iter_mut().zip(&other.row_conflicts) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.row_closed.iter_mut().zip(&other.row_closed) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.corrected.iter_mut().zip(&other.corrected) {
            *a = a.saturating_add(*b);
        }
    }

    /// Counter deltas since an earlier snapshot of the same counters
    /// (element-wise saturating subtraction; shapes must match). Used to
    /// restrict a run's heat map to the measurement window.
    pub fn delta_since(&self, earlier: &HeatCounters) -> HeatCounters {
        assert_eq!(
            self.num_ubanks(),
            earlier.num_ubanks(),
            "heat shape mismatch"
        );
        let sub = |a: &[u64], b: &[u64]| -> Vec<u64> {
            a.iter().zip(b).map(|(x, y)| x.saturating_sub(*y)).collect()
        };
        HeatCounters {
            n_w: self.n_w,
            n_b: self.n_b,
            activates: sub(&self.activates, &earlier.activates),
            row_hits: sub(&self.row_hits, &earlier.row_hits),
            row_conflicts: sub(&self.row_conflicts, &earlier.row_conflicts),
            row_closed: sub(&self.row_closed, &earlier.row_closed),
            corrected: sub(&self.corrected, &earlier.corrected),
        }
    }

    /// Sum a per-flat counter over banks into the `nB×nW` within-bank grid
    /// (row = b, column = w): the shape the paper's μbank partitioning is
    /// parameterized on.
    fn fold_grid(&self, per_flat: &[u64]) -> Vec<Vec<u64>> {
        let per_bank = self.n_w * self.n_b;
        let mut grid = vec![vec![0u64; self.n_w]; self.n_b];
        for (flat, &v) in per_flat.iter().enumerate() {
            let within = flat % per_bank;
            grid[within / self.n_w][within % self.n_w] += v;
        }
        grid
    }

    /// The activate heat map folded to the within-bank `nB×nW` grid.
    pub fn activate_grid(&self) -> Vec<Vec<u64>> {
        self.fold_grid(&self.activates)
    }

    /// Imbalance of a per-flat counter: max/mean over μbanks (1.0 =
    /// perfectly even; large = hot-spotted). Returns 0 for an all-zero
    /// counter.
    pub fn imbalance(per_flat: &[u64]) -> f64 {
        let total: u64 = per_flat.iter().sum();
        if total == 0 || per_flat.is_empty() {
            return 0.0;
        }
        let mean = total as f64 / per_flat.len() as f64;
        *per_flat.iter().max().unwrap() as f64 / mean
    }

    /// Plain-text heat map: one `nB×nW` matrix per counter, summed over
    /// banks, plus per-counter totals — the quick-look artifact.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, data) in [
            ("activates", &self.activates),
            ("row_hits", &self.row_hits),
            ("row_conflicts", &self.row_conflicts),
            ("corrected", &self.corrected),
        ] {
            // Corrected-error heat only renders when the reliability
            // subsystem produced any (keeps the default artifact stable).
            if name == "corrected" && data.iter().all(|&v| v == 0) {
                continue;
            }
            let grid = self.fold_grid(data);
            let total: u64 = data.iter().sum();
            let _ = writeln!(
                out,
                "{name} (total {total}, imbalance {:.2})",
                Self::imbalance(data)
            );
            out.push_str("  b\\w ");
            for w in 0..self.n_w {
                let _ = write!(out, "{w:>10}");
            }
            out.push('\n');
            for (b, row) in grid.iter().enumerate() {
                let _ = write!(out, "  {b:>3} ");
                for v in row {
                    let _ = write!(out, "{v:>10}");
                }
                out.push('\n');
            }
        }
        out
    }

    /// CSV with one row per flat μbank:
    /// `flat,bank,b,w,activates,row_hits,row_conflicts,row_closed,corrected`.
    pub fn to_csv(&self) -> String {
        let per_bank = self.n_w * self.n_b;
        let mut out =
            String::from("flat,bank,b,w,activates,row_hits,row_conflicts,row_closed,corrected\n");
        for flat in 0..self.num_ubanks() {
            let within = flat % per_bank;
            let _ = writeln!(
                out,
                "{flat},{},{},{},{},{},{},{},{}",
                flat / per_bank,
                within / self.n_w,
                within % self.n_w,
                self.activates[flat],
                self.row_hits[flat],
                self.row_conflicts[flat],
                self.row_closed[flat],
                self.corrected[flat],
            );
        }
        out
    }

    /// JSON object with shape metadata and the per-flat counter arrays.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("n_w")
            .uint(self.n_w as u64)
            .key("n_b")
            .uint(self.n_b as u64)
            .key("n_ubanks")
            .uint(self.num_ubanks() as u64);
        for (name, data) in [
            ("activates", &self.activates),
            ("row_hits", &self.row_hits),
            ("row_conflicts", &self.row_conflicts),
            ("row_closed", &self.row_closed),
            ("corrected", &self.corrected),
        ] {
            w.key(name).begin_array();
            for &v in data.iter() {
                w.uint(v);
            }
            w.end_array();
        }
        w.end_object();
        w.finish()
    }
}

/// Per-channel telemetry state owned by the DRAM channel model. Boxed
/// behind an `Option` on the channel so the disabled path costs one branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelTelemetry {
    pub heat: HeatCounters,
}

impl ChannelTelemetry {
    pub fn new(n_ubanks: usize, n_w: usize, n_b: usize) -> Self {
        ChannelTelemetry {
            heat: HeatCounters::new(n_ubanks, n_w, n_b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn grid_folds_over_banks() {
        // 2 banks × (nW=2, nB=2) = 8 flat μbanks.
        let mut h = HeatCounters::new(8, 2, 2);
        h.activates[0] = 1; // bank0 b0 w0
        h.activates[3] = 2; // bank0 b1 w1
        h.activates[4] = 10; // bank1 b0 w0
        let g = h.activate_grid();
        assert_eq!(g[0][0], 11);
        assert_eq!(g[1][1], 2);
        assert_eq!(h.total_activates(), 13);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = HeatCounters::new(4, 2, 2);
        let mut b = HeatCounters::new(4, 2, 2);
        a.row_hits[1] = 5;
        b.row_hits[1] = 7;
        b.row_conflicts[2] = 3;
        a.merge(&b);
        assert_eq!(a.row_hits[1], 12);
        assert_eq!(a.total_conflicts(), 3);
    }

    #[test]
    fn merge_saturates_at_ceiling() {
        let mut a = HeatCounters::new(4, 2, 2);
        let mut b = HeatCounters::new(4, 2, 2);
        a.activates[0] = u64::MAX - 2;
        b.activates[0] = 100;
        a.corrected[3] = 5;
        b.corrected[3] = u64::MAX;
        a.merge(&b);
        assert_eq!(a.activates[0], u64::MAX);
        assert_eq!(a.corrected[3], u64::MAX);
        assert_eq!(a.activates[1], 0);
    }

    #[test]
    fn imbalance_metric() {
        assert_eq!(HeatCounters::imbalance(&[0, 0]), 0.0);
        assert!((HeatCounters::imbalance(&[2, 2, 2, 2]) - 1.0).abs() < 1e-12);
        assert!((HeatCounters::imbalance(&[8, 0, 0, 0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn csv_lists_every_ubank() {
        let h = HeatCounters::new(8, 2, 2);
        assert_eq!(h.to_csv().lines().count(), 9);
        assert!(h.to_csv().starts_with("flat,bank,b,w,"));
    }

    #[test]
    fn json_round_trips_totals() {
        let mut h = HeatCounters::new(4, 2, 2);
        h.activates = vec![1, 2, 3, 4];
        let v = parse(&h.to_json()).unwrap();
        let acts: f64 = v
            .get("activates")
            .unwrap()
            .items()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .sum();
        assert_eq!(acts, 10.0);
        assert_eq!(v.get("n_w").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn text_rendering_mentions_counters() {
        let h = HeatCounters::new(4, 2, 2);
        let t = h.to_text();
        assert!(t.contains("activates"));
        assert!(t.contains("row_conflicts"));
    }
}
