//! Harness self-profiling helpers. The phase timing itself lives in
//! [`crate::span::SpanTracer`] (hierarchical wall-clock spans); this
//! module keeps the derived throughput metric.

/// Simulated megacycles per wall-second — the simulator's own throughput
/// metric. Returns 0 for a zero-duration measurement.
pub fn mcycles_per_sec(cycles: u64, wall_secs: f64) -> f64 {
    if wall_secs <= 0.0 {
        0.0
    } else {
        cycles as f64 / 1e6 / wall_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_metric() {
        assert_eq!(mcycles_per_sec(1_000_000, 0.0), 0.0);
        assert!((mcycles_per_sec(2_000_000, 2.0) - 1.0).abs() < 1e-12);
    }
}
