//! Harness self-profiling: wall-clock timing of the simulator's own
//! phases, so regressions in *simulator* performance (not simulated
//! performance) show up in benchmark trajectories and harness logs.

use std::time::Instant;

/// A named sequence of wall-clock phases. Phases are closed in order:
/// `mark("setup")` records the time since the previous mark (or
/// construction) under that name.
#[derive(Debug, Clone)]
pub struct PhaseTimer {
    started: Instant,
    last: Instant,
    phases: Vec<(String, f64)>,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    pub fn new() -> Self {
        let now = Instant::now();
        PhaseTimer {
            started: now,
            last: now,
            phases: Vec::new(),
        }
    }

    /// Close the current phase under `name`; returns its duration in
    /// seconds.
    pub fn mark(&mut self, name: &str) -> f64 {
        let now = Instant::now();
        let secs = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.phases.push((name.to_string(), secs));
        secs
    }

    /// `(name, seconds)` pairs in completion order.
    pub fn phases(&self) -> &[(String, f64)] {
        &self.phases
    }

    /// Seconds recorded under `name` (summed if marked repeatedly).
    pub fn seconds(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, s)| s)
            .sum()
    }

    /// Total wall seconds since construction.
    pub fn total(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Simulated megacycles per wall-second — the simulator's own throughput
/// metric. Returns 0 for a zero-duration measurement.
pub fn mcycles_per_sec(cycles: u64, wall_secs: f64) -> f64 {
    if wall_secs <= 0.0 {
        0.0
    } else {
        cycles as f64 / 1e6 / wall_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_order() {
        let mut t = PhaseTimer::new();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let s1 = t.mark("setup");
        let s2 = t.mark("run");
        assert!(s1 >= 0.002, "{s1}");
        assert!(s2 < s1, "second phase should be near-instant");
        assert_eq!(t.phases().len(), 2);
        assert!(t.seconds("setup") >= 0.002);
        assert!(t.total() >= s1 + s2);
    }

    #[test]
    fn throughput_metric() {
        assert_eq!(mcycles_per_sec(1_000_000, 0.0), 0.0);
        assert!((mcycles_per_sec(2_000_000, 2.0) - 1.0).abs() < 1e-12);
    }
}
