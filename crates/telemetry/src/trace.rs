//! Bounded command/event tracing. The controller pushes one record per
//! issued DRAM command into a fixed-capacity ring buffer (oldest records
//! are overwritten, never reallocating in the hot loop), and the result
//! exports to Chrome's `trace_event` JSON format so a run can be scrubbed
//! interactively in `chrome://tracing` / Perfetto.

use crate::json::JsonWriter;

/// DRAM command kinds a controller can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdKind {
    Act,
    Pre,
    /// Precharge-all (one command closing every open row of a rank).
    PreA,
    Rd,
    Wr,
    Ref,
    /// Patrol-scrub read-correct-restore cycle (reliability subsystem).
    Scrub,
}

impl CmdKind {
    pub fn name(self) -> &'static str {
        match self {
            CmdKind::Act => "ACT",
            CmdKind::Pre => "PRE",
            CmdKind::PreA => "PREA",
            CmdKind::Rd => "RD",
            CmdKind::Wr => "WR",
            CmdKind::Ref => "REF",
            CmdKind::Scrub => "SCRUB",
        }
    }

    pub fn from_name(s: &str) -> Option<CmdKind> {
        Some(match s {
            "ACT" => CmdKind::Act,
            "PRE" => CmdKind::Pre,
            "PREA" => CmdKind::PreA,
            "RD" => CmdKind::Rd,
            "WR" => CmdKind::Wr,
            "REF" => CmdKind::Ref,
            "SCRUB" => CmdKind::Scrub,
            _ => return None,
        })
    }
}

/// One issued command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmdRecord {
    /// CPU cycle the command occupied the command bus.
    pub cycle: u64,
    /// Owning channel (the controller's index).
    pub channel: u16,
    pub cmd: CmdKind,
    /// Flat μbank index within the channel (rank-level commands use the
    /// rank's first μbank).
    pub ubank: u32,
    /// Target row (0 for rank-level commands).
    pub row: u32,
    /// Request-queue depth when the command issued.
    pub queue_len: u16,
}

/// Fixed-capacity ring buffer of [`CmdRecord`]s.
#[derive(Debug, Clone)]
pub struct CmdTrace {
    buf: Vec<CmdRecord>,
    capacity: usize,
    /// Index of the logically-oldest record once the buffer has wrapped.
    head: usize,
    /// Total records ever pushed (`pushed - len` = overwritten).
    pushed: u64,
}

impl CmdTrace {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        CmdTrace {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records pushed over the trace's lifetime, including overwritten ones.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Records lost to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    #[inline]
    pub fn push(&mut self, rec: CmdRecord) {
        self.pushed += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Records in chronological (push) order.
    pub fn records(&self) -> Vec<CmdRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Export to Chrome `trace_event` JSON (the object form, so metadata
    /// rides along). Each command becomes a duration-less "X" event with
    /// `ts` in microseconds of simulated time (2 GHz ⇒ 0.0005 µs/cycle);
    /// `pid` = channel, `tid` = flat μbank, args carry row and queue depth.
    /// Load via chrome://tracing → Load, or ui.perfetto.dev.
    pub fn to_chrome_json(&self) -> String {
        to_chrome_json(&self.records())
    }
}

/// Microseconds of simulated time per CPU cycle (2 GHz clock).
const US_PER_CYCLE: f64 = 0.0005;

/// `pid` used for harness spans merged into a Chrome trace — far above
/// any real channel index, so device rows and harness rows group into
/// separate process tracks in the viewer.
pub const HARNESS_PID: u64 = 1_000_000;

/// Render any record sequence (e.g. a multi-channel merge) as Chrome
/// `trace_event` JSON. See [`CmdTrace::to_chrome_json`].
pub fn to_chrome_json(records: &[CmdRecord]) -> String {
    to_chrome_json_with_spans(records, &[])
}

/// Like [`to_chrome_json`], additionally merging harness span rows (see
/// [`crate::span::SpanRow`]) as duration events under [`HARNESS_PID`],
/// with `tid` = lane (0 = coordinator/main, 1+w = shard worker w).
/// Device events use simulated time, harness events wall time — the two
/// timebases share a `ts` axis only nominally, which is fine for the
/// intended use (eyeballing where harness time goes next to what the
/// device was doing).
pub fn to_chrome_json_with_spans(records: &[CmdRecord], spans: &[crate::span::SpanRow]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().key("displayTimeUnit").string("ns");
    w.key("metadata")
        .begin_object()
        .key("clock_ghz")
        .num(2.0)
        .key("record_count")
        .uint(records.len() as u64)
        .key("harness_span_count")
        .uint(spans.len() as u64)
        .key("harness_pid")
        .uint(HARNESS_PID)
        .end_object();
    w.key("traceEvents").begin_array();
    for s in spans {
        w.begin_object()
            .key("name")
            .string(&s.path)
            .key("ph")
            .string("X")
            .key("ts")
            .num(s.start_secs * 1e6)
            .key("dur")
            .num(s.secs * 1e6)
            .key("pid")
            .uint(HARNESS_PID)
            .key("tid")
            .uint(s.lane as u64)
            .key("args")
            .begin_object()
            .key("count")
            .uint(s.count)
            .key("depth")
            .uint(s.depth as u64)
            .key("secs")
            .num(s.secs)
            .end_object()
            .end_object();
    }
    for r in records {
        w.begin_object()
            .key("name")
            .string(r.cmd.name())
            .key("ph")
            .string("X")
            .key("ts")
            .num(r.cycle as f64 * US_PER_CYCLE)
            .key("dur")
            .num(US_PER_CYCLE)
            .key("pid")
            .uint(r.channel as u64)
            .key("tid")
            .uint(r.ubank as u64)
            .key("args")
            .begin_object()
            .key("cycle")
            .uint(r.cycle)
            .key("row")
            .uint(r.row as u64)
            .key("queue_len")
            .uint(r.queue_len as u64)
            .end_object()
            .end_object();
    }
    w.end_array().end_object();
    w.finish()
}

/// Parse a Chrome trace-event JSON document produced by
/// [`to_chrome_json`] back into records — the round-trip proof that the
/// export is well-formed, and a convenience for test assertions.
/// Harness span rows (pid = [`HARNESS_PID`]) are skipped: they carry
/// wall-clock observations, not device commands.
pub fn from_chrome_json(s: &str) -> Result<Vec<CmdRecord>, String> {
    let v = crate::json::parse(s).map_err(|off| format!("JSON parse error at byte {off}"))?;
    let events = v.get("traceEvents").ok_or("missing traceEvents")?;
    let mut out = Vec::new();
    for e in events.items() {
        if e.get("pid").and_then(|p| p.as_f64()) == Some(HARNESS_PID as f64) {
            continue;
        }
        let name = e
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or("event missing name")?;
        let cmd = CmdKind::from_name(name).ok_or_else(|| format!("unknown cmd {name}"))?;
        let args = e.get("args").ok_or("event missing args")?;
        let num = |v: Option<&crate::json::JsonValue>, what: &str| {
            v.and_then(|x| x.as_f64())
                .ok_or_else(|| format!("missing {what}"))
        };
        out.push(CmdRecord {
            cycle: num(args.get("cycle"), "cycle")? as u64,
            channel: num(e.get("pid"), "pid")? as u16,
            cmd,
            ubank: num(e.get("tid"), "tid")? as u32,
            row: num(args.get("row"), "row")? as u32,
            queue_len: num(args.get("queue_len"), "queue_len")? as u16,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64, cmd: CmdKind) -> CmdRecord {
        CmdRecord {
            cycle,
            channel: 0,
            cmd,
            ubank: 7,
            row: 42,
            queue_len: 3,
        }
    }

    #[test]
    fn ring_keeps_newest_in_order() {
        let mut t = CmdTrace::new(3);
        for i in 0..5 {
            t.push(rec(i, CmdKind::Act));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.total_pushed(), 5);
        let cycles: Vec<u64> = t.records().iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut t = CmdTrace::new(10);
        t.push(rec(1, CmdKind::Act));
        t.push(rec(2, CmdKind::Rd));
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.records().len(), 2);
    }

    #[test]
    fn chrome_json_round_trips() {
        let mut t = CmdTrace::new(8);
        t.push(rec(10, CmdKind::Act));
        t.push(rec(14, CmdKind::Rd));
        t.push(rec(30, CmdKind::Pre));
        t.push(rec(64, CmdKind::Ref));
        let parsed = from_chrome_json(&t.to_chrome_json()).unwrap();
        assert_eq!(parsed, t.records());
    }

    #[test]
    fn cmd_names_round_trip() {
        for k in [
            CmdKind::Act,
            CmdKind::Pre,
            CmdKind::PreA,
            CmdKind::Rd,
            CmdKind::Wr,
            CmdKind::Ref,
            CmdKind::Scrub,
        ] {
            assert_eq!(CmdKind::from_name(k.name()), Some(k));
        }
        assert_eq!(CmdKind::from_name("NOP"), None);
    }

    #[test]
    fn harness_spans_merge_and_round_trip_skips_them() {
        let mut t = CmdTrace::new(8);
        t.push(rec(10, CmdKind::Act));
        t.push(rec(14, CmdKind::Rd));
        let spans = vec![crate::span::SpanRow {
            path: "drive/worker-0/spin-wait".to_string(),
            name: "spin-wait".to_string(),
            depth: 2,
            lane: 1,
            start_secs: 0.001,
            secs: 0.5,
            count: 42,
        }];
        let json = to_chrome_json_with_spans(&t.records(), &spans);
        let doc = crate::json::parse(&json).unwrap();
        assert_eq!(
            doc.get("metadata")
                .unwrap()
                .get("harness_span_count")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        let events = doc.get("traceEvents").unwrap().items();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0].get("pid").unwrap().as_f64(),
            Some(HARNESS_PID as f64)
        );
        // Command round-trip is unaffected by the merged harness rows.
        let parsed = from_chrome_json(&json).unwrap();
        assert_eq!(parsed, t.records());
    }

    #[test]
    fn rejects_malformed_trace() {
        assert!(from_chrome_json("{}").is_err());
        assert!(from_chrome_json("{\"traceEvents\":[{\"name\":\"NOP\"}]}").is_err());
    }
}
