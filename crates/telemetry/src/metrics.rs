//! A small metrics registry: counters, gauges, and fixed-bucket
//! histograms with Prometheus text exposition and a JSON snapshot
//! format. Dependency-free and coarse-locked — the registry sits *off*
//! the simulated hot path (it is fed from end-of-run results and sweep
//! slot boundaries, never from inside the cycle loop), so a single
//! `Mutex` around a sorted map is plenty and keeps exposition output
//! deterministic.

use crate::json::JsonWriter;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum SeriesValue {
    Counter(u64),
    Gauge(f64),
    Histogram {
        /// Upper bounds, strictly increasing; an implicit `+Inf` bucket
        /// follows the last bound.
        bounds: Vec<f64>,
        /// Per-bucket (non-cumulative) observation counts; one longer
        /// than `bounds` for the `+Inf` bucket.
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

#[derive(Debug, Clone)]
struct Series {
    labels: Vec<(String, String)>,
    value: SeriesValue,
}

#[derive(Debug, Clone)]
struct Family {
    kind: MetricKind,
    help: String,
    /// Keyed by the rendered label set so exposition order is stable.
    series: BTreeMap<String, Series>,
}

/// Default histogram bounds (seconds-flavoured; override per metric with
/// [`MetricsRegistry::register_histogram`]).
pub const DEFAULT_BUCKETS: &[f64] = &[
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
];

/// See the module docs. All methods take `&self`; the registry is meant
/// to be shared behind an `Arc`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// True iff `name` is a valid Prometheus metric/label name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`; labels additionally must not use `:`,
/// which we disallow everywhere for simplicity).
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escape a label value for the exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a HELP text line: `\` → `\\`, newline → `\n`.
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a label set as `{k="v",...}` (empty string for no labels),
/// with keys in the caller-supplied order.
fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Format a sample value: integers without `.0`, non-finite as
/// Prometheus spells them.
fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| {
            assert!(valid_metric_name(k), "invalid label name {k:?}");
            (k.to_string(), v.to_string())
        })
        .collect();
    out.sort();
    out
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn with_family<R>(
        &self,
        name: &str,
        kind: MetricKind,
        help: Option<&str>,
        f: impl FnOnce(&mut Family) -> R,
    ) -> R {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let mut families = self.families.lock().unwrap();
        let fam = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: String::new(),
            series: BTreeMap::new(),
        });
        assert!(
            fam.kind == kind,
            "metric {name} registered as {:?}, used as {kind:?}",
            fam.kind
        );
        if let Some(h) = help {
            fam.help = h.to_string();
        }
        f(fam)
    }

    /// Declare a metric with help text. Optional — updates auto-register
    /// with empty help — but exposition is friendlier with it.
    pub fn register(&self, name: &str, kind: MetricKind, help: &str) {
        self.with_family(name, kind, Some(help), |_| {});
    }

    /// Declare a histogram with explicit (strictly increasing) upper
    /// bounds. Must be called before the first `observe` for the bounds
    /// to take effect; existing series keep their bounds.
    pub fn register_histogram(&self, name: &str, help: &str, bounds: &[f64]) {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        self.with_family(name, MetricKind::Histogram, Some(help), |fam| {
            // Family-wide bounds live in a sentinel entry (the NUL prefix
            // sorts first and can never collide with a rendered label set).
            fam.series
                .entry("\u{0}bounds".to_string())
                .or_insert(Series {
                    labels: Vec::new(),
                    value: SeriesValue::Histogram {
                        bounds: bounds.to_vec(),
                        counts: vec![0; bounds.len() + 1],
                        sum: 0.0,
                        count: 0,
                    },
                });
        });
    }

    /// Add `v` to a counter series.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let labels = sorted_labels(labels);
        let key = render_labels(&labels);
        self.with_family(name, MetricKind::Counter, None, |fam| {
            let s = fam.series.entry(key).or_insert(Series {
                labels,
                value: SeriesValue::Counter(0),
            });
            if let SeriesValue::Counter(c) = &mut s.value {
                *c = c.saturating_add(v);
            }
        });
    }

    /// Set a gauge series to `v`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let labels = sorted_labels(labels);
        let key = render_labels(&labels);
        self.with_family(name, MetricKind::Gauge, None, |fam| {
            let s = fam.series.entry(key).or_insert(Series {
                labels,
                value: SeriesValue::Gauge(0.0),
            });
            s.value = SeriesValue::Gauge(v);
        });
    }

    /// Record one observation into a histogram series. Uses the bounds
    /// from [`register_histogram`](Self::register_histogram) if declared,
    /// else [`DEFAULT_BUCKETS`].
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.observe_n(name, labels, v, 1);
    }

    /// Record `n` observations of value `v` (bulk feed from a
    /// pre-aggregated histogram).
    pub fn observe_n(&self, name: &str, labels: &[(&str, &str)], v: f64, n: u64) {
        if n == 0 {
            return;
        }
        let labels = sorted_labels(labels);
        let key = render_labels(&labels);
        self.with_family(name, MetricKind::Histogram, None, |fam| {
            let bounds = fam
                .series
                .get("\u{0}bounds")
                .and_then(|s| match &s.value {
                    SeriesValue::Histogram { bounds, .. } => Some(bounds.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| DEFAULT_BUCKETS.to_vec());
            let s = fam.series.entry(key).or_insert_with(|| Series {
                labels,
                value: SeriesValue::Histogram {
                    counts: vec![0; bounds.len() + 1],
                    bounds,
                    sum: 0.0,
                    count: 0,
                },
            });
            if let SeriesValue::Histogram {
                bounds,
                counts,
                sum,
                count,
            } = &mut s.value
            {
                let idx = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
                counts[idx] += n;
                *sum += v * n as f64;
                *count += n;
            }
        });
    }

    /// Render the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers, escaped label
    /// values, cumulative `le` buckets ending at `+Inf`, `_sum` and
    /// `_count` series per histogram.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, fam) in families.iter() {
            if !fam.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(&fam.help));
            }
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind.type_name());
            for (key, s) in fam.series.iter() {
                if key.starts_with('\u{0}') {
                    continue; // bounds sentinel, not a real series
                }
                match &s.value {
                    SeriesValue::Counter(c) => {
                        let _ = writeln!(out, "{name}{key} {c}");
                    }
                    SeriesValue::Gauge(g) => {
                        let _ = writeln!(out, "{name}{key} {}", render_value(*g));
                    }
                    SeriesValue::Histogram {
                        bounds,
                        counts,
                        sum,
                        count,
                    } => {
                        let mut cum = 0u64;
                        for (i, b) in bounds.iter().enumerate() {
                            cum += counts[i];
                            let mut labels = s.labels.clone();
                            labels.push(("le".to_string(), render_value(*b)));
                            let _ = writeln!(out, "{name}_bucket{} {cum}", render_labels(&labels));
                        }
                        let mut labels = s.labels.clone();
                        labels.push(("le".to_string(), "+Inf".to_string()));
                        let _ = writeln!(out, "{name}_bucket{} {count}", render_labels(&labels));
                        let _ = writeln!(out, "{name}_sum{key} {}", render_value(*sum));
                        let _ = writeln!(out, "{name}_count{key} {count}");
                    }
                }
            }
        }
        out
    }

    /// Snapshot the registry as a JSON document (families → series with
    /// labels, values, and histogram buckets).
    pub fn snapshot_json(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut w = JsonWriter::new();
        w.begin_object().key("metrics").begin_array();
        for (name, fam) in families.iter() {
            w.begin_object()
                .key("name")
                .string(name)
                .key("type")
                .string(fam.kind.type_name())
                .key("help")
                .string(&fam.help)
                .key("series")
                .begin_array();
            for (key, s) in fam.series.iter() {
                if key.starts_with('\u{0}') {
                    continue;
                }
                w.begin_object().key("labels").begin_object();
                for (k, v) in &s.labels {
                    w.key(k).string(v);
                }
                w.end_object();
                match &s.value {
                    SeriesValue::Counter(c) => {
                        w.key("value").uint(*c);
                    }
                    SeriesValue::Gauge(g) => {
                        w.key("value").num(*g);
                    }
                    SeriesValue::Histogram {
                        bounds,
                        counts,
                        sum,
                        count,
                    } => {
                        w.key("sum").num(*sum).key("count").uint(*count);
                        w.key("buckets").begin_array();
                        let mut cum = 0u64;
                        for (i, b) in bounds.iter().enumerate() {
                            cum += counts[i];
                            w.begin_object()
                                .key("le")
                                .num(*b)
                                .key("cumulative")
                                .uint(cum)
                                .end_object();
                        }
                        w.end_array();
                    }
                }
                w.end_object();
            }
            w.end_array().end_object();
        }
        w.end_array().end_object();
        w.finish()
    }
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// Validate + parse a Prometheus text exposition document. Checks line
/// syntax, metric/label names, label-value escapes, and numeric sample
/// values; returns the samples or the first offending line.
pub fn parse_exposition(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !(rest.starts_with("HELP ") || rest.starts_with("TYPE ") || rest.is_empty()) {
                // Arbitrary comments are legal; HELP/TYPE must be well-formed.
                continue;
            }
            if let Some(t) = rest.strip_prefix("TYPE ") {
                let mut parts = t.split_whitespace();
                let name = parts.next().ok_or_else(|| err("TYPE missing name"))?;
                let kind = parts.next().ok_or_else(|| err("TYPE missing kind"))?;
                if !valid_metric_name(name) {
                    return Err(err("invalid metric name in TYPE"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(err("unknown metric type"));
                }
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, rest) = match line.find(['{', ' ']) {
            Some(i) => (&line[..i], &line[i..]),
            None => return Err(err("sample missing value")),
        };
        if !valid_metric_name(name_part) {
            return Err(err("invalid metric name"));
        }
        let (labels, value_part) = if let Some(rest) = rest.strip_prefix('{') {
            let close = find_label_close(rest).ok_or_else(|| err("unterminated label set"))?;
            let labels = parse_label_set(&rest[..close]).map_err(|e| err(&e))?;
            (labels, &rest[close + 1..])
        } else {
            (Vec::new(), rest)
        };
        let value_str = value_part.trim();
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            s => s.parse().map_err(|_| err("unparseable sample value"))?,
        };
        out.push(PromSample {
            name: name_part.to_string(),
            labels,
            value,
        });
    }
    Ok(out)
}

/// Byte offset of the unescaped closing `}` in a label body.
fn find_label_close(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'}' if !in_str => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

fn parse_label_set(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label missing '='")?;
        let key = rest[..eq].trim();
        if !valid_metric_name(key) {
            return Err(format!("invalid label name {key:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value not quoted")?;
        let mut val = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => val.push('\\'),
                    Some((_, '"')) => val.push('"'),
                    Some((_, 'n')) => val.push('\n'),
                    _ => return Err("bad escape in label value".to_string()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => val.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        out.push((key.to_string(), val));
        rest = &rest[end + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(out)
}

/// Validate an exposition document, additionally checking that every
/// histogram's `le` buckets are cumulative-monotone and consistent with
/// its `_count`. Returns the number of samples.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let samples = parse_exposition(text)?;
    // Group _bucket series by (metric, labels-minus-le).
    let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    for s in &samples {
        if let Some(base) = s.name.strip_suffix("_bucket") {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| match v.as_str() {
                    "+Inf" => f64::INFINITY,
                    v => v.parse().unwrap_or(f64::NAN),
                })
                .ok_or_else(|| format!("{}_bucket without le label", base))?;
            let others: Vec<String> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            groups
                .entry(format!("{base}|{}", others.join(",")))
                .or_default()
                .push((le, s.value));
        } else if let Some(base) = s.name.strip_suffix("_count") {
            let others: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            counts.insert(format!("{base}|{}", others.join(",")), s.value);
        }
    }
    for (key, buckets) in &groups {
        let mut sorted = buckets.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in sorted.windows(2) {
            if w[1].1 < w[0].1 {
                return Err(format!("histogram {key}: buckets not cumulative-monotone"));
            }
        }
        match sorted.last() {
            Some(&(le, total)) if le.is_infinite() => {
                if let Some(&c) = counts.get(key) {
                    if (c - total).abs() > 0.0 {
                        return Err(format!("histogram {key}: +Inf bucket != _count"));
                    }
                }
            }
            _ => return Err(format!("histogram {key}: missing +Inf bucket")),
        }
    }
    Ok(samples.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn counters_and_gauges_expose_and_parse() {
        let reg = MetricsRegistry::new();
        reg.register("runs_total", MetricKind::Counter, "Completed runs");
        reg.counter_add("runs_total", &[("kind", "ok")], 3);
        reg.counter_add("runs_total", &[("kind", "ok")], 2);
        reg.gauge_set("slots_running", &[], 1.0);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP runs_total Completed runs"));
        assert!(text.contains("# TYPE runs_total counter"));
        assert!(text.contains("runs_total{kind=\"ok\"} 5"));
        assert!(text.contains("slots_running 1"));
        let samples = parse_exposition(&text).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(validate_exposition(&text).unwrap(), 2);
    }

    #[test]
    fn label_values_escape_and_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter_add("odd_total", &[("p", "a\\b\"c\nd")], 1);
        let text = reg.render_prometheus();
        assert!(text.contains("odd_total{p=\"a\\\\b\\\"c\\nd\"} 1"));
        let samples = parse_exposition(&text).unwrap();
        assert_eq!(samples[0].labels[0].1, "a\\b\"c\nd");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let reg = MetricsRegistry::new();
        reg.register_histogram("lat", "latency", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.7, 3.0, 100.0] {
            reg.observe("lat", &[], v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_bucket{le=\"2\"} 3"));
        assert!(text.contains("lat_bucket{le=\"4\"} 4"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("lat_count 5"));
        assert!(text.contains("lat_sum 106.7"));
        validate_exposition(&text).unwrap();

        // Validator catches a broken (non-monotone) exposition.
        let broken = "a_bucket{le=\"1\"} 5\na_bucket{le=\"2\"} 3\na_bucket{le=\"+Inf\"} 5\n";
        assert!(validate_exposition(broken)
            .unwrap_err()
            .contains("monotone"));
        // ...and a missing +Inf bucket.
        let no_inf = "a_bucket{le=\"1\"} 1\n";
        assert!(validate_exposition(no_inf).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn observe_n_bulk_feed_matches_repeated_observe() {
        let reg = MetricsRegistry::new();
        reg.register_histogram("h", "", &[10.0, 20.0]);
        reg.observe_n("h", &[], 5.0, 4);
        reg.observe_n("h", &[], 15.0, 0); // no-op
        let text = reg.render_prometheus();
        assert!(text.contains("h_bucket{le=\"10\"} 4"));
        assert!(text.contains("h_sum 20"));
    }

    #[test]
    fn name_validation_rejects_bad_names() {
        assert!(valid_metric_name("microbank_sim_cycles_total"));
        assert!(valid_metric_name("_x9"));
        assert!(!valid_metric_name("9x"));
        assert!(!valid_metric_name("a-b"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("a b"));
    }

    #[test]
    fn json_snapshot_parses() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c_total", &[("x", "1")], 7);
        reg.observe("h", &[], 0.02);
        let doc = parse(&reg.snapshot_json()).unwrap();
        let fams = doc.get("metrics").unwrap().items();
        assert_eq!(fams.len(), 2);
        assert_eq!(fams[0].get("name").unwrap().as_str(), Some("c_total"));
        assert_eq!(
            fams[0].get("series").unwrap().items()[0]
                .get("value")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("9bad 1\n").is_err());
        assert!(parse_exposition("a{b=1} 2\n").is_err());
        assert!(parse_exposition("a{b=\"x\"} nope\n").is_err());
        assert!(parse_exposition("a{b=\"x\"\n").is_err());
        assert!(parse_exposition("# TYPE a wat\n").is_err());
    }
}
