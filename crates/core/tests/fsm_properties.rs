//! Property tests: a random command driver that issues whatever the
//! channel's `can_*` predicates allow must produce a command history that
//! satisfies every JEDEC-style timing constraint, checked offline against
//! the raw trace. This verifies the FSMs enforce the protocol rather than
//! merely claiming to.

use microbank_core::address::{AddressMap, Location};
use microbank_core::channel::Channel;
use microbank_core::config::MemConfig;
use microbank_core::timing::Timings;
use microbank_core::Cycle;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cmd {
    Act { flat: usize, rank: usize, row: u32 },
    Rd { flat: usize, rank: usize },
    Wr { flat: usize, rank: usize },
    Pre { flat: usize },
}

/// Drive a channel with `steps` random issue attempts; return the trace of
/// (cycle, command) pairs actually issued.
fn random_drive(cfg: &MemConfig, seed: u64, steps: usize) -> (Vec<(Cycle, Cmd)>, Timings) {
    let map = AddressMap::new(cfg);
    let mut ch = Channel::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let t = *ch.timings();
    let mut trace = Vec::new();
    let mut now: Cycle = 0;
    let lines = 1u64 << 14;
    for _ in 0..steps {
        // Random location within the channel.
        let addr = rng.gen_range(0..lines) * 64;
        let loc: Location = map.decode(addr);
        let flat = loc.ubank_flat(cfg);
        let rank = loc.rank as usize;
        match rng.gen_range(0..4) {
            0 => {
                if ch.can_activate_flat(flat, now) {
                    ch.activate_flat(flat, loc.row, now);
                    trace.push((
                        now,
                        Cmd::Act {
                            flat,
                            rank,
                            row: loc.row,
                        },
                    ));
                }
            }
            1 => {
                if let Some(row) = ch.open_row_flat(flat) {
                    if ch.can_column_flat(flat, row, false, now) {
                        ch.read_flat(flat, now);
                        trace.push((now, Cmd::Rd { flat, rank }));
                    }
                }
            }
            2 => {
                if let Some(row) = ch.open_row_flat(flat) {
                    if ch.can_column_flat(flat, row, true, now) {
                        ch.write_flat(flat, now);
                        trace.push((now, Cmd::Wr { flat, rank }));
                    }
                }
            }
            _ => {
                if ch.can_precharge_flat(flat, now) {
                    ch.precharge_flat(flat, now);
                    trace.push((now, Cmd::Pre { flat }));
                }
            }
        }
        now += rng.gen_range(1..4u64);
    }
    (trace, t)
}

/// Offline verification of every pairwise timing constraint in the trace.
fn verify_trace(trace: &[(Cycle, Cmd)], t: &Timings) -> Result<(), String> {
    // Per-bank state reconstruction.
    use std::collections::HashMap;
    let mut last_act: HashMap<usize, Cycle> = HashMap::new();
    let mut last_pre: HashMap<usize, Cycle> = HashMap::new();
    let mut last_rd: HashMap<usize, Cycle> = HashMap::new();
    let mut last_wr_end: HashMap<usize, Cycle> = HashMap::new();
    let mut open: HashMap<usize, bool> = HashMap::new();
    let mut rank_acts: HashMap<usize, Vec<Cycle>> = HashMap::new();
    let mut last_col: Option<Cycle> = None;
    let mut last_burst_end: Option<Cycle> = None;
    let err = |m: String| Err(m);

    for &(at, cmd) in trace {
        match cmd {
            Cmd::Act { flat, rank, .. } => {
                if *open.get(&flat).unwrap_or(&false) {
                    return err(format!("t={at}: ACT on open bank {flat}"));
                }
                if let Some(&p) = last_pre.get(&flat) {
                    if at < p + t.t_rp {
                        return err(format!("t={at}: tRP violation bank {flat}"));
                    }
                }
                let acts = rank_acts.entry(rank).or_default();
                if let Some(&prev) = acts.last() {
                    if at < prev + t.t_rrd {
                        return err(format!("t={at}: tRRD violation rank {rank}"));
                    }
                }
                if acts.len() >= 4 {
                    let fourth_back = acts[acts.len() - 4];
                    if at < fourth_back + t.t_faw {
                        return err(format!("t={at}: tFAW violation rank {rank}"));
                    }
                }
                acts.push(at);
                last_act.insert(flat, at);
                open.insert(flat, true);
            }
            Cmd::Rd { flat, .. } | Cmd::Wr { flat, .. } => {
                if !*open.get(&flat).unwrap_or(&false) {
                    return err(format!("t={at}: column on closed bank {flat}"));
                }
                let a = last_act[&flat];
                if at < a + t.t_rcd {
                    return err(format!("t={at}: tRCD violation bank {flat}"));
                }
                if let Some(c) = last_col {
                    if at < c + t.t_ccd {
                        return err(format!("t={at}: tCCD violation"));
                    }
                }
                let is_write = matches!(cmd, Cmd::Wr { .. });
                let burst_start = at + if is_write { t.t_cwl } else { t.t_aa };
                if let Some(end) = last_burst_end {
                    if burst_start < end {
                        return err(format!("t={at}: data bus overlap"));
                    }
                }
                last_burst_end = Some(burst_start + t.t_burst);
                last_col = Some(at);
                if is_write {
                    last_wr_end.insert(flat, at + t.t_cwl + t.t_burst);
                } else {
                    last_rd.insert(flat, at);
                }
            }
            Cmd::Pre { flat } => {
                if !*open.get(&flat).unwrap_or(&false) {
                    return err(format!("t={at}: PRE on closed bank {flat}"));
                }
                let a = last_act[&flat];
                if at < a + t.t_ras {
                    return err(format!("t={at}: tRAS violation bank {flat}"));
                }
                if let Some(&r) = last_rd.get(&flat) {
                    if at < r + t.t_rtp {
                        return err(format!("t={at}: tRTP violation bank {flat}"));
                    }
                }
                if let Some(&we) = last_wr_end.get(&flat) {
                    if at < we + t.t_wr {
                        return err(format!("t={at}: tWR violation bank {flat}"));
                    }
                }
                last_pre.insert(flat, at);
                open.insert(flat, false);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_command_streams_obey_all_timing_constraints(
        seed in 0u64..10_000,
        nw in prop::sample::select(vec![1usize, 2, 4, 8]),
        nb in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let cfg = MemConfig::lpddr_tsi()
            .with_ubanks(nw, nb)
            .with_channels(1)
            .with_refresh(false);
        let (trace, t) = random_drive(&cfg, seed, 3000);
        prop_assert!(trace.len() > 50, "driver made no progress: {}", trace.len());
        if let Err(e) = verify_trace(&trace, &t) {
            prop_assert!(false, "{e}");
        }
    }

    #[test]
    fn pcb_timing_also_verifies(seed in 0u64..1000) {
        let cfg = MemConfig::ddr3_pcb()
            .with_channels(1)
            .with_refresh(false);
        let (trace, t) = random_drive(&cfg, seed, 2000);
        prop_assert!(trace.len() > 50);
        if let Err(e) = verify_trace(&trace, &t) {
            prop_assert!(false, "{e}");
        }
    }

    #[test]
    fn command_counts_balance(seed in 0u64..1000) {
        let cfg = MemConfig::lpddr_tsi().with_ubanks(4, 4).with_channels(1).with_refresh(false);
        let (trace, _) = random_drive(&cfg, seed, 4000);
        let acts = trace.iter().filter(|(_, c)| matches!(c, Cmd::Act { .. })).count();
        let pres = trace.iter().filter(|(_, c)| matches!(c, Cmd::Pre { .. })).count();
        // Every PRE closes a previous ACT; open rows at the end account
        // for the difference.
        prop_assert!(pres <= acts);
        let cfg_banks = cfg.ubanks_per_channel();
        prop_assert!(acts - pres <= cfg_banks, "more dangling opens than banks");
    }
}
