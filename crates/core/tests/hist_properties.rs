//! Property tests for the log-bucket histogram: ordering and bound
//! invariants that must hold for any sample stream, not just the
//! hand-picked cases in the unit tests.

use microbank_core::hist::Histogram;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// percentile(p) is monotone non-decreasing in p.
    #[test]
    fn percentile_monotone_in_p(samples in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let ps = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        for w in ps.windows(2) {
            prop_assert!(
                h.percentile(w[0]) <= h.percentile(w[1]),
                "p{} = {} > p{} = {}",
                w[0], h.percentile(w[0]), w[1], h.percentile(w[1]),
            );
        }
        // Every percentile is bounded by the observed extremes.
        for p in ps {
            prop_assert!(h.percentile(p) <= h.max());
        }
    }

    /// Merging two histograms preserves count/min/max exactly and keeps
    /// every percentile within the merged sample bounds.
    #[test]
    fn merge_preserves_percentile_bounds(
        a in prop::collection::vec(0u64..1_000_000, 1..100),
        b in prop::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for &s in &a {
            ha.record(s);
        }
        for &s in &b {
            hb.record(s);
        }
        let (lo_a, hi_a) = (ha.min(), ha.max());
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.min(), lo_a.min(hb.min()));
        prop_assert_eq!(merged.max(), hi_a.max(hb.max()));
        for p in [0.0, 0.5, 0.95, 1.0] {
            let v = merged.percentile(p);
            prop_assert!(v <= merged.max(), "p{p} = {v} above max {}", merged.max());
        }
        // Mean of the merge lies between the two means.
        let (lo, hi) = if ha.mean() <= hb.mean() {
            (ha.mean(), hb.mean())
        } else {
            (hb.mean(), ha.mean())
        };
        prop_assert!(merged.mean() >= lo - 1e-9 && merged.mean() <= hi + 1e-9);
    }

    /// Samples near u64::MAX must not panic the accounting: the running
    /// sum saturates instead of overflowing.
    #[test]
    fn huge_samples_do_not_panic(n in 1usize..20) {
        let mut h = Histogram::new();
        for _ in 0..n {
            h.record(u64::MAX);
        }
        h.record(u64::MAX - 1);
        prop_assert_eq!(h.count(), n as u64 + 1);
        prop_assert_eq!(h.max(), u64::MAX);
        // The saturated mean still fits and is positive.
        prop_assert!(h.mean() > 0.0);
        let mut other = Histogram::new();
        other.record(u64::MAX);
        h.merge(&other); // must not overflow either
        prop_assert_eq!(h.count(), n as u64 + 2);
    }

    /// Cross-shard merges follow the same saturating contract as `record`:
    /// two histograms whose counts together exceed u64::MAX pin the merged
    /// count (and the affected bucket) at the ceiling instead of wrapping.
    #[test]
    fn merge_saturates_counts_and_buckets(v in 1u64..1_000_000, extra in 1u64..1_000) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(v, u64::MAX - extra);
        b.record_n(v, 2 * extra);
        a.merge(&b);
        prop_assert_eq!(a.count(), u64::MAX, "merged count wrapped instead of saturating");
        prop_assert_eq!(a.sum(), u64::MAX);
        // The shared bucket carries the whole count, so it must pin too.
        let buckets = a.nonzero_buckets();
        prop_assert_eq!(buckets.len(), 1);
        prop_assert_eq!(buckets[0].1, u64::MAX);
    }
}
