//! Named DRAM organizations from the literature, expressed as μbank
//! configurations (paper §VII, Related Work).
//!
//! The paper positions μbank as subsuming two contemporaneous designs:
//!
//! * **SALP** (Kim et al., ISCA'12 [33]) exploits subarray-level
//!   parallelism — multiple row buffers per bank along the bitline
//!   direction. That is exactly μbank with `nW = 1, nB = S`.
//! * **Half-DRAM** (Zhang et al., ISCA'14 [62]) halves the activated row
//!   through vertical+horizontal reorganization; its activation-energy/
//!   parallelism point corresponds to `(nW, nB) = (2, 2)`.
//!
//! Expressing them in one parameter space makes head-to-head comparisons a
//! one-liner (see the `ablations` bench and `organization_comparison`
//! tests).

use crate::geometry::UbankConfig;
use serde::{Deserialize, Serialize};

/// A named bank organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Organization {
    /// Conventional monolithic banks — the evaluation baseline.
    Conventional,
    /// Subarray-level parallelism with `subarrays` row buffers per bank
    /// (bitline-direction partitioning only).
    Salp { subarrays: usize },
    /// Half-DRAM-style half-row activation (2×2 partitioning point).
    HalfDram,
    /// The paper's proposal: partitioning along both directions.
    Microbank { n_w: usize, n_b: usize },
}

impl Organization {
    pub fn label(&self) -> String {
        match self {
            Organization::Conventional => "conventional".into(),
            Organization::Salp { subarrays } => format!("SALP-{subarrays}"),
            Organization::HalfDram => "Half-DRAM".into(),
            Organization::Microbank { n_w, n_b } => format!("ubank({n_w},{n_b})"),
        }
    }

    /// The μbank configuration realizing this organization.
    pub fn ubank_config(&self) -> UbankConfig {
        match *self {
            Organization::Conventional => UbankConfig::BASELINE,
            Organization::Salp { subarrays } => UbankConfig::new(1, subarrays),
            Organization::HalfDram => UbankConfig::new(2, 2),
            Organization::Microbank { n_w, n_b } => UbankConfig::new(n_w, n_b),
        }
    }

    /// Does this organization reduce the energy of a row activation?
    /// Only wordline-direction partitioning does (§IV-A).
    pub fn reduces_activation_energy(&self) -> bool {
        self.ubank_config().n_w > 1
    }

    /// Number of independent row buffers per bank.
    pub fn row_buffers_per_bank(&self) -> usize {
        self.ubank_config().ubanks_per_bank()
    }

    /// The timing-faithful [`crate::variant::DeviceVariant`] realizing
    /// this organization. The `Organization` enum predates the variant
    /// seam and expresses designs as μbank *geometry* only; the variant
    /// adds each design's structural issue rules (SALP's shared global
    /// bitlines get the full MASA rule set here — the closest match to
    /// "independent row buffers per subarray").
    pub fn device_variant(&self) -> crate::variant::DeviceVariant {
        use crate::variant::{DeviceVariant, SalpMode};
        match *self {
            Organization::Conventional => DeviceVariant::Conventional,
            Organization::Salp { subarrays } => DeviceVariant::Salp {
                subarrays,
                mode: SalpMode::Masa,
            },
            // Half-DRAM and μbank both partition along the wordline
            // direction with independent partitions — the native model.
            Organization::HalfDram | Organization::Microbank { .. } => DeviceVariant::Microbank,
        }
    }

    /// The comparison set used by the ablation bench: baseline, SALP-8,
    /// Half-DRAM, and two representative μbank points.
    pub fn comparison_set() -> Vec<Organization> {
        vec![
            Organization::Conventional,
            Organization::Salp { subarrays: 8 },
            Organization::HalfDram,
            Organization::Microbank { n_w: 2, n_b: 8 },
            Organization::Microbank { n_w: 4, n_b: 4 },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn salp_is_bitline_only() {
        let u = Organization::Salp { subarrays: 8 }.ubank_config();
        assert_eq!((u.n_w, u.n_b), (1, 8));
        assert!(!Organization::Salp { subarrays: 8 }.reduces_activation_energy());
    }

    #[test]
    fn half_dram_activates_half_rows() {
        let o = Organization::HalfDram;
        assert!(o.reduces_activation_energy());
        assert_eq!(o.ubank_config().n_w, 2);
    }

    #[test]
    fn microbank_subsumes_both() {
        // Same row-buffer count as SALP-8, plus activation-energy savings.
        let ub = Organization::Microbank { n_w: 2, n_b: 4 };
        assert_eq!(ub.row_buffers_per_bank(), 8);
        assert!(ub.reduces_activation_energy());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Organization::Salp { subarrays: 4 }.label(), "SALP-4");
        assert_eq!(
            Organization::Microbank { n_w: 2, n_b: 8 }.label(),
            "ubank(2,8)"
        );
        assert_eq!(Organization::Conventional.label(), "conventional");
        assert_eq!(Organization::HalfDram.label(), "Half-DRAM");
    }

    #[test]
    fn comparison_set_covers_the_design_space() {
        let set = Organization::comparison_set();
        assert!(set.contains(&Organization::Conventional));
        assert!(set
            .iter()
            .any(|o| !o.reduces_activation_energy() && o.row_buffers_per_bank() > 1));
        assert!(set.iter().any(|o| o.reduces_activation_energy()));
    }
}
