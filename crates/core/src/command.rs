//! DRAM command vocabulary.
//!
//! The controller drives the device model with the classic command set
//! (§II): `ACT` opens a row into a μbank's row buffer, `RD`/`WR` move a
//! 64 B column, `PRE` closes the row, and `REF` refreshes a rank.

use crate::address::Location;
use serde::{Deserialize, Serialize};

/// Coordinates a command applies to. For row/column commands this is a full
/// [`Location`]; `REF` targets a whole rank.
pub type Target = Location;

/// One DRAM command as issued on a channel's command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DramCommand {
    /// Open `target.row` in the addressed μbank.
    Activate(Target),
    /// Read the 64 B column `target.col` from the open row.
    Read(Target),
    /// Write the 64 B column `target.col` of the open row.
    Write(Target),
    /// Close the open row of the addressed μbank.
    Precharge(Target),
    /// All-bank refresh of one rank.
    Refresh { channel: u16, rank: u8 },
}

impl DramCommand {
    /// The channel this command occupies.
    pub fn channel(&self) -> u16 {
        match self {
            DramCommand::Activate(t)
            | DramCommand::Read(t)
            | DramCommand::Write(t)
            | DramCommand::Precharge(t) => t.channel,
            DramCommand::Refresh { channel, .. } => *channel,
        }
    }

    /// True for RD/WR (column) commands, which occupy the data bus.
    pub fn is_column(&self) -> bool {
        matches!(self, DramCommand::Read(_) | DramCommand::Write(_))
    }

    /// Short mnemonic for trace output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            DramCommand::Activate(_) => "ACT",
            DramCommand::Read(_) => "RD",
            DramCommand::Write(_) => "WR",
            DramCommand::Precharge(_) => "PRE",
            DramCommand::Refresh { .. } => "REF",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc() -> Location {
        Location {
            channel: 3,
            rank: 0,
            bank: 1,
            w: 0,
            b: 2,
            row: 7,
            col: 5,
        }
    }

    #[test]
    fn channel_extraction() {
        assert_eq!(DramCommand::Activate(loc()).channel(), 3);
        assert_eq!(
            DramCommand::Refresh {
                channel: 9,
                rank: 1
            }
            .channel(),
            9
        );
    }

    #[test]
    fn column_classification() {
        assert!(DramCommand::Read(loc()).is_column());
        assert!(DramCommand::Write(loc()).is_column());
        assert!(!DramCommand::Activate(loc()).is_column());
        assert!(!DramCommand::Precharge(loc()).is_column());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(DramCommand::Precharge(loc()).mnemonic(), "PRE");
        assert_eq!(
            DramCommand::Refresh {
                channel: 0,
                rank: 0
            }
            .mnemonic(),
            "REF"
        );
    }
}
