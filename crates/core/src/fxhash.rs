//! A minimal Fx-style hasher for hot-loop integer-keyed maps.
//!
//! The standard library's default SipHash shows up prominently in
//! simulator profiles (the controller queue's row-match index, the CMP
//! uncore's in-flight fill maps, the MESI directory). Every map that uses
//! this hasher performs point operations only — lookups, counted inserts
//! and removes — and never observes iteration order, so swapping the hash
//! function is behavior-identical while removing SipHash from the per-tick
//! path.

use std::hash::{BuildHasherDefault, Hasher};

/// Fx-style multiply-rotate hasher (the rustc hash): fast on the small
/// integer keys the simulator uses, not collision-resistant — never use it
/// where an adversary controls keys or where iteration order is observed.
#[derive(Default)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x517cc1b727220a95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(FX_SEED);
        }
    }
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }
    fn write_u16(&mut self, n: u16) {
        self.write_u64(n as u64);
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps and sets.
pub type FxBuild = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuild>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i as u32 * 2);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i as u32 * 2)));
        }
        assert_eq!(m.remove(&500), Some(1000));
        assert_eq!(m.len(), 999);
    }

    #[test]
    fn tuple_keys_hash_distinctly() {
        let mut s: FxHashSet<(usize, u64)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(s.insert((2, 1)));
        assert!(!s.insert((1, 2)));
        assert_eq!(s.len(), 2);
    }
}
