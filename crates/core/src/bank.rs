//! Per-μbank timing state machine.
//!
//! Each μbank behaves like a conventional bank (§IV-A): it owns one row
//! buffer (the bitline sense amplifiers of its mat rows, selected by the
//! added latches) and enforces the intra-bank timing constraints —
//! tRCD (ACT→column), tRAS (ACT→PRE), tRP (PRE→ACT), tRTP (RD→PRE), and
//! tWR (write recovery→PRE). Inter-bank constraints (tRRD, tFAW, bus
//! occupancy, tCCD, turnarounds) live in [`crate::channel`].

use crate::timing::Timings;
use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Timing state of one μbank. All `next_*` fields are earliest-legal issue
/// times in CPU cycles; `0` means "immediately".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicrobankState {
    /// Currently open row, if any (the row buffer contents).
    pub open_row: Option<u32>,
    /// Earliest cycle an ACT may issue (tRP after the last PRE, tRFC after
    /// a refresh).
    pub next_act: Cycle,
    /// Earliest cycle a column command may issue (tRCD after the ACT).
    pub next_col: Cycle,
    /// Earliest cycle a PRE may issue (max of tRAS, read-to-precharge, and
    /// write recovery).
    pub next_pre: Cycle,
    /// Cycle of the most recent ACT (used by policy code to measure row
    /// open time).
    pub last_act: Cycle,
    /// Number of column accesses served by the currently open row.
    pub row_hits_open: u32,
}

impl MicrobankState {
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the bank is precharged (no open row).
    pub fn is_idle(&self) -> bool {
        self.open_row.is_none()
    }

    /// Can an ACT legally issue at `now`?
    pub fn can_activate(&self, now: Cycle) -> bool {
        self.open_row.is_none() && now >= self.next_act
    }

    /// Can a column command to `row` legally issue at `now`?
    pub fn can_column(&self, row: u32, now: Cycle) -> bool {
        self.open_row == Some(row) && now >= self.next_col
    }

    /// Can a PRE legally issue at `now`? (Precharging an idle bank is a
    /// no-op the controller never emits; we forbid it here to catch bugs.)
    pub fn can_precharge(&self, now: Cycle) -> bool {
        self.open_row.is_some() && now >= self.next_pre
    }

    /// Issue an ACT at `now`. Caller must have checked [`Self::can_activate`].
    pub fn activate(&mut self, row: u32, now: Cycle, t: &Timings) {
        debug_assert!(self.can_activate(now), "illegal ACT at {now}");
        self.open_row = Some(row);
        self.last_act = now;
        self.row_hits_open = 0;
        self.next_col = now + t.t_rcd;
        self.next_pre = now + t.t_ras;
        // Guard against ACT while active: next_act only matters after PRE.
        self.next_act = Cycle::MAX;
    }

    /// Issue a RD at `now`; returns the cycle the last data beat arrives.
    pub fn read(&mut self, now: Cycle, t: &Timings) -> Cycle {
        debug_assert!(
            self.open_row.is_some() && now >= self.next_col,
            "illegal RD at {now}"
        );
        self.row_hits_open += 1;
        self.next_pre = self.next_pre.max(now + t.t_rtp);
        now + t.t_aa + t.t_burst
    }

    /// Issue a WR at `now`; returns the cycle write data is fully latched.
    pub fn write(&mut self, now: Cycle, t: &Timings) -> Cycle {
        debug_assert!(
            self.open_row.is_some() && now >= self.next_col,
            "illegal WR at {now}"
        );
        self.row_hits_open += 1;
        let data_end = now + t.t_cwl + t.t_burst;
        self.next_pre = self.next_pre.max(data_end + t.t_wr);
        data_end
    }

    /// Issue a PRE at `now`. Caller must have checked [`Self::can_precharge`].
    pub fn precharge(&mut self, now: Cycle, t: &Timings) {
        debug_assert!(self.can_precharge(now), "illegal PRE at {now}");
        self.open_row = None;
        self.next_act = now + t.t_rp;
        self.next_col = Cycle::MAX;
    }

    /// Refresh completed at `done`: bank is idle and may activate then.
    /// (`next_act` is always finite while the bank is precharged.)
    pub fn refresh_until(&mut self, done: Cycle) {
        debug_assert!(self.open_row.is_none(), "refresh with open row");
        self.next_act = self.next_act.max(done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn t() -> Timings {
        TimingParams::lpddr_tsi().to_cycles()
    }

    #[test]
    fn fresh_bank_accepts_act_only() {
        let b = MicrobankState::new();
        assert!(b.can_activate(0));
        assert!(!b.can_column(0, 1000));
        assert!(!b.can_precharge(1000));
    }

    #[test]
    fn act_to_column_respects_trcd() {
        let t = t();
        let mut b = MicrobankState::new();
        b.activate(5, 100, &t);
        assert!(!b.can_column(5, 100 + t.t_rcd - 1));
        assert!(b.can_column(5, 100 + t.t_rcd));
        assert!(!b.can_column(6, 100 + t.t_rcd), "wrong row must miss");
    }

    #[test]
    fn act_to_pre_respects_tras() {
        let t = t();
        let mut b = MicrobankState::new();
        b.activate(1, 0, &t);
        assert!(!b.can_precharge(t.t_ras - 1));
        assert!(b.can_precharge(t.t_ras));
    }

    #[test]
    fn pre_to_act_respects_trp() {
        let t = t();
        let mut b = MicrobankState::new();
        b.activate(1, 0, &t);
        b.precharge(t.t_ras, &t);
        assert!(!b.can_activate(t.t_ras + t.t_rp - 1));
        assert!(b.can_activate(t.t_ras + t.t_rp));
    }

    #[test]
    fn read_pushes_out_precharge() {
        let t = t();
        let mut b = MicrobankState::new();
        b.activate(1, 0, &t);
        let rd_at = t.t_ras - 2; // read just before tRAS expires
        let _ = b.read(rd_at, &t);
        assert!(!b.can_precharge(t.t_ras), "tRTP extends beyond tRAS here");
        assert!(b.can_precharge(rd_at + t.t_rtp));
    }

    #[test]
    fn write_recovery_blocks_precharge() {
        let t = t();
        let mut b = MicrobankState::new();
        b.activate(1, 0, &t);
        let wr_at = t.t_rcd;
        let data_end = b.write(wr_at, &t);
        assert_eq!(data_end, wr_at + t.t_cwl + t.t_burst);
        assert!(!b.can_precharge(data_end + t.t_wr - 1));
        assert!(b.can_precharge(data_end + t.t_wr));
    }

    #[test]
    fn row_hit_counter_tracks_open_row() {
        let t = t();
        let mut b = MicrobankState::new();
        b.activate(1, 0, &t);
        let _ = b.read(t.t_rcd, &t);
        let _ = b.read(t.t_rcd + t.t_ccd, &t);
        assert_eq!(b.row_hits_open, 2);
        b.precharge(b.next_pre, &t);
        assert!(b.is_idle());
    }

    #[test]
    fn full_cycle_takes_at_least_trc() {
        // ACT@0 → earliest PRE @tRAS → earliest next ACT @tRAS+tRP = tRC.
        let t = t();
        let mut b = MicrobankState::new();
        b.activate(1, 0, &t);
        let pre_at = (0..).find(|&c| b.can_precharge(c)).unwrap();
        b.precharge(pre_at, &t);
        let act_at = (pre_at..).find(|&c| b.can_activate(c)).unwrap();
        assert_eq!(act_at, t.t_rc());
    }
}
