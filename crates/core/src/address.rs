//! Physical-address ↔ DRAM-coordinate mapping with a configurable
//! interleaving base bit `iB` (paper Fig. 11).
//!
//! The mapper slices a physical address, LSB to MSB, into:
//!
//! ```text
//! | row | col_hi | rank | ctrl | bank | μbank_b | μbank_w | col_lo | offset |
//!  MSB                                            ^--- group starts at iB --- LSB
//! ```
//!
//! `col_lo` holds the `iB − 6` least-significant column bits. With `iB = 6`
//! consecutive cache lines round-robin across μbanks, banks, and controllers
//! (cache-line interleaving); with `iB = 6 + log2(columns per μbank row)` a
//! whole DRAM row is contiguous (row/page interleaving), the paper's
//! preferred scheme for μbank systems (§VI-C). The μbank index `w` (wordline
//! direction) consumes the top column bits — a row-shrink from `nW`
//! repartitions the column space — and `b` (bitline direction) consumes the
//! low row bits so that row-sequential streams spread over `nB` μbanks.

use crate::config::MemConfig;
use crate::CACHE_LINE_BITS;
use serde::{Deserialize, Serialize};

/// Fully decoded DRAM coordinates for one cache-line address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Memory controller / channel index.
    pub channel: u16,
    pub rank: u8,
    pub bank: u8,
    /// Wordline-direction μbank index, `0..nW`.
    pub w: u8,
    /// Bitline-direction μbank index, `0..nB`.
    pub b: u8,
    /// Row within the μbank, `0..rows_per_bank/nB`.
    pub row: u32,
    /// Cache-line column within the μbank row, `0..128/nW`.
    pub col: u16,
}

impl Location {
    /// Flat μbank index within the owning channel, used to index the
    /// channel's μbank FSM array.
    pub fn ubank_flat(&self, cfg: &MemConfig) -> usize {
        let per_bank = cfg.ubank.ubanks_per_bank();
        let within_bank = self.b as usize * cfg.ubank.n_w + self.w as usize;
        ((self.rank as usize * cfg.banks_per_rank) + self.bank as usize) * per_bank + within_bank
    }

    /// Identifier for (channel, rank, bank, μbank), ignoring row/col. Two
    /// requests with equal `bank_key` contend for the same row buffer.
    pub fn bank_key(&self, cfg: &MemConfig) -> usize {
        self.channel as usize * cfg.ubanks_per_channel() + self.ubank_flat(cfg)
    }
}

/// One named bit-field in the address layout (for Fig. 11-style printouts).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpec {
    pub name: &'static str,
    /// Position of the field's least-significant bit.
    pub lsb: u32,
    pub width: u32,
}

/// Address mapper for one [`MemConfig`]. Construction precomputes all field
/// widths and shifts; `decode`/`encode` are branch-free bit slicing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    col_bits: u32,
    col_lo_bits: u32,
    col_hi_bits: u32,
    w_bits: u32,
    b_bits: u32,
    bank_bits: u32,
    rank_bits: u32,
    ctrl_bits: u32,
    row_bits: u32,
    /// Effective interleave base (requested `iB` clamped to the legal range).
    pub interleave_base: u32,
    n_w: usize,
    n_b: usize,
    banks_per_rank: usize,
    ubanks_per_channel: usize,
    /// Permutation-based interleaving: XOR the bank field with low row
    /// bits (self-inverse, so encode/decode stay bijective).
    xor_hash: bool,
}

impl AddressMap {
    pub fn new(cfg: &MemConfig) -> Self {
        let col_bits = (cfg.ubank_cols() as u32).trailing_zeros()
            + if cfg.ubank_cols().is_power_of_two() {
                0
            } else {
                panic!("cols not pow2")
            };
        let row_bits = (cfg.ubank_rows() as u32).trailing_zeros();
        let ib = cfg
            .interleave_base
            .clamp(CACHE_LINE_BITS, CACHE_LINE_BITS + col_bits);
        let col_lo_bits = ib - CACHE_LINE_BITS;
        AddressMap {
            col_bits,
            col_lo_bits,
            col_hi_bits: col_bits - col_lo_bits,
            w_bits: cfg.ubank.log2_nw(),
            b_bits: cfg.ubank.log2_nb(),
            bank_bits: (cfg.banks_per_rank as u32).trailing_zeros(),
            rank_bits: (cfg.ranks_per_channel as u32).trailing_zeros(),
            ctrl_bits: (cfg.channels as u32).trailing_zeros(),
            row_bits,
            interleave_base: ib,
            n_w: cfg.ubank.n_w,
            n_b: cfg.ubank.n_b,
            banks_per_rank: cfg.banks_per_rank,
            ubanks_per_channel: cfg.ubanks_per_channel(),
            xor_hash: cfg.bank_xor_hash,
        }
    }

    /// The XOR-hash mask applied to the bank field (low row bits).
    fn bank_hash(&self, row: u64) -> u64 {
        if self.xor_hash {
            row & ((1u64 << self.bank_bits) - 1)
        } else {
            0
        }
    }

    /// Number of address bits the mapper consumes (= log2 total capacity).
    pub fn address_bits(&self) -> u32 {
        CACHE_LINE_BITS
            + self.col_bits
            + self.w_bits
            + self.b_bits
            + self.bank_bits
            + self.rank_bits
            + self.ctrl_bits
            + self.row_bits
    }

    /// Decode a physical byte address into DRAM coordinates. Address bits
    /// above the capacity wrap (masked off), so synthetic workloads with
    /// arbitrary 64-bit addresses are always mappable.
    pub fn decode(&self, addr: u64) -> Location {
        let mut a = addr >> CACHE_LINE_BITS;
        let mut take = |bits: u32| -> u64 {
            let v = a & (((1u64 << bits) - 1) * (bits != 0) as u64);
            a >>= bits;
            v
        };
        let col_lo = take(self.col_lo_bits);
        let w = take(self.w_bits);
        let b = take(self.b_bits);
        let bank = take(self.bank_bits);
        let ctrl = take(self.ctrl_bits);
        let rank = take(self.rank_bits);
        let col_hi = take(self.col_hi_bits);
        let row = take(self.row_bits);
        let bank = bank ^ self.bank_hash(row);
        Location {
            channel: ctrl as u16,
            rank: rank as u8,
            bank: bank as u8,
            w: w as u8,
            b: b as u8,
            row: row as u32,
            col: ((col_hi << self.col_lo_bits) | col_lo) as u16,
        }
    }

    /// Re-encode DRAM coordinates into the canonical physical address.
    pub fn encode(&self, loc: &Location) -> u64 {
        let col = loc.col as u64;
        let col_lo = col & (((1u64 << self.col_lo_bits) - 1) * (self.col_lo_bits != 0) as u64);
        let col_hi = col >> self.col_lo_bits;
        let mut a: u64 = 0;
        let mut shift: u32 = CACHE_LINE_BITS;
        let mut put = |v: u64, bits: u32| {
            a |= v << shift;
            shift += bits;
        };
        put(col_lo, self.col_lo_bits);
        put(loc.w as u64, self.w_bits);
        put(loc.b as u64, self.b_bits);
        // XOR hashing is self-inverse: store bank ^ hash(row).
        put(
            loc.bank as u64 ^ self.bank_hash(loc.row as u64),
            self.bank_bits,
        );
        put(loc.channel as u64, self.ctrl_bits);
        put(loc.rank as u64, self.rank_bits);
        put(col_hi, self.col_hi_bits);
        put(loc.row as u64, self.row_bits);
        a
    }

    /// The field layout, LSB first, for Fig. 11-style diagrams.
    pub fn layout(&self) -> Vec<FieldSpec> {
        let mut out = Vec::new();
        let mut lsb = 0;
        let mut push = |name: &'static str, width: u32, lsb: &mut u32| {
            if width > 0 {
                out.push(FieldSpec {
                    name,
                    lsb: *lsb,
                    width,
                });
            }
            *lsb += width;
        };
        push("cache line", CACHE_LINE_BITS, &mut lsb);
        push("column (low)", self.col_lo_bits, &mut lsb);
        push("ubank-w", self.w_bits, &mut lsb);
        push("ubank-b", self.b_bits, &mut lsb);
        push("bank", self.bank_bits, &mut lsb);
        push("mem ctrl", self.ctrl_bits, &mut lsb);
        push("rank", self.rank_bits, &mut lsb);
        push("column (high)", self.col_hi_bits, &mut lsb);
        push("row", self.row_bits, &mut lsb);
        out
    }

    /// Total μbanks per channel (convenience mirror of the config).
    pub fn ubanks_per_channel(&self) -> usize {
        self.ubanks_per_channel
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        1 << self.ctrl_bits
    }

    /// Validate that a location's fields are within range.
    pub fn location_in_range(&self, loc: &Location) -> bool {
        (loc.channel as usize) < (1 << self.ctrl_bits)
            && (loc.rank as usize) < (1 << self.rank_bits)
            && (loc.bank as usize) < self.banks_per_rank
            && (loc.w as usize) < self.n_w
            && (loc.b as usize) < self.n_b
            && (loc.row as u64) < (1 << self.row_bits)
            && (loc.col as u64) < (1 << self.col_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfig;
    use proptest::prelude::*;

    fn cfg(nw: usize, nb: usize, ib: u32) -> MemConfig {
        MemConfig::lpddr_tsi()
            .with_ubanks(nw, nb)
            .with_interleave_base(ib)
    }

    #[test]
    fn cache_line_interleave_spreads_consecutive_lines() {
        let c = cfg(2, 8, 6);
        let m = AddressMap::new(&c);
        let a = m.decode(0);
        let b = m.decode(64);
        // iB = 6: the next cache line lands in a different μbank (w changes
        // first, being the lowest group field).
        assert_ne!((a.w, a.b, a.bank, a.channel), (b.w, b.b, b.bank, b.channel));
    }

    #[test]
    fn row_interleave_keeps_a_row_together() {
        let c = cfg(2, 8, 12); // max iB for nW = 2
        let m = AddressMap::new(&c);
        let base = m.decode(0);
        // All 64 columns of the μbank row are consecutive addresses.
        for line in 0..c.ubank_cols() as u64 {
            let l = m.decode(line * 64);
            assert_eq!(
                (l.channel, l.rank, l.bank, l.w, l.b, l.row),
                (base.channel, base.rank, base.bank, base.w, base.b, base.row)
            );
            assert_eq!(l.col as u64, line);
        }
        // The next line after the row boundary leaves the μbank group.
        let next = m.decode(c.ubank_cols() as u64 * 64);
        assert_ne!(
            (next.w, next.b, next.bank, next.channel, next.rank, next.row),
            (base.w, base.b, base.bank, base.channel, base.rank, base.row)
        );
    }

    #[test]
    fn ib_is_clamped_to_legal_range() {
        let c = cfg(8, 2, 13); // max legal is 10 for nW = 8
        let m = AddressMap::new(&c);
        assert_eq!(m.interleave_base, 10);
        let c2 = cfg(1, 1, 2);
        assert_eq!(AddressMap::new(&c2).interleave_base, 6);
    }

    #[test]
    fn layout_covers_all_bits_contiguously() {
        for (nw, nb, ib) in [(1, 1, 13), (2, 8, 6), (4, 4, 9), (16, 16, 8)] {
            let m = AddressMap::new(&cfg(nw, nb, ib));
            let fields = m.layout();
            let mut expect = 0;
            for f in &fields {
                assert_eq!(f.lsb, expect, "gap before {}", f.name);
                expect += f.width;
            }
            assert_eq!(expect, m.address_bits());
        }
    }

    #[test]
    fn bank_key_distinguishes_ubanks() {
        let c = cfg(4, 4, 6);
        let m = AddressMap::new(&c);
        let mut keys = std::collections::HashSet::new();
        for line in 0..4096u64 {
            let loc = m.decode(line * 64);
            keys.insert(loc.bank_key(&c));
        }
        // 16 channels × 8 banks × 16 μbanks = 2048 distinct row buffers;
        // 4096 consecutive lines at iB=6 must touch many of them.
        assert!(keys.len() > 1000, "only {} keys", keys.len());
    }

    #[test]
    fn xor_hash_spreads_row_strides_across_banks() {
        // Row-stride pattern (same bank field bits): without hashing all
        // accesses land in one bank; with hashing they spread over all 8.
        let base = MemConfig::lpddr_tsi().with_channels(1);
        let plain = AddressMap::new(&base);
        let hashed = AddressMap::new(&base.clone().with_bank_xor_hash(true));
        let row_stride = 1u64 << (plain.address_bits() - 13); // row bit 0
        let mut banks_plain = std::collections::HashSet::new();
        let mut banks_hashed = std::collections::HashSet::new();
        for i in 0..16u64 {
            banks_plain.insert(plain.decode(i * row_stride).bank);
            banks_hashed.insert(hashed.decode(i * row_stride).bank);
        }
        assert_eq!(
            banks_plain.len(),
            1,
            "row stride stays in one bank unhashed"
        );
        assert!(
            banks_hashed.len() >= 8,
            "hashing spreads: {}",
            banks_hashed.len()
        );
    }

    #[test]
    fn xor_hash_roundtrips() {
        let cfg = MemConfig::lpddr_tsi()
            .with_ubanks(4, 4)
            .with_bank_xor_hash(true);
        let m = AddressMap::new(&cfg);
        for addr in (0..(1u64 << 22)).step_by(64 * 641) {
            let loc = m.decode(addr);
            assert!(m.location_in_range(&loc));
            assert_eq!(m.encode(&loc), addr & !63, "{addr:#x}");
        }
    }

    proptest! {
        #[test]
        fn decode_encode_roundtrip(
            addr in 0u64..(1u64 << 36),
            nw in prop::sample::select(vec![1usize, 2, 4, 8, 16]),
            nb in prop::sample::select(vec![1usize, 2, 4, 8, 16]),
            ib in 6u32..=13,
        ) {
            let c = cfg(nw, nb, ib);
            let m = AddressMap::new(&c);
            let masked = addr & ((1u64 << m.address_bits()) - 1) & !63;
            let loc = m.decode(masked);
            prop_assert!(m.location_in_range(&loc));
            prop_assert_eq!(m.encode(&loc), masked);
        }

        #[test]
        fn distinct_lines_distinct_coordinates(
            a in 0u64..1_000_000u64,
            b in 0u64..1_000_000u64,
            nw in prop::sample::select(vec![1usize, 2, 4, 8]),
            nb in prop::sample::select(vec![1usize, 2, 4, 8]),
        ) {
            prop_assume!(a != b);
            let c = cfg(nw, nb, 6);
            let m = AddressMap::new(&c);
            let la = m.decode(a * 64);
            let lb = m.decode(b * 64);
            prop_assert_ne!((la.channel, la.rank, la.bank, la.w, la.b, la.row, la.col),
                            (lb.channel, lb.rank, lb.bank, lb.w, lb.b, lb.row, lb.col));
        }

        #[test]
        fn ubank_flat_is_dense_and_unique(
            nw in prop::sample::select(vec![1usize, 2, 4, 8, 16]),
            nb in prop::sample::select(vec![1usize, 2, 4, 8, 16]),
        ) {
            let c = cfg(nw, nb, 6);
            let total = c.ubanks_per_channel();
            let mut seen = vec![false; total];
            for bank in 0..c.banks_per_rank {
                for w in 0..nw {
                    for b in 0..nb {
                        let loc = Location {
                            channel: 0, rank: 0, bank: bank as u8,
                            w: w as u8, b: b as u8, row: 0, col: 0,
                        };
                        let f = loc.ubank_flat(&c);
                        prop_assert!(f < total);
                        prop_assert!(!seen[f], "duplicate flat index {}", f);
                        seen[f] = true;
                    }
                }
            }
        }
    }
}
