//! The memory-request record exchanged between the CPU model, the memory
//! controller, and the DRAM device model.

use crate::address::Location;
use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Identity of the tenant (co-located service) a request belongs to.
///
/// Tenant 0 is the default: single-tenant workloads never set anything
/// else, and every struct carrying a `TenantId` derives `Default`, so the
/// tag is invisible (and result-neutral) until a multi-tenant workload
/// stamps it. The QoS subsystem in `microbank-ctrl` keys its per-tenant
/// token buckets and the per-tenant telemetry on this tag.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct TenantId(pub u8);

impl TenantId {
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

/// Read or write, as seen by the main memory (a writeback or a line fill).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReqKind {
    Read,
    Write,
}

impl ReqKind {
    pub fn is_write(&self) -> bool {
        matches!(self, ReqKind::Write)
    }
}

/// One main-memory request for a 64 B cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Unique id assigned by the issuer; echoed in the completion callback.
    pub id: u64,
    /// Physical byte address (line-aligned by the mapper).
    pub addr: u64,
    pub kind: ReqKind,
    /// Issuing hardware thread / core, used by PAR-BS batching and the
    /// global page predictor.
    pub thread: u16,
    /// Cycle the request entered the controller queue.
    pub arrival: Cycle,
    /// Decoded DRAM coordinates (filled by the controller on enqueue).
    pub loc: Location,
    /// Flat μbank index within the owning channel, cached at enqueue
    /// (stamped by the request queue) so the scheduler's per-tick scans
    /// never recompute [`Location::ubank_flat`] per entry.
    pub flat: u32,
    /// Set when a corrected-ECC demand retry has already re-issued this
    /// read (reliability subsystem); a request is retried at most once.
    pub retried: bool,
    /// Owning tenant, stamped by the workload layer and carried through
    /// the cache hierarchy. Defaults to tenant 0 for single-tenant runs.
    pub tenant: TenantId,
}

impl MemRequest {
    pub fn new(id: u64, addr: u64, kind: ReqKind, thread: u16, arrival: Cycle) -> Self {
        MemRequest {
            id,
            addr,
            kind,
            thread,
            arrival,
            loc: Location {
                channel: 0,
                rank: 0,
                bank: 0,
                w: 0,
                b: 0,
                row: 0,
                col: 0,
            },
            flat: 0,
            retried: false,
            tenant: TenantId::default(),
        }
    }

    pub fn is_write(&self) -> bool {
        self.kind.is_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_construction() {
        let r = MemRequest::new(7, 0x1000, ReqKind::Write, 3, 42);
        assert!(r.is_write());
        assert_eq!(r.thread, 3);
        assert_eq!(r.arrival, 42);
    }

    #[test]
    fn tenant_defaults_to_zero() {
        let r = MemRequest::new(1, 0x40, ReqKind::Read, 0, 0);
        assert_eq!(r.tenant, TenantId(0));
        assert_eq!(TenantId(3).index(), 3);
    }

    #[test]
    fn kind_predicates() {
        assert!(!ReqKind::Read.is_write());
        assert!(ReqKind::Write.is_write());
    }
}
