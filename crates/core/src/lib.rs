//! # microbank-core
//!
//! Cycle-level DRAM device model with **μbank** partitioning, reproducing the
//! memory-device substrate of *"Microbank: Architecting Through-Silicon
//! Interposer-Based Main Memory Systems"* (SC 2014).
//!
//! The crate models a multi-channel main-memory system in which every DRAM
//! bank can be partitioned `nW` ways along the wordline direction and `nB`
//! ways along the bitline direction, producing `nW × nB` independently
//! operable μbanks per bank (paper §IV). Each μbank owns a row buffer and a
//! timing state machine; all μbanks of a channel share the command and data
//! buses, and activation-rate constraints (tRRD/tFAW) apply per rank.
//!
//! ## Module map
//!
//! * [`timing`] — nanosecond timing parameters (paper Table I) and their
//!   CPU-cycle derivations for the three processor–memory interfaces.
//! * [`geometry`] — mats, subarrays, banks and the μbank partitioning math.
//! * [`config`] — whole-memory-system configuration presets.
//! * [`address`] — physical-address ↔ device-coordinate mapping with the
//!   configurable interleaving base bit `iB` (paper Fig. 11).
//! * [`command`] — DRAM command vocabulary and targets.
//! * [`bank`] — per-μbank timing FSM (ACT/RD/WR/PRE legality and latching).
//! * [`channel`] — one memory channel: shared buses, ranks, tFAW windows,
//!   refresh bookkeeping.
//! * [`variant`] — the device-variant seam: μbank vs conventional vs SALP
//!   vs Sectored DRAM issue rules, energy granularity, and geometry.
//! * [`request`] — the memory-request type exchanged between the CPU model,
//!   the controller, and the device model.
//! * [`stats`] — event counters used by the energy model.
//!
//! ## Quick example
//!
//! ```
//! use microbank_core::prelude::*;
//!
//! // LPDDR-over-TSI channel with (nW, nB) = (4, 4) μbanks.
//! let cfg = MemConfig::lpddr_tsi().with_ubanks(4, 4);
//! let mut ch = Channel::new(&cfg);
//! let map = AddressMap::new(&cfg);
//! let loc = map.decode(0x4000);
//!
//! // Activate a row, then read a column, respecting DRAM timing.
//! let t0 = 0;
//! assert!(ch.can_activate(&loc, t0));
//! ch.activate(&loc, t0);
//! let t1 = t0 + cfg.timings().t_rcd;
//! assert!(ch.can_column(&loc, false, t1));
//! let done = ch.read(&loc, t1);
//! assert!(done > t1);
//! ```

pub mod address;
pub mod bank;
pub mod channel;
pub mod command;
pub mod config;
pub mod fxhash;
pub mod geometry;
pub mod hist;
pub mod organization;
pub mod request;
pub mod stats;
pub mod timing;
pub mod validate;
pub mod variant;

/// One simulated CPU clock tick. The whole simulator runs in a single clock
/// domain: CPU cycles at 2 GHz (0.5 ns per cycle), per the paper's §VI-A
/// system configuration. DRAM timing values are converted into this domain
/// by [`timing::Timings`].
pub type Cycle = u64;

/// CPU core frequency, cycles per nanosecond (2 GHz).
pub const CYCLES_PER_NS: f64 = 2.0;

/// Cache-line size in bytes; the paper fixes main-memory transfer granularity
/// to one 64 B line (§IV-A).
pub const CACHE_LINE_BYTES: u64 = 64;

/// log2 of [`CACHE_LINE_BYTES`].
pub const CACHE_LINE_BITS: u32 = 6;

pub mod prelude {
    //! Convenient glob import for downstream crates.
    pub use crate::address::{AddressMap, Location};
    pub use crate::bank::MicrobankState;
    pub use crate::channel::Channel;
    pub use crate::command::{DramCommand, Target};
    pub use crate::config::{Interface, MemConfig};
    pub use crate::geometry::{DeviceGeometry, UbankConfig};
    pub use crate::hist::Histogram;
    pub use crate::organization::Organization;
    pub use crate::request::{MemRequest, ReqKind, TenantId};
    pub use crate::stats::DramStats;
    pub use crate::timing::{TimingParams, Timings};
    pub use crate::validate::ConfigError;
    pub use crate::variant::{DeviceVariant, SalpMode};
    pub use crate::{Cycle, CACHE_LINE_BITS, CACHE_LINE_BYTES, CYCLES_PER_NS};
}

#[cfg(test)]
mod tests {
    #[test]
    fn constants_are_consistent() {
        assert_eq!(1u64 << super::CACHE_LINE_BITS, super::CACHE_LINE_BYTES);
    }
}
