//! Configuration validation: structured diagnostics instead of panics.
//!
//! The crates in this workspace historically enforced configuration
//! legality with `assert!` in constructors (and, transitively, with
//! index/divide panics deep inside the device model). That is the right
//! behavior for code paths a caller has already promised are legal, but a
//! sweep harness wants to reject an ill-formed [`crate::config::MemConfig`]
//! *before* spending cycles on it — and report every problem at once, not
//! just the first assert tripped.
//!
//! [`ConfigError`] carries the component that rejected the configuration
//! plus the full list of human-readable diagnostics. The `validate()`
//! methods on `MemConfig` (here), `CmpConfig` (`microbank-cpu`) and
//! `SimConfig` (`microbank-sim`) all speak this type; `microbank-sim`
//! aggregates them into its `SimError::InvalidConfig`.

use std::fmt;

/// A rejected configuration: which component rejected it and why.
///
/// `diagnostics` is never empty for an error produced by a `validate()`
/// method — an empty list would claim rejection without a reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The configuration struct that failed (`"MemConfig"`, `"CmpConfig"`,
    /// `"SimConfig"`).
    pub component: &'static str,
    /// One entry per independent problem found.
    pub diagnostics: Vec<String>,
}

impl ConfigError {
    pub fn new(component: &'static str, diagnostics: Vec<String>) -> Self {
        debug_assert!(!diagnostics.is_empty(), "ConfigError without diagnostics");
        ConfigError {
            component,
            diagnostics,
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} invalid:", self.component)?;
        for d in &self.diagnostics {
            write!(f, "\n  - {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ConfigError {}

/// Diagnostic accumulator used by the `validate()` implementations: collect
/// every failed check, then convert to `Result` in one step.
#[derive(Debug, Default)]
pub struct Checker {
    diagnostics: Vec<String>,
}

impl Checker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `diagnostic` when `ok` is false. Returns `ok` so callers can
    /// gate dependent checks (e.g. skip a derived-quantity check whose
    /// computation would itself divide by zero).
    pub fn check(&mut self, ok: bool, diagnostic: impl FnOnce() -> String) -> bool {
        if !ok {
            self.diagnostics.push(diagnostic());
        }
        ok
    }

    pub fn is_ok(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn finish(self, component: &'static str) -> Result<(), ConfigError> {
        if self.diagnostics.is_empty() {
            Ok(())
        } else {
            Err(ConfigError::new(component, self.diagnostics))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_accumulates_only_failures() {
        let mut c = Checker::new();
        assert!(c.check(true, || unreachable!()));
        assert!(!c.check(false, || "first".to_string()));
        assert!(!c.check(false, || "second".to_string()));
        let err = c.finish("MemConfig").unwrap_err();
        assert_eq!(err.component, "MemConfig");
        assert_eq!(err.diagnostics, vec!["first", "second"]);
        let shown = err.to_string();
        assert!(shown.contains("MemConfig invalid:"));
        assert!(shown.contains("- first") && shown.contains("- second"));
    }

    #[test]
    fn empty_checker_is_ok() {
        assert!(Checker::new().finish("MemConfig").is_ok());
    }
}
