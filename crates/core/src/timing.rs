//! DRAM timing parameters.
//!
//! The paper's Table I gives the headline timings (tRCD, tAA, tRAS, tRP); the
//! remaining constraints are inherited from the DDR3-1600 datasheet the paper
//! cites ([51], Samsung DDR3 SDRAM) and scaled where the TSI interface
//! changes them. All parameters are expressed in nanoseconds here and
//! converted to the simulator's single 2 GHz clock domain by [`Timings`].

use crate::{Cycle, CYCLES_PER_NS};
use serde::{Deserialize, Serialize};

/// Nanosecond-denominated DRAM timing parameters (paper Table I plus the
/// standard DDR3 constraints the paper inherits from its baseline device).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Activate-to-read delay (Table I: 14 ns).
    pub t_rcd_ns: f64,
    /// Precharge command period (Table I: 14 ns).
    pub t_rp_ns: f64,
    /// Activate-to-precharge delay (Table I: 35 ns).
    pub t_ras_ns: f64,
    /// Read to first data (CAS latency). 14 ns for DDR3, 12 ns over TSI
    /// because fewer serialization steps are needed (Table I, §III-B).
    pub t_aa_ns: f64,
    /// Time one 64 B cache-line burst occupies the channel data bus.
    /// 4 ns on a 16 GB/s TSI channel (§IV-B), 5 ns on DDR3-1600 (§II).
    pub t_burst_ns: f64,
    /// Column-to-column command spacing within a channel.
    pub t_ccd_ns: f64,
    /// Activate-to-activate spacing, same rank (DDR3-1600: 6 ns).
    pub t_rrd_ns: f64,
    /// Four-activate window, same rank (DDR3-1600 8 KB page: ~40 ns).
    /// The TSI presets use a relaxed value: the low 250 MHz mat clock and
    /// per-die power delivery of the stacked LPDDR dies make four-ACT
    /// current limits non-binding at channel bandwidth (see DESIGN.md §5).
    pub t_faw_ns: f64,
    /// Write recovery: last write data to precharge (15 ns).
    pub t_wr_ns: f64,
    /// Write-to-read turnaround, same rank (7.5 ns).
    pub t_wtr_ns: f64,
    /// Read-to-precharge (7.5 ns).
    pub t_rtp_ns: f64,
    /// Write CAS latency (first write data after WR command).
    pub t_cwl_ns: f64,
    /// Power-down exit latency (tXP, 7.5 ns): first command after waking
    /// a powered-down rank.
    pub t_xp_ns: f64,
    /// Average refresh interval (7.8 µs).
    pub t_refi_ns: f64,
    /// Refresh cycle time for an 8 Gb die (350 ns).
    pub t_rfc_ns: f64,
    /// One DRAM command-bus slot: the channel accepts at most one command
    /// per slot. The command bus runs at the interface command rate
    /// (1.25 ns at DDR3-1600; 1 ns for the wide TSI channel), several times
    /// faster than the 4 ns data-burst slot — random traffic needs up to
    /// three commands (ACT/RD/PRE) per burst, so a slower command bus
    /// would starve the data bus.
    pub t_cmd_ns: f64,
}

impl TimingParams {
    /// DDR3-1600 module on a PCB (the paper's baseline interface).
    pub fn ddr3_pcb() -> Self {
        TimingParams {
            t_rcd_ns: 14.0,
            t_rp_ns: 14.0,
            t_ras_ns: 35.0,
            t_aa_ns: 14.0,
            t_burst_ns: 5.0,
            t_ccd_ns: 5.0,
            t_rrd_ns: 6.0,
            t_faw_ns: 40.0,
            t_wr_ns: 15.0,
            t_wtr_ns: 7.5,
            t_rtp_ns: 7.5,
            t_cwl_ns: 10.0,
            t_xp_ns: 7.5,
            t_refi_ns: 7800.0,
            t_rfc_ns: 350.0,
            t_cmd_ns: 1.25,
        }
    }

    /// DDR3-type stacked dies behind a silicon interposer: same core timing,
    /// shorter read latency (tAA 12 ns) and a 16 GB/s channel. The
    /// activation-rate limits (tRRD/tFAW) are relaxed to non-binding
    /// values: they exist to protect a package's charge pumps, and a
    /// TSV-stacked die with per-die power delivery at a 250 MHz mat clock
    /// is not activation-current-limited at channel bandwidth — the
    /// paper's results (e.g. mcf scaling to the channel bound in Fig. 8)
    /// imply the same modeling choice.
    pub fn ddr3_tsi() -> Self {
        TimingParams {
            t_aa_ns: 12.0,
            t_burst_ns: 4.0,
            t_ccd_ns: 4.0,
            t_rrd_ns: 2.0,
            t_faw_ns: 8.0,
            t_cmd_ns: 1.0,
            ..Self::ddr3_pcb()
        }
    }

    /// LPDDR-type stacked dies behind a silicon interposer (the paper's
    /// proposed interface): identical core timing to [`Self::ddr3_tsi`]; the
    /// difference is purely energetic (no ODT/DLL).
    pub fn lpddr_tsi() -> Self {
        Self::ddr3_tsi()
    }

    /// Row cycle time tRC = tRAS + tRP.
    pub fn t_rc_ns(&self) -> f64 {
        self.t_ras_ns + self.t_rp_ns
    }

    /// Every nanosecond parameter paired with its name, for validation and
    /// reporting.
    pub fn named_fields(&self) -> [(&'static str, f64); 16] {
        [
            ("t_rcd_ns", self.t_rcd_ns),
            ("t_rp_ns", self.t_rp_ns),
            ("t_ras_ns", self.t_ras_ns),
            ("t_aa_ns", self.t_aa_ns),
            ("t_burst_ns", self.t_burst_ns),
            ("t_ccd_ns", self.t_ccd_ns),
            ("t_rrd_ns", self.t_rrd_ns),
            ("t_faw_ns", self.t_faw_ns),
            ("t_wr_ns", self.t_wr_ns),
            ("t_wtr_ns", self.t_wtr_ns),
            ("t_rtp_ns", self.t_rtp_ns),
            ("t_cwl_ns", self.t_cwl_ns),
            ("t_xp_ns", self.t_xp_ns),
            ("t_refi_ns", self.t_refi_ns),
            ("t_rfc_ns", self.t_rfc_ns),
            ("t_cmd_ns", self.t_cmd_ns),
        ]
    }

    /// Accumulate timing-legality diagnostics: every interval must be a
    /// finite positive number (the cycle conversion and the FSMs assume
    /// it), and the composite constraints a real device guarantees must
    /// hold (tRAS covers tRCD; a refresh must fit in its interval).
    pub fn validate_into(&self, c: &mut crate::validate::Checker) {
        let mut all_finite = true;
        for (name, v) in self.named_fields() {
            all_finite &= c.check(v.is_finite() && v > 0.0, || {
                format!("timing.{name} = {v}: every timing interval must be finite and > 0 ns")
            });
        }
        if all_finite {
            c.check(self.t_ras_ns >= self.t_rcd_ns, || {
                format!(
                    "timing: tRAS ({} ns) < tRCD ({} ns): a row cannot close before its \
                     activate has completed",
                    self.t_ras_ns, self.t_rcd_ns
                )
            });
            c.check(self.t_refi_ns > self.t_rfc_ns, || {
                format!(
                    "timing: tREFI ({} ns) <= tRFC ({} ns): refresh would consume the \
                     entire channel",
                    self.t_refi_ns, self.t_rfc_ns
                )
            });
        }
    }

    /// Convert to integer CPU-cycle timings (rounding every interval up, the
    /// conservative direction a real controller must take).
    pub fn to_cycles(&self) -> Timings {
        let c = |ns: f64| -> Cycle { (ns * CYCLES_PER_NS).ceil() as Cycle };
        Timings {
            t_rcd: c(self.t_rcd_ns),
            t_rp: c(self.t_rp_ns),
            t_ras: c(self.t_ras_ns),
            t_aa: c(self.t_aa_ns),
            t_burst: c(self.t_burst_ns),
            t_ccd: c(self.t_ccd_ns),
            t_rrd: c(self.t_rrd_ns),
            t_faw: c(self.t_faw_ns),
            t_wr: c(self.t_wr_ns),
            t_wtr: c(self.t_wtr_ns),
            t_rtp: c(self.t_rtp_ns),
            t_cwl: c(self.t_cwl_ns),
            t_xp: c(self.t_xp_ns),
            t_refi: c(self.t_refi_ns),
            t_rfc: c(self.t_rfc_ns),
            t_cmd: c(self.t_cmd_ns).max(1),
        }
    }
}

/// DRAM timing intervals in CPU cycles (2 GHz). Produced by
/// [`TimingParams::to_cycles`]; consumed by the bank FSMs and the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timings {
    pub t_rcd: Cycle,
    pub t_rp: Cycle,
    pub t_ras: Cycle,
    pub t_aa: Cycle,
    pub t_burst: Cycle,
    pub t_ccd: Cycle,
    pub t_rrd: Cycle,
    pub t_faw: Cycle,
    pub t_wr: Cycle,
    pub t_wtr: Cycle,
    pub t_rtp: Cycle,
    pub t_cwl: Cycle,
    pub t_xp: Cycle,
    pub t_refi: Cycle,
    pub t_rfc: Cycle,
    pub t_cmd: Cycle,
}

impl Timings {
    /// Row cycle time tRC = tRAS + tRP in CPU cycles.
    pub fn t_rc(&self) -> Cycle {
        self.t_ras + self.t_rp
    }

    /// Closed-bank read latency: ACT → tRCD → RD → tAA → first data → burst.
    pub fn closed_read_latency(&self) -> Cycle {
        self.t_rcd + self.t_aa + self.t_burst
    }

    /// Open-row (row hit) read latency: RD → tAA → data → burst.
    pub fn open_read_latency(&self) -> Cycle {
        self.t_aa + self.t_burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values_match_paper() {
        let p = TimingParams::ddr3_pcb();
        assert_eq!(p.t_rcd_ns, 14.0);
        assert_eq!(p.t_aa_ns, 14.0);
        assert_eq!(p.t_ras_ns, 35.0);
        assert_eq!(p.t_rp_ns, 14.0);
        let t = TimingParams::lpddr_tsi();
        assert_eq!(t.t_aa_ns, 12.0);
        assert_eq!(t.t_rc_ns(), 49.0);
    }

    #[test]
    fn cycle_conversion_rounds_up() {
        let t = TimingParams::lpddr_tsi().to_cycles();
        assert_eq!(t.t_rcd, 28); // 14 ns * 2
        assert_eq!(t.t_aa, 24); // 12 ns * 2
        assert_eq!(t.t_ras, 70);
        assert_eq!(t.t_rp, 28);
        assert_eq!(t.t_rc(), 98); // 49 ns
        assert_eq!(t.t_burst, 8); // 4 ns: one line per 4 ns = 16 GB/s
    }

    #[test]
    fn pcb_burst_is_slower_than_tsi() {
        let pcb = TimingParams::ddr3_pcb().to_cycles();
        let tsi = TimingParams::ddr3_tsi().to_cycles();
        assert!(pcb.t_burst > tsi.t_burst);
        assert!(pcb.t_aa > tsi.t_aa);
    }

    #[test]
    fn latencies_compose() {
        let t = TimingParams::lpddr_tsi().to_cycles();
        assert_eq!(t.closed_read_latency(), t.t_rcd + t.t_aa + t.t_burst);
        assert!(t.closed_read_latency() > t.open_read_latency());
    }

    #[test]
    fn command_slot_is_nonzero() {
        for p in [
            TimingParams::ddr3_pcb(),
            TimingParams::ddr3_tsi(),
            TimingParams::lpddr_tsi(),
        ] {
            assert!(p.to_cycles().t_cmd >= 1);
        }
    }
}
