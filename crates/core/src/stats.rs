//! DRAM event counters. The energy model (crate `microbank-energy`)
//! converts these into pJ using the paper's Table I parameters, so every
//! counter here corresponds to one energy term in the paper's breakdowns
//! (Fig. 1, Fig. 10, Fig. 14).

use serde::{Deserialize, Serialize};

/// Event counters for one channel (or, after [`DramStats::merge`], a whole
/// memory system).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// ACT commands issued. Each carries the row-activation energy
    /// (30 nJ / nW for a full 8 KB page, Table I).
    pub activates: u64,
    /// PRE commands issued (the paper folds PRE energy into the combined
    /// ACT+PRE figure; we count both for sanity checks).
    pub precharges: u64,
    pub reads: u64,
    pub writes: u64,
    /// All-bank refreshes issued.
    pub refreshes: u64,
    /// Patrol-scrub commands issued (reliability subsystem; always 0 when
    /// fault injection is disabled).
    pub scrubs: u64,
    /// Cycles the data bus spent transferring bursts.
    pub data_bus_busy: u64,
    /// Column accesses that hit an already-open row.
    pub row_hits: u64,
    /// Column accesses that required opening a closed (idle) bank.
    pub row_closed: u64,
    /// Column accesses that conflicted with a different open row.
    pub row_conflicts: u64,
    /// Rank-cycles spent in precharge power-down (CKE low).
    pub powerdown_rank_cycles: u64,
    /// Power-down entries (each exit pays tXP).
    pub powerdown_entries: u64,
}

impl DramStats {
    /// Accumulate another stats block (e.g. per-channel → system, or a
    /// shard's counters into the global view). Saturating, matching the
    /// within-shard accumulation contract: a counter pinned near `u64::MAX`
    /// must degrade to the ceiling, never wrap to a tiny value.
    pub fn merge(&mut self, other: &DramStats) {
        self.activates = self.activates.saturating_add(other.activates);
        self.precharges = self.precharges.saturating_add(other.precharges);
        self.reads = self.reads.saturating_add(other.reads);
        self.writes = self.writes.saturating_add(other.writes);
        self.refreshes = self.refreshes.saturating_add(other.refreshes);
        self.scrubs = self.scrubs.saturating_add(other.scrubs);
        self.data_bus_busy = self.data_bus_busy.saturating_add(other.data_bus_busy);
        self.row_hits = self.row_hits.saturating_add(other.row_hits);
        self.row_closed = self.row_closed.saturating_add(other.row_closed);
        self.row_conflicts = self.row_conflicts.saturating_add(other.row_conflicts);
        self.powerdown_rank_cycles = self
            .powerdown_rank_cycles
            .saturating_add(other.powerdown_rank_cycles);
        self.powerdown_entries = self
            .powerdown_entries
            .saturating_add(other.powerdown_entries);
    }

    /// Total column accesses.
    pub fn columns(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-buffer hit rate over classified accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_closed + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Ratio of ACT commands to column commands — the paper's β (§IV-B):
    /// β = 1 means every access opens a row; small β means high locality.
    pub fn beta(&self) -> f64 {
        if self.columns() == 0 {
            0.0
        } else {
            self.activates as f64 / self.columns() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = DramStats {
            activates: 1,
            reads: 2,
            ..Default::default()
        };
        let b = DramStats {
            activates: 3,
            writes: 5,
            row_hits: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.activates, 4);
        assert_eq!(a.reads, 2);
        assert_eq!(a.writes, 5);
        assert_eq!(a.columns(), 7);
        assert_eq!(a.row_hits, 7);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = DramStats {
            activates: u64::MAX - 1,
            ..Default::default()
        };
        let b = DramStats {
            activates: 16,
            reads: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.activates, u64::MAX);
        assert_eq!(a.reads, 2);
    }

    #[test]
    fn beta_definition() {
        let s = DramStats {
            activates: 10,
            reads: 80,
            writes: 20,
            ..Default::default()
        };
        assert!((s.beta() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(DramStats::default().row_hit_rate(), 0.0);
        let s = DramStats {
            row_hits: 3,
            row_closed: 1,
            ..Default::default()
        };
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
    }
}
