//! Whole-memory-system configuration and the three processor–memory
//! interface presets compared in the paper (Fig. 14): DDR3 over PCB,
//! DDR3-type stacked dies over TSI, and LPDDR-type stacked dies over TSI.

use crate::geometry::{DeviceGeometry, UbankConfig};
use crate::timing::{TimingParams, Timings};
use crate::validate::{Checker, ConfigError};
use crate::variant::DeviceVariant;
use crate::CACHE_LINE_BITS;
use serde::{Deserialize, Serialize};

/// Processor–memory interface technology (paper §VI-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interface {
    /// Module-based DDR3 connected through PCBs: the conventional baseline.
    /// 8 memory controllers (to keep ~1,600 I/O pins realistic), 12.8 GB/s
    /// per channel, 2 ranks per channel.
    Ddr3Pcb,
    /// TSV-stacked DDR3-type dies behind a silicon interposer: 16 channels
    /// of 16 GB/s; the DDR3 PHY (ODT/DLL) is kept, so energy improves only
    /// modestly.
    Ddr3Tsi,
    /// TSV-stacked LPDDR-type dies behind a silicon interposer: the paper's
    /// proposed interface; 16 channels of 16 GB/s and 4 pJ/b I/O.
    LpddrTsi,
}

impl Interface {
    pub fn name(&self) -> &'static str {
        match self {
            Interface::Ddr3Pcb => "DDR3-PCB",
            Interface::Ddr3Tsi => "DDR3-TSI",
            Interface::LpddrTsi => "LPDDR-TSI",
        }
    }

    pub fn timing_params(&self) -> TimingParams {
        match self {
            Interface::Ddr3Pcb => TimingParams::ddr3_pcb(),
            Interface::Ddr3Tsi => TimingParams::ddr3_tsi(),
            Interface::LpddrTsi => TimingParams::lpddr_tsi(),
        }
    }

    /// Default number of memory controllers / channels (§VI-A, §VI-D).
    pub fn default_channels(&self) -> usize {
        match self {
            Interface::Ddr3Pcb => 8,
            _ => 16,
        }
    }

    /// Default ranks per channel. The PCB module hosts 2 ranks; over TSI
    /// each (half-)die serves a channel as one rank (§III-B).
    pub fn default_ranks(&self) -> usize {
        match self {
            Interface::Ddr3Pcb => 2,
            _ => 1,
        }
    }
}

/// Full memory-system configuration handed to the channel model, the
/// address mapper, the controller, and the energy model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    pub interface: Interface,
    /// Number of memory controllers, one channel each.
    pub channels: usize,
    pub ranks_per_channel: usize,
    /// Banks per rank visible to one channel (8: half of a 16-bank die).
    pub banks_per_rank: usize,
    pub ubank: UbankConfig,
    /// Device-variant seam (DESIGN §5h): which fine-grained-DRAM design
    /// the channel models. `Microbank` (the default) is the repo's native
    /// model and imposes no structural rules beyond the μbank FSMs, so
    /// every pre-seam configuration behaves bit-identically. Set via
    /// [`MemConfig::with_variant`], which also derives the consistent
    /// `ubank` geometry.
    #[serde(default)]
    pub variant: DeviceVariant,
    pub geometry: DeviceGeometry,
    pub timing: TimingParams,
    /// Interleaving base bit `iB` (paper Fig. 11). Bit 6 interleaves at
    /// cache-line granularity; `max_interleave_base()` interleaves at DRAM
    /// row granularity. Values outside the legal range are clamped by the
    /// address mapper.
    pub interleave_base: u32,
    /// Per-controller request-queue capacity (32, §VI-A).
    pub queue_size: usize,
    /// Enable tREFI/tRFC refresh modeling.
    pub refresh_enabled: bool,
    /// Power-down idle threshold in CPU cycles: a rank with no open rows
    /// and no queued work for this long enters precharge power-down
    /// (CKE low), cutting its static power; waking costs tXP. `None`
    /// disables power-down (the evaluation default).
    pub powerdown_idle: Option<u64>,
    /// Permutation-based (XOR) bank hashing: the bank/μbank index is XORed
    /// with low row bits, spreading row-stride access patterns across
    /// banks (Zhang et al., MICRO'00). Off in the paper's evaluation; an
    /// alternative lever to μbank for conflict reduction, kept ablatable.
    pub bank_xor_hash: bool,
}

impl MemConfig {
    /// Preset for an interface with the paper's §VI-A defaults and row
    /// (page) granularity interleaving, the paper's preferred scheme.
    pub fn for_interface(interface: Interface) -> Self {
        let geometry = DeviceGeometry::reference();
        let mut cfg = MemConfig {
            interface,
            channels: interface.default_channels(),
            ranks_per_channel: interface.default_ranks(),
            banks_per_rank: geometry.banks_per_die / geometry.channels_per_die,
            ubank: UbankConfig::BASELINE,
            variant: DeviceVariant::Microbank,
            geometry,
            timing: interface.timing_params(),
            interleave_base: 0, // patched below to the row-granularity max
            queue_size: 32,
            refresh_enabled: true,
            powerdown_idle: None,
            bank_xor_hash: false,
        };
        cfg.interleave_base = cfg.max_interleave_base();
        cfg
    }

    /// The paper's baseline system: DDR3 modules over PCB.
    pub fn ddr3_pcb() -> Self {
        Self::for_interface(Interface::Ddr3Pcb)
    }

    /// DDR3-type stacked dies over a silicon interposer.
    pub fn ddr3_tsi() -> Self {
        Self::for_interface(Interface::Ddr3Tsi)
    }

    /// The paper's proposed interface: LPDDR-type stacked dies over TSI.
    pub fn lpddr_tsi() -> Self {
        Self::for_interface(Interface::LpddrTsi)
    }

    /// Builder: set the μbank partitioning `(nW, nB)` and keep the
    /// interleaving at row granularity for the new row size.
    pub fn with_ubanks(mut self, n_w: usize, n_b: usize) -> Self {
        let was_max = self.interleave_base == self.max_interleave_base();
        self.ubank = UbankConfig::new(n_w, n_b);
        if was_max {
            self.interleave_base = self.max_interleave_base();
        } else {
            self.interleave_base = self.interleave_base.min(self.max_interleave_base());
        }
        self
    }

    /// Builder: adopt a named bank organization from the literature
    /// (SALP, Half-DRAM, …) — see [`crate::organization::Organization`].
    /// This legacy axis expresses designs as μbank *geometry* only (the
    /// variant stays `Microbank`); use [`MemConfig::with_variant`] for the
    /// timing-faithful issue rules.
    pub fn with_organization(self, org: crate::organization::Organization) -> Self {
        let u = org.ubank_config();
        self.with_ubanks(u.n_w, u.n_b)
    }

    /// Builder: select a device variant and derive the μbank geometry it
    /// imposes ([`DeviceVariant::effective_ubank`]), keeping row-granular
    /// interleaving consistent with the new row size. For
    /// `DeviceVariant::Microbank` the configured `(nW, nB)` is kept, so
    /// `with_variant(Microbank)` after `with_ubanks(..)` is a no-op.
    pub fn with_variant(mut self, v: DeviceVariant) -> Self {
        self.variant = v;
        let u = v.effective_ubank(self.ubank);
        self.with_ubanks(u.n_w, u.n_b)
    }

    /// Builder: set the interleaving base bit `iB`.
    pub fn with_interleave_base(mut self, ib: u32) -> Self {
        self.interleave_base = ib;
        self
    }

    /// Builder: set the number of channels (the paper populates a single
    /// controller to stress bandwidth for single-threaded SPEC runs).
    pub fn with_channels(mut self, channels: usize) -> Self {
        assert!(channels.is_power_of_two());
        self.channels = channels;
        self
    }

    /// Builder: toggle refresh.
    pub fn with_refresh(mut self, on: bool) -> Self {
        self.refresh_enabled = on;
        self
    }

    /// Builder: enable precharge power-down after `idle_cycles` of rank
    /// inactivity.
    pub fn with_powerdown(mut self, idle_cycles: u64) -> Self {
        self.powerdown_idle = Some(idle_cycles);
        self
    }

    /// Builder: enable permutation-based (XOR) bank hashing.
    pub fn with_bank_xor_hash(mut self, on: bool) -> Self {
        self.bank_xor_hash = on;
        self
    }

    /// Builder: per-controller queue capacity.
    pub fn with_queue_size(mut self, q: usize) -> Self {
        assert!(q > 0);
        self.queue_size = q;
        self
    }

    /// Check every structural invariant the device model, address mapper,
    /// and controller assume, reporting *all* violations at once.
    ///
    /// The builders (`with_ubanks`, `with_channels`, …) assert the same
    /// constraints eagerly; this method exists for configurations assembled
    /// field-by-field (sweep generators, fuzzers, deserialized configs),
    /// where a structured diagnostic beats an index panic three crates down.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let mut c = Checker::new();
        let pow2 = |c: &mut Checker, name: &str, v: usize| -> bool {
            c.check(v.is_power_of_two(), || {
                format!("{name} = {v}: must be a power of two >= 1 (address bits are sliced)")
            })
        };
        pow2(&mut c, "channels", self.channels);
        pow2(&mut c, "ranks_per_channel", self.ranks_per_channel);
        pow2(&mut c, "banks_per_rank", self.banks_per_rank);
        let ub_ok = c.check(
            self.ubank.n_w.is_power_of_two() && self.ubank.n_w <= 16,
            || {
                format!(
                    "ubank.n_w = {}: must be a power of two in 1..=16",
                    self.ubank.n_w
                )
            },
        ) & c.check(
            self.ubank.n_b.is_power_of_two() && self.ubank.n_b <= 16,
            || {
                format!(
                    "ubank.n_b = {}: must be a power of two in 1..=16",
                    self.ubank.n_b
                )
            },
        );
        c.check(self.queue_size >= 1, || {
            format!(
                "queue_size = {}: the controller needs at least one queue slot",
                self.queue_size
            )
        });

        let g = &self.geometry;
        let geom_ok = c.check(g.banks_per_die >= 1 && g.channels_per_die >= 1, || {
            format!(
                "geometry: banks_per_die = {}, channels_per_die = {}: both must be >= 1",
                g.banks_per_die, g.channels_per_die
            )
        }) & c.check(
            g.row_bytes >= crate::CACHE_LINE_BYTES as usize && g.row_bytes.is_power_of_two(),
            || {
                format!(
                    "geometry.row_bytes = {}: must be a power of two >= the 64 B cache line",
                    g.row_bytes
                )
            },
        ) & c.check(g.die_bits > 0, || {
            format!("geometry.die_bits = {}: empty die", g.die_bits)
        });

        if ub_ok && geom_ok {
            // Derived quantities are only computable once the raw fields are
            // sane (ubank_cols divides by n_w, rows_per_bank by row_bytes).
            c.check(
                self.ubank_cols() >= 1 && self.ubank_cols().is_power_of_two(),
                || {
                    format!(
                        "ubank columns = {} (row of {} B split {} ways): must stay a power of \
                     two >= 1 cache line",
                        self.ubank_cols(),
                        g.row_bytes,
                        self.ubank.n_w
                    )
                },
            );
            c.check(
                self.ubank_rows() >= 1 && self.ubank_rows().is_power_of_two(),
                || {
                    format!(
                        "ubank rows = {} ({} rows split {} ways): must stay a power of two >= 1",
                        self.ubank_rows(),
                        g.rows_per_bank(),
                        self.ubank.n_b
                    )
                },
            );
            c.check(self.interleave_base <= self.max_interleave_base(), || {
                format!(
                    "interleave_base = {}: exceeds the row-granularity ceiling {} for this \
                     partition (the address mapper would clamp it)",
                    self.interleave_base,
                    self.max_interleave_base()
                )
            });
        }

        if ub_ok {
            self.variant.validate_into(&mut c, self.ubank);
        }
        self.timing.validate_into(&mut c);
        c.finish("MemConfig")
    }

    /// Integer CPU-cycle timings for this configuration.
    pub fn timings(&self) -> Timings {
        self.timing.to_cycles()
    }

    /// Cache-line columns in one μbank row: 128 / nW.
    pub fn ubank_cols(&self) -> usize {
        self.geometry.ubank_cols(self.ubank)
    }

    /// Rows per μbank: 8192 / nB.
    pub fn ubank_rows(&self) -> usize {
        self.geometry.ubank_rows(self.ubank)
    }

    /// μbanks addressable per channel: ranks × banks × nW × nB.
    pub fn ubanks_per_channel(&self) -> usize {
        self.ranks_per_channel * self.banks_per_rank * self.ubank.ubanks_per_bank()
    }

    /// Largest legal interleaving base bit: 6 + log2(columns per μbank row).
    /// At this value a whole μbank row is contiguous in the address space
    /// (row/page-granularity interleaving). This reproduces the paper's
    /// per-configuration iB ceilings in Fig. 12: 13 for (1,1), 12 for (2,8),
    /// 11 for (4,4), 10 for (8,2).
    pub fn max_interleave_base(&self) -> u32 {
        CACHE_LINE_BITS + (self.ubank_cols() as u32).trailing_zeros()
    }

    /// Total addressable bytes across all channels.
    pub fn capacity_bytes(&self) -> u64 {
        let per_ubank = self.ubank_rows() as u64 * self.geometry.ubank_row_bytes(self.ubank) as u64;
        per_ubank * self.ubanks_per_channel() as u64 * self.channels as u64
    }

    /// Peak channel bandwidth in GB/s (64 B per burst slot).
    pub fn channel_bandwidth_gbps(&self) -> f64 {
        crate::CACHE_LINE_BYTES as f64 / self.timing.t_burst_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_section_vi() {
        let pcb = MemConfig::ddr3_pcb();
        assert_eq!(pcb.channels, 8);
        assert_eq!(pcb.ranks_per_channel, 2);
        assert!((pcb.channel_bandwidth_gbps() - 12.8).abs() < 1e-9);

        let tsi = MemConfig::lpddr_tsi();
        assert_eq!(tsi.channels, 16);
        assert_eq!(tsi.banks_per_rank, 8);
        assert!((tsi.channel_bandwidth_gbps() - 16.0).abs() < 1e-9);
        assert_eq!(tsi.queue_size, 32);
    }

    #[test]
    fn interleave_ceiling_matches_fig12() {
        // Fig. 12 sweeps iB up to 13/(1,1), 12/(2,8), 11/(4,4), 10/(8,2).
        let cases = [(1, 1, 13), (2, 8, 12), (4, 4, 11), (8, 2, 10)];
        for (nw, nb, ib) in cases {
            let cfg = MemConfig::lpddr_tsi().with_ubanks(nw, nb);
            assert_eq!(cfg.max_interleave_base(), ib, "({nw},{nb})");
        }
    }

    #[test]
    fn ubank_builder_scales_parallelism() {
        let cfg = MemConfig::lpddr_tsi().with_ubanks(4, 4);
        assert_eq!(cfg.ubanks_per_channel(), 8 * 16);
        assert_eq!(cfg.ubank_cols(), 32);
    }

    #[test]
    fn capacity_independent_of_partitioning() {
        let base = MemConfig::lpddr_tsi().capacity_bytes();
        for &(nw, nb) in &[(2usize, 8usize), (16, 16), (8, 2)] {
            assert_eq!(
                MemConfig::lpddr_tsi().with_ubanks(nw, nb).capacity_bytes(),
                base
            );
        }
    }

    #[test]
    fn single_channel_builder() {
        let cfg = MemConfig::lpddr_tsi().with_channels(1);
        assert_eq!(cfg.channels, 1);
    }
}
