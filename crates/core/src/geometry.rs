//! Physical DRAM geometry: mats, subarrays, banks, and μbank partitioning.
//!
//! The paper's reference die (§IV-B): 8 Gb, 80 mm², 16 banks, 2 channels,
//! 512 Mb banks laid out as a 64 × 32 array of 512×512-cell mats, 8 KB rows,
//! 16 GB/s channels. A μbank configuration `(nW, nB)` splits every bank into
//! `nW` partitions along the wordline direction (shrinking the activated row
//! to `8 KB / nW`) and `nB` partitions along the bitline / global-dataline
//! direction (multiplying the number of simultaneously open rows).

use serde::{Deserialize, Serialize};

/// Number of cells along one side of a mat (512×512 cells, §II).
pub const MAT_CELLS: usize = 512;

/// μbank partitioning degree. `(1, 1)` is the conventional bank and the
/// baseline in every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UbankConfig {
    /// Number of partitions in the wordline direction (`nW`): each activate
    /// opens `1/nW` of the original row.
    pub n_w: usize,
    /// Number of partitions in the bitline direction (`nB`).
    pub n_b: usize,
}

impl UbankConfig {
    /// A conventional, unpartitioned bank.
    pub const BASELINE: UbankConfig = UbankConfig { n_w: 1, n_b: 1 };

    pub fn new(n_w: usize, n_b: usize) -> Self {
        assert!(n_w.is_power_of_two() && n_w <= 16, "nW must be 1..=16 pow2");
        assert!(n_b.is_power_of_two() && n_b <= 16, "nB must be 1..=16 pow2");
        UbankConfig { n_w, n_b }
    }

    /// Total μbanks per bank (`nW × nB`).
    pub fn ubanks_per_bank(&self) -> usize {
        self.n_w * self.n_b
    }

    pub fn log2_nw(&self) -> u32 {
        self.n_w.trailing_zeros()
    }

    pub fn log2_nb(&self) -> u32 {
        self.n_b.trailing_zeros()
    }
}

impl Default for UbankConfig {
    fn default() -> Self {
        Self::BASELINE
    }
}

/// Reference DRAM die geometry (paper §III-B and §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceGeometry {
    /// Die capacity in bits (8 Gb).
    pub die_bits: u64,
    /// Baseline die area in mm² (80 mm²).
    pub die_area_mm2: f64,
    /// Banks per die (16).
    pub banks_per_die: usize,
    /// Independent channels per die (2), so 8 banks serve each channel.
    pub channels_per_die: usize,
    /// Mats per bank in the wordline direction (64).
    pub mats_x: usize,
    /// Mats per bank in the bitline direction (32).
    pub mats_y: usize,
    /// DRAM row (page) size in bytes for an unpartitioned bank (8 KB).
    pub row_bytes: usize,
}

impl DeviceGeometry {
    /// The paper's reference 8 Gb / 80 mm² die.
    pub fn reference() -> Self {
        DeviceGeometry {
            die_bits: 8 << 30,
            die_area_mm2: 80.0,
            banks_per_die: 16,
            channels_per_die: 2,
            mats_x: 64,
            mats_y: 32,
            row_bytes: 8 * 1024,
        }
    }

    /// Bits per bank (512 Mb for the reference die).
    pub fn bank_bits(&self) -> u64 {
        self.die_bits / self.banks_per_die as u64
    }

    /// Mats per bank (2048 for the reference die).
    pub fn mats_per_bank(&self) -> usize {
        self.mats_x * self.mats_y
    }

    /// Rows (8 KB pages) per bank: 512 Mb / 64 Kib = 8192.
    pub fn rows_per_bank(&self) -> usize {
        (self.bank_bits() / (self.row_bytes as u64 * 8)) as usize
    }

    /// 64 B cache-line columns per row (128 for an 8 KB row).
    pub fn cols_per_row(&self) -> usize {
        self.row_bytes / crate::CACHE_LINE_BYTES as usize
    }

    /// Mats activated per ACT command for a given μbank configuration.
    /// An 8 KB row spans 128 mats (2 mat rows, §IV-B); `nW` divides that.
    pub fn mats_per_activation(&self, u: UbankConfig) -> usize {
        let full = (self.row_bytes * 8).div_ceil(MAT_CELLS); // 128 mats
        (full / u.n_w).max(1)
    }

    /// Row size (bytes) seen by one μbank: 8 KB / nW.
    pub fn ubank_row_bytes(&self, u: UbankConfig) -> usize {
        self.row_bytes / u.n_w
    }

    /// Cache-line columns per μbank row: 128 / nW.
    pub fn ubank_cols(&self, u: UbankConfig) -> usize {
        self.cols_per_row() / u.n_w
    }

    /// Rows per μbank: 8192 / nB.
    pub fn ubank_rows(&self, u: UbankConfig) -> usize {
        self.rows_per_bank() / u.n_b
    }
}

impl Default for DeviceGeometry {
    fn default() -> Self {
        Self::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_die_matches_paper() {
        let g = DeviceGeometry::reference();
        assert_eq!(g.bank_bits(), 512 << 20); // 512 Mb banks
        assert_eq!(g.mats_per_bank(), 2048); // 64 × 32 array
        assert_eq!(g.rows_per_bank(), 8192);
        assert_eq!(g.cols_per_row(), 128);
    }

    #[test]
    fn full_row_spans_128_mats() {
        let g = DeviceGeometry::reference();
        assert_eq!(g.mats_per_activation(UbankConfig::BASELINE), 128);
        // With nW = 16 only 8 mats light up per ACT.
        assert_eq!(g.mats_per_activation(UbankConfig::new(16, 1)), 8);
    }

    #[test]
    fn partitioning_divides_rows_and_cols() {
        let g = DeviceGeometry::reference();
        let u = UbankConfig::new(4, 8);
        assert_eq!(g.ubank_row_bytes(u), 2048); // 8 KB / 4
        assert_eq!(g.ubank_cols(u), 32); // 128 / 4
        assert_eq!(g.ubank_rows(u), 1024); // 8192 / 8
        assert_eq!(u.ubanks_per_bank(), 32);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        UbankConfig::new(3, 1);
    }

    #[test]
    fn capacity_is_preserved_by_partitioning() {
        let g = DeviceGeometry::reference();
        for &nw in &[1usize, 2, 4, 8, 16] {
            for &nb in &[1usize, 2, 4, 8, 16] {
                let u = UbankConfig::new(nw, nb);
                let per_ubank = g.ubank_rows(u) as u64 * g.ubank_row_bytes(u) as u64;
                let total = per_ubank * u.ubanks_per_bank() as u64;
                assert_eq!(total * 8, g.bank_bits(), "({nw},{nb})");
            }
        }
    }
}
