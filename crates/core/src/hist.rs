//! A small logarithmic-bucket histogram for latency and occupancy
//! distributions. The paper reports means; percentile tails (p95/p99) are
//! where queueing pathologies show first, so the simulator tracks them too.

use serde::{Deserialize, Serialize};

/// Log₂-bucketed histogram of `u64` samples. Bucket `i` covers
/// `[2^i, 2^(i+1))` (bucket 0 covers {0, 1}).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Number of log₂ buckets: one per bit of a `u64` sample.
    pub const NUM_BUCKETS: usize = 64;

    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; Self::NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        (64 - v.max(1).leading_zeros() - 1) as usize
    }

    /// Smallest sample bucket `i` covers: 0 for bucket 0 (which holds both
    /// 0 and 1), `2^i` otherwise.
    pub fn bucket_low(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Largest sample bucket `i` covers: `2^(i+1) - 1`, saturating at
    /// `u64::MAX` for the last bucket (where `2^64` does not fit in u64).
    pub fn bucket_high(i: usize) -> u64 {
        if i >= Self::NUM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        // Saturate rather than overflow: samples near u64::MAX (e.g. a
        // sentinel that leaked into a latency path) must not panic the
        // accounting; the mean degrades gracefully instead.
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record `n` copies of `v` in O(1) (equivalent to `n` `record` calls).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (upper bound of the bucket containing the
    /// p-th sample). `p` in [0, 1].
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return Self::bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one. Saturating on every counter,
    /// matching `record`'s contract: merging shard-local histograms whose
    /// counts sit near `u64::MAX` must pin at the ceiling, not wrap.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty `(bucket_low, count)` pairs, for report printing.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_low(i), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn mean_min_max_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn percentile_bounds_the_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        // Log buckets: p50 within a factor of 2 of the true median.
        assert!((500..=1023).contains(&p50), "{p50}");
        assert!(p99 >= p50);
        assert!(p99 <= h.max());
    }

    #[test]
    fn bucket_of_zero_and_powers() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(1024);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn percentile_of_top_bucket_does_not_overflow() {
        // Regression: a sample in bucket 63 (>= 2^63, e.g. a leaked
        // sentinel) used to make `percentile` compute `1u64 << 64`, a
        // shift overflow that panics in debug builds.
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.percentile(0.5), u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
        h.record(1u64 << 63);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(Histogram::bucket_low(0), 0);
        assert_eq!(Histogram::bucket_high(0), 1);
        assert_eq!(Histogram::bucket_low(1), 2);
        assert_eq!(Histogram::bucket_high(1), 3);
        assert_eq!(Histogram::bucket_low(63), 1u64 << 63);
        assert_eq!(Histogram::bucket_high(63), u64::MAX);
        // Adjacent buckets tile the range with no gaps.
        for i in 0..Histogram::NUM_BUCKETS - 1 {
            assert_eq!(Histogram::bucket_high(i) + 1, Histogram::bucket_low(i + 1));
        }
    }

    #[test]
    fn nonzero_buckets_reports_zero_low_for_bucket_zero() {
        // Regression: bucket 0 covers {0, 1} but used to print low bound 1,
        // so zero-latency samples showed up as ">= 1" in report dumps.
        let mut h = Histogram::new();
        h.record(0);
        h.record(7);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (4, 1)]);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
        assert_eq!(a.nonzero_buckets().len(), 2);
    }
}
