//! One memory channel: the shared command/data buses, per-rank activation
//! windows (tRRD/tFAW), bus turnarounds, refresh bookkeeping, and the array
//! of per-μbank FSMs.
//!
//! All μbanks in a channel operate independently "like conventional banks"
//! (§IV-A) *except* that they share the channel's command bus (one command
//! per command slot) and data bus (one 64 B burst at a time), exactly the
//! sharing the paper describes for conventional multi-bank devices (§II).

use crate::address::Location;
use crate::bank::MicrobankState;
use crate::config::MemConfig;
use crate::stats::DramStats;
use crate::timing::Timings;
use crate::variant::VariantRules;
use crate::Cycle;
use microbank_telemetry::ChannelTelemetry;
use std::collections::VecDeque;

/// Sentinel for "no μbank owns the shared global bitlines".
const NO_GBL_OWNER: u32 = u32::MAX;

/// Row-buffer outcome of a request arriving for a μbank, as seen at
/// enqueue time (the standard open-page accounting the energy model and
/// Fig. 13 consume).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The μbank's open row matches the request's row.
    Hit,
    /// The μbank holds a different open row (PRE + ACT required).
    Conflict,
    /// The μbank is precharged (ACT required, no PRE).
    Closed,
}

/// Number of ACTs tracked by the tFAW sliding window.
const FAW_ACTS: usize = 4;

/// Per-rank shared state: activation-rate limits, write-to-read turnaround,
/// and the refresh schedule.
#[derive(Debug, Clone)]
struct RankState {
    /// Issue times of the most recent ACTs (for tFAW).
    act_window: VecDeque<Cycle>,
    /// Most recent ACT (for tRRD).
    last_act: Option<Cycle>,
    /// Cycle the last write's data finished (for tWTR).
    last_wr_data_end: Cycle,
    /// Next refresh deadline.
    refresh_due: Cycle,
    /// End of an in-flight refresh (banks blocked until then).
    refresh_until: Cycle,
    /// Precharge power-down state (CKE low).
    powered_down: bool,
    /// Cycle power-down was entered.
    pd_since: Cycle,
    /// Last command activity on this rank (power-down idle timer).
    last_activity: Cycle,
    /// Earliest command time after a power-down exit (tXP).
    wake_ready: Cycle,
}

impl RankState {
    fn new(t: &Timings) -> Self {
        RankState {
            act_window: VecDeque::with_capacity(FAW_ACTS),
            last_act: None,
            last_wr_data_end: 0,
            refresh_due: t.t_refi,
            refresh_until: 0,
            powered_down: false,
            pd_since: 0,
            last_activity: 0,
            wake_ready: 0,
        }
    }
}

/// Cycle-level model of one memory channel.
#[derive(Debug, Clone)]
pub struct Channel {
    t: Timings,
    ubanks_per_rank: usize,
    banks_per_rank: usize,
    n_w: usize,
    banks: Vec<MicrobankState>,
    ranks: Vec<RankState>,
    /// Earliest cycle the next command may occupy the command bus.
    next_cmd: Cycle,
    /// Earliest cycle the next data burst may start on the data bus.
    data_free: Cycle,
    /// Earliest cycle the next column command may issue (tCCD).
    next_col_cmd: Cycle,
    refresh_enabled: bool,
    /// Power-down idle threshold (None = disabled).
    powerdown_idle: Option<Cycle>,
    /// Structural issue rules of the configured device variant (DESIGN
    /// §5h). `VariantRules::NONE` for Conventional/Microbank, so the hot
    /// paths below pay one branch and no per-bank scans.
    rules: VariantRules,
    /// μbanks per physical bank (`nW × nB`), for sibling scans.
    ubanks_per_bank: usize,
    /// Per physical bank: flat index of the μbank whose column burst last
    /// drove the shared global bitlines ([`NO_GBL_OWNER`] = none yet).
    /// Only mutated when `rules.shared_global_bitlines`.
    gbl_owner: Vec<u32>,
    /// Per physical bank: cycle the in-flight burst releases the shared
    /// global bitlines. A *different* subarray's column command must wait
    /// for this; the owner may keep streaming (its row buffer is already
    /// connected).
    gbl_busy_until: Vec<Cycle>,
    pub stats: DramStats,
    /// Per-μbank heat counters; `None` (the default) costs one branch per
    /// hook site.
    pub telemetry: Option<Box<ChannelTelemetry>>,
}

impl Channel {
    pub fn new(cfg: &MemConfig) -> Self {
        let t = cfg.timings();
        let ubanks_per_bank = cfg.ubank.ubanks_per_bank();
        let ubanks_per_rank = cfg.banks_per_rank * ubanks_per_bank;
        let total = ubanks_per_rank * cfg.ranks_per_channel;
        let physical_banks = cfg.banks_per_rank * cfg.ranks_per_channel;
        Channel {
            t,
            ubanks_per_rank,
            banks_per_rank: cfg.banks_per_rank,
            n_w: cfg.ubank.n_w,
            banks: vec![MicrobankState::new(); total],
            ranks: (0..cfg.ranks_per_channel)
                .map(|_| RankState::new(&t))
                .collect(),
            next_cmd: 0,
            data_free: 0,
            next_col_cmd: 0,
            refresh_enabled: cfg.refresh_enabled,
            powerdown_idle: cfg.powerdown_idle,
            rules: cfg.variant.rules(),
            ubanks_per_bank,
            gbl_owner: vec![NO_GBL_OWNER; physical_banks],
            gbl_busy_until: vec![0; physical_banks],
            stats: DramStats::default(),
            telemetry: None,
        }
    }

    /// Attach per-μbank heat counters (shape derived from the channel's
    /// own μbank dimensions).
    pub fn enable_telemetry(&mut self) {
        let per_bank = self.ubanks_per_rank / self.banks_per_rank;
        let n_b = per_bank / self.n_w;
        self.telemetry = Some(Box::new(ChannelTelemetry::new(
            self.banks.len(),
            self.n_w,
            n_b,
        )));
    }

    /// The channel's timing set.
    pub fn timings(&self) -> &Timings {
        &self.t
    }

    /// Total μbanks in this channel.
    pub fn num_ubanks(&self) -> usize {
        self.banks.len()
    }

    /// Borrow a μbank's state by its flat index (see
    /// [`Location::ubank_flat`]).
    pub fn ubank(&self, flat: usize) -> &MicrobankState {
        &self.banks[flat]
    }

    fn rank_of(&self, flat: usize) -> usize {
        flat / self.ubanks_per_rank
    }

    /// Global physical-bank index of a μbank. μbanks of one physical bank
    /// are contiguous in `banks` (`flat = (rank·banksPerRank + bank)·
    /// ubanksPerBank + within`), so this is a single divide.
    fn bank_of(&self, flat: usize) -> usize {
        flat / self.ubanks_per_bank
    }

    /// The variant's structural issue rules (as stored at construction).
    pub fn variant_rules(&self) -> VariantRules {
        self.rules
    }

    /// Would the device variant's *structural* rules block an ACT opening
    /// `row` in μbank `flat` right now? Returns the flat index of the
    /// first (lowest-index) sibling μbank whose open row is in the way —
    /// the deterministic victim the controller must precharge first — or
    /// `None` when the ACT is structurally admissible (timing constraints
    /// are checked separately by [`Channel::can_activate_flat`]).
    ///
    /// Two rules exist (DESIGN §5h):
    /// * `single_row_decoder` (Sectored): sibling μbanks share one row
    ///   decoder, so a sibling holding a *different* row blocks; a sibling
    ///   holding the *same* row is the sector-append case and does not.
    /// * `max_open_per_bank` (SALP-1/SALP-2): at the open-row limit, the
    ///   first open sibling blocks until it is precharged.
    pub fn act_blocker(&self, flat: usize, row: u32) -> Option<usize> {
        if !self.rules.any() {
            return None;
        }
        let lo = self.bank_of(flat) * self.ubanks_per_bank;
        let mut open = 0usize;
        let mut first_open = None;
        for f in lo..lo + self.ubanks_per_bank {
            if f == flat {
                continue;
            }
            if let Some(r) = self.banks[f].open_row {
                if self.rules.single_row_decoder && r != row {
                    return Some(f);
                }
                open += 1;
                if first_open.is_none() {
                    first_open = Some(f);
                }
            }
        }
        if open >= self.rules.max_open_per_bank {
            return first_open;
        }
        None
    }

    fn in_refresh(&self, rank: usize, now: Cycle) -> bool {
        now < self.ranks[rank].refresh_until
    }

    /// Rank unavailable because it is powered down or still waking (tXP).
    fn rank_unavailable(&self, rank: usize, now: Cycle) -> bool {
        let rs = &self.ranks[rank];
        rs.powered_down || now < rs.wake_ready
    }

    /// Is `rank` currently in precharge power-down?
    pub fn is_powered_down(&self, rank: usize) -> bool {
        self.ranks[rank].powered_down
    }

    /// Cycles since the last command activity on `rank`.
    pub fn rank_idle_for(&self, rank: usize, now: Cycle) -> Cycle {
        now.saturating_sub(self.ranks[rank].last_activity)
    }

    /// Power-management hook, called once per controller tick per rank.
    /// `has_work` = queued requests target the rank (or refresh is due).
    /// Enters power-down after the configured idle period; wakes (paying
    /// tXP) as soon as work appears.
    pub fn update_powerdown(&mut self, rank: usize, now: Cycle, has_work: bool) {
        let Some(idle) = self.powerdown_idle else {
            return;
        };
        let all_idle = self.rank_all_idle(rank);
        let rs = &mut self.ranks[rank];
        if rs.powered_down {
            if has_work {
                rs.powered_down = false;
                rs.wake_ready = now + self.t.t_xp;
                rs.last_activity = now;
                self.stats.powerdown_rank_cycles += now - rs.pd_since;
            }
        } else if !has_work && all_idle && now >= rs.last_activity + idle {
            rs.powered_down = true;
            rs.pd_since = now;
            self.stats.powerdown_entries += 1;
        }
    }

    fn faw_ok(&self, rank: usize, now: Cycle) -> bool {
        let w = &self.ranks[rank].act_window;
        w.len() < FAW_ACTS || now >= w[0] + self.t.t_faw
    }

    fn rrd_ok(&self, rank: usize, now: Cycle) -> bool {
        match self.ranks[rank].last_act {
            Some(a) => now >= a + self.t.t_rrd,
            None => true,
        }
    }

    /// Can an ACT to `flat` μbank (in `rank`) issue at `now`?
    pub fn can_activate_flat(&self, flat: usize, now: Cycle) -> bool {
        let rank = self.rank_of(flat);
        now >= self.next_cmd
            && !self.in_refresh(rank, now)
            && !self.rank_unavailable(rank, now)
            && self.rrd_ok(rank, now)
            && self.faw_ok(rank, now)
            && self.banks[flat].can_activate(now)
    }

    /// Can an ACT opening `row` in `flat` issue at `now`, including the
    /// device variant's structural rules? This is the predicate the
    /// controller uses; [`Channel::can_activate_flat`] alone is exact only
    /// for variants without structural rules (Conventional/Microbank).
    pub fn can_activate_row_flat(&self, flat: usize, row: u32, now: Cycle) -> bool {
        self.act_blocker(flat, row).is_none() && self.can_activate_flat(flat, now)
    }

    /// Issue an ACT opening `row`.
    pub fn activate_flat(&mut self, flat: usize, row: u32, now: Cycle) {
        debug_assert!(self.can_activate_row_flat(flat, row, now));
        let rank = self.rank_of(flat);
        self.banks[flat].activate(row, now, &self.t);
        let rs = &mut self.ranks[rank];
        if rs.act_window.len() == FAW_ACTS {
            rs.act_window.pop_front();
        }
        rs.act_window.push_back(now);
        rs.last_act = Some(now);
        rs.last_activity = now;
        self.next_cmd = now + self.t.t_cmd;
        self.stats.activates += 1;
        if let Some(tel) = &mut self.telemetry {
            tel.heat.activates[flat] += 1;
        }
    }

    /// Classify (and count) the row-buffer outcome of a request arriving
    /// for `row` in μbank `flat`. Updates both the channel's aggregate
    /// stats and, when telemetry is attached, the per-μbank heat counters
    /// — one call site for both so they can never diverge.
    pub fn classify_arrival(&mut self, flat: usize, row: u32) -> RowOutcome {
        let outcome = match self.banks[flat].open_row {
            Some(r) if r == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Closed,
        };
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
            RowOutcome::Closed => self.stats.row_closed += 1,
        }
        if let Some(tel) = &mut self.telemetry {
            match outcome {
                RowOutcome::Hit => tel.heat.row_hits[flat] += 1,
                RowOutcome::Conflict => tel.heat.row_conflicts[flat] += 1,
                RowOutcome::Closed => tel.heat.row_closed[flat] += 1,
            }
        }
        outcome
    }

    /// Can a column command (RD if `!is_write`, else WR) to `row` issue?
    pub fn can_column_flat(&self, flat: usize, row: u32, is_write: bool, now: Cycle) -> bool {
        let rank = self.rank_of(flat);
        if now < self.next_cmd
            || now < self.next_col_cmd
            || self.in_refresh(rank, now)
            || self.rank_unavailable(rank, now)
            || !self.banks[flat].can_column(row, now)
        {
            return false;
        }
        let burst_start = now + if is_write { self.t.t_cwl } else { self.t.t_aa };
        if burst_start < self.data_free {
            return false;
        }
        // Write-to-read turnaround within the rank.
        if !is_write && now < self.ranks[rank].last_wr_data_end + self.t.t_wtr {
            return false;
        }
        // SALP: subarrays of a bank share the global bitlines; a column
        // command from a *different* subarray waits for the in-flight
        // burst to release them (the owner may keep streaming).
        if self.rules.shared_global_bitlines {
            let bank = self.bank_of(flat);
            if self.gbl_owner[bank] != flat as u32 && now < self.gbl_busy_until[bank] {
                return false;
            }
        }
        true
    }

    /// Record that `flat`'s column burst occupies its bank's shared global
    /// bitlines until `data_end`. No-op unless the variant shares them.
    fn take_gbl(&mut self, flat: usize, data_end: Cycle) {
        if self.rules.shared_global_bitlines {
            let bank = self.bank_of(flat);
            self.gbl_owner[bank] = flat as u32;
            self.gbl_busy_until[bank] = data_end;
        }
    }

    /// Issue a RD; returns the cycle the full 64 B line has transferred.
    pub fn read_flat(&mut self, flat: usize, now: Cycle) -> Cycle {
        let rank = self.rank_of(flat);
        self.ranks[rank].last_activity = now;
        let done = self.banks[flat].read(now, &self.t);
        self.data_free = now + self.t.t_aa + self.t.t_burst;
        self.take_gbl(flat, self.data_free);
        self.next_col_cmd = now + self.t.t_ccd;
        self.next_cmd = now + self.t.t_cmd;
        self.stats.reads += 1;
        self.stats.data_bus_busy += self.t.t_burst;
        done
    }

    /// Issue a WR; returns the cycle write data is fully latched.
    pub fn write_flat(&mut self, flat: usize, now: Cycle) -> Cycle {
        let rank = self.rank_of(flat);
        self.ranks[rank].last_activity = now;
        let done = self.banks[flat].write(now, &self.t);
        self.ranks[rank].last_wr_data_end = done;
        self.data_free = now + self.t.t_cwl + self.t.t_burst;
        self.take_gbl(flat, self.data_free);
        self.next_col_cmd = now + self.t.t_ccd;
        self.next_cmd = now + self.t.t_cmd;
        self.stats.writes += 1;
        self.stats.data_bus_busy += self.t.t_burst;
        done
    }

    /// Can a PRE to `flat` issue at `now`?
    pub fn can_precharge_flat(&self, flat: usize, now: Cycle) -> bool {
        let rank = self.rank_of(flat);
        now >= self.next_cmd
            && !self.in_refresh(rank, now)
            && !self.rank_unavailable(rank, now)
            && self.banks[flat].can_precharge(now)
    }

    /// Issue a PRE.
    pub fn precharge_flat(&mut self, flat: usize, now: Cycle) {
        debug_assert!(self.can_precharge_flat(flat, now));
        let rank = self.rank_of(flat);
        self.ranks[rank].last_activity = now;
        self.banks[flat].precharge(now, &self.t);
        self.next_cmd = now + self.t.t_cmd;
        self.stats.precharges += 1;
    }

    /// Oracle precharge for the *perfect* page-management predictor
    /// (Fig. 13 "P"): retroactively treat the bank as if a PRE had been
    /// issued at the earliest legal time after its last access. Succeeds
    /// (returns `true`) only when that hypothetical PRE would already have
    /// completed by `now`; the PRE is still counted (its energy was spent).
    pub fn oracle_precharge_flat(&mut self, flat: usize, now: Cycle) -> bool {
        let t_rp = self.t.t_rp;
        let b = &mut self.banks[flat];
        if b.open_row.is_some() {
            let ready = b.next_pre.saturating_add(t_rp);
            if now >= ready {
                b.open_row = None;
                b.next_act = ready;
                b.next_col = Cycle::MAX;
                self.stats.precharges += 1;
                return true;
            }
        }
        false
    }

    /// Can a precharge-all (PREA) issue to `rank` at `now`? Legal once the
    /// command bus is free and every open μbank has satisfied its
    /// precharge preconditions (tRAS/tRTP/tWR). PREA is how a controller
    /// drains a rank before refresh without spending one command slot per
    /// open row — essential with thousands of μbank row buffers.
    pub fn can_precharge_all(&self, rank: usize, now: Cycle) -> bool {
        if now < self.next_cmd {
            return false;
        }
        let lo = rank * self.ubanks_per_rank;
        self.banks[lo..lo + self.ubanks_per_rank]
            .iter()
            .all(|b| b.open_row.is_none() || now >= b.next_pre)
    }

    /// Issue a PREA: close every open row of `rank` with one command.
    /// Each closed row still pays precharge energy (counted in stats).
    pub fn precharge_all(&mut self, rank: usize, now: Cycle) {
        debug_assert!(self.can_precharge_all(rank, now));
        let t = self.t;
        let lo = rank * self.ubanks_per_rank;
        for b in &mut self.banks[lo..lo + self.ubanks_per_rank] {
            if b.open_row.is_some() {
                b.precharge(now, &t);
                self.stats.precharges += 1;
            }
        }
        self.next_cmd = now + self.t.t_cmd;
    }

    /// Is a refresh overdue for `rank` at `now`?
    pub fn refresh_due(&self, rank: usize, now: Cycle) -> bool {
        self.refresh_enabled && now >= self.ranks[rank].refresh_due
    }

    /// Cycle at which `rank`'s next refresh becomes due (`None` when
    /// refresh is disabled). Lets the controller report how long it is
    /// provably inert so the simulator can skip its idle ticks.
    pub fn next_refresh_at(&self, rank: usize) -> Option<Cycle> {
        self.refresh_enabled.then(|| self.ranks[rank].refresh_due)
    }

    /// All μbanks of `rank` precharged (required before REF)?
    pub fn rank_all_idle(&self, rank: usize) -> bool {
        let lo = rank * self.ubanks_per_rank;
        self.banks[lo..lo + self.ubanks_per_rank]
            .iter()
            .all(|b| b.is_idle())
    }

    /// Banks of `rank` that still hold an open row (must be precharged
    /// before refresh); returns flat indices.
    pub fn rank_open_banks(&self, rank: usize) -> Vec<usize> {
        let lo = rank * self.ubanks_per_rank;
        (lo..lo + self.ubanks_per_rank)
            .filter(|&f| !self.banks[f].is_idle())
            .collect()
    }

    /// Flat indices of every μbank (all ranks) currently holding an open
    /// row. Used at measurement boundaries: a row opened before the
    /// boundary and precharged after it must be attributed to one side
    /// consistently for ACT/PRE accounting to balance.
    pub fn open_ubanks(&self) -> Vec<usize> {
        (0..self.banks.len())
            .filter(|&f| self.banks[f].open_row.is_some())
            .collect()
    }

    /// Issue an all-bank refresh to `rank`. All banks must be idle.
    pub fn refresh(&mut self, rank: usize, now: Cycle) {
        debug_assert!(self.rank_all_idle(rank), "REF with open banks");
        let done = now + self.t.t_rfc;
        let lo = rank * self.ubanks_per_rank;
        for b in &mut self.banks[lo..lo + self.ubanks_per_rank] {
            b.refresh_until(done);
        }
        let rs = &mut self.ranks[rank];
        rs.last_activity = now;
        rs.refresh_until = done;
        rs.refresh_due += self.t.t_refi;
        self.next_cmd = now + self.t.t_cmd;
        self.stats.refreshes += 1;
    }

    /// Can a patrol-scrub command issue to μbank `flat` at `now`? A scrub
    /// is an internal read-correct-restore RAS cycle on an *idle* μbank:
    /// it needs the command bus, an awake non-refreshing rank, and a
    /// precharged bank ready to activate.
    pub fn can_scrub_flat(&self, flat: usize, now: Cycle) -> bool {
        let rank = self.rank_of(flat);
        now >= self.next_cmd
            && !self.in_refresh(rank, now)
            && !self.rank_unavailable(rank, now)
            && self.banks[flat].open_row.is_none()
            && self.banks[flat].can_activate(now)
    }

    /// Issue a scrub to `flat`: the μbank is occupied for tRC (the
    /// internal ACT + correct + restore + PRE sequence) and the command
    /// bus for one slot. Like REF — and unlike demand ACTs — the scrub's
    /// internal activation is not charged against tRRD/tFAW (documented
    /// modeling shortcut; scrub rates are orders of magnitude below the
    /// activation-window limits).
    pub fn scrub_flat(&mut self, flat: usize, now: Cycle) {
        debug_assert!(self.can_scrub_flat(flat, now));
        let rank = self.rank_of(flat);
        self.ranks[rank].last_activity = now;
        self.banks[flat].refresh_until(now + self.t.t_rc());
        self.next_cmd = now + self.t.t_cmd;
        self.stats.scrubs += 1;
    }

    /// Fraction of the refresh interval elapsed for `rank` at `now`, in
    /// [0, 1] — the retention-decay age the fault model scales its
    /// retention flip rate by. With refresh disabled cells are maximally
    /// stale (1.0).
    pub fn refresh_age_frac(&self, rank: usize, now: Cycle) -> f64 {
        if !self.refresh_enabled {
            return 1.0;
        }
        let remaining = self.ranks[rank]
            .refresh_due
            .saturating_sub(now)
            .min(self.t.t_refi);
        1.0 - remaining as f64 / self.t.t_refi as f64
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    // ---- Location-based convenience wrappers (compute the flat index). ----

    /// Flat index of a location's μbank, given the owning config.
    pub fn flat(&self, cfg: &MemConfig, loc: &Location) -> usize {
        loc.ubank_flat(cfg)
    }

    /// Open row of the μbank addressed by `loc` (by flat index).
    pub fn open_row_flat(&self, flat: usize) -> Option<u32> {
        self.banks[flat].open_row
    }

    // ---- Earliest-legal-cycle duals of the `can_*` predicates. ----
    //
    // Every `can_*` check is a conjunction of monotone thresholds on `now`
    // (`now >= timer`), so with the channel state frozen each predicate has
    // an exact first-true cycle: the max of its timers. The controller's
    // `next_event` folds these to prove how long it can sleep; the duals
    // below MUST stay in lockstep with their predicates (pinned by the
    // `earliest_*_duals_are_exact` tests).

    /// Earliest cycle `rank` can accept any command: end of an in-flight
    /// refresh and of a power-down exit (tXP). A rank that is powered down
    /// stays unavailable until an external wake event, so it reports
    /// "never" — callers bail out of skipping before that matters.
    fn rank_ready_at(&self, rank: usize) -> Cycle {
        let rs = &self.ranks[rank];
        if rs.powered_down {
            return Cycle::MAX;
        }
        rs.refresh_until.max(rs.wake_ready)
    }

    /// Earliest cycle [`Channel::can_activate_flat`] becomes true with the
    /// channel state frozen. `Cycle::MAX` while the μbank holds an open row
    /// (a PRE — itself a folded event — must land first).
    pub fn earliest_activate_flat(&self, flat: usize) -> Cycle {
        let b = &self.banks[flat];
        if b.open_row.is_some() {
            return Cycle::MAX;
        }
        let rank = self.rank_of(flat);
        let rs = &self.ranks[rank];
        let mut t = self.next_cmd.max(self.rank_ready_at(rank)).max(b.next_act);
        if let Some(a) = rs.last_act {
            t = t.max(a + self.t.t_rrd);
        }
        if rs.act_window.len() == FAW_ACTS {
            t = t.max(rs.act_window[0] + self.t.t_faw);
        }
        t
    }

    /// Earliest cycle a column command to `flat`'s currently open row
    /// becomes legal ([`Channel::can_column_flat`] dual). The caller must
    /// have checked that the open row matches the request; `Cycle::MAX`
    /// while the μbank is precharged.
    pub fn earliest_column_flat(&self, flat: usize, is_write: bool) -> Cycle {
        let b = &self.banks[flat];
        if b.open_row.is_none() {
            return Cycle::MAX;
        }
        let rank = self.rank_of(flat);
        let lat = if is_write { self.t.t_cwl } else { self.t.t_aa };
        let mut t = self
            .next_cmd
            .max(self.next_col_cmd)
            .max(self.rank_ready_at(rank))
            .max(b.next_col)
            // `burst_start = now + lat >= data_free` solved for `now`.
            .max(self.data_free.saturating_sub(lat));
        if !is_write {
            t = t.max(self.ranks[rank].last_wr_data_end + self.t.t_wtr);
        }
        // Shared-global-bitline release is a frozen timer, so the dual
        // stays exact: a non-owner subarray's first legal cycle includes
        // the in-flight burst's end.
        if self.rules.shared_global_bitlines {
            let bank = self.bank_of(flat);
            if self.gbl_owner[bank] != flat as u32 {
                t = t.max(self.gbl_busy_until[bank]);
            }
        }
        t
    }

    /// Earliest cycle [`Channel::can_activate_row_flat`] becomes true with
    /// the channel state frozen ([`Channel::earliest_activate_flat`] plus
    /// the variant's structural rules). A structural blocker is pure bank
    /// *state* — it only clears when some PRE lands, itself a folded
    /// event — so a blocked ACT reports `Cycle::MAX`, exactly like an ACT
    /// into a μbank that still holds an open row.
    pub fn earliest_activate_row_flat(&self, flat: usize, row: u32) -> Cycle {
        if self.act_blocker(flat, row).is_some() {
            return Cycle::MAX;
        }
        self.earliest_activate_flat(flat)
    }

    /// Earliest cycle [`Channel::can_precharge_flat`] becomes true;
    /// `Cycle::MAX` while the μbank is already precharged.
    pub fn earliest_precharge_flat(&self, flat: usize) -> Cycle {
        let b = &self.banks[flat];
        if b.open_row.is_none() {
            return Cycle::MAX;
        }
        let rank = self.rank_of(flat);
        self.next_cmd.max(self.rank_ready_at(rank)).max(b.next_pre)
    }

    /// Earliest cycle [`Channel::can_precharge_all`] becomes true for
    /// `rank` (command bus free and every open μbank past its tRAS/tRTP/tWR
    /// precharge preconditions — PREA deliberately checks neither refresh
    /// nor power-down state, and neither does this dual).
    pub fn earliest_precharge_all(&self, rank: usize) -> Cycle {
        let lo = rank * self.ubanks_per_rank;
        let mut t = self.next_cmd;
        for b in &self.banks[lo..lo + self.ubanks_per_rank] {
            if b.open_row.is_some() {
                t = t.max(b.next_pre);
            }
        }
        t
    }
}

// Location-based API used by doctests/examples; forwards to the flat API.
// These require the caller's `MemConfig` to map the location, so they are
// implemented as a small extension trait-free impl block taking `&MemConfig`
// implicitly via dimensions stored at construction time.
impl Channel {
    /// True if an ACT for `loc` may issue now. `loc.ubank_flat` uses the
    /// same dimension math as the channel, so the index is consistent for
    /// the config the channel was built from.
    pub fn can_activate(&self, loc: &Location, now: Cycle) -> bool {
        self.can_activate_flat(self.flat_from_loc(loc), now)
    }

    pub fn activate(&mut self, loc: &Location, now: Cycle) {
        self.activate_flat(self.flat_from_loc(loc), loc.row, now)
    }

    pub fn can_column(&self, loc: &Location, is_write: bool, now: Cycle) -> bool {
        self.can_column_flat(self.flat_from_loc(loc), loc.row, is_write, now)
    }

    pub fn read(&mut self, loc: &Location, now: Cycle) -> Cycle {
        self.read_flat(self.flat_from_loc(loc), now)
    }

    pub fn write(&mut self, loc: &Location, now: Cycle) -> Cycle {
        self.write_flat(self.flat_from_loc(loc), now)
    }

    pub fn can_precharge(&self, loc: &Location, now: Cycle) -> bool {
        self.can_precharge_flat(self.flat_from_loc(loc), now)
    }

    pub fn precharge(&mut self, loc: &Location, now: Cycle) {
        self.precharge_flat(self.flat_from_loc(loc), now)
    }

    /// Recompute a flat μbank index from the channel's own stored
    /// dimensions, matching [`Location::ubank_flat`] for the config the
    /// channel was built from.
    fn flat_from_loc(&self, loc: &Location) -> usize {
        let per_bank = self.ubanks_per_rank / self.banks_per_rank;
        let within = loc.b as usize * self.n_w + loc.w as usize;
        (loc.rank as usize * self.banks_per_rank + loc.bank as usize) * per_bank + within
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfig;

    fn setup(nw: usize, nb: usize) -> (MemConfig, Channel) {
        let cfg = MemConfig::lpddr_tsi()
            .with_ubanks(nw, nb)
            .with_refresh(false);
        let ch = Channel::new(&cfg);
        (cfg, ch)
    }

    fn loc(bank: u8, w: u8, b: u8, row: u32) -> Location {
        Location {
            channel: 0,
            rank: 0,
            bank,
            w,
            b,
            row,
            col: 0,
        }
    }

    #[test]
    fn channel_sizes_track_config() {
        let (_, ch) = setup(4, 4);
        assert_eq!(ch.num_ubanks(), 8 * 16);
        assert_eq!(ch.num_ranks(), 1);
    }

    #[test]
    fn command_bus_serializes_commands() {
        let (cfg, mut ch) = setup(2, 2);
        let a = loc(0, 0, 0, 1);
        let b = loc(1, 0, 0, 1);
        let fa = a.ubank_flat(&cfg);
        let fb = b.ubank_flat(&cfg);
        assert!(ch.can_activate_flat(fa, 0));
        ch.activate_flat(fa, 1, 0);
        // Same cycle: bus busy.
        assert!(!ch.can_activate_flat(fb, 0));
        let t_cmd = ch.timings().t_cmd;
        let t_rrd = ch.timings().t_rrd;
        // tRRD also applies (same rank), which dominates tCMD.
        assert!(!ch.can_activate_flat(fb, t_cmd.min(t_rrd) - 1));
        assert!(ch.can_activate_flat(fb, t_rrd.max(t_cmd)));
    }

    #[test]
    fn tfaw_limits_burst_of_activates() {
        let (cfg, mut ch) = setup(4, 4);
        let t = *ch.timings();
        let mut now = 0;
        // Fire 4 ACTs as fast as tRRD allows.
        for i in 0..4u8 {
            let l = loc(i, 0, 0, 0);
            let f = l.ubank_flat(&cfg);
            while !ch.can_activate_flat(f, now) {
                now += 1;
            }
            ch.activate_flat(f, 0, now);
        }
        // Fifth ACT must wait for the tFAW window.
        let l5 = loc(4, 0, 0, 0);
        let f5 = l5.ubank_flat(&cfg);
        let mut t5 = now;
        while !ch.can_activate_flat(f5, t5) {
            t5 += 1;
        }
        assert!(t5 >= t.t_faw, "fifth ACT at {t5} < tFAW {}", t.t_faw);
    }

    #[test]
    fn data_bus_serializes_bursts() {
        let (cfg, mut ch) = setup(1, 1);
        let t = *ch.timings();
        let a = loc(0, 0, 0, 0);
        let b = loc(1, 0, 0, 0);
        let (fa, fb) = (a.ubank_flat(&cfg), b.ubank_flat(&cfg));
        ch.activate_flat(fa, 0, 0);
        let mut now = t.t_rrd;
        while !ch.can_activate_flat(fb, now) {
            now += 1;
        }
        ch.activate_flat(fb, 0, now);
        // Read both once ready; second read must wait tCCD for the bus.
        let mut r1 = 0;
        while !ch.can_column_flat(fa, 0, false, r1) {
            r1 += 1;
        }
        let d1 = ch.read_flat(fa, r1);
        let mut r2 = r1;
        while !ch.can_column_flat(fb, 0, false, r2) {
            r2 += 1;
        }
        let d2 = ch.read_flat(fb, r2);
        assert!(r2 >= r1 + t.t_ccd);
        assert!(d2 >= d1 + t.t_burst, "bursts overlap: {d1} {d2}");
    }

    #[test]
    fn write_to_read_turnaround() {
        let (cfg, mut ch) = setup(1, 1);
        let t = *ch.timings();
        let a = loc(0, 0, 0, 0);
        let fa = a.ubank_flat(&cfg);
        ch.activate_flat(fa, 0, 0);
        let w_at = t.t_rcd;
        let w_done = ch.write_flat(fa, w_at);
        let mut r_at = w_at + t.t_ccd;
        while !ch.can_column_flat(fa, 0, false, r_at) {
            r_at += 1;
        }
        assert!(
            r_at >= w_done + t.t_wtr,
            "RD at {r_at} before tWTR after {w_done}"
        );
    }

    #[test]
    fn refresh_blocks_rank_then_releases() {
        let cfg = MemConfig::lpddr_tsi().with_ubanks(1, 1); // refresh on
        let mut ch = Channel::new(&cfg);
        let t = *ch.timings();
        let a = loc(0, 0, 0, 0);
        let fa = a.ubank_flat(&cfg);
        assert!(!ch.refresh_due(0, 0));
        assert!(ch.refresh_due(0, t.t_refi));
        assert!(ch.rank_all_idle(0));
        ch.refresh(0, t.t_refi);
        assert!(!ch.can_activate_flat(fa, t.t_refi + t.t_rfc - 1));
        assert!(ch.can_activate_flat(fa, t.t_refi + t.t_rfc));
        // Next deadline moved one interval out.
        assert!(!ch.refresh_due(0, t.t_refi + t.t_rfc));
        assert!(ch.refresh_due(0, 2 * t.t_refi));
    }

    #[test]
    fn powerdown_enters_after_idle_and_wakes_with_txp() {
        let cfg = MemConfig::lpddr_tsi()
            .with_ubanks(1, 1)
            .with_refresh(false)
            .with_powerdown(1000);
        let mut ch = Channel::new(&cfg);
        let t = *ch.timings();
        let l = loc(0, 0, 0, 3);
        let f = l.ubank_flat(&cfg);
        // Activity at t=0, then idle.
        ch.activate_flat(f, 3, 0);
        let mut pre_at = t.t_ras;
        while !ch.can_precharge_flat(f, pre_at) {
            pre_at += 1;
        }
        ch.precharge_flat(f, pre_at);
        // Not yet powered down before the idle threshold.
        ch.update_powerdown(0, pre_at + 500, false);
        assert!(!ch.is_powered_down(0));
        // After the threshold: enters power-down.
        ch.update_powerdown(0, pre_at + 1001, false);
        assert!(ch.is_powered_down(0));
        assert_eq!(ch.stats.powerdown_entries, 1);
        // Commands are rejected while powered down.
        assert!(!ch.can_activate_flat(f, pre_at + 1500));
        // Work arrives: wake; tXP gates the first command.
        let wake_at = pre_at + 2000;
        ch.update_powerdown(0, wake_at, true);
        assert!(!ch.is_powered_down(0));
        assert!(!ch.can_activate_flat(f, wake_at + t.t_xp - 1));
        assert!(ch.can_activate_flat(f, wake_at + t.t_xp));
        // Power-down residency was accounted.
        assert_eq!(ch.stats.powerdown_rank_cycles, wake_at - (pre_at + 1001));
    }

    #[test]
    fn powerdown_disabled_by_default() {
        let cfg = MemConfig::lpddr_tsi().with_ubanks(1, 1).with_refresh(false);
        let mut ch = Channel::new(&cfg);
        ch.update_powerdown(0, 1_000_000, false);
        assert!(!ch.is_powered_down(0));
        assert_eq!(ch.stats.powerdown_entries, 0);
    }

    #[test]
    fn powerdown_requires_all_banks_idle() {
        let cfg = MemConfig::lpddr_tsi()
            .with_ubanks(1, 1)
            .with_refresh(false)
            .with_powerdown(100);
        let mut ch = Channel::new(&cfg);
        let l = loc(2, 0, 0, 9);
        let f = l.ubank_flat(&cfg);
        ch.activate_flat(f, 9, 0);
        // Bank open (row active): rank must not power down even when the
        // controller reports no queued work.
        ch.update_powerdown(0, 10_000, false);
        assert!(!ch.is_powered_down(0));
    }

    #[test]
    fn microbanks_of_same_bank_hold_independent_rows() {
        let (cfg, mut ch) = setup(4, 4);
        let t = *ch.timings();
        let mut now = 0;
        // Open a different row in every μbank of bank 0.
        let mut flats = Vec::new();
        for w in 0..4u8 {
            for b in 0..4u8 {
                let l = loc(0, w, b, (w as u32) * 16 + b as u32);
                let f = l.ubank_flat(&cfg);
                while !ch.can_activate_flat(f, now) {
                    now += 1;
                }
                ch.activate_flat(f, l.row, now);
                flats.push((f, l.row));
            }
        }
        // tFAW throttles the opening burst but all 16 rows end up open.
        for (f, row) in flats {
            assert_eq!(ch.open_row_flat(f), Some(row));
        }
        assert!(now >= 3 * t.t_faw, "16 ACTs cross at least 3 tFAW windows");
        assert_eq!(ch.stats.activates, 16);
    }

    /// With the channel state frozen, each `earliest_*` dual must be the
    /// exact first-true cycle of its `can_*` predicate: false strictly
    /// before it, true at it (checked over a window that spans tRC, tFAW,
    /// and the data-bus/turnaround constraints).
    fn assert_dual_exact(
        tag: &str,
        earliest: Cycle,
        horizon: Cycle,
        mut can: impl FnMut(Cycle) -> bool,
    ) {
        for now in 0..horizon {
            assert_eq!(
                can(now),
                now >= earliest,
                "{tag}: can(now={now}) disagrees with earliest={earliest}"
            );
        }
    }

    #[test]
    fn earliest_duals_are_exact_across_command_mix() {
        let (cfg, mut ch) = setup(2, 2);
        let t = *ch.timings();
        let horizon = 4 * (t.t_rc() + t.t_faw + t.t_refi.min(10_000));
        let la = loc(0, 0, 0, 7);
        let lb = loc(1, 1, 1, 3);
        let fa = la.ubank_flat(&cfg);
        let fb = lb.ubank_flat(&cfg);
        // Drive a little history so every timer (tRRD window, data bus,
        // write-to-read turnaround, tRAS) is armed, checking the dual
        // against the predicate at each step.
        let mut now = 0;
        ch.activate_flat(fa, la.row, now);
        assert_dual_exact(
            "act b after act a",
            ch.earliest_activate_flat(fb),
            horizon,
            |c| ch.can_activate_flat(fb, c),
        );
        now = ch.earliest_activate_flat(fb);
        ch.activate_flat(fb, lb.row, now);
        assert_dual_exact(
            "wr a after two acts",
            ch.earliest_column_flat(fa, true),
            horizon,
            |c| ch.can_column_flat(fa, la.row, true, c),
        );
        now = ch.earliest_column_flat(fa, true);
        ch.write_flat(fa, now);
        // Read on the sibling bank now faces tCCD + data bus + tWTR.
        assert_dual_exact(
            "rd b after wr a",
            ch.earliest_column_flat(fb, false),
            horizon,
            |c| ch.can_column_flat(fb, lb.row, false, c),
        );
        now = ch.earliest_column_flat(fb, false);
        ch.read_flat(fb, now);
        // Precharge duals: tRAS on a, read-to-precharge on b.
        assert_dual_exact("pre a", ch.earliest_precharge_flat(fa), horizon, |c| {
            ch.can_precharge_flat(fa, c)
        });
        assert_dual_exact("prea rank 0", ch.earliest_precharge_all(0), horizon, |c| {
            ch.can_precharge_all(0, c)
        });
        now = ch.earliest_precharge_all(0);
        ch.precharge_all(0, now);
        // Closed banks: column dual reports "never", activate is finite.
        assert_eq!(ch.earliest_column_flat(fa, false), Cycle::MAX);
        assert_eq!(ch.earliest_precharge_flat(fa), Cycle::MAX);
        assert_dual_exact(
            "re-act a after prea",
            ch.earliest_activate_flat(fa),
            horizon,
            |c| ch.can_activate_flat(fa, c),
        );
    }

    #[test]
    fn earliest_activate_saturates_tfaw_window() {
        let (cfg, mut ch) = setup(4, 4);
        let mut now = 0;
        // Fill the 4-deep ACT window, then the dual must report the tFAW
        // edge for a fifth activate.
        for i in 0..4u8 {
            let l = loc(0, i % 4, i / 4, i as u32);
            let f = l.ubank_flat(&cfg);
            now = ch.earliest_activate_flat(f).max(now);
            ch.activate_flat(f, l.row, now);
        }
        let l5 = loc(1, 0, 0, 42);
        let f5 = l5.ubank_flat(&cfg);
        let horizon = now + 2 * ch.timings().t_faw;
        assert_dual_exact(
            "5th act across tFAW",
            ch.earliest_activate_flat(f5),
            horizon,
            |c| ch.can_activate_flat(f5, c),
        );
    }

    fn setup_variant(v: crate::variant::DeviceVariant) -> (MemConfig, Channel) {
        let cfg = MemConfig::lpddr_tsi().with_variant(v).with_refresh(false);
        cfg.validate().expect("variant config valid");
        (cfg.clone(), Channel::new(&cfg))
    }

    #[test]
    fn default_variants_have_no_structural_blockers() {
        let (cfg, mut ch) = setup(4, 4);
        assert!(!ch.variant_rules().any());
        let mut now = 0;
        for b in 0..4u8 {
            let l = loc(0, 0, b, b as u32);
            let f = l.ubank_flat(&cfg);
            now = ch.earliest_activate_flat(f).max(now);
            ch.activate_flat(f, l.row, now);
        }
        // Plenty of open siblings, arbitrary rows: never a blocker, and
        // the row-aware predicate degenerates to the row-agnostic one.
        let l = loc(0, 1, 0, 99);
        let f = l.ubank_flat(&cfg);
        assert_eq!(ch.act_blocker(f, 99), None);
        assert_eq!(
            ch.earliest_activate_row_flat(f, 99),
            ch.earliest_activate_flat(f)
        );
    }

    #[test]
    fn salp_shared_bitlines_delay_sibling_columns() {
        use crate::variant::{DeviceVariant, SalpMode};
        let (cfg, mut ch) = setup_variant(DeviceVariant::Salp {
            subarrays: 2,
            mode: SalpMode::Masa,
        });
        let t = *ch.timings();
        let l0 = loc(0, 0, 0, 7);
        let l1 = loc(0, 0, 1, 3);
        let (f0, f1) = (l0.ubank_flat(&cfg), l1.ubank_flat(&cfg));
        // MASA: both subarrays of bank 0 may hold open rows.
        let mut now = 0;
        ch.activate_flat(f0, l0.row, now);
        now = ch.earliest_activate_row_flat(f1, l1.row);
        assert_ne!(now, Cycle::MAX, "MASA allows a second open subarray");
        ch.activate_flat(f1, l1.row, now);
        // Subarray 0 streams a read; its burst owns the global bitlines.
        let r0 = ch.earliest_column_flat(f0, false);
        let d0 = ch.read_flat(f0, r0);
        assert_eq!(d0, r0 + t.t_aa + t.t_burst);
        // The owner's next column sees only tCCD/data-bus limits; the
        // sibling subarray additionally waits for the burst to release
        // the shared bitlines (strictly later).
        let own_next = ch.earliest_column_flat(f0, false);
        let sib_next = ch.earliest_column_flat(f1, false);
        assert!(sib_next >= d0, "sibling column before bitline release");
        assert!(own_next < sib_next, "owner should stream back-to-back");
        let horizon = d0 + 4 * t.t_rc();
        assert_dual_exact("salp sibling col", sib_next, horizon, |c| {
            ch.can_column_flat(f1, l1.row, false, c)
        });
    }

    #[test]
    fn salp1_open_row_limit_names_a_victim() {
        use crate::variant::{DeviceVariant, SalpMode};
        let (cfg, mut ch) = setup_variant(DeviceVariant::Salp {
            subarrays: 2,
            mode: SalpMode::Salp1,
        });
        let t = *ch.timings();
        let l0 = loc(0, 0, 0, 7);
        let l1 = loc(0, 0, 1, 3);
        let (f0, f1) = (l0.ubank_flat(&cfg), l1.ubank_flat(&cfg));
        ch.activate_flat(f0, l0.row, 0);
        // One row open: the sibling subarray is structurally blocked, and
        // the blocker names the open μbank as the victim to precharge.
        assert_eq!(ch.act_blocker(f1, l1.row), Some(f0));
        assert!(!ch.can_activate_row_flat(f1, l1.row, 10 * t.t_rc()));
        assert_eq!(ch.earliest_activate_row_flat(f1, l1.row), Cycle::MAX);
        // A different bank is unaffected (per-bank rule).
        let lb = loc(1, 0, 0, 5);
        let fb = lb.ubank_flat(&cfg);
        assert_eq!(ch.act_blocker(fb, lb.row), None);
        // Precharge the victim: the block clears and the dual is exact.
        let pre = ch.earliest_precharge_flat(f0);
        ch.precharge_flat(f0, pre);
        assert_eq!(ch.act_blocker(f1, l1.row), None);
        let horizon = pre + 4 * t.t_rc();
        assert_dual_exact(
            "salp1 act after victim pre",
            ch.earliest_activate_row_flat(f1, l1.row),
            horizon,
            |c| ch.can_activate_row_flat(f1, l1.row, c),
        );
    }

    #[test]
    fn sectored_decoder_blocks_other_rows_but_appends_same_row() {
        use crate::variant::DeviceVariant;
        let (cfg, mut ch) = setup_variant(DeviceVariant::Sectored {
            sectors: 16,
            sectors_per_act: 8,
        });
        let t = *ch.timings();
        // (nW, nB) = (2, 1): two wordline-group μbanks per bank.
        let l0 = loc(0, 0, 0, 5);
        let (f0, f1) = (l0.ubank_flat(&cfg), loc(0, 1, 0, 5).ubank_flat(&cfg));
        ch.activate_flat(f0, 5, 0);
        // Different row: the single row decoder is held at row 5.
        assert_eq!(ch.act_blocker(f1, 6), Some(f0));
        assert_eq!(ch.earliest_activate_row_flat(f1, 6), Cycle::MAX);
        // Same row: sector-append ACT, no PRE required.
        assert_eq!(ch.act_blocker(f1, 5), None);
        let horizon = 4 * (t.t_rc() + t.t_faw);
        assert_dual_exact(
            "sector append act",
            ch.earliest_activate_row_flat(f1, 5),
            horizon,
            |c| ch.can_activate_row_flat(f1, 5, c),
        );
        let at = ch.earliest_activate_row_flat(f1, 5);
        ch.activate_flat(f1, 5, at);
        // Both sectors now serve row 5 independently (no shared-bitline
        // rule for Sectored — each group has its own sense amps).
        assert_eq!(ch.open_row_flat(f0), Some(5));
        assert_eq!(ch.open_row_flat(f1), Some(5));
        let c1 = ch.earliest_column_flat(f1, false);
        ch.read_flat(f1, c1);
        let c0 = ch.earliest_column_flat(f0, false);
        assert_ne!(c0, Cycle::MAX);
    }

    #[test]
    fn earliest_duals_report_refresh_blackout() {
        let cfg = MemConfig::lpddr_tsi().with_ubanks(2, 2);
        let mut ch = Channel::new(&cfg);
        let due = ch.next_refresh_at(0).expect("refresh on");
        ch.refresh(0, due);
        let l = loc(0, 0, 0, 1);
        let f = l.ubank_flat(&cfg);
        // The rank is dark until tRFC elapses; the dual must not report a
        // cycle inside the blackout.
        assert_dual_exact(
            "act during refresh",
            ch.earliest_activate_flat(f),
            due + 2 * ch.timings().t_rfc,
            |c| ch.can_activate_flat(f, c),
        );
    }
}
