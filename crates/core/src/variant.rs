//! Device-variant seam: the fine-grained-DRAM designs this lab compares.
//!
//! The μbank FSMs ([`crate::bank`]), the per-row channel state
//! ([`crate::channel`]), and the Fig. 6a-calibrated energy model already
//! contain all the geometry machinery the competing designs need. A
//! [`DeviceVariant`] names one design point and owns the three things that
//! differ between them:
//!
//! * **activation granularity** — how much of an 8 KB row one ACT opens,
//!   expressed as the effective [`UbankConfig`] the variant imposes
//!   ([`DeviceVariant::effective_ubank`]);
//! * **structural timing constraints** — which sibling-partition states
//!   block an ACT or a column command inside one physical bank
//!   ([`VariantRules`], enforced by [`crate::channel::Channel`] with exact
//!   `earliest_*` duals so the event-driven time-skip core stays sound);
//! * **per-activation energy** — dispatched per variant by
//!   `microbank_energy::EnergyModel`.
//!
//! The four variants:
//!
//! * [`DeviceVariant::Conventional`] — monolithic banks, one row buffer per
//!   bank. Identical to the μbank model at `(nW, nB) = (1, 1)`.
//! * [`DeviceVariant::Microbank`] — the paper's proposal; the model this
//!   repo always had, refactored behind the seam. Uses whatever
//!   `MemConfig::ubank` says; partitions are fully independent.
//! * [`DeviceVariant::Salp`] — subarray-level parallelism (Kim et al.,
//!   ISCA'12): `S` subarrays per bank, each with its own row state, but
//!   sharing the bank's global bitlines. The [`SalpMode`] ladder models the
//!   paper's three issue rules: SALP-1 overlaps one subarray's precharge
//!   with another's activation (at most one open row per bank, but the
//!   opener never waits the closer's tRP), SALP-2 additionally overlaps
//!   activation with write recovery (two open rows), and MASA keeps every
//!   subarray's row buffer live. In all modes a column burst must own the
//!   bank's shared global structure: a command to a subarray other than the
//!   last driver waits until the in-flight burst completes.
//! * [`DeviceVariant::Sectored`] — fine-grained activation ("Sectored
//!   DRAM"): a row is split into `sectors` sectors and one ACT raises only
//!   `sectors_per_act` of them (the SNIPPETS variable-bank-activation
//!   shape, where a configuration selects how many banks light up). Sector
//!   groups of the *same* row can be opened incrementally without a
//!   precharge, but the bank has a single row decoder: a group of a
//!   *different* row cannot open until every group of the old row has
//!   precharged.

use crate::geometry::UbankConfig;
use crate::validate::Checker;
use serde::{Deserialize, Serialize};

/// SALP issue rule (Kim et al., ISCA'12, §4): how aggressively subarrays
/// of one bank may overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SalpMode {
    /// Overlap precharge with a *different* subarray's activation; at most
    /// one subarray holds an open row at a time.
    Salp1,
    /// Additionally overlap activation with write recovery: up to two
    /// subarrays may hold open rows.
    Salp2,
    /// Multitude of Activated Subarrays: every subarray keeps its row
    /// buffer live (the full `nB`-style parallelism), serialized only by
    /// the shared global bitlines.
    Masa,
}

impl SalpMode {
    pub fn label(&self) -> &'static str {
        match self {
            SalpMode::Salp1 => "salp1",
            SalpMode::Salp2 => "salp2",
            SalpMode::Masa => "masa",
        }
    }

    /// Maximum simultaneously open rows per bank under this issue rule
    /// (`usize::MAX` = bounded only by the subarray count).
    pub fn max_open_per_bank(&self) -> usize {
        match self {
            SalpMode::Salp1 => 1,
            SalpMode::Salp2 => 2,
            SalpMode::Masa => usize::MAX,
        }
    }
}

/// One fine-grained-DRAM design point (see the module docs).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceVariant {
    /// Monolithic banks: the evaluation baseline. Forces `(1, 1)`.
    Conventional,
    /// The paper's μbank partitioning — the repo's native model. Uses
    /// `MemConfig::ubank` as-is; partitions are fully independent.
    #[default]
    Microbank,
    /// Subarray-level parallelism: `subarrays` row buffers per bank along
    /// the bitline direction, sharing the bank's global bitlines.
    Salp { subarrays: usize, mode: SalpMode },
    /// Fine-grained activation: rows split into `sectors` sectors, one ACT
    /// raising `sectors_per_act` adjacent sectors (one row buffer's worth
    /// of independent wordline groups, single row decoder per bank).
    Sectored {
        sectors: usize,
        sectors_per_act: usize,
    },
}

impl DeviceVariant {
    /// Human label used in sweep artifacts and bench tables.
    pub fn label(&self) -> String {
        match self {
            DeviceVariant::Conventional => "conventional".into(),
            DeviceVariant::Microbank => "microbank".into(),
            DeviceVariant::Salp { subarrays, mode } => {
                format!("{}-{subarrays}", mode.label())
            }
            DeviceVariant::Sectored {
                sectors,
                sectors_per_act,
            } => format!("sectored-{sectors_per_act}of{sectors}"),
        }
    }

    /// The μbank configuration this variant's geometry maps onto. The
    /// address mapper, telemetry shapes, and capacity math all key off the
    /// effective `UbankConfig`; only the structural [`VariantRules`] differ.
    ///
    /// * `Conventional` → `(1, 1)`;
    /// * `Microbank` → the caller's configured partitioning, unchanged;
    /// * `Salp` → `(1, S)`: full-row activations, `S` row buffers;
    /// * `Sectored` → `(sectors / sectors_per_act, 1)`: each addressable
    ///   wordline group is one activation unit.
    pub fn effective_ubank(&self, configured: UbankConfig) -> UbankConfig {
        match *self {
            DeviceVariant::Conventional => UbankConfig::BASELINE,
            DeviceVariant::Microbank => configured,
            DeviceVariant::Salp { subarrays, .. } => UbankConfig::new(1, subarrays),
            DeviceVariant::Sectored {
                sectors,
                sectors_per_act,
            } => UbankConfig::new(sectors / sectors_per_act, 1),
        }
    }

    /// Structural issue rules the channel enforces for this variant.
    pub fn rules(&self) -> VariantRules {
        match *self {
            DeviceVariant::Conventional | DeviceVariant::Microbank => VariantRules::NONE,
            DeviceVariant::Salp { mode, .. } => VariantRules {
                max_open_per_bank: mode.max_open_per_bank(),
                shared_global_bitlines: true,
                single_row_decoder: false,
            },
            DeviceVariant::Sectored { .. } => VariantRules {
                max_open_per_bank: usize::MAX,
                shared_global_bitlines: false,
                single_row_decoder: true,
            },
        }
    }

    /// Validate the variant's own parameters and their consistency with
    /// the configured μbank partitioning (called from `MemConfig::validate`
    /// so field-by-field assembled configs get structured diagnostics).
    pub fn validate_into(&self, c: &mut Checker, ubank: UbankConfig) {
        match *self {
            DeviceVariant::Conventional => {
                c.check(ubank == UbankConfig::BASELINE, || {
                    format!(
                        "variant Conventional requires ubank (1,1), got ({},{}) — use \
                         MemConfig::with_variant to keep them consistent",
                        ubank.n_w, ubank.n_b
                    )
                });
            }
            DeviceVariant::Microbank => {}
            DeviceVariant::Salp { subarrays, mode: _ } => {
                let ok = c.check(
                    subarrays.is_power_of_two() && (2..=16).contains(&subarrays),
                    || format!("variant Salp: subarrays = {subarrays}: must be a power of two in 2..=16"),
                );
                if ok {
                    c.check(ubank == UbankConfig::new(1, subarrays), || {
                        format!(
                            "variant Salp-{subarrays} requires ubank (1,{subarrays}), got ({},{})",
                            ubank.n_w, ubank.n_b
                        )
                    });
                }
            }
            DeviceVariant::Sectored {
                sectors,
                sectors_per_act,
            } => {
                let ok = c.check(
                    sectors.is_power_of_two()
                        && sectors_per_act.is_power_of_two()
                        && sectors_per_act <= sectors
                        && (2..=16).contains(&(sectors / sectors_per_act.max(1)).max(1)),
                    || {
                        format!(
                            "variant Sectored: sectors = {sectors}, sectors_per_act = \
                             {sectors_per_act}: both must be powers of two with \
                             sectors / sectors_per_act a power of two in 2..=16"
                        )
                    },
                );
                if ok {
                    c.check(
                        ubank == UbankConfig::new(sectors / sectors_per_act, 1),
                        || {
                            format!(
                                "variant Sectored({sectors},{sectors_per_act}) requires ubank \
                                 ({},1), got ({},{})",
                                sectors / sectors_per_act,
                                ubank.n_w,
                                ubank.n_b
                            )
                        },
                    );
                }
            }
        }
    }

    /// The comparison set `bench_variants` sweeps: the baseline, the SALP
    /// issue-rule ladder, sectored activation at two granularities, and the
    /// paper's representative μbank points.
    pub fn comparison_set() -> Vec<DeviceVariant> {
        vec![
            DeviceVariant::Conventional,
            DeviceVariant::Salp {
                subarrays: 8,
                mode: SalpMode::Salp1,
            },
            DeviceVariant::Salp {
                subarrays: 8,
                mode: SalpMode::Salp2,
            },
            DeviceVariant::Salp {
                subarrays: 8,
                mode: SalpMode::Masa,
            },
            DeviceVariant::Sectored {
                sectors: 16,
                sectors_per_act: 2,
            },
            DeviceVariant::Sectored {
                sectors: 16,
                sectors_per_act: 4,
            },
            DeviceVariant::Microbank, // geometry supplied by the sweep
        ]
    }
}

/// Structural issue rules a [`DeviceVariant`] imposes inside one physical
/// bank, precomputed at [`crate::channel::Channel`] construction. The
/// default-variant values (`NONE`) keep every hot-path hook to one branch
/// and the golden path bit-identical to the pre-seam model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariantRules {
    /// Maximum simultaneously open rows per physical bank (`usize::MAX`
    /// = unlimited, the μbank/conventional case).
    pub max_open_per_bank: usize,
    /// Subarrays share the bank's global bitlines: a column command to a
    /// subarray other than the current driver waits for the in-flight
    /// burst to finish (SALP).
    pub shared_global_bitlines: bool,
    /// One row decoder per bank: partitions may only hold (sectors of)
    /// one row at a time; a different row requires closing them all
    /// (Sectored).
    pub single_row_decoder: bool,
}

impl VariantRules {
    /// No structural constraints beyond the μbank FSMs themselves.
    pub const NONE: VariantRules = VariantRules {
        max_open_per_bank: usize::MAX,
        shared_global_bitlines: false,
        single_row_decoder: false,
    };

    /// Any constraint armed? (One branch guards every hot-path hook.)
    pub fn any(&self) -> bool {
        *self != VariantRules::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_ubank_mapping() {
        let cfgd = UbankConfig::new(4, 4);
        assert_eq!(
            DeviceVariant::Conventional.effective_ubank(cfgd),
            UbankConfig::BASELINE
        );
        assert_eq!(DeviceVariant::Microbank.effective_ubank(cfgd), cfgd);
        assert_eq!(
            DeviceVariant::Salp {
                subarrays: 8,
                mode: SalpMode::Masa
            }
            .effective_ubank(cfgd),
            UbankConfig::new(1, 8)
        );
        assert_eq!(
            DeviceVariant::Sectored {
                sectors: 16,
                sectors_per_act: 2
            }
            .effective_ubank(cfgd),
            UbankConfig::new(8, 1)
        );
    }

    #[test]
    fn default_variant_has_no_rules() {
        assert_eq!(DeviceVariant::default(), DeviceVariant::Microbank);
        assert!(!DeviceVariant::Microbank.rules().any());
        assert!(!DeviceVariant::Conventional.rules().any());
    }

    #[test]
    fn salp_ladder_bounds_open_rows() {
        let rules = |m| {
            DeviceVariant::Salp {
                subarrays: 8,
                mode: m,
            }
            .rules()
        };
        assert_eq!(rules(SalpMode::Salp1).max_open_per_bank, 1);
        assert_eq!(rules(SalpMode::Salp2).max_open_per_bank, 2);
        assert_eq!(rules(SalpMode::Masa).max_open_per_bank, usize::MAX);
        for m in [SalpMode::Salp1, SalpMode::Salp2, SalpMode::Masa] {
            assert!(rules(m).shared_global_bitlines);
            assert!(!rules(m).single_row_decoder);
        }
    }

    #[test]
    fn sectored_rules_are_single_decoder() {
        let r = DeviceVariant::Sectored {
            sectors: 16,
            sectors_per_act: 2,
        }
        .rules();
        assert!(r.single_row_decoder);
        assert!(!r.shared_global_bitlines);
        assert_eq!(r.max_open_per_bank, usize::MAX);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(DeviceVariant::Conventional.label(), "conventional");
        assert_eq!(DeviceVariant::Microbank.label(), "microbank");
        assert_eq!(
            DeviceVariant::Salp {
                subarrays: 8,
                mode: SalpMode::Masa
            }
            .label(),
            "masa-8"
        );
        assert_eq!(
            DeviceVariant::Sectored {
                sectors: 16,
                sectors_per_act: 2
            }
            .label(),
            "sectored-2of16"
        );
    }

    #[test]
    fn validation_rejects_inconsistent_ubank() {
        let mut c = Checker::new();
        DeviceVariant::Conventional.validate_into(&mut c, UbankConfig::new(4, 4));
        assert!(c.finish("test").is_err());

        let mut c = Checker::new();
        DeviceVariant::Salp {
            subarrays: 8,
            mode: SalpMode::Salp1,
        }
        .validate_into(&mut c, UbankConfig::new(1, 8));
        assert!(c.finish("test").is_ok());

        let mut c = Checker::new();
        DeviceVariant::Sectored {
            sectors: 16,
            sectors_per_act: 2,
        }
        .validate_into(&mut c, UbankConfig::new(8, 1));
        assert!(c.finish("test").is_ok());

        // Geometry not matching the variant's derived partition.
        let mut c = Checker::new();
        DeviceVariant::Sectored {
            sectors: 16,
            sectors_per_act: 2,
        }
        .validate_into(&mut c, UbankConfig::new(4, 1));
        assert!(c.finish("test").is_err());

        // Non-power-of-two sector count is itself rejected.
        let mut c = Checker::new();
        DeviceVariant::Sectored {
            sectors: 12,
            sectors_per_act: 2,
        }
        .validate_into(&mut c, UbankConfig::new(8, 1));
        assert!(c.finish("test").is_err());
    }

    #[test]
    fn comparison_set_covers_all_four_families() {
        let set = DeviceVariant::comparison_set();
        assert!(set.contains(&DeviceVariant::Conventional));
        assert!(set.contains(&DeviceVariant::Microbank));
        assert!(set.iter().any(|v| matches!(v, DeviceVariant::Salp { .. })));
        assert!(set
            .iter()
            .any(|v| matches!(v, DeviceVariant::Sectored { .. })));
    }
}
