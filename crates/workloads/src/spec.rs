//! The SPEC CPU2006 catalog (paper Table II).
//!
//! The paper groups the 29 applications by main-memory accesses per
//! kilo-instruction (MAPKI) into spec-high / spec-med / spec-low; Fig. 8,
//! 9, 10, 12 and 13 report 429.mcf, 450.soplex, 471.omnetpp, and the group
//! averages. Profiles encode each application's published memory character:
//! pointer-chasing (mcf, omnetpp), streaming (libquantum, lbm, leslie3d),
//! and blends, with hot-set fractions calibrated to the group's MAPKI class.

use crate::profile::AppProfile;
use serde::{Deserialize, Serialize};

/// Table II group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecGroup {
    High,
    Med,
    Low,
}

impl SpecGroup {
    pub fn label(&self) -> &'static str {
        match self {
            SpecGroup::High => "spec-high",
            SpecGroup::Med => "spec-med",
            SpecGroup::Low => "spec-low",
        }
    }
}

/// Build one SPEC profile. `hot` sets the MAPKI class, `run`/`streams` the
/// locality/BLP, `wr` the write mix, `fp_mb` the footprint.
const fn spec(
    name: &'static str,
    hot: f64,
    run: f64,
    streams: usize,
    wr: f64,
    fp_mb: u64,
) -> AppProfile {
    AppProfile {
        name,
        mem_fraction: 0.32,
        hot_fraction: hot,
        hot_bytes: 8 * 1024,
        stream_run: run,
        streams,
        write_fraction: wr,
        footprint: fp_mb << 20,
        shared_fraction: 0.0,
        shared_write_fraction: 0.0,
        row_reuse: 0.0,
        reuse_window: 8,
    }
}

/// The spec-high applications (Table II row 1).
pub const SPEC_HIGH: &[AppProfile] = &[
    spec("429.mcf", 0.85, 1.0, 4, 0.20, 96),
    spec("433.milc", 0.90, 16.0, 2, 0.35, 64),
    spec("437.leslie3d", 0.90, 32.0, 3, 0.35, 64),
    spec("450.soplex", 0.89, 6.0, 3, 0.25, 64),
    spec("459.GemsFDTD", 0.90, 24.0, 3, 0.35, 64),
    spec("462.libquantum", 0.88, 64.0, 1, 0.30, 32),
    spec("470.lbm", 0.88, 48.0, 2, 0.45, 64),
    spec("471.omnetpp", 0.90, 2.0, 3, 0.30, 48),
    spec("482.sphinx3", 0.90, 8.0, 2, 0.10, 48),
];

/// The spec-med applications (Table II row 2).
pub const SPEC_MED: &[AppProfile] = &[
    spec("403.gcc", 0.975, 4.0, 2, 0.30, 32),
    spec("410.bwaves", 0.970, 32.0, 2, 0.30, 48),
    spec("434.zeusmp", 0.972, 16.0, 2, 0.35, 48),
    spec("436.cactusADM", 0.970, 24.0, 2, 0.35, 48),
    spec("458.sjeng", 0.980, 2.0, 2, 0.25, 24),
    spec("464.h264ref", 0.978, 8.0, 2, 0.25, 24),
    spec("465.tonto", 0.978, 6.0, 2, 0.30, 24),
    spec("473.astar", 0.972, 2.0, 3, 0.25, 32),
    spec("481.wrf", 0.974, 16.0, 2, 0.30, 48),
    spec("483.xalancbmk", 0.975, 3.0, 3, 0.25, 32),
];

/// The spec-low applications (Table II row 3).
pub const SPEC_LOW: &[AppProfile] = &[
    spec("400.perlbench", 0.9965, 3.0, 2, 0.30, 16),
    spec("401.bzip2", 0.9960, 8.0, 2, 0.30, 16),
    spec("416.gamess", 0.9975, 4.0, 2, 0.25, 16),
    spec("435.gromacs", 0.9965, 8.0, 2, 0.30, 16),
    spec("444.namd", 0.9970, 8.0, 2, 0.25, 16),
    spec("445.gobmk", 0.9965, 2.0, 2, 0.25, 16),
    spec("447.dealII", 0.9960, 6.0, 2, 0.25, 16),
    spec("453.povray", 0.9975, 2.0, 2, 0.20, 16),
    spec("454.calculix", 0.9965, 12.0, 2, 0.30, 16),
    spec("456.hmmer", 0.9960, 16.0, 2, 0.25, 16),
];

/// All 29 applications.
pub fn all_spec() -> Vec<AppProfile> {
    [SPEC_HIGH, SPEC_MED, SPEC_LOW].concat()
}

/// The profiles of one Table II group.
pub fn group(g: SpecGroup) -> &'static [AppProfile] {
    match g {
        SpecGroup::High => SPEC_HIGH,
        SpecGroup::Med => SPEC_MED,
        SpecGroup::Low => SPEC_LOW,
    }
}

/// Group of an application by name, if it is a SPEC application.
pub fn group_of(name: &str) -> Option<SpecGroup> {
    for (g, list) in [
        (SpecGroup::High, SPEC_HIGH),
        (SpecGroup::Med, SPEC_MED),
        (SpecGroup::Low, SPEC_LOW),
    ] {
        if list.iter().any(|p| p.name == name) {
            return Some(g);
        }
    }
    None
}

/// Look up a SPEC profile by name (e.g. `"429.mcf"`).
pub fn by_name(name: &str) -> Option<AppProfile> {
    all_spec().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::validate;

    #[test]
    fn table_ii_membership_matches_paper() {
        let high: Vec<&str> = SPEC_HIGH.iter().map(|p| p.name).collect();
        assert_eq!(
            high,
            [
                "429.mcf",
                "433.milc",
                "437.leslie3d",
                "450.soplex",
                "459.GemsFDTD",
                "462.libquantum",
                "470.lbm",
                "471.omnetpp",
                "482.sphinx3"
            ]
        );
        assert_eq!(SPEC_MED.len(), 10);
        assert_eq!(SPEC_LOW.len(), 10);
        assert_eq!(all_spec().len(), 29);
    }

    #[test]
    fn every_profile_is_valid() {
        for p in all_spec() {
            validate(&p).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn mapki_classes_are_ordered() {
        let mean = |list: &[AppProfile]| {
            list.iter().map(|p| p.nominal_mapki()).sum::<f64>() / list.len() as f64
        };
        let h = mean(SPEC_HIGH);
        let m = mean(SPEC_MED);
        let l = mean(SPEC_LOW);
        assert!(h > 2.0 * m, "high {h} vs med {m}");
        assert!(m > 2.0 * l, "med {m} vs low {l}");
        assert!(h > 25.0, "spec-high must be memory-bandwidth-bound: {h}");
        assert!(l < 2.0, "spec-low must be compute-bound: {l}");
    }

    #[test]
    fn mcf_is_pointer_chasing_libquantum_is_streaming() {
        let mcf = by_name("429.mcf").unwrap();
        let libq = by_name("462.libquantum").unwrap();
        assert_eq!(mcf.stream_run, 1.0);
        assert!(libq.stream_run >= 32.0);
    }

    #[test]
    fn group_lookup() {
        assert_eq!(group_of("429.mcf"), Some(SpecGroup::High));
        assert_eq!(group_of("403.gcc"), Some(SpecGroup::Med));
        assert_eq!(group_of("456.hmmer"), Some(SpecGroup::Low));
        assert_eq!(group_of("nonexistent"), None);
        assert_eq!(group(SpecGroup::High).len(), 9);
    }
}
