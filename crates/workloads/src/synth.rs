//! The synthetic instruction-stream generator: an
//! [`InstrSource`](microbank_cpu::instr::InstrSource) driven by an
//! [`AppProfile`](crate::profile::AppProfile).
//!
//! Every thread owns a private address region (assigned by the simulator)
//! plus an optional process-shared region. Cold accesses follow a set of
//! concurrent sequential streams with geometrically distributed run
//! lengths, which is what gives an application its row-buffer locality;
//! `stream_run = 1` degenerates to uniform random access (pointer chasing).
//! All randomness is a seeded `StdRng`, so runs are fully deterministic.

use crate::profile::AppProfile;
use microbank_core::request::TenantId;
use microbank_cpu::instr::{Instr, InstrSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LINE: u64 = 64;

/// The unpartitioned DRAM row size (8 KB): the granularity at which
/// row-reuse locality operates (see [`AppProfile::row_reuse`]).
const ROW_BYTES: u64 = 8 * 1024;

#[derive(Debug, Clone, Copy)]
struct Stream {
    pos: u64,
    left: u32,
}

/// Deterministic synthetic workload source for one hardware thread.
#[derive(Debug, Clone)]
pub struct SynthSource {
    profile: AppProfile,
    rng: StdRng,
    /// Private region [base, base + size).
    base: u64,
    size: u64,
    /// Shared region [shared_base, shared_base + shared_size).
    shared_base: u64,
    shared_size: u64,
    streams: Vec<Stream>,
    next_stream: usize,
    /// Recently touched 8 KB row bases, revisited at random columns with
    /// probability `row_reuse`.
    recent_rows: std::collections::VecDeque<u64>,
    /// The hot working set: a fixed set of lines scattered across the
    /// private region. Scattering matters: a physically contiguous hot set
    /// would put every thread's hot lines in the same DRAM bank (the low
    /// 8 KB of each region maps to bank 0 under row interleaving), turning
    /// the warmup fill into a pathological single-bank storm no real
    /// workload exhibits.
    hot_addrs: Vec<u64>,
    /// Fractional accumulator implementing `mem_fraction`.
    acc: f64,
    /// Instructions generated (diagnostics).
    pub generated: u64,
    /// Tenant this stream belongs to (multi-tenant mixes only; 0 default).
    tenant: TenantId,
}

impl SynthSource {
    pub fn new(
        profile: AppProfile,
        seed: u64,
        base: u64,
        size: u64,
        shared_base: u64,
        shared_size: u64,
    ) -> Self {
        assert!(size >= 2 * LINE, "region too small");
        let size = size.min(profile.footprint.max(2 * LINE));
        let mut rng = StdRng::seed_from_u64(seed);
        let streams = (0..profile.streams)
            .map(|_| Stream {
                pos: base + aligned(&mut rng, size),
                left: 0,
            })
            .collect();
        let hot_lines = (profile.hot_bytes / LINE).clamp(1, size / LINE) as usize;
        let hot_addrs = (0..hot_lines)
            .map(|_| base + aligned(&mut rng, size))
            .collect();
        SynthSource {
            profile,
            rng,
            base,
            size,
            shared_base,
            shared_size,
            streams,
            next_stream: 0,
            recent_rows: std::collections::VecDeque::with_capacity(profile.reuse_window + 1),
            hot_addrs,
            acc: 0.0,
            generated: 0,
            tenant: TenantId::default(),
        }
    }

    /// Tag this stream (and thus every request its core emits) as `tenant`.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sample a geometric run length with mean `stream_run`.
    fn sample_run(&mut self) -> u32 {
        let mean = self.profile.stream_run;
        if mean <= 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        let u: f64 = self.rng.gen_range(1e-12..1.0);
        ((u.ln() / (1.0 - p).ln()).ceil() as u32).clamp(1, 4096)
    }

    fn cold_access(&mut self) -> u64 {
        // Working-set reuse: revisit a recent 8 KB row at a random column.
        if !self.recent_rows.is_empty() && self.rng.gen::<f64>() < self.profile.row_reuse {
            let i = self.rng.gen_range(0..self.recent_rows.len());
            let row = self.recent_rows[i];
            let span = ROW_BYTES.min(self.size);
            return row + aligned(&mut self.rng, span);
        }
        let idx = self.next_stream;
        self.next_stream = (self.next_stream + 1) % self.streams.len();
        let run = self.sample_run();
        let s = &mut self.streams[idx];
        if s.left == 0 {
            // Start a new run at a random line within the region.
            s.pos = self.base + aligned(&mut self.rng, self.size);
            s.left = run;
            if self.profile.row_reuse > 0.0 {
                self.recent_rows.push_back(s.pos & !(ROW_BYTES - 1));
                while self.recent_rows.len() > self.profile.reuse_window {
                    self.recent_rows.pop_front();
                }
            }
        }
        let a = s.pos;
        s.pos = self.base + ((s.pos - self.base) + LINE) % self.size;
        s.left -= 1;
        a
    }

    fn hot_access(&mut self) -> u64 {
        let i = self.rng.gen_range(0..self.hot_addrs.len());
        self.hot_addrs[i]
    }

    fn shared_access(&mut self) -> u64 {
        self.shared_base + aligned(&mut self.rng, self.shared_size.max(LINE))
    }
}

fn aligned(rng: &mut StdRng, span: u64) -> u64 {
    let lines = (span / LINE).max(1);
    rng.gen_range(0..lines) * LINE
}

impl InstrSource for SynthSource {
    fn tenant(&self) -> TenantId {
        self.tenant
    }

    fn next_instr(&mut self) -> Instr {
        self.generated += 1;
        self.acc += self.profile.mem_fraction;
        if self.acc < 1.0 {
            return Instr::Compute;
        }
        self.acc -= 1.0;
        let r: f64 = self.rng.gen();
        let p = self.profile;
        if r < p.hot_fraction {
            let addr = self.hot_access();
            let is_write = self.rng.gen::<f64>() < p.write_fraction;
            Instr::Mem { addr, is_write }
        } else if r < p.hot_fraction + p.shared_fraction && self.shared_size >= LINE {
            let addr = self.shared_access();
            let is_write = self.rng.gen::<f64>() < p.shared_write_fraction;
            Instr::Mem { addr, is_write }
        } else {
            let addr = self.cold_access();
            let is_write = self.rng.gen::<f64>() < p.write_fraction;
            Instr::Mem { addr, is_write }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(p: AppProfile, seed: u64) -> SynthSource {
        SynthSource::new(p, seed, 0, 32 << 20, 1 << 30, 1 << 20)
    }

    fn collect_mems(s: &mut SynthSource, n: usize) -> Vec<(u64, bool)> {
        let mut out = Vec::new();
        while out.len() < n {
            if let Instr::Mem { addr, is_write } = s.next_instr() {
                out.push((addr, is_write));
            }
        }
        out
    }

    #[test]
    fn deterministic_per_seed() {
        let p = AppProfile::base("t");
        let a = collect_mems(&mut src(p, 7), 500);
        let b = collect_mems(&mut src(p, 7), 500);
        let c = collect_mems(&mut src(p, 8), 500);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mem_fraction_is_respected() {
        let mut p = AppProfile::base("t");
        p.mem_fraction = 0.25;
        let mut s = src(p, 1);
        let mut mems = 0;
        for _ in 0..40_000 {
            if matches!(s.next_instr(), Instr::Mem { .. }) {
                mems += 1;
            }
        }
        let frac = mems as f64 / 40_000.0;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
    }

    #[test]
    fn addresses_stay_in_regions() {
        let mut p = AppProfile::base("t");
        p.shared_fraction = 0.2;
        p.hot_fraction = 0.5;
        let mut s = SynthSource::new(p, 3, 0x1000000, 8 << 20, 0x8000000, 1 << 20);
        for (a, _) in collect_mems(&mut s, 5000) {
            let private = (0x1000000..0x1000000 + (8 << 20)).contains(&a);
            let shared = (0x8000000..0x8000000 + (1 << 20)).contains(&a);
            assert!(private || shared, "{a:#x} outside both regions");
            assert_eq!(a % 64, 0, "unaligned");
        }
    }

    #[test]
    fn stream_run_controls_sequentiality() {
        let mut seq_frac = Vec::new();
        for run in [1.0, 32.0] {
            let mut p = AppProfile::base("t");
            p.hot_fraction = 0.0;
            p.stream_run = run;
            p.streams = 1;
            let mems = collect_mems(&mut src(p, 5), 4000);
            let seq = mems.windows(2).filter(|w| w[1].0 == w[0].0 + 64).count();
            seq_frac.push(seq as f64 / mems.len() as f64);
        }
        assert!(
            seq_frac[0] < 0.05,
            "random stream too sequential: {}",
            seq_frac[0]
        );
        assert!(
            seq_frac[1] > 0.8,
            "streaming not sequential: {}",
            seq_frac[1]
        );
    }

    #[test]
    fn write_fraction_is_respected() {
        let mut p = AppProfile::base("t");
        p.write_fraction = 0.4;
        p.hot_fraction = 0.0;
        let mems = collect_mems(&mut src(p, 9), 8000);
        let w = mems.iter().filter(|m| m.1).count() as f64 / mems.len() as f64;
        assert!((w - 0.4).abs() < 0.03, "{w}");
    }

    #[test]
    fn row_reuse_concentrates_accesses_into_few_rows() {
        // With reuse on, cold accesses revisit a small set of 8 KB rows;
        // without it, rows are nearly all distinct.
        let rows_touched = |reuse: f64| {
            let mut p = AppProfile::base("t");
            p.hot_fraction = 0.0;
            p.stream_run = 1.0;
            p.row_reuse = reuse;
            p.reuse_window = 8;
            let mems = collect_mems(&mut src(p, 21), 2000);
            let rows: std::collections::HashSet<u64> = mems.iter().map(|m| m.0 / 8192).collect();
            rows.len()
        };
        let without = rows_touched(0.0);
        let with = rows_touched(0.7);
        assert!(
            (with as f64) < 0.6 * without as f64,
            "reuse {with} rows vs none {without}"
        );
    }

    #[test]
    fn reused_rows_are_recent_rows() {
        let mut p = AppProfile::base("t");
        p.hot_fraction = 0.0;
        p.stream_run = 1.0;
        p.row_reuse = 0.5;
        p.reuse_window = 4;
        let mems = collect_mems(&mut src(p, 33), 3000);
        // Every access's row must have appeared within the last ~64
        // accesses (window 4 rows × generous slack), i.e. reuse is local
        // in time, not a static hot set.
        let rows: Vec<u64> = mems.iter().map(|m| m.0 / 8192).collect();
        let mut repeats_close = 0;
        let mut repeats = 0;
        for i in 1..rows.len() {
            if let Some(prev) = rows[..i].iter().rposition(|&r| r == rows[i]) {
                repeats += 1;
                if i - prev <= 64 {
                    repeats_close += 1;
                }
            }
        }
        assert!(repeats > 500, "not enough reuse: {repeats}");
        // Random birthday collisions over the 4096-row region add distant
        // repeats; genuine reuse must still dominate.
        assert!(
            repeats_close as f64 > 0.75 * repeats as f64,
            "reuse not temporally local: {repeats_close}/{repeats}"
        );
    }

    #[test]
    fn multiple_streams_interleave() {
        let mut p = AppProfile::base("t");
        p.hot_fraction = 0.0;
        p.stream_run = 64.0;
        p.streams = 4;
        let mems = collect_mems(&mut src(p, 11), 64);
        // Consecutive cold accesses round-robin across 4 streams, so
        // directly consecutive addresses are rare even while streaming.
        let seq = mems.windows(2).filter(|w| w[1].0 == w[0].0 + 64).count();
        assert!(seq < 16, "streams not interleaved: {seq}");
    }
}
