//! Simpoint-style phase behaviour.
//!
//! The paper evaluates each SPEC application as its top-4 Simpoint slices
//! (§VI-A), i.e. distinct program phases with different memory behaviour.
//! [`PhasedSource`] interleaves several [`SynthSource`] phases on a fixed
//! instruction schedule; [`phase_variants`] derives a plausible 4-phase
//! set from a base profile (a memory-burst phase, a compute-lean phase,
//! a streaming-heavy phase, and the base itself).

use crate::profile::AppProfile;
use crate::synth::SynthSource;
use microbank_cpu::instr::{Instr, InstrSource};

/// Derive the paper-style 4-slice variant set from one application
/// profile. Every variant stays within the app's MAPKI class.
pub fn phase_variants(base: AppProfile) -> Vec<AppProfile> {
    let mut burst = base;
    // Memory-burst phase: more accesses escape the hot set.
    burst.hot_fraction = (base.hot_fraction - (1.0 - base.hot_fraction) * 0.5).max(0.0);
    let mut lean = base;
    // Compute-lean phase: hotter working set.
    lean.hot_fraction = base.hot_fraction + (1.0 - base.hot_fraction) * 0.5;
    let mut streamy = base;
    // Streaming-heavy phase: longer sequential runs.
    streamy.stream_run = (base.stream_run * 2.0).min(4096.0);
    vec![base, burst, lean, streamy]
}

/// Interleaves phase sources on a fixed instruction schedule.
#[derive(Debug, Clone)]
pub struct PhasedSource {
    phases: Vec<SynthSource>,
    /// Instructions per phase before switching.
    period: u64,
    pos: u64,
    cur: usize,
    /// Completed phase switches (diagnostics).
    pub switches: u64,
}

impl PhasedSource {
    pub fn new(phases: Vec<SynthSource>, period: u64) -> Self {
        assert!(!phases.is_empty() && period > 0);
        PhasedSource {
            phases,
            period,
            pos: 0,
            cur: 0,
            switches: 0,
        }
    }

    /// Build from a base profile using [`phase_variants`], one seeded
    /// source per phase over the same address region.
    #[allow(clippy::too_many_arguments)]
    pub fn from_profile(
        profile: AppProfile,
        seed: u64,
        base_addr: u64,
        size: u64,
        shared_base: u64,
        shared_size: u64,
        period: u64,
    ) -> Self {
        let phases = phase_variants(profile)
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                SynthSource::new(
                    p,
                    seed ^ (i as u64 + 1),
                    base_addr,
                    size,
                    shared_base,
                    shared_size,
                )
            })
            .collect();
        Self::new(phases, period)
    }

    pub fn current_phase(&self) -> usize {
        self.cur
    }

    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }
}

impl InstrSource for PhasedSource {
    fn next_instr(&mut self) -> Instr {
        if self.pos == self.period {
            self.pos = 0;
            self.cur = (self.cur + 1) % self.phases.len();
            self.switches += 1;
        }
        self.pos += 1;
        self.phases[self.cur].next_instr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::validate;

    fn base() -> AppProfile {
        let mut p = AppProfile::base("phased");
        p.hot_fraction = 0.9;
        p
    }

    #[test]
    fn variants_are_valid_and_distinct() {
        let vs = phase_variants(base());
        assert_eq!(vs.len(), 4);
        for v in &vs {
            validate(v).unwrap();
        }
        assert!(
            vs[1].hot_fraction < vs[0].hot_fraction,
            "burst phase misses more"
        );
        assert!(
            vs[2].hot_fraction > vs[0].hot_fraction,
            "lean phase misses less"
        );
        assert!(
            vs[3].stream_run > vs[0].stream_run,
            "streamy phase runs longer"
        );
    }

    #[test]
    fn phases_rotate_on_schedule() {
        let mut s = PhasedSource::from_profile(base(), 7, 0, 8 << 20, 0, 0, 100);
        assert_eq!(s.current_phase(), 0);
        for _ in 0..100 {
            s.next_instr();
        }
        assert_eq!(s.current_phase(), 0, "switch happens on the next fetch");
        s.next_instr();
        assert_eq!(s.current_phase(), 1);
        for _ in 0..300 {
            s.next_instr();
        }
        assert_eq!(s.current_phase(), 0, "wrapped around all 4 phases");
        assert_eq!(s.switches, 4);
    }

    #[test]
    fn burst_phase_is_memory_heavier_than_lean() {
        let mut s = PhasedSource::from_profile(base(), 9, 0, 8 << 20, 0, 0, 20_000);
        let mut cold_by_phase = [0u32; 4];
        // One full rotation; count non-hot accesses per phase by footprint
        // position (hot set is a fixed small line set, so approximate by
        // counting all memory accesses — burst vs lean differ via hot
        // fraction only at the DRAM level; here we check mem fraction is
        // constant and the phases at least differ in address dispersion).
        let mut distinct: [std::collections::HashSet<u64>; 4] = Default::default();
        for phase in 0..4 {
            for _ in 0..20_000 {
                if let Instr::Mem { addr, .. } = s.next_instr() {
                    cold_by_phase[phase] += 1;
                    distinct[phase].insert(addr);
                }
            }
            s.next_instr(); // trigger the switch
        }
        // Burst phase touches more distinct lines than lean phase.
        assert!(
            distinct[1].len() > distinct[2].len(),
            "burst {} vs lean {}",
            distinct[1].len(),
            distinct[2].len()
        );
    }

    #[test]
    #[should_panic]
    fn empty_phase_list_rejected() {
        PhasedSource::new(vec![], 10);
    }
}
