//! # microbank-workloads
//!
//! Synthetic, deterministic workload generators standing in for the paper's
//! benchmark suites (SPEC CPU2006, TPC-C/H, SPLASH-2, PARSEC — §VI-A). Each
//! application is a parameterized address-stream profile whose knobs map
//! onto the behaviours the paper's results depend on: MAPKI class
//! (Table II), row-buffer spatial locality, bank-level parallelism,
//! read/write mix, and inter-thread sharing. See DESIGN.md §2 for the
//! substitution rationale.
//!
//! * [`profile`] — the profile parameter set.
//! * [`synth`] — the seeded stream generator (implements
//!   [`microbank_cpu::instr::InstrSource`]).
//! * [`spec`] — the 29-application SPEC CPU2006 catalog and Table II groups.
//! * [`suite`] — TPC-C/H, RADIX, FFT, canneal, and the [`suite::Workload`]
//!   selector with its address-space partitioning source builder.
//! * [`mix`] — the mix-high / mix-blend multiprogrammed mixtures.

pub mod mix;
pub mod phases;
pub mod profile;
pub mod spec;
pub mod suite;
pub mod synth;
pub mod trace;

pub use phases::{phase_variants, PhasedSource};
pub use profile::AppProfile;
pub use spec::SpecGroup;
pub use suite::{build_sources, Workload};
pub use synth::SynthSource;
pub use trace::{Trace, TraceRecord, TraceSource};
