//! The multiprogrammed mixtures of §VI-A: *mix-high* draws only from the
//! spec-high group; *mix-blend* draws from all three MAPKI groups.

use crate::profile::AppProfile;
use crate::spec::{SPEC_HIGH, SPEC_LOW, SPEC_MED};

/// mix-high: spec-high applications only, with the paper's
/// weighted-population semantics ("the number of populated points is
/// proportional to their weights", §VI-A): the heaviest memory consumers
/// appear twice, so the mixture is distinct from the uniform per-app
/// average (`Workload::SpecGroupAvg`).
pub fn mix_high() -> Vec<AppProfile> {
    let mut out = Vec::new();
    for (i, p) in SPEC_HIGH.iter().enumerate() {
        out.push(*p);
        // Double-weight mcf, soplex, and lbm (indices 0, 3, 6).
        if i % 3 == 0 {
            out.push(*p);
        }
    }
    out
}

/// mix-blend: one slice of every group, interleaved high/med/low so any
/// prefix of the assignment is itself blended.
pub fn mix_blend() -> Vec<AppProfile> {
    let mut out = Vec::new();
    let n = SPEC_HIGH.len().max(SPEC_MED.len()).max(SPEC_LOW.len());
    for i in 0..n {
        if i < SPEC_HIGH.len() {
            out.push(SPEC_HIGH[i]);
        }
        if i < SPEC_MED.len() {
            out.push(SPEC_MED[i]);
        }
        if i < SPEC_LOW.len() {
            out.push(SPEC_LOW[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{group_of, SpecGroup};

    #[test]
    fn mix_high_is_pure_spec_high_with_weights() {
        for p in mix_high() {
            assert_eq!(group_of(p.name), Some(SpecGroup::High));
        }
        // 9 apps + 3 double-weighted = 12 slots.
        assert_eq!(mix_high().len(), 12);
        let mcf = mix_high().iter().filter(|p| p.name == "429.mcf").count();
        assert_eq!(mcf, 2, "heavy apps are double-weighted");
    }

    #[test]
    fn mix_blend_covers_all_groups_in_any_prefix() {
        let m = mix_blend();
        assert_eq!(m.len(), 29);
        let prefix: Vec<_> = m
            .iter()
            .take(6)
            .map(|p| group_of(p.name).unwrap())
            .collect();
        assert!(prefix.contains(&SpecGroup::High));
        assert!(prefix.contains(&SpecGroup::Med));
        assert!(prefix.contains(&SpecGroup::Low));
    }
}
