//! The non-SPEC suites of the evaluation (§VI-A): the TPC-C/H database
//! workloads (PostgreSQL in the paper), the SPLASH-2 kernels RADIX and FFT,
//! and PARSEC's canneal — plus the [`Workload`] enumeration the experiment
//! harness selects runs by, and the source builder that partitions the
//! physical address space among threads.

use crate::mix::{mix_blend, mix_high};
use crate::profile::AppProfile;
use crate::spec::{self, SpecGroup};
use crate::synth::SynthSource;
use microbank_core::request::TenantId;
use serde::{Deserialize, Serialize};

/// TPC-H: decision-support scans — long sequential runs, many concurrent
/// streams per worker, read-mostly. High spatial locality that bank
/// interference destroys at (1,1) and μbanks restore (Fig. 8c).
pub fn tpc_h() -> AppProfile {
    AppProfile {
        name: "TPC-H",
        mem_fraction: 0.32,
        hot_fraction: 0.86,
        hot_bytes: 8 * 1024,
        stream_run: 8.0,
        streams: 6,
        write_fraction: 0.08,
        footprint: 96 << 20,
        shared_fraction: 0.04,
        shared_write_fraction: 0.05,
        row_reuse: 0.6,
        reuse_window: 12,
    }
}

/// TPC-C: OLTP — random row lookups with short runs and a write-heavy mix.
pub fn tpc_c() -> AppProfile {
    AppProfile {
        name: "TPC-C",
        mem_fraction: 0.32,
        hot_fraction: 0.90,
        hot_bytes: 8 * 1024,
        stream_run: 3.0,
        streams: 4,
        write_fraction: 0.35,
        footprint: 96 << 20,
        shared_fraction: 0.06,
        shared_write_fraction: 0.30,
        row_reuse: 0.40,
        reuse_window: 8,
    }
}

/// SPLASH-2 RADIX sort: streaming reads with permutation (scattered)
/// writes; very high MAPKI and row-hit potential ("RADIX … has high MAPKI
/// values and row-hit rates for μbank-based systems", §VI-B).
pub fn radix() -> AppProfile {
    AppProfile {
        name: "RADIX",
        mem_fraction: 0.34,
        hot_fraction: 0.80,
        hot_bytes: 8 * 1024,
        stream_run: 40.0,
        streams: 4,
        write_fraction: 0.45,
        footprint: 64 << 20,
        shared_fraction: 0.10,
        shared_write_fraction: 0.40,
        row_reuse: 0.0,
        reuse_window: 8,
    }
}

/// SPLASH-2 FFT: strided transpose phases — medium runs, many streams.
pub fn fft() -> AppProfile {
    AppProfile {
        name: "FFT",
        mem_fraction: 0.32,
        hot_fraction: 0.86,
        hot_bytes: 8 * 1024,
        stream_run: 12.0,
        streams: 4,
        write_fraction: 0.35,
        footprint: 64 << 20,
        shared_fraction: 0.08,
        shared_write_fraction: 0.20,
        row_reuse: 0.10,
        reuse_window: 8,
    }
}

/// PARSEC canneal: cache-thrashing pointer chasing, but with higher
/// spatial locality than the spec-high average (§VI-C).
pub fn canneal() -> AppProfile {
    AppProfile {
        name: "canneal",
        mem_fraction: 0.32,
        hot_fraction: 0.88,
        hot_bytes: 8 * 1024,
        stream_run: 10.0,
        streams: 3,
        write_fraction: 0.25,
        footprint: 96 << 20,
        shared_fraction: 0.10,
        shared_write_fraction: 0.15,
        row_reuse: 0.50,
        reuse_window: 8,
    }
}

/// A named run configuration for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// One SPEC application, rate mode (a copy on every core).
    Spec(&'static str),
    /// Every core runs an application of the group, round-robin
    /// (rate-mode approximation of the paper's per-app average).
    SpecGroupAvg(SpecGroup),
    /// All 29 SPEC applications round-robin ("spec-all").
    SpecAll,
    /// Multiprogrammed mixes (§VI-A).
    MixHigh,
    MixBlend,
    /// Multithreaded suites.
    TpcC,
    TpcH,
    Radix,
    Fft,
    Canneal,
    /// Multi-tenant colocation: the first `lc_cores` cores run a
    /// latency-critical OLTP service (TPC-C, tenant 0) and the rest run a
    /// throughput batch job (RADIX, tenant 1) on the same channels. The
    /// tenants are separate processes — no shared region — so all
    /// interference is in the memory system, which is exactly what the QoS
    /// regulators arbitrate.
    TenantMix {
        lc_cores: u16,
    },
}

impl Workload {
    pub fn label(&self) -> String {
        match self {
            Workload::Spec(n) => n.to_string(),
            Workload::SpecGroupAvg(g) => g.label().to_string(),
            Workload::SpecAll => "spec-all".to_string(),
            Workload::MixHigh => "mix-high".to_string(),
            Workload::MixBlend => "mix-blend".to_string(),
            Workload::TpcC => "TPC-C".to_string(),
            Workload::TpcH => "TPC-H".to_string(),
            Workload::Radix => "RADIX".to_string(),
            Workload::Fft => "FFT".to_string(),
            Workload::Canneal => "canneal".to_string(),
            Workload::TenantMix { lc_cores } => format!("tenant-mix-lc{lc_cores}"),
        }
    }

    /// Profiles assigned to `cores` hardware threads.
    pub fn assign(&self, cores: usize) -> Vec<AppProfile> {
        let cycle = |list: Vec<AppProfile>| -> Vec<AppProfile> {
            (0..cores).map(|i| list[i % list.len()]).collect()
        };
        match self {
            Workload::Spec(name) => {
                let p = spec::by_name(name).unwrap_or_else(|| panic!("unknown SPEC app {name}"));
                vec![p; cores]
            }
            Workload::SpecGroupAvg(g) => cycle(spec::group(*g).to_vec()),
            // spec-all uses the blended (high/med/low interleaved) order so
            // that any prefix of the assignment — e.g. a 4-copy policy
            // study — is itself representative of all three MAPKI groups.
            Workload::SpecAll => cycle(mix_blend()),
            Workload::MixHigh => cycle(mix_high()),
            Workload::MixBlend => cycle(mix_blend()),
            Workload::TpcC => vec![tpc_c(); cores],
            Workload::TpcH => vec![tpc_h(); cores],
            Workload::Radix => vec![radix(); cores],
            Workload::Fft => vec![fft(); cores],
            Workload::Canneal => vec![canneal(); cores],
            Workload::TenantMix { lc_cores } => (0..cores)
                .map(|i| {
                    if (i as u16) < *lc_cores {
                        tpc_c()
                    } else {
                        radix()
                    }
                })
                .collect(),
        }
    }

    /// Is this a multithreaded (shared-address-space) workload?
    /// `TenantMix` is deliberately not: its tenants are separate processes,
    /// so they contend only in the memory system.
    pub fn is_multithreaded(&self) -> bool {
        matches!(
            self,
            Workload::TpcC | Workload::TpcH | Workload::Radix | Workload::Fft | Workload::Canneal
        )
    }

    /// Tenant owning hardware thread `core` under this workload.
    pub fn tenant_of(&self, core: usize) -> TenantId {
        match self {
            Workload::TenantMix { lc_cores } => {
                if (core as u16) < *lc_cores {
                    TenantId(0)
                } else {
                    TenantId(1)
                }
            }
            _ => TenantId::default(),
        }
    }

    /// Number of distinct tenants this workload colocates.
    pub fn num_tenants(&self) -> usize {
        match self {
            Workload::TenantMix { .. } => 2,
            _ => 1,
        }
    }
}

/// Partition `capacity_bytes` of physical address space among `cores`
/// threads and build one deterministic source per thread. A shared region
/// (1/16 of capacity) is carved from the top for multithreaded workloads.
pub fn build_sources(
    workload: Workload,
    cores: usize,
    capacity_bytes: u64,
    seed: u64,
) -> Vec<SynthSource> {
    let profiles = workload.assign(cores);
    let shared = if workload.is_multithreaded() {
        capacity_bytes / 16
    } else {
        0
    };
    let private_total = capacity_bytes - shared;
    let per_thread = (private_total / cores as u64).max(128);
    let shared_base = private_total;
    profiles
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            SynthSource::new(
                p,
                seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                i as u64 * per_thread,
                per_thread,
                shared_base,
                shared,
            )
            .with_tenant(workload.tenant_of(i))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::validate;
    use microbank_cpu::instr::{Instr, InstrSource};

    #[test]
    fn suite_profiles_are_valid() {
        for p in [tpc_c(), tpc_h(), radix(), fft(), canneal()] {
            validate(&p).unwrap();
        }
    }

    #[test]
    fn tpch_has_high_locality_mcf_does_not() {
        // TPC-H's locality is working-set row reuse (buffer pool) plus
        // scan runs; mcf is pointer chasing with neither.
        assert!(tpc_h().row_reuse >= 0.5);
        let mcf = crate::spec::by_name("429.mcf").unwrap();
        assert!(mcf.stream_run <= 1.0);
        assert!(mcf.row_reuse < 0.1);
    }

    #[test]
    fn assignment_covers_all_cores() {
        for w in [
            Workload::Spec("429.mcf"),
            Workload::SpecGroupAvg(SpecGroup::High),
            Workload::SpecAll,
            Workload::MixHigh,
            Workload::TpcH,
            Workload::Radix,
        ] {
            assert_eq!(w.assign(64).len(), 64, "{}", w.label());
        }
    }

    #[test]
    fn group_avg_rotates_members() {
        let a = Workload::SpecGroupAvg(SpecGroup::High).assign(18);
        assert_eq!(a[0].name, "429.mcf");
        assert_eq!(a[9].name, "429.mcf");
        assert_eq!(a[1].name, "433.milc");
    }

    #[test]
    fn build_sources_partitions_address_space() {
        let mut srcs = build_sources(Workload::Spec("429.mcf"), 4, 1 << 30, 42);
        assert_eq!(srcs.len(), 4);
        let per = (1u64 << 30) / 4;
        for (i, s) in srcs.iter_mut().enumerate() {
            for _ in 0..2000 {
                if let Instr::Mem { addr, .. } = s.next_instr() {
                    let lo = i as u64 * per;
                    assert!((lo..lo + per).contains(&addr), "core {i}: {addr:#x}");
                }
            }
        }
    }

    #[test]
    fn multithreaded_workloads_share_a_region() {
        let mut srcs = build_sources(Workload::Radix, 8, 1 << 30, 7);
        let shared_base = (1u64 << 30) - (1u64 << 30) / 16;
        let mut shared_hits = 0;
        for s in srcs.iter_mut() {
            for _ in 0..5000 {
                if let Instr::Mem { addr, .. } = s.next_instr() {
                    if addr >= shared_base {
                        shared_hits += 1;
                    }
                }
            }
        }
        assert!(shared_hits > 0, "no shared-region traffic");
    }

    #[test]
    fn tenant_mix_tags_cores_by_tenant() {
        let w = Workload::TenantMix { lc_cores: 2 };
        assert_eq!(w.num_tenants(), 2);
        assert_eq!(w.label(), "tenant-mix-lc2");
        assert!(!w.is_multithreaded(), "tenants are separate processes");
        assert_eq!(w.tenant_of(1), TenantId(0));
        assert_eq!(w.tenant_of(2), TenantId(1));
        let profiles = w.assign(4);
        assert_eq!(profiles[0].name, "TPC-C");
        assert_eq!(profiles[3].name, "RADIX");
        let srcs = build_sources(w, 4, 1 << 28, 3);
        let tenants: Vec<TenantId> = srcs.iter().map(|s| s.tenant()).collect();
        assert_eq!(
            tenants,
            vec![TenantId(0), TenantId(0), TenantId(1), TenantId(1)]
        );
        // Single-tenant workloads keep everything on tenant 0.
        assert_eq!(Workload::MixHigh.num_tenants(), 1);
        assert_eq!(Workload::MixHigh.tenant_of(63), TenantId(0));
    }

    #[test]
    fn sources_are_deterministic_across_builds() {
        let collect = |seed: u64| {
            let mut srcs = build_sources(Workload::TpcH, 2, 1 << 28, seed);
            let mut v = Vec::new();
            for s in srcs.iter_mut() {
                for _ in 0..200 {
                    if let Instr::Mem { addr, .. } = s.next_instr() {
                        v.push(addr);
                    }
                }
            }
            v
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }
}
