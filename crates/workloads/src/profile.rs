//! Application profiles: the statistical parameters the synthetic
//! instruction-stream generators run from.
//!
//! The paper's evaluation is driven by SPEC CPU2006, TPC-C/H, SPLASH-2 and
//! PARSEC traces; we reproduce each application as a parameterized address
//! stream (DESIGN.md §2). The parameters map one-to-one onto the memory
//! behaviours the paper's results depend on: main-memory intensity (MAPKI,
//! Table II), row-buffer spatial locality (sequential run lengths),
//! bank-level parallelism (concurrent streams), read/write mix, and
//! inter-thread sharing for the multithreaded suites.

use serde::{Deserialize, Serialize};

/// Statistical profile of one application (per hardware thread).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    pub name: &'static str,
    /// Fraction of instruction slots that are memory accesses (~0.3 for
    /// typical integer/FP code).
    pub mem_fraction: f64,
    /// Fraction of memory accesses hitting the thread's hot working set
    /// (cache-resident; never reaches DRAM after warmup).
    pub hot_fraction: f64,
    /// Hot working-set bytes (must fit in L1 for a clean split).
    pub hot_bytes: u64,
    /// Mean sequential run length, in 64 B lines, of cold accesses. 1 =
    /// fully random (pointer chasing); 32+ = streaming.
    pub stream_run: f64,
    /// Concurrent cold streams per thread, interleaved round-robin —
    /// memory-level parallelism and bank-conflict pressure.
    pub streams: usize,
    /// Fraction of memory accesses that are writes.
    pub write_fraction: f64,
    /// Cold footprint per thread, bytes (clamped to the region the sim
    /// assigns).
    pub footprint: u64,
    /// Fraction of memory accesses to the process-shared region
    /// (multithreaded suites; 0 for SPEC rate runs).
    pub shared_fraction: f64,
    /// Fraction of shared-region accesses that are writes.
    pub shared_write_fraction: f64,
    /// Fraction of cold accesses that revisit a recently touched 8 KB DRAM
    /// row at a *random column* (buffer-pool / working-set reuse). This is
    /// the locality that makes open-row capacity in *bytes* matter: nB
    /// partitioning multiplies the number of open 8 KB rows and captures
    /// these revisits, while nW partitioning shrinks each row and does not
    /// (paper §VI-B: TPC-H is sensitive to nB, not nW).
    pub row_reuse: f64,
    /// How many recently touched rows stay revisitable per thread.
    pub reuse_window: usize,
}

impl AppProfile {
    /// Expected main-memory accesses per kilo-instruction, assuming all
    /// cold (non-hot) accesses miss the cache hierarchy after warmup and
    /// each miss costs one line fill (writebacks add more on top).
    pub fn nominal_mapki(&self) -> f64 {
        1000.0 * self.mem_fraction * (1.0 - self.hot_fraction)
    }

    /// A conservative baseline profile to build variants from.
    pub const fn base(name: &'static str) -> Self {
        AppProfile {
            name,
            mem_fraction: 0.30,
            hot_fraction: 0.97,
            hot_bytes: 8 * 1024,
            stream_run: 4.0,
            streams: 2,
            write_fraction: 0.3,
            footprint: 64 << 20,
            shared_fraction: 0.0,
            shared_write_fraction: 0.0,
            row_reuse: 0.0,
            reuse_window: 8,
        }
    }
}

/// Validation helpers shared by the catalog tests.
pub fn validate(p: &AppProfile) -> Result<(), String> {
    let frac = |v: f64, n: &str| {
        if (0.0..=1.0).contains(&v) {
            Ok(())
        } else {
            Err(format!("{}: {n} = {v} out of [0,1]", p.name))
        }
    };
    frac(p.mem_fraction, "mem_fraction")?;
    frac(p.hot_fraction, "hot_fraction")?;
    frac(p.write_fraction, "write_fraction")?;
    frac(p.shared_fraction, "shared_fraction")?;
    frac(p.shared_write_fraction, "shared_write_fraction")?;
    frac(p.row_reuse, "row_reuse")?;
    if p.row_reuse > 0.0 && p.reuse_window == 0 {
        return Err(format!("{}: row_reuse without reuse_window", p.name));
    }
    if p.hot_fraction + p.shared_fraction > 1.0 {
        return Err(format!("{}: hot + shared > 1", p.name));
    }
    if p.stream_run < 1.0 {
        return Err(format!("{}: stream_run < 1", p.name));
    }
    if p.streams == 0 {
        return Err(format!("{}: zero streams", p.name));
    }
    if p.hot_bytes == 0 || p.footprint == 0 {
        return Err(format!("{}: empty regions", p.name));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_mapki_math() {
        let mut p = AppProfile::base("x");
        p.mem_fraction = 0.3;
        p.hot_fraction = 0.8;
        assert!((p.nominal_mapki() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn base_profile_is_valid() {
        validate(&AppProfile::base("b")).unwrap();
    }

    #[test]
    fn validation_catches_bad_fractions() {
        let mut p = AppProfile::base("bad");
        p.hot_fraction = 0.9;
        p.shared_fraction = 0.2;
        assert!(validate(&p).is_err());
    }
}
