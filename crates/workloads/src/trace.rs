//! Memory-trace recording and replay.
//!
//! The paper drives McSimA+ with Pin-captured instruction traces
//! (Simpoint slices). This module provides the equivalent capability:
//! capture the instruction stream any [`InstrSource`] produces into a
//! compact binary trace, persist it, and replay it deterministically —
//! so users with real traces can feed them to the simulator, and synthetic
//! runs can be snapshotted for exact reproduction.
//!
//! Format (little-endian): a 16-byte header (`MBTR`, version, record
//! count) followed by 13-byte records: `gap: u32` (compute instructions
//! preceding the access), `addr: u64`, `flags: u8` (bit 0 = write).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use microbank_cpu::instr::{Instr, InstrSource};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"MBTR";
const VERSION: u32 = 1;

/// One memory access with its preceding compute gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Number of compute (non-memory) instructions before this access.
    pub gap: u32,
    pub addr: u64,
    pub is_write: bool,
}

/// A recorded memory trace for one hardware thread.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Capture `n_accesses` memory accesses from `source`.
    pub fn record<S: InstrSource>(source: &mut S, n_accesses: usize) -> Self {
        let mut records = Vec::with_capacity(n_accesses);
        let mut gap: u32 = 0;
        while records.len() < n_accesses {
            match source.next_instr() {
                Instr::Compute => gap = gap.saturating_add(1),
                Instr::Mem { addr, is_write } => {
                    records.push(TraceRecord {
                        gap,
                        addr,
                        is_write,
                    });
                    gap = 0;
                }
            }
        }
        Trace { records }
    }

    /// Serialize to the compact binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.records.len() * 13);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(self.records.len() as u64);
        for r in &self.records {
            buf.put_u32_le(r.gap);
            buf.put_u64_le(r.addr);
            buf.put_u8(r.is_write as u8);
        }
        buf.freeze()
    }

    /// Parse the binary format.
    pub fn from_bytes(mut data: Bytes) -> io::Result<Self> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        if data.remaining() < 16 {
            return Err(bad("truncated header"));
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(bad("bad magic"));
        }
        if data.get_u32_le() != VERSION {
            return Err(bad("unsupported version"));
        }
        let n = data.get_u64_le() as usize;
        if data.remaining() < n * 13 {
            return Err(bad("truncated records"));
        }
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let gap = data.get_u32_le();
            let addr = data.get_u64_le();
            let flags = data.get_u8();
            records.push(TraceRecord {
                gap,
                addr,
                is_write: flags & 1 != 0,
            });
        }
        Ok(Trace { records })
    }

    /// Write to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())
    }

    /// Read from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = std::fs::File::open(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Self::from_bytes(Bytes::from(buf))
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Replays a [`Trace`] as an infinite [`InstrSource`] (wrapping around at
/// the end, as the fixed-length Simpoint slices are replayed in rate mode).
#[derive(Debug, Clone)]
pub struct TraceSource {
    trace: Trace,
    idx: usize,
    remaining_gap: u32,
    /// Completed passes over the trace.
    pub wraps: u64,
}

impl TraceSource {
    pub fn new(trace: Trace) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        let remaining_gap = trace.records[0].gap;
        TraceSource {
            trace,
            idx: 0,
            remaining_gap,
            wraps: 0,
        }
    }
}

impl InstrSource for TraceSource {
    fn next_instr(&mut self) -> Instr {
        if self.remaining_gap > 0 {
            self.remaining_gap -= 1;
            return Instr::Compute;
        }
        let r = self.trace.records[self.idx];
        self.idx += 1;
        if self.idx == self.trace.records.len() {
            self.idx = 0;
            self.wraps += 1;
        }
        self.remaining_gap = self.trace.records[self.idx].gap;
        Instr::Mem {
            addr: r.addr,
            is_write: r.is_write,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AppProfile;
    use crate::synth::SynthSource;

    fn synth() -> SynthSource {
        SynthSource::new(AppProfile::base("t"), 9, 0, 8 << 20, 0, 0)
    }

    #[test]
    fn record_captures_the_requested_accesses() {
        let mut s = synth();
        let t = Trace::record(&mut s, 100);
        assert_eq!(t.len(), 100);
        assert!(t.records.iter().all(|r| r.addr % 64 == 0));
    }

    #[test]
    fn bytes_roundtrip() {
        let mut s = synth();
        let t = Trace::record(&mut s, 257);
        let back = Trace::from_bytes(t.to_bytes()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn corrupt_data_is_rejected() {
        assert!(Trace::from_bytes(Bytes::from_static(b"nope")).is_err());
        let mut s = synth();
        let good = Trace::record(&mut s, 4).to_bytes();
        let truncated = good.slice(0..good.len() - 5);
        assert!(Trace::from_bytes(truncated).is_err());
        let mut wrong_magic = good.to_vec();
        wrong_magic[0] = b'X';
        assert!(Trace::from_bytes(Bytes::from(wrong_magic)).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let mut s = synth();
        let t = Trace::record(&mut s, 64);
        let path = std::env::temp_dir().join("microbank_trace_test.mbtr");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(t, back);
    }

    #[test]
    fn replay_reproduces_the_original_stream() {
        // The instruction sequence from replay must match the sequence the
        // recorder saw (same gaps, same accesses).
        let mut original = synth();
        let mut reference = Vec::new();
        let mut s2 = original.clone();
        let trace = Trace::record(&mut original, 50);
        // Regenerate the reference stream from an identical clone.
        let mut mems = 0;
        while mems < 50 {
            let i = s2.next_instr();
            if matches!(i, Instr::Mem { .. }) {
                mems += 1;
            }
            reference.push(i);
        }
        let mut replay = TraceSource::new(trace);
        for (k, &want) in reference.iter().enumerate() {
            assert_eq!(replay.next_instr(), want, "instr {k}");
        }
    }

    #[test]
    fn replay_wraps_around() {
        let trace = Trace {
            records: vec![
                TraceRecord {
                    gap: 1,
                    addr: 0x40,
                    is_write: false,
                },
                TraceRecord {
                    gap: 0,
                    addr: 0x80,
                    is_write: true,
                },
            ],
        };
        let mut s = TraceSource::new(trace);
        let mut mem_count = 0;
        for _ in 0..20 {
            if matches!(s.next_instr(), Instr::Mem { .. }) {
                mem_count += 1;
            }
        }
        assert!(s.wraps >= 3, "{}", s.wraps);
        assert!(mem_count >= 12);
    }

    #[test]
    #[should_panic]
    fn empty_trace_cannot_replay() {
        TraceSource::new(Trace::default());
    }
}
