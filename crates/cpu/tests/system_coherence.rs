//! System-level coherence and hierarchy tests: the CMP driven against a
//! scripted memory, checking the MESI paths the unit tests cannot reach
//! (upgrade-on-L2-hit, cross-cluster invalidation visibility, inclusion).

use microbank_cpu::config::CmpConfig;
use microbank_cpu::instr::{Instr, InstrSource};
use microbank_cpu::system::{CmpSystem, MemPort, SubmittedReq};

/// A scripted instruction source: plays a fixed list, then idles.
#[derive(Clone)]
struct Script {
    instrs: Vec<Instr>,
    pos: usize,
}

impl Script {
    fn new(instrs: Vec<Instr>) -> Self {
        Script { instrs, pos: 0 }
    }

    fn reads(addrs: &[u64]) -> Vec<Instr> {
        addrs
            .iter()
            .map(|&a| Instr::Mem {
                addr: a,
                is_write: false,
            })
            .collect()
    }
}

impl InstrSource for Script {
    fn next_instr(&mut self) -> Instr {
        if self.pos < self.instrs.len() {
            self.pos += 1;
            self.instrs[self.pos - 1]
        } else {
            Instr::Compute
        }
    }
}

struct FixedMem {
    delay: u64,
    pending: Vec<(u64, u64)>,
    reads_seen: Vec<u64>,
    writes_seen: Vec<u64>,
}

impl FixedMem {
    fn new(delay: u64) -> Self {
        FixedMem {
            delay,
            pending: Vec::new(),
            reads_seen: Vec::new(),
            writes_seen: Vec::new(),
        }
    }
}

impl MemPort for FixedMem {
    fn submit(&mut self, req: SubmittedReq, now: u64) -> bool {
        if req.is_write {
            self.writes_seen.push(req.addr);
        } else {
            self.reads_seen.push(req.addr);
            self.pending.push((req.id, now + self.delay));
        }
        true
    }
}

fn run(sys: &mut CmpSystem<Script>, mem: &mut FixedMem, cycles: u64) {
    for now in 0..cycles {
        let due: Vec<u64> = {
            let (ready, rest): (Vec<_>, Vec<_>) =
                mem.pending.drain(..).partition(|&(_, t)| t <= now);
            mem.pending = rest;
            ready.into_iter().map(|(id, _)| id).collect()
        };
        for id in due {
            sys.on_fill(id, now, mem);
        }
        sys.tick(now, mem);
    }
}

#[test]
fn same_line_fetched_once_per_cluster_not_per_core() {
    // Cores 0..3 share a cluster: four readers of one line → one DRAM read.
    let line = 0x8000u64;
    let sources = (0..4)
        .map(|_| Script::new(Script::reads(&[line])))
        .collect();
    let mut sys = CmpSystem::new(CmpConfig::small(4), sources);
    let mut mem = FixedMem::new(50);
    run(&mut sys, &mut mem, 2000);
    assert_eq!(mem.reads_seen.iter().filter(|&&a| a == line).count(), 1);
    for i in 0..4 {
        assert_eq!(sys.core(i).stats.loads, 1, "core {i} load dispatched");
    }
}

#[test]
fn second_cluster_gets_cache_to_cache_forward() {
    // Core 0 (cluster 0) reads; later core 4 (cluster 1) reads the same
    // line: the directory forwards instead of refetching from memory.
    let line = 0x10_000u64;
    let mut sources: Vec<Script> = (0..8).map(|_| Script::new(vec![])).collect();
    sources[0] = Script::new(Script::reads(&[line]));
    let mut delayed = Script::reads(&[line]);
    // Pad with compute so core 4 reads after core 0's fill completed.
    let mut padded = vec![Instr::Compute; 600];
    padded.append(&mut delayed);
    sources[4] = Script::new(padded);
    let mut sys = CmpSystem::new(CmpConfig::small(8), sources);
    let mut mem = FixedMem::new(50);
    run(&mut sys, &mut mem, 5000);
    assert_eq!(
        mem.reads_seen.iter().filter(|&&a| a == line).count(),
        1,
        "one memory fetch"
    );
    assert!(sys.stats().forwards >= 1, "no forward recorded");
    assert_eq!(sys.core(0).stats.loads, 1);
    assert_eq!(sys.core(4).stats.loads, 1);
    sys.directory().check_invariants().unwrap();
}

#[test]
fn writer_invalidates_reader_and_next_read_refetches() {
    let line = 0x20_000u64;
    let mut sources: Vec<Script> = (0..8).map(|_| Script::new(vec![])).collect();
    // Cluster 0 core reads; cluster 1 core then writes; then cluster 0
    // reads again — its copy was invalidated, so a new transaction occurs.
    sources[0] = Script::new({
        let mut v = Script::reads(&[line]);
        v.extend(vec![Instr::Compute; 2000]);
        v.extend(Script::reads(&[line]));
        v
    });
    sources[4] = Script::new({
        let mut v = vec![Instr::Compute; 800];
        v.push(Instr::Mem {
            addr: line,
            is_write: true,
        });
        v
    });
    let mut sys = CmpSystem::new(CmpConfig::small(8), sources);
    let mut mem = FixedMem::new(40);
    run(&mut sys, &mut mem, 10_000);
    sys.directory().check_invariants().unwrap();
    // The second read cannot silently hit a stale L1 copy: the line was
    // invalidated, so the system recorded a forward or another fetch.
    let total_line_transactions =
        mem.reads_seen.iter().filter(|&&a| a == line).count() as u64 + sys.stats().forwards;
    assert!(total_line_transactions >= 2, "stale read not detected");
}

#[test]
fn prefetcher_covers_sequential_streams() {
    // A long sequential read stream with the stream prefetcher: later
    // lines hit L2 thanks to prefetch, and prefetch traffic is recorded.
    let addrs: Vec<u64> = (0..512u64).map(|i| i * 64).collect();
    let mut spaced = Vec::new();
    for a in &addrs {
        spaced.push(Instr::Mem {
            addr: *a,
            is_write: false,
        });
        spaced.extend(vec![Instr::Compute; 30]);
    }
    let mk = |degree: usize| {
        let mut cfg = CmpConfig::small(1);
        cfg.prefetch_degree = degree;
        let mut sys = CmpSystem::new(cfg, vec![Script::new(spaced.clone())]);
        let mut mem = FixedMem::new(120);
        run(&mut sys, &mut mem, 120_000);
        (sys, mem)
    };
    let (sys_off, _) = mk(0);
    let (sys_on, _) = mk(4);
    assert_eq!(sys_off.stats().prefetches, 0);
    assert!(
        sys_on.stats().prefetches > 100,
        "{}",
        sys_on.stats().prefetches
    );
    assert!(
        sys_on.stats().prefetch_hits > 50,
        "{}",
        sys_on.stats().prefetch_hits
    );
    // Coverage shows as higher L2 hit rate for the demand stream.
    assert!(
        sys_on.l2_hit_rate() > sys_off.l2_hit_rate() + 0.2,
        "on {} vs off {}",
        sys_on.l2_hit_rate(),
        sys_off.l2_hit_rate()
    );
    sys_on.directory().check_invariants().unwrap();
}

#[test]
fn prefetcher_stays_quiet_on_random_access() {
    let mut rnd = Vec::new();
    let mut state = 99u64;
    for _ in 0..256 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        rnd.push(Instr::Mem {
            addr: ((state >> 12) % (1 << 24)) & !63,
            is_write: false,
        });
        rnd.extend(vec![Instr::Compute; 20]);
    }
    let mut cfg = CmpConfig::small(1);
    cfg.prefetch_degree = 4;
    let mut sys = CmpSystem::new(cfg, vec![Script::new(rnd)]);
    let mut mem = FixedMem::new(100);
    run(&mut sys, &mut mem, 60_000);
    assert!(
        sys.stats().prefetches < 20,
        "random stream should not trigger streams: {}",
        sys.stats().prefetches
    );
}

#[test]
fn dirty_l2_eviction_writes_back_to_memory() {
    // One core writes many distinct lines mapping far apart; with a tiny
    // L2 the dirty lines must come back out as memory writes.
    let mut cfg = CmpConfig::small(1);
    cfg.l2_bytes = 64 * 1024;
    cfg.l1_bytes = 4 * 1024;
    let addrs: Vec<u64> = (0..4096u64).map(|i| i * 4096).collect();
    let writes: Vec<Instr> = addrs
        .iter()
        .map(|&a| Instr::Mem {
            addr: a,
            is_write: true,
        })
        .collect();
    let mut sys = CmpSystem::new(cfg, vec![Script::new(writes)]);
    let mut mem = FixedMem::new(30);
    run(&mut sys, &mut mem, 200_000);
    assert!(
        mem.writes_seen.len() > 500,
        "only {} writebacks for thousands of dirty evictions",
        mem.writes_seen.len()
    );
    // Writebacks carry line-aligned addresses from the written set.
    for w in &mem.writes_seen {
        assert_eq!(w % 64, 0);
    }
}
