//! Property tests for the cache and coherence layers: the LRU cache is
//! checked against a naive reference model, and the MESI directory is
//! soaked with random transactions under permanent invariant checking.

use microbank_cpu::cache::{AccessResult, Cache};
use microbank_cpu::coherence::{Directory, LineState};
use proptest::prelude::*;
use std::collections::HashMap;

/// Naive reference model: fully explicit per-set LRU lists.
struct RefCache {
    sets: usize,
    assoc: usize,
    // set -> ordered (MRU first) list of (tag, dirty)
    data: HashMap<usize, Vec<(u64, bool)>>,
}

impl RefCache {
    fn new(bytes: usize, assoc: usize) -> Self {
        let sets = bytes / 64 / assoc;
        RefCache {
            sets,
            assoc,
            data: HashMap::new(),
        }
    }

    fn access(&mut self, addr: u64, is_write: bool) -> bool {
        let line = addr >> 6;
        let set = (line as usize) % self.sets;
        let tag = line / self.sets as u64;
        let list = self.data.entry(set).or_default();
        if let Some(pos) = list.iter().position(|&(t, _)| t == tag) {
            let (t, d) = list.remove(pos);
            list.insert(0, (t, d || is_write));
            true
        } else {
            list.insert(0, (tag, is_write));
            if list.len() > self.assoc {
                list.pop();
            }
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cache_matches_reference_lru_model(
        accesses in prop::collection::vec((0u64..(1 << 16), any::<bool>()), 1..600)
    ) {
        let mut cache = Cache::new(4096, 4); // small cache stresses eviction
        let mut reference = RefCache::new(4096, 4);
        for (addr, w) in accesses {
            let addr = addr & !63;
            let got_hit = matches!(cache.access(addr, w), AccessResult::Hit);
            let want_hit = reference.access(addr, w);
            prop_assert_eq!(got_hit, want_hit, "divergence at {:#x}", addr);
        }
    }

    #[test]
    fn cache_capacity_is_never_exceeded(
        accesses in prop::collection::vec(0u64..(1 << 20), 1..500)
    ) {
        let mut cache = Cache::new(8192, 4);
        let mut inserted = std::collections::HashSet::new();
        for addr in accesses {
            let addr = addr & !63;
            cache.access(addr, false);
            inserted.insert(addr);
        }
        // Count lines still resident: bounded by capacity.
        let resident = inserted.iter().filter(|&&a| cache.contains(a)).count();
        prop_assert!(resident <= 8192 / 64, "{resident} lines resident");
    }

    #[test]
    fn directory_invariants_hold_under_random_transactions(
        ops in prop::collection::vec((0u64..64, 0usize..8, 0u8..4, any::<bool>()), 1..800)
    ) {
        let mut dir = Directory::new();
        // Track which clusters believe they hold each line, mirroring what
        // an L2 would do with the directory's answers.
        let mut holders: HashMap<u64, std::collections::HashSet<usize>> = HashMap::new();
        for (line_idx, cluster, op, dirty) in ops {
            let line = line_idx * 64;
            match op {
                0 | 1 => {
                    dir.read_miss(line, cluster);
                    holders.entry(line).or_default().insert(cluster);
                }
                2 => {
                    let (_, inv) = dir.write_miss(line, cluster);
                    let h = holders.entry(line).or_default();
                    let mut bits = inv;
                    while bits != 0 {
                        let c = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        h.remove(&c);
                    }
                    h.insert(cluster);
                }
                _ => {
                    let h = holders.entry(line).or_default();
                    if h.remove(&cluster) {
                        dir.evict(line, cluster, dirty);
                    }
                }
            }
            dir.check_invariants().unwrap();
        }
        // Directory sharers ⊆ believed holders for every tracked line.
        for (&line, h) in &holders {
            let (state, sharers) = dir.state_of(line);
            if state != LineState::Uncached {
                let mut bits = sharers;
                while bits != 0 {
                    let c = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    prop_assert!(h.contains(&c), "dir thinks {c} holds {line:#x}");
                }
            }
        }
    }
}

#[test]
fn modified_line_has_single_owner_through_ping_pong() {
    let mut dir = Directory::new();
    // Two clusters write the same line alternately 100 times.
    for i in 0..100 {
        let writer = i % 2;
        dir.write_miss(0x1000, writer);
        let (state, sharers) = dir.state_of(0x1000);
        assert_eq!(state, LineState::Modified);
        assert_eq!(sharers.count_ones(), 1);
        assert_eq!(sharers.trailing_zeros() as usize, writer);
    }
    assert!(dir.invalidation_msgs >= 99);
}
