//! The out-of-order core model: a 32-entry reorder buffer with 2-wide
//! dispatch and commit (§VI-A).
//!
//! Fidelity note: the model tracks exactly what the paper's IPC results
//! depend on — in-order commit over a bounded window, so long-latency loads
//! stall the core once the ROB fills, and the ROB bound (together with the
//! MSHRs) caps memory-level parallelism. Non-memory instructions retire
//! after a fixed pipeline latency; stores are posted (write-buffer
//! semantics) and do not block commit.

use crate::instr::{Instr, InstrSource};
use microbank_core::Cycle;
use std::collections::VecDeque;

/// Outcome of handing a memory instruction to the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOutcome {
    /// Serviced at a known time (cache hit, or a posted store).
    ReadyAt(Cycle),
    /// A line miss is in flight; `Core::complete_load` will be called.
    Pending,
    /// Structural stall (MSHRs full): retry next cycle.
    Stall,
}

/// Why a quiesced core cannot progress — names the stall counter that
/// dispatch would have bumped on each skipped cycle, so bulk accounting
/// stays bit-identical to per-cycle ticking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// The ROB is full with an unready head; dispatch counts a ROB-full
    /// stall per cycle.
    RobFull,
    /// Dispatch is replaying an instruction against a full MSHR file;
    /// each retry counts an MSHR stall.
    MshrReplay,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    /// `Some(c)`: ready to commit at cycle `c`. `None`: waiting on memory.
    ready_at: Option<Cycle>,
}

/// Per-core statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    pub committed: u64,
    pub mem_instrs: u64,
    pub loads: u64,
    pub stores: u64,
    /// Cycles in which nothing could be dispatched because the ROB was full.
    pub rob_full_cycles: u64,
    /// Cycles in which dispatch stalled on a structural hazard (MSHRs).
    pub mshr_stall_cycles: u64,
}

/// One out-of-order core.
#[derive(Debug)]
pub struct Core {
    pub id: u16,
    rob: VecDeque<RobEntry>,
    head_seq: u64,
    next_seq: u64,
    rob_capacity: usize,
    issue_width: usize,
    alu_latency: u64,
    /// Instruction buffered after an MSHR stall, replayed next cycle.
    replay: Option<Instr>,
    pub stats: CoreStats,
}

impl Core {
    pub fn new(id: u16, rob_capacity: usize, issue_width: usize, alu_latency: u64) -> Self {
        Core {
            id,
            rob: VecDeque::with_capacity(rob_capacity),
            head_seq: 0,
            next_seq: 0,
            rob_capacity,
            issue_width,
            alu_latency,
            replay: None,
            stats: CoreStats::default(),
        }
    }

    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Commit up to `issue_width` ready instructions from the ROB head.
    pub fn commit(&mut self, now: Cycle) -> usize {
        let mut n = 0;
        while n < self.issue_width {
            match self.rob.front() {
                Some(e) if e.ready_at.is_some_and(|r| r <= now) => {
                    self.rob.pop_front();
                    self.head_seq += 1;
                    self.stats.committed += 1;
                    n += 1;
                }
                _ => break,
            }
        }
        n
    }

    /// Dispatch up to `issue_width` instructions from `source`, calling
    /// `mem` for each memory instruction. `mem(addr, is_write, seq)` must
    /// return how the access resolves.
    pub fn dispatch<S: InstrSource>(
        &mut self,
        now: Cycle,
        source: &mut S,
        mut mem: impl FnMut(u64, bool, u64) -> MemOutcome,
    ) {
        if self.rob.len() >= self.rob_capacity {
            self.stats.rob_full_cycles += 1;
            return;
        }
        for _ in 0..self.issue_width {
            if self.rob.len() >= self.rob_capacity {
                break;
            }
            let instr = match self.replay.take() {
                Some(i) => i,
                None => source.next_instr(),
            };
            match instr {
                Instr::Compute => {
                    self.rob.push_back(RobEntry {
                        ready_at: Some(now + self.alu_latency),
                    });
                    self.next_seq += 1;
                }
                Instr::Mem { addr, is_write } => {
                    let seq = self.next_seq;
                    match mem(addr, is_write, seq) {
                        MemOutcome::ReadyAt(c) => {
                            self.rob.push_back(RobEntry { ready_at: Some(c) });
                            self.next_seq += 1;
                            self.note_mem(is_write);
                        }
                        MemOutcome::Pending => {
                            self.rob.push_back(RobEntry { ready_at: None });
                            self.next_seq += 1;
                            self.note_mem(is_write);
                        }
                        MemOutcome::Stall => {
                            self.replay = Some(instr);
                            self.stats.mshr_stall_cycles += 1;
                            break;
                        }
                    }
                }
            }
        }
    }

    fn note_mem(&mut self, is_write: bool) {
        self.stats.mem_instrs += 1;
        if is_write {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
    }

    /// Earliest cycle at which ticking this core can change anything
    /// beyond the stall counter named by the returned [`StallKind`], given
    /// its state after this cycle's commit+dispatch. Returns cycle 0 when
    /// the core must tick next cycle (ROB has space and dispatch is not
    /// wedged). Two stalls quiesce a core:
    ///
    /// - **ROB full**: nothing moves until the head entry is ready —
    ///   `Cycle::MAX` while the head waits on memory (a
    ///   [`Core::complete_load`] re-evaluates), else the head's ready
    ///   time. Each skipped cycle would have counted a ROB-full stall.
    /// - **MSHR-wedged replay**: dispatch is stuck retrying the same
    ///   instruction against a full MSHR file, which only a fill can
    ///   drain. Commit still pops the head once it is ready, so the wake
    ///   is the head's ready time (`Cycle::MAX` for a pending head or an
    ///   empty ROB, where only posted-write fills hold the MSHRs). Each
    ///   skipped cycle would have counted an MSHR stall.
    ///
    /// Callers that skip the intervening cycles must account each one via
    /// [`Core::account_rob_full_cycles`] or
    /// [`Core::account_mshr_stall_cycles`] per the returned kind, and must
    /// re-evaluate on any event that can unwedge the core (a fill to its
    /// cluster may free an MSHR without completing one of its own loads).
    pub fn quiesced_until(&self) -> (Cycle, StallKind) {
        if self.rob.len() >= self.rob_capacity {
            let w = match self.rob.front() {
                Some(e) => e.ready_at.unwrap_or(Cycle::MAX),
                None => 0, // capacity 0 cannot happen; be conservative
            };
            return (w, StallKind::RobFull);
        }
        if self.replay.is_some() {
            let w = match self.rob.front() {
                Some(e) => e.ready_at.unwrap_or(Cycle::MAX),
                None => Cycle::MAX, // drained ROB; MSHRs held by posted writes
            };
            return (w, StallKind::MshrReplay);
        }
        (0, StallKind::RobFull)
    }

    /// Bulk-account skipped ROB-full cycles (see [`Core::quiesced_until`]).
    pub fn account_rob_full_cycles(&mut self, n: u64) {
        self.stats.rob_full_cycles += n;
    }

    /// Bulk-account skipped MSHR-stall cycles (see
    /// [`Core::quiesced_until`]).
    pub fn account_mshr_stall_cycles(&mut self, n: u64) {
        self.stats.mshr_stall_cycles += n;
    }

    /// A pending load (ROB sequence `seq`) finished at `now`.
    pub fn complete_load(&mut self, seq: u64, now: Cycle) {
        if seq < self.head_seq {
            return; // already committed (possible only for posted ops)
        }
        let idx = (seq - self.head_seq) as usize;
        if let Some(e) = self.rob.get_mut(idx) {
            debug_assert!(e.ready_at.is_none(), "double completion for seq {seq}");
            e.ready_at = Some(now);
        }
    }

    /// IPC over `cycles`.
    pub fn ipc(&self, cycles: Cycle) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.stats.committed as f64 / cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::FixedSource;

    fn compute_only() -> FixedSource {
        FixedSource::new(vec![], 1_000_000_000)
    }

    #[test]
    fn compute_stream_reaches_full_width_ipc() {
        let mut core = Core::new(0, 32, 2, 1);
        let mut src = compute_only();
        for now in 0..1000u64 {
            core.commit(now);
            core.dispatch(now, &mut src, |_, _, _| MemOutcome::ReadyAt(now));
        }
        // Steady state: 2 IPC (minus pipeline fill).
        assert!(core.stats.committed >= 1990, "{}", core.stats.committed);
    }

    #[test]
    fn pending_load_blocks_commit_until_completed() {
        let mut core = Core::new(0, 4, 2, 1);
        let mut src = FixedSource::new(vec![0x40], 1); // every instr is a load
        core.dispatch(0, &mut src, |_, _, _| MemOutcome::Pending);
        assert_eq!(core.rob_occupancy(), 2);
        for now in 1..10 {
            assert_eq!(core.commit(now), 0);
            core.dispatch(now, &mut src, |_, _, _| MemOutcome::Pending);
        }
        // ROB capped at 4 pending loads.
        assert_eq!(core.rob_occupancy(), 4);
        assert!(core.stats.rob_full_cycles > 0);
        core.complete_load(0, 10);
        assert_eq!(core.commit(10), 1);
        assert_eq!(core.stats.committed, 1);
    }

    #[test]
    fn completion_order_can_be_out_of_order() {
        let mut core = Core::new(0, 8, 2, 1);
        let mut src = FixedSource::new(vec![0x40], 1);
        core.dispatch(0, &mut src, |_, _, _| MemOutcome::Pending);
        // Complete the *second* load first: nothing commits (in-order).
        core.complete_load(1, 5);
        assert_eq!(core.commit(5), 0);
        core.complete_load(0, 6);
        assert_eq!(core.commit(6), 2, "both commit once the head is ready");
    }

    #[test]
    fn mshr_stall_replays_same_instruction() {
        let mut core = Core::new(0, 8, 2, 1);
        let mut src = FixedSource::new(vec![0x40], 1);
        let mut calls = Vec::new();
        core.dispatch(0, &mut src, |a, _, _| {
            calls.push(a);
            MemOutcome::Stall
        });
        core.dispatch(1, &mut src, |a, _, _| {
            calls.push(a);
            MemOutcome::ReadyAt(2)
        });
        // Address replayed, not skipped (the third call is the next
        // instruction dispatched in the same width-2 cycle).
        assert_eq!(&calls[..2], &[0x40, 0x40]);
        assert_eq!(core.stats.mshr_stall_cycles, 1);
    }

    #[test]
    fn ipc_accounting() {
        let mut core = Core::new(0, 32, 2, 1);
        let mut src = compute_only();
        for now in 0..100u64 {
            core.commit(now);
            core.dispatch(now, &mut src, |_, _, _| MemOutcome::ReadyAt(now));
        }
        let ipc = core.ipc(100);
        assert!(ipc > 1.9 && ipc <= 2.0, "{ipc}");
    }
}
