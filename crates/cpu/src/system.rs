//! The full chip-multiprocessor: cores, private L1s, per-cluster shared
//! L2s, the MESI directory, and the memory port toward the controllers.
//!
//! The simulator crate owns the memory controllers; this crate talks to
//! them through the [`MemPort`] trait and receives fills via
//! [`CmpSystem::on_fill`]. All latencies on the cache/NoC path come from
//! [`crate::config::CmpConfig`].

use crate::cache::Cache;
use crate::coherence::{CoherenceAction, Directory, LineState};
use crate::config::CmpConfig;
use crate::instr::InstrSource;
use crate::mshr::MshrFile;
use crate::prefetch::StreamPrefetcher;
use crate::rob::{Core, MemOutcome, StallKind};
use microbank_core::fxhash::{FxHashMap, FxHashSet};
use microbank_core::request::TenantId;
use microbank_core::Cycle;
use std::collections::VecDeque;

/// A main-memory line request leaving the CMP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmittedReq {
    pub id: u64,
    pub addr: u64,
    pub is_write: bool,
    /// Issuing core (hardware thread) — consumed by PAR-BS batching.
    pub thread: u16,
    /// Owning tenant (from the issuing core's instruction source) —
    /// consumed by the controller's QoS regulator. `TenantId(0)` in
    /// single-tenant runs.
    pub tenant: TenantId,
}

/// The CMP's window to the memory controllers (implemented by the sim).
pub trait MemPort {
    /// Try to hand a request to the owning controller; `false` = queue full
    /// (the CMP retries from its backlog next cycle).
    fn submit(&mut self, req: SubmittedReq, now: Cycle) -> bool;
}

/// An in-flight main-memory fill.
#[derive(Debug, Clone)]
pub struct PendingMem {
    pub line: u64,
    pub cluster: usize,
    /// Loads to wake: (core index, ROB sequence).
    pub waiters: Vec<(usize, u64)>,
    /// The arriving line must be installed dirty (merged store).
    pub write_intent: bool,
}

/// Aggregate CMP statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemStats {
    pub dram_reads: u64,
    pub dram_writes: u64,
    /// Completed cache-to-cache transfers (coherence forwards).
    pub forwards: u64,
    /// L2 upgrade operations (write to a Shared line).
    pub upgrades: u64,
    /// Prefetch reads issued to main memory.
    pub prefetches: u64,
    /// Demand accesses that hit a line brought in by the prefetcher.
    pub prefetch_hits: u64,
}

/// Everything outside the cores, grouped so `tick` can split borrows.
struct Uncore {
    cfg: CmpConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    mshr: Vec<MshrFile>,
    prefetchers: Vec<StreamPrefetcher>,
    /// Lines resident because of a prefetch: (cluster, line).
    prefetched: FxHashSet<(usize, u64)>,
    dir: Directory,
    /// line → in-flight request id.
    pending_by_line: FxHashMap<u64, u64>,
    inflight: FxHashMap<u64, PendingMem>,
    /// Requests not yet accepted by a full controller queue.
    backlog: VecDeque<SubmittedReq>,
    next_id: u64,
    stats: SystemStats,
    /// Per-core tenant table, sampled once from the instruction sources at
    /// construction; indexed by core (== hardware thread) id.
    tenants: Vec<TenantId>,
}

impl Uncore {
    fn line_of(addr: u64) -> u64 {
        addr & !(microbank_core::CACHE_LINE_BYTES - 1)
    }

    fn cores_of(&self, cluster: usize) -> std::ops::Range<usize> {
        let k = self.cfg.cores_per_cluster;
        cluster * k..(cluster * k + k).min(self.l1.len())
    }

    /// Tenant owning hardware thread `thread` (core index).
    fn tenant_of(&self, thread: u16) -> TenantId {
        self.tenants
            .get(thread as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Send (or queue) a posted memory write.
    fn post_write(&mut self, line: u64, thread: u16, now: Cycle, port: &mut dyn MemPort) {
        let req = SubmittedReq {
            id: self.next_id,
            addr: line,
            is_write: true,
            thread,
            tenant: self.tenant_of(thread),
        };
        self.next_id += 1;
        self.stats.dram_writes += 1;
        if !self.backlog.is_empty() || !port.submit(req, now) {
            self.backlog.push_back(req);
        }
    }

    /// An L2 slice evicted `victim`: keep inclusion (drop L1 copies, OR in
    /// their dirtiness), update the directory, write back if needed.
    fn handle_l2_victim(
        &mut self,
        cluster: usize,
        addr: u64,
        mut dirty: bool,
        thread: u16,
        now: Cycle,
        port: &mut dyn MemPort,
    ) {
        for core in self.cores_of(cluster) {
            if let Some(l1_dirty) = self.l1[core].invalidate(addr) {
                dirty |= l1_dirty;
            }
        }
        if self.dir.evict(addr, cluster, dirty) {
            self.post_write(addr, thread, now, port);
        }
    }

    /// Install a line into a cluster's L2 and one core's L1.
    fn fill_hierarchy(
        &mut self,
        core: usize,
        cluster: usize,
        line: u64,
        dirty: bool,
        now: Cycle,
        port: &mut dyn MemPort,
    ) {
        if let Some(v) = self.l2[cluster].fill(line, dirty) {
            self.handle_l2_victim(cluster, v.addr, v.dirty, core as u16, now, port);
        }
        if let Some(v) = self.l1[core].fill(line, false) {
            if v.dirty {
                if let Some(v2) = self.l2[cluster].fill(v.addr, true) {
                    self.handle_l2_victim(cluster, v2.addr, v2.dirty, core as u16, now, port);
                }
            }
        }
    }

    /// Apply write invalidations to every other cluster in `bitmap`.
    fn apply_invalidations(&mut self, line: u64, bitmap: u64, now: Cycle, port: &mut dyn MemPort) {
        let mut bits = bitmap;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let mut dirty = self.l2[c].invalidate(line).unwrap_or(false);
            for core in self.cores_of(c) {
                if let Some(d) = self.l1[core].invalidate(line) {
                    dirty |= d;
                }
            }
            // A dirty invalidated copy migrates to the writer, not memory;
            // memory is updated when the new owner eventually evicts. The
            // case only arises when the directory believed the line Shared
            // (clean), so dirty here indicates an L1-only write: fold it
            // into the writer's copy by ignoring (the writer installs
            // dirty anyway).
            let _ = dirty;
            let _ = (now, &port);
        }
    }

    /// Issue stream prefetches triggered by a demand miss to `line`.
    /// Prefetches fetch only directory-uncached lines (never disturbing a
    /// remote owner), carry no waiters, and bypass the MSHR budget the way
    /// a hardware prefetch queue does.
    fn issue_prefetches(
        &mut self,
        core: usize,
        cluster: usize,
        line: u64,
        now: Cycle,
        port: &mut dyn MemPort,
    ) {
        if !self.prefetchers[core].enabled() {
            return;
        }
        for pf in self.prefetchers[core].on_miss(line) {
            if self.l2[cluster].contains(pf) || self.pending_by_line.contains_key(&pf) {
                continue;
            }
            let (state, _) = self.dir.state_of(pf);
            if state != LineState::Uncached {
                continue;
            }
            self.dir.read_miss(pf, cluster);
            let id = self.next_id;
            self.next_id += 1;
            self.inflight.insert(
                id,
                PendingMem {
                    line: pf,
                    cluster,
                    waiters: Vec::new(),
                    write_intent: false,
                },
            );
            self.pending_by_line.insert(pf, id);
            self.prefetched.insert((cluster, pf));
            self.stats.prefetches += 1;
            self.stats.dram_reads += 1;
            let req = SubmittedReq {
                id,
                addr: pf,
                is_write: false,
                thread: core as u16,
                tenant: self.tenant_of(core as u16),
            };
            if !self.backlog.is_empty() || !port.submit(req, now) {
                self.backlog.push_back(req);
            }
        }
    }

    /// The full memory-access path for one instruction. Returns how the
    /// core should treat it.
    #[allow(clippy::too_many_arguments)]
    fn mem_access(
        &mut self,
        core: usize,
        cluster: usize,
        addr: u64,
        is_write: bool,
        seq: u64,
        now: Cycle,
        port: &mut dyn MemPort,
    ) -> MemOutcome {
        let cfg = self.cfg;
        let line = Self::line_of(addr);
        let store_done = now + cfg.l1_latency; // posted stores never block
                                               // L1 hit (single way scan).
        if self.l1[core].probe_hit(line, is_write).is_some() {
            return MemOutcome::ReadyAt(now + cfg.l1_latency);
        }
        self.l1[core].misses += 1; // classified miss (fill path below)
                                   // L2 hit (single way scan; the LRU/dirty
                                   // update commutes with the directory
                                   // calls below, which never touch this
                                   // cluster's own caches).
        if let Some(way) = self.l2[cluster].probe_hit(line, is_write) {
            if self.prefetched.remove(&(cluster, line)) {
                self.stats.prefetch_hits += 1;
            }
            let mut latency = cfg.l1_latency + cfg.l2_latency;
            if is_write {
                // MESI: writing a line we may only share → upgrade.
                let (action, inv) = self.dir.write_miss(line, cluster);
                if inv != 0 {
                    self.stats.upgrades += 1;
                    latency += cfg.dir_latency + cfg.noc_latency;
                }
                let _ = action; // data already local
                self.apply_invalidations(line, inv, now, port);
            }
            // `fill_hierarchy` specialized for a line we just probed in
            // this L2: its `l2.fill(line, false)` finds the line present
            // (the invalidations above touch other clusters only) and
            // reduces to an LRU retouch of the known way, with no victim.
            self.l2[cluster].retouch(way);
            if let Some(v) = self.l1[core].fill(line, false) {
                if v.dirty {
                    if let Some(v2) = self.l2[cluster].fill(v.addr, true) {
                        self.handle_l2_victim(cluster, v2.addr, v2.dirty, core as u16, now, port);
                    }
                }
            }
            if is_write {
                // Keep the L2 copy marked dirty after the refill.
                self.l2[cluster].access(line, true);
                self.l2[cluster].hits -= 1; // bookkeeping access, not demand
            }
            return MemOutcome::ReadyAt(now + latency);
        }
        self.l2[cluster].misses += 1;
        // Merge into an in-flight fill for the same line+cluster.
        if let Some(&id) = self.pending_by_line.get(&line) {
            let p = self.inflight.get_mut(&id).expect("pending id");
            if p.cluster == cluster {
                if !is_write {
                    p.waiters.push((core, seq));
                }
                p.write_intent |= is_write;
                return if is_write {
                    MemOutcome::ReadyAt(store_done)
                } else {
                    MemOutcome::Pending
                };
            }
            // Different cluster racing on the same line: rare; let it go
            // through the directory as its own transaction below.
        }
        // Structural limit on outstanding misses per core.
        if self.mshr[core].is_full() {
            return MemOutcome::Stall;
        }
        // Coherence resolution at the line's home directory.
        let (action, inv) = if is_write {
            self.dir.write_miss(line, cluster)
        } else {
            (self.dir.read_miss(line, cluster), 0)
        };
        self.apply_invalidations(line, inv, now, port);
        match action {
            CoherenceAction::ForwardFromOwner {
                owner,
                demote_writeback,
            } => {
                self.stats.forwards += 1;
                if demote_writeback {
                    self.l2[owner].clean(line);
                    self.post_write(line, core as u16, now, port);
                }
                if is_write && owner != cluster {
                    // Exclusive ownership migrates away from `owner`.
                    self.l2[owner].invalidate(line);
                    for c in self.cores_of(owner) {
                        self.l1[c].invalidate(line);
                    }
                }
                self.fill_hierarchy(core, cluster, line, is_write, now, port);
                let latency = cfg.l1_latency
                    + cfg.l2_latency
                    + cfg.dir_latency
                    + cfg.noc_latency
                    + cfg.remote_l2_latency;
                MemOutcome::ReadyAt(now + if is_write { cfg.l1_latency } else { latency })
            }
            CoherenceAction::FetchFromMemory => {
                if !self.mshr[core].contains(line) {
                    self.mshr[core].allocate(line, Some(seq), is_write);
                } else {
                    self.mshr[core].merge(line, Some(seq), is_write);
                }
                let id = self.next_id;
                self.next_id += 1;
                let waiters = if is_write {
                    Vec::new()
                } else {
                    vec![(core, seq)]
                };
                self.inflight.insert(
                    id,
                    PendingMem {
                        line,
                        cluster,
                        waiters,
                        write_intent: is_write,
                    },
                );
                self.pending_by_line.insert(line, id);
                let req = SubmittedReq {
                    id,
                    addr: line,
                    is_write: false,
                    thread: core as u16,
                    tenant: self.tenant_of(core as u16),
                };
                self.stats.dram_reads += 1;
                if !self.backlog.is_empty() || !port.submit(req, now) {
                    self.backlog.push_back(req);
                }
                self.issue_prefetches(core, cluster, line, now, port);
                if is_write {
                    MemOutcome::ReadyAt(store_done)
                } else {
                    MemOutcome::Pending
                }
            }
        }
    }
}

/// The 64-core CMP with its instruction sources.
pub struct CmpSystem<S: InstrSource> {
    pub cfg: CmpConfig,
    cores: Vec<Core>,
    sources: Vec<S>,
    uncore: Uncore,
    /// Per-core earliest-progress cycle: while `core_wake[i] > now`, core
    /// `i` can make no progress before `core_wake[i]` — its ROB is full
    /// with an unready head, or its dispatch is wedged on an MSHR-stalled
    /// replay — so ticking it would only bump the stall counter named by
    /// `core_stall[i]`, which the skip accounts directly. Any fill for
    /// the core (or, for MSHR wedges, any fill to its cluster that frees
    /// an MSHR) resets its entry to 0 (see [`CmpSystem::on_fill`]).
    core_wake: Vec<Cycle>,
    /// Which stall counter each quiesced core accrues per skipped cycle
    /// (valid while `core_wake[i] > now`; see [`Core::quiesced_until`]).
    core_stall: Vec<StallKind>,
}

impl<S: InstrSource> CmpSystem<S> {
    /// Build a CMP running one instruction source per core.
    pub fn new(cfg: CmpConfig, sources: Vec<S>) -> Self {
        assert_eq!(sources.len(), cfg.cores, "one source per core");
        let cores = (0..cfg.cores)
            .map(|i| Core::new(i as u16, cfg.rob_entries, cfg.issue_width, cfg.alu_latency))
            .collect();
        let clusters = cfg.clusters();
        let tenants = sources.iter().map(|s| s.tenant()).collect();
        CmpSystem {
            cfg,
            cores,
            sources,
            core_wake: vec![0; cfg.cores],
            core_stall: vec![StallKind::RobFull; cfg.cores],
            uncore: Uncore {
                cfg,
                l1: (0..cfg.cores)
                    .map(|_| Cache::new(cfg.l1_bytes, cfg.l1_assoc))
                    .collect(),
                l2: (0..clusters)
                    .map(|_| Cache::new(cfg.l2_bytes, cfg.l2_assoc))
                    .collect(),
                mshr: (0..cfg.cores)
                    .map(|_| MshrFile::new(cfg.mshrs_per_core))
                    .collect(),
                prefetchers: (0..cfg.cores)
                    .map(|_| StreamPrefetcher::new(cfg.prefetch_degree))
                    .collect(),
                prefetched: FxHashSet::default(),
                dir: Directory::new(),
                pending_by_line: FxHashMap::default(),
                inflight: FxHashMap::default(),
                backlog: VecDeque::new(),
                next_id: 0,
                stats: SystemStats::default(),
                tenants,
            },
        }
    }

    /// Advance every core one cycle, submitting memory traffic to `port`.
    pub fn tick(&mut self, now: Cycle, port: &mut dyn MemPort) {
        // Retry backlogged submissions first (bounded by MSHRs).
        while let Some(&req) = self.uncore.backlog.front() {
            if port.submit(req, now) {
                self.uncore.backlog.pop_front();
            } else {
                break;
            }
        }
        let uncore = &mut self.uncore;
        for (i, core) in self.cores.iter_mut().enumerate() {
            // A quiesced core (full ROB with an unready head, or dispatch
            // wedged on an MSHR-stalled replay) can make no progress:
            // ticking it would only bump one stall counter. Account that
            // stall and skip the whole cache/closure path (dominant when
            // most cores block on the massive-bank memory system).
            if self.core_wake[i] > now {
                match self.core_stall[i] {
                    StallKind::RobFull => core.account_rob_full_cycles(1),
                    StallKind::MshrReplay => core.account_mshr_stall_cycles(1),
                }
                continue;
            }
            core.commit(now);
            let cluster = i / uncore.cfg.cores_per_cluster;
            let src = &mut self.sources[i];
            core.dispatch(now, src, |addr, w, seq| {
                uncore.mem_access(i, cluster, addr, w, seq, now, port)
            });
            let (wake, stall) = core.quiesced_until();
            self.core_wake[i] = wake;
            self.core_stall[i] = stall;
        }
    }

    /// Earliest cycle after `now` at which [`CmpSystem::tick`] could do
    /// anything beyond bulk-accountable stalls (ROB-full or MSHR-wedged,
    /// per [`Core::quiesced_until`]), with CPU state frozen. Returns
    /// `now + 1` ("must tick next cycle") while the submit backlog is
    /// non-empty (each failed retry mutates controller reject counters)
    /// or any core can make progress; otherwise the minimum `core_wake` —
    /// every skipped cycle up to (exclusive) that horizon would only run
    /// the per-core stall-skip branch, which
    /// [`CmpSystem::account_skipped_cycles`] replays in bulk. A fill
    /// ([`CmpSystem::on_fill`]) resets `core_wake` and thereby ends any
    /// skip stretch; the drive loop delivers fills before re-asking.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        if !self.uncore.backlog.is_empty() {
            return now + 1;
        }
        self.core_horizon(now)
    }

    /// The core half of [`CmpSystem::next_event`]: earliest cycle any
    /// *core* could make progress, ignoring the submit backlog (minimum
    /// `core_wake`, or `now + 1` while some core is unstalled). A caller
    /// that jumps past cycles with a non-empty backlog must prove each
    /// skipped cycle's head retry fails — the head targets a full
    /// controller queue and that controller does not tick inside the jump
    /// — and replay the failed attempts
    /// ([`MemoryController::account_rejected`] in `microbank-ctrl`).
    pub fn core_horizon(&self, now: Cycle) -> Cycle {
        let mut min = Cycle::MAX;
        for &w in &self.core_wake {
            if w <= now + 1 {
                return now + 1;
            }
            min = min.min(w);
        }
        min
    }

    /// Address of the oldest backlogged (rejected) submission, if any.
    /// Only the head is retried each tick, so the head alone decides
    /// whether a skipped cycle's retry would have succeeded.
    pub fn backlog_head_addr(&self) -> Option<u64> {
        self.uncore.backlog.front().map(|r| r.addr)
    }

    /// Replay `n` skipped cycles' worth of CPU-side accounting: every core
    /// was quiesced for all of them (guaranteed by the
    /// [`CmpSystem::next_event`] horizon), so each accrues `n` cycles of
    /// its frozen stall kind and nothing else.
    pub fn account_skipped_cycles(&mut self, n: u64) {
        for (core, stall) in self.cores.iter_mut().zip(&self.core_stall) {
            match stall {
                StallKind::RobFull => core.account_rob_full_cycles(n),
                StallKind::MshrReplay => core.account_mshr_stall_cycles(n),
            }
        }
    }

    /// A main-memory read for request `id` completed; install the line and
    /// wake its waiters. Unknown ids (posted writes) are ignored.
    pub fn on_fill(&mut self, id: u64, now: Cycle, port: &mut dyn MemPort) {
        let Some(p) = self.uncore.inflight.remove(&id) else {
            return;
        };
        self.uncore.pending_by_line.remove(&p.line);
        if let Some(v) = self.uncore.l2[p.cluster].fill(p.line, p.write_intent) {
            self.uncore
                .handle_l2_victim(p.cluster, v.addr, v.dirty, 0, now, port);
        }
        let ready = now + self.cfg.l2_latency;
        for &(core, seq) in &p.waiters {
            if let Some(v) = self.uncore.l1[core].fill(p.line, false) {
                if v.dirty {
                    if let Some(v2) = self.uncore.l2[p.cluster].fill(v.addr, true) {
                        self.uncore
                            .handle_l2_victim(p.cluster, v2.addr, v2.dirty, 0, now, port);
                    }
                }
            }
            self.cores[core].complete_load(seq, ready);
            self.core_wake[core] = 0; // re-evaluate stall next tick
        }
        // Release every core's MSHR entry for this line. A freed entry can
        // unwedge a core whose dispatch is replaying against a full MSHR
        // file even when none of its own loads completed, so its wake must
        // be re-evaluated at the next tick.
        for core in self.uncore.cores_of(p.cluster) {
            if self.uncore.mshr[core].complete(p.line).is_some()
                && self.core_stall[core] == StallKind::MshrReplay
            {
                self.core_wake[core] = 0;
            }
        }
    }

    /// Total committed instructions across all cores.
    pub fn total_committed(&self) -> u64 {
        self.cores.iter().map(|c| c.stats.committed).sum()
    }

    /// System IPC (committed instructions per cycle, summed over cores).
    pub fn ipc(&self, cycles: Cycle) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.total_committed() as f64 / cycles as f64
        }
    }

    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    pub fn stats(&self) -> SystemStats {
        self.uncore.stats
    }

    pub fn directory(&self) -> &Directory {
        &self.uncore.dir
    }

    /// Aggregate L1 hit rate across cores.
    pub fn l1_hit_rate(&self) -> f64 {
        let (h, m) = self
            .uncore
            .l1
            .iter()
            .fold((0u64, 0u64), |(h, m), c| (h + c.hits, m + c.misses));
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Aggregate L2 hit rate across clusters.
    pub fn l2_hit_rate(&self) -> f64 {
        let (h, m) = self
            .uncore
            .l2
            .iter()
            .fold((0u64, 0u64), |(h, m), c| (h + c.hits, m + c.misses));
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Outstanding main-memory requests (diagnostics; bounded by MSHRs).
    pub fn inflight_fills(&self) -> usize {
        self.uncore.inflight.len()
    }

    /// Requests waiting to be resubmitted because a controller queue was
    /// full — back-pressure the epoch sampler reports alongside controller
    /// queue occupancy.
    pub fn backlog_len(&self) -> usize {
        self.uncore.backlog.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::FixedSource;

    /// A memory that answers every read after a fixed delay.
    struct TestMemory {
        delay: Cycle,
        pending: Vec<(u64, Cycle)>,
        accepted: u64,
        reject_all: bool,
    }

    impl TestMemory {
        fn new(delay: Cycle) -> Self {
            TestMemory {
                delay,
                pending: Vec::new(),
                accepted: 0,
                reject_all: false,
            }
        }

        fn due(&mut self, now: Cycle) -> Vec<u64> {
            let (ready, rest): (Vec<_>, Vec<_>) =
                self.pending.drain(..).partition(|&(_, t)| t <= now);
            self.pending = rest;
            ready.into_iter().map(|(id, _)| id).collect()
        }
    }

    impl MemPort for TestMemory {
        fn submit(&mut self, req: SubmittedReq, now: Cycle) -> bool {
            if self.reject_all {
                return false;
            }
            self.accepted += 1;
            if !req.is_write {
                self.pending.push((req.id, now + self.delay));
            }
            true
        }
    }

    fn small_system(cores: usize, sources: Vec<FixedSource>) -> CmpSystem<FixedSource> {
        CmpSystem::new(CmpConfig::small(cores), sources)
    }

    fn run(sys: &mut CmpSystem<FixedSource>, mem: &mut TestMemory, cycles: Cycle) {
        for now in 0..cycles {
            for id in mem.due(now) {
                sys.on_fill(id, now, mem);
            }
            sys.tick(now, mem);
        }
    }

    #[test]
    fn compute_bound_core_hits_two_ipc() {
        let mut sys = small_system(1, vec![FixedSource::new(vec![], u64::MAX / 2)]);
        let mut mem = TestMemory::new(100);
        run(&mut sys, &mut mem, 1000);
        assert!(sys.ipc(1000) > 1.9, "{}", sys.ipc(1000));
        assert_eq!(mem.accepted, 0);
    }

    #[test]
    fn cache_resident_workload_avoids_dram() {
        // 8 lines in a 16 KB L1: after warmup everything hits.
        let addrs: Vec<u64> = (0..8).map(|i| i * 64).collect();
        let mut sys = small_system(1, vec![FixedSource::new(addrs, 4)]);
        let mut mem = TestMemory::new(100);
        run(&mut sys, &mut mem, 5000);
        assert!(mem.accepted <= 8, "{} DRAM requests", mem.accepted);
        assert!(sys.ipc(5000) > 1.5, "{}", sys.ipc(5000));
        assert!(sys.l1_hit_rate() > 0.9);
    }

    #[test]
    fn memory_latency_throttles_ipc() {
        // Every 4th instruction misses everywhere (huge strides).
        let addrs: Vec<u64> = (0..4096).map(|i| i * (1 << 16)).collect();
        let mut slow_ipc = 0.0;
        let mut fast_ipc = 0.0;
        for (delay, out) in [(400u64, &mut slow_ipc), (50, &mut fast_ipc)] {
            let mut sys = small_system(1, vec![FixedSource::new(addrs.clone(), 4)]);
            let mut mem = TestMemory::new(delay);
            run(&mut sys, &mut mem, 20_000);
            *out = sys.ipc(20_000);
        }
        assert!(
            fast_ipc > 1.5 * slow_ipc,
            "fast {fast_ipc} vs slow {slow_ipc}"
        );
    }

    #[test]
    fn rob_bounds_outstanding_misses() {
        let addrs: Vec<u64> = (0..4096).map(|i| i * (1 << 16)).collect();
        let mut sys = small_system(1, vec![FixedSource::new(addrs, 1)]);
        let mut mem = TestMemory::new(10_000); // effectively never answers
        run(&mut sys, &mut mem, 2000);
        // MSHRs (8) bound the in-flight fills.
        assert!(sys.inflight_fills() <= 8, "{}", sys.inflight_fills());
        assert_eq!(sys.total_committed(), 0, "all loads blocked");
    }

    #[test]
    fn fills_wake_loads_and_commit_resumes() {
        let addrs: Vec<u64> = (0..64).map(|i| i * (1 << 16)).collect();
        let mut sys = small_system(1, vec![FixedSource::new(addrs, 2)]);
        let mut mem = TestMemory::new(80);
        run(&mut sys, &mut mem, 10_000);
        assert!(sys.total_committed() > 1000, "{}", sys.total_committed());
        assert!(mem.accepted >= 64);
    }

    #[test]
    fn backlog_retries_when_port_rejects() {
        let addrs: Vec<u64> = (0..64).map(|i| i * (1 << 16)).collect();
        let mut sys = small_system(1, vec![FixedSource::new(addrs, 1)]);
        let mut mem = TestMemory::new(50);
        mem.reject_all = true;
        run(&mut sys, &mut mem, 100);
        assert_eq!(mem.accepted, 0);
        // Port opens: backlog drains and progress resumes.
        mem.reject_all = false;
        run(&mut sys, &mut mem, 5000);
        assert!(sys.total_committed() > 100, "{}", sys.total_committed());
    }

    #[test]
    fn shared_reads_are_forwarded_between_clusters() {
        // 8 cores = 2 clusters, all reading the same small array.
        let addrs: Vec<u64> = (0..16).map(|i| i * 64).collect();
        let sources = (0..8).map(|_| FixedSource::new(addrs.clone(), 4)).collect();
        let mut sys = small_system(8, sources);
        let mut mem = TestMemory::new(80);
        run(&mut sys, &mut mem, 10_000);
        assert!(sys.stats().forwards > 0, "no cache-to-cache transfers");
        // Memory traffic stays near the cold-miss minimum (≤ 2 clusters ×
        // 16 lines), far below total accesses.
        assert!(mem.accepted < 64, "{}", mem.accepted);
        sys.directory().check_invariants().unwrap();
    }

    #[test]
    fn writes_invalidate_remote_readers() {
        // Cluster 0 reads a line; core 4 (cluster 1) writes it repeatedly.
        let read_src = FixedSource::new(vec![0x40], 2);
        let mut write_src = FixedSource::new(vec![0x40], 2);
        // Make the writer's accesses stores.
        struct W(FixedSource);
        impl InstrSource for W {
            fn next_instr(&mut self) -> crate::instr::Instr {
                match self.0.next_instr() {
                    crate::instr::Instr::Mem { addr, .. } => crate::instr::Instr::Mem {
                        addr,
                        is_write: true,
                    },
                    other => other,
                }
            }
        }
        // Mixed source types: wrap everything as a trait-object-compatible
        // enum is overkill for the test; give every core the same W type.
        let mut sources: Vec<W> = Vec::new();
        for i in 0..8 {
            if i == 4 {
                sources.push(W(std::mem::replace(
                    &mut write_src,
                    FixedSource::new(vec![], 2),
                )));
            } else {
                sources.push(W(FixedSource::new(
                    if i == 0 {
                        read_src.addrs.clone()
                    } else {
                        vec![]
                    },
                    if i == 0 { 2 } else { u64::MAX / 2 },
                )));
            }
        }
        // Core 0 reads…  (W turns them into writes too; acceptable: we
        // exercise ownership migration between clusters both ways.)
        let mut sys = CmpSystem::new(CmpConfig::small(8), sources);
        let mut mem = TestMemory::new(60);
        for now in 0..20_000u64 {
            for id in mem.due(now) {
                sys.on_fill(id, now, &mut mem);
            }
            sys.tick(now, &mut mem);
        }
        sys.directory().check_invariants().unwrap();
        let (state, sharers) = sys.directory().state_of(0x40);
        assert!(sharers.count_ones() <= 1, "modified line with {sharers:b}");
        let _ = state;
        assert!(sys.stats().forwards > 0 || sys.stats().upgrades > 0);
    }
}
