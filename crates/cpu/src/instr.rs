//! The instruction-stream abstraction the workload generators implement.
//!
//! The core model consumes an infinite stream of retired-instruction slots:
//! either a non-memory instruction or a 64 B memory access. Workloads (in
//! `microbank-workloads`) synthesize these streams to match application
//! profiles (MAPKI, locality, read/write mix).

use microbank_core::request::TenantId;

/// One instruction slot as seen by the core model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// A non-memory instruction (ALU/branch/FP — retires after a fixed
    /// latency).
    Compute,
    /// A memory instruction touching the 64 B line containing `addr`.
    Mem { addr: u64, is_write: bool },
}

/// An infinite, deterministic instruction stream for one hardware thread.
pub trait InstrSource {
    /// Produce the next instruction. Streams never end; fixed-length
    /// experiments stop after N commits.
    fn next_instr(&mut self) -> Instr;

    /// The tenant this stream belongs to. Workload generators override
    /// this for multi-tenant mixes; the default keeps every single-tenant
    /// source on `TenantId(0)`. The CMP samples it once at construction
    /// (a core's tenant is fixed for a run) and stamps it into every
    /// memory request the core emits.
    fn tenant(&self) -> TenantId {
        TenantId::default()
    }
}

/// A trivial source for tests: `mapki` memory accesses per kilo-instruction,
/// round-robin over a fixed address list.
#[derive(Debug, Clone)]
pub struct FixedSource {
    pub addrs: Vec<u64>,
    pub period: u64,
    counter: u64,
    idx: usize,
}

impl FixedSource {
    /// A source issuing one memory access every `period` instructions,
    /// cycling through `addrs`.
    pub fn new(addrs: Vec<u64>, period: u64) -> Self {
        assert!(period >= 1);
        FixedSource {
            addrs,
            period,
            counter: 0,
            idx: 0,
        }
    }
}

impl InstrSource for FixedSource {
    fn next_instr(&mut self) -> Instr {
        self.counter += 1;
        if self.counter.is_multiple_of(self.period) && !self.addrs.is_empty() {
            let a = self.addrs[self.idx];
            self.idx = (self.idx + 1) % self.addrs.len();
            Instr::Mem {
                addr: a,
                is_write: false,
            }
        } else {
            Instr::Compute
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_source_period() {
        let mut s = FixedSource::new(vec![0x40, 0x80], 4);
        let instrs: Vec<Instr> = (0..8).map(|_| s.next_instr()).collect();
        let mems = instrs
            .iter()
            .filter(|i| matches!(i, Instr::Mem { .. }))
            .count();
        assert_eq!(mems, 2);
        assert_eq!(
            instrs[3],
            Instr::Mem {
                addr: 0x40,
                is_write: false
            }
        );
        assert_eq!(
            instrs[7],
            Instr::Mem {
                addr: 0x80,
                is_write: false
            }
        );
    }
}
