//! # microbank-cpu
//!
//! Cycle-level chip-multiprocessor model reproducing the paper's evaluation
//! platform (§VI-A): 64 out-of-order cores at 2 GHz, each issuing and
//! committing up to two instructions per cycle with a 32-entry reorder
//! buffer; private 16 KB 4-way L1 caches; a 2 MB 16-way L2 shared by each
//! 4-core cluster; MESI coherence kept by a directory at the memory
//! controllers; 16 clusters, each with a router and one memory controller.
//!
//! The model is deliberately at the fidelity the paper's results depend on:
//! IPC is governed by ROB-limited memory-level parallelism, cache hit
//! rates, and queueing at the memory controllers, all simulated cycle by
//! cycle against the DRAM timing model in `microbank-core`.
//!
//! * [`instr`] — the instruction-stream abstraction workloads implement.
//! * [`rob`] — the reorder-buffer core model.
//! * [`cache`] — set-associative write-back caches with LRU replacement.
//! * [`mshr`] — miss-status holding registers (MLP limiter + merge points).
//! * [`coherence`] — directory-based MESI among the L2 slices.
//! * [`system`] — the full CMP: clusters, routing, and the memory port.

pub mod cache;
pub mod coherence;
pub mod config;
pub mod instr;
pub mod mshr;
pub mod prefetch;
pub mod rob;
pub mod system;

pub use cache::{AccessResult, Cache};
pub use coherence::{CoherenceAction, Directory, LineState};
pub use config::CmpConfig;
pub use instr::{Instr, InstrSource};
pub use mshr::MshrFile;
pub use prefetch::StreamPrefetcher;
pub use rob::{Core, CoreStats, MemOutcome};
pub use system::{CmpSystem, MemPort, PendingMem, SubmittedReq, SystemStats};
