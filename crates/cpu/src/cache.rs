//! Set-associative, write-back, write-allocate caches with LRU replacement.
//!
//! Used for both the private L1s (16 KB, 4-way) and the shared per-cluster
//! L2s (2 MB, 16-way); line size is 64 B everywhere (§VI-A).

use microbank_core::CACHE_LINE_BITS;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    Hit,
    /// Miss; if a line was evicted, its address and dirtiness.
    Miss {
        victim: Option<Victim>,
    },
}

/// An evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    pub addr: u64,
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// One set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    /// log2(sets): tag extraction is a shift, never a division (sets is
    /// asserted to be a power of two).
    set_shift: u32,
    assoc: usize,
    ways: Vec<Way>,
    tick: u64,
    pub hits: u64,
    pub misses: u64,
}

impl Cache {
    /// `bytes` total capacity, `assoc` ways, 64 B lines. `bytes` must be a
    /// power-of-two multiple of `assoc * 64`.
    pub fn new(bytes: usize, assoc: usize) -> Self {
        let lines = bytes >> CACHE_LINE_BITS;
        assert!(lines.is_multiple_of(assoc), "capacity/assoc mismatch");
        let sets = lines / assoc;
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        Cache {
            sets,
            set_shift: sets.trailing_zeros(),
            assoc,
            ways: vec![Way::default(); sets * assoc],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn num_sets(&self) -> usize {
        self.sets
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> CACHE_LINE_BITS) as usize) & (self.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        (addr >> CACHE_LINE_BITS) >> self.set_shift
    }

    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        ((tag << self.set_shift) + set as u64) << CACHE_LINE_BITS
    }

    /// Access the line holding `addr`; on a hit, update LRU and dirtiness.
    /// On a miss, allocate (evicting the LRU way) and return the victim.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.tick += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.assoc;
        // Hit path.
        for w in &mut self.ways[base..base + self.assoc] {
            if w.valid && w.tag == tag {
                w.lru = self.tick;
                w.dirty |= is_write;
                self.hits += 1;
                return AccessResult::Hit;
            }
        }
        self.misses += 1;
        // Victim: invalid way if any, else LRU.
        let victim_idx = (base..base + self.assoc)
            .min_by_key(|&i| {
                if self.ways[i].valid {
                    self.ways[i].lru
                } else {
                    0
                }
            })
            .unwrap();
        let w = self.ways[victim_idx];
        let victim = if w.valid {
            Some(Victim {
                addr: self.line_addr(set, w.tag),
                dirty: w.dirty,
            })
        } else {
            None
        };
        self.ways[victim_idx] = Way {
            tag,
            valid: true,
            dirty: is_write,
            lru: self.tick,
        };
        AccessResult::Miss { victim }
    }

    /// Insert a line that arrived from the next level (a fill). Does not
    /// count toward hit/miss statistics. Returns the evicted victim, if any.
    /// No-op returning `None` if the line is already present (its dirty bit
    /// is OR-ed).
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<Victim> {
        self.tick += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.assoc;
        for w in &mut self.ways[base..base + self.assoc] {
            if w.valid && w.tag == tag {
                w.lru = self.tick;
                w.dirty |= dirty;
                return None;
            }
        }
        let victim_idx = (base..base + self.assoc)
            .min_by_key(|&i| {
                if self.ways[i].valid {
                    self.ways[i].lru
                } else {
                    0
                }
            })
            .unwrap();
        let w = self.ways[victim_idx];
        let victim = if w.valid {
            Some(Victim {
                addr: self.line_addr(set, w.tag),
                dirty: w.dirty,
            })
        } else {
            None
        };
        self.ways[victim_idx] = Way {
            tag,
            valid: true,
            dirty,
            lru: self.tick,
        };
        victim
    }

    /// Hit-or-nothing access: one way scan. On a hit, update LRU and
    /// dirtiness and count the hit exactly as [`Cache::access`] would,
    /// returning the hit way's index; on a miss, touch nothing (no
    /// allocation, no miss count, no LRU tick) — exactly as the
    /// `contains` + `access` pair it replaces, where the miss path never
    /// called `access`. The caller classifies the miss itself.
    pub fn probe_hit(&mut self, addr: u64, is_write: bool) -> Option<usize> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.assoc;
        for (i, w) in self.ways[base..base + self.assoc].iter_mut().enumerate() {
            if w.valid && w.tag == tag {
                self.tick += 1;
                w.lru = self.tick;
                w.dirty |= is_write;
                self.hits += 1;
                return Some(base + i);
            }
        }
        None
    }

    /// Bump the LRU clock on a way returned by [`Cache::probe_hit`] with no
    /// intervening operation on this cache: equivalent to a
    /// [`Cache::fill`]`(addr, false)` that finds the line present, minus
    /// the way scan.
    pub fn retouch(&mut self, way: usize) {
        self.tick += 1;
        self.ways[way].lru = self.tick;
    }

    /// Probe without modifying state.
    pub fn contains(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.ways[set * self.assoc..(set + 1) * self.assoc]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Invalidate a line (coherence); returns whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.assoc;
        for w in &mut self.ways[base..base + self.assoc] {
            if w.valid && w.tag == tag {
                w.valid = false;
                return Some(w.dirty);
            }
        }
        None
    }

    /// Mark a present line clean (after a writeback) — no-op if absent.
    pub fn clean(&mut self, addr: u64) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.assoc;
        for w in &mut self.ways[base..base + self.assoc] {
            if w.valid && w.tag == tag {
                w.dirty = false;
            }
        }
    }

    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> Cache {
        Cache::new(16 * 1024, 4) // 64 sets
    }

    #[test]
    fn geometry() {
        assert_eq!(l1().num_sets(), 64);
        assert_eq!(Cache::new(2 * 1024 * 1024, 16).num_sets(), 2048);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = l1();
        assert!(matches!(
            c.access(0x1000, false),
            AccessResult::Miss { victim: None }
        ));
        assert_eq!(c.access(0x1000, false), AccessResult::Hit);
        assert_eq!(c.access(0x1004, false), AccessResult::Hit, "same line");
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = l1();
        // Fill one set (same set index, different tags): set stride is
        // 64 sets × 64 B = 4096.
        for i in 0..4u64 {
            c.access(i * 4096, false);
        }
        // Touch line 0 so line 1 becomes LRU.
        c.access(0, false);
        let r = c.access(4 * 4096, false);
        match r {
            AccessResult::Miss { victim: Some(v) } => assert_eq!(v.addr, 4096),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(0));
        assert!(!c.contains(4096));
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = l1();
        c.access(0, true); // dirty
        for i in 1..=4u64 {
            let r = c.access(i * 4096, false);
            if let AccessResult::Miss { victim: Some(v) } = r {
                assert_eq!(v.addr, 0);
                assert!(v.dirty);
                return;
            }
        }
        panic!("line 0 never evicted");
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = l1();
        c.access(0, false);
        c.access(0, true);
        // Evict it and confirm dirtiness via the victim.
        for i in 1..=4u64 {
            if let AccessResult::Miss { victim: Some(v) } = c.access(i * 4096, false) {
                assert!(v.dirty);
                return;
            }
        }
        panic!("no eviction");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = l1();
        c.access(0x40, true);
        assert_eq!(c.invalidate(0x40), Some(true));
        assert!(!c.contains(0x40));
        assert_eq!(c.invalidate(0x40), None);
    }

    #[test]
    fn clean_clears_dirty_bit() {
        let mut c = l1();
        c.access(0, true);
        c.clean(0);
        for i in 1..=4u64 {
            if let AccessResult::Miss { victim: Some(v) } = c.access(i * 4096, false) {
                assert!(!v.dirty, "clean() should have cleared dirtiness");
                return;
            }
        }
        panic!("no eviction");
    }

    #[test]
    fn hit_rate_reporting() {
        let mut c = l1();
        c.access(0, false);
        c.access(0, false);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }
}
