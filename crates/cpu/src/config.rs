//! CMP configuration (paper §VI-A).

use microbank_core::validate::{Checker, ConfigError};
use serde::{Deserialize, Serialize};

/// Chip-multiprocessor parameters. Defaults reproduce the paper's platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CmpConfig {
    /// Total cores (64).
    pub cores: usize,
    /// Cores sharing one L2 slice / cluster (4).
    pub cores_per_cluster: usize,
    /// Issue/commit width (2).
    pub issue_width: usize,
    /// Reorder-buffer entries per core (32).
    pub rob_entries: usize,
    /// Miss-status holding registers per core (outstanding line misses).
    pub mshrs_per_core: usize,
    /// L1 data cache: total bytes (16 KB) and associativity (4).
    pub l1_bytes: usize,
    pub l1_assoc: usize,
    /// L2 cache per cluster: total bytes (2 MB) and associativity (16).
    pub l2_bytes: usize,
    pub l2_assoc: usize,
    /// L1 hit latency, cycles.
    pub l1_latency: u64,
    /// L2 hit latency, cycles (lookup + crossbar within the cluster).
    pub l2_latency: u64,
    /// One-way NoC latency between a cluster and a memory controller or a
    /// remote L2 (cluster mesh hop budget).
    pub noc_latency: u64,
    /// Directory lookup latency at the home memory controller.
    pub dir_latency: u64,
    /// Latency of a cache-to-cache transfer from a remote owner L2.
    pub remote_l2_latency: u64,
    /// Non-memory instruction latency (cycles until ready to commit).
    pub alu_latency: u64,
    /// L2 stream-prefetcher degree: on a detected sequential miss stream,
    /// fetch this many lines ahead. 0 disables prefetching (the paper's
    /// platform; kept as an extension for ablation).
    pub prefetch_degree: usize,
}

impl Default for CmpConfig {
    fn default() -> Self {
        CmpConfig {
            cores: 64,
            cores_per_cluster: 4,
            issue_width: 2,
            rob_entries: 32,
            mshrs_per_core: 8,
            l1_bytes: 16 * 1024,
            l1_assoc: 4,
            l2_bytes: 2 * 1024 * 1024,
            l2_assoc: 16,
            l1_latency: 3,
            l2_latency: 12,
            noc_latency: 8,
            dir_latency: 4,
            remote_l2_latency: 40,
            alu_latency: 1,
            prefetch_degree: 0,
        }
    }
}

impl CmpConfig {
    /// The paper's 64-core platform.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A small platform for fast unit tests.
    pub fn small(cores: usize) -> Self {
        CmpConfig {
            cores,
            ..Self::default()
        }
    }

    pub fn clusters(&self) -> usize {
        self.cores.div_ceil(self.cores_per_cluster)
    }

    /// Check the invariants the core/cache/coherence models assume,
    /// reporting every violation at once. Mirrors the `assert!`s in
    /// `Cache::new` (set geometry) plus the divide-by-zero hazards in the
    /// cluster math, so a sweep can reject a bad platform before
    /// construction panics.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let mut c = Checker::new();
        let ge1 = |c: &mut Checker, name: &str, v: usize| {
            c.check(v >= 1, || format!("{name} = {v}: must be >= 1"));
        };
        ge1(&mut c, "cores", self.cores);
        ge1(&mut c, "cores_per_cluster", self.cores_per_cluster);
        ge1(&mut c, "issue_width", self.issue_width);
        ge1(&mut c, "rob_entries", self.rob_entries);
        ge1(&mut c, "mshrs_per_core", self.mshrs_per_core);
        c.check(self.alu_latency >= 1, || {
            format!("alu_latency = {}: must be >= 1 cycle", self.alu_latency)
        });
        let mut cache = |name: &str, bytes: usize, assoc: usize| {
            let line = microbank_core::CACHE_LINE_BYTES as usize;
            if !c.check(assoc >= 1, || {
                format!("{name}_assoc = {assoc}: must be >= 1")
            }) {
                return;
            }
            let lines = bytes / line;
            c.check(
                bytes.is_multiple_of(line)
                    && lines >= assoc
                    && lines.is_multiple_of(assoc)
                    && (lines / assoc).is_power_of_two(),
                || {
                    format!(
                        "{name}: {bytes} B / {assoc}-way: capacity must be a multiple of \
                         assoc x 64 B with a power-of-two set count"
                    )
                },
            );
        };
        cache("l1", self.l1_bytes, self.l1_assoc);
        cache("l2", self.l2_bytes, self.l2_assoc);
        c.finish("CmpConfig")
    }

    /// Round-trip latency from a core to main memory excluding DRAM time:
    /// L1 + L2 lookup, NoC both ways, directory.
    pub fn memory_overhead_latency(&self) -> u64 {
        self.l1_latency + self.l2_latency + 2 * self.noc_latency + self.dir_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_shape() {
        let c = CmpConfig::paper();
        assert_eq!(c.cores, 64);
        assert_eq!(c.clusters(), 16);
        assert_eq!(c.rob_entries, 32);
        assert_eq!(c.issue_width, 2);
        assert_eq!(c.l1_bytes, 16 * 1024);
        assert_eq!(c.l2_bytes, 2 * 1024 * 1024);
    }

    #[test]
    fn overhead_latency_is_composed() {
        let c = CmpConfig::paper();
        assert_eq!(
            c.memory_overhead_latency(),
            c.l1_latency + c.l2_latency + 2 * c.noc_latency + c.dir_latency
        );
    }
}
