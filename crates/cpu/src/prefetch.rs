//! A per-core sequential stream prefetcher at the L2 boundary.
//!
//! Not part of the paper's platform (kept off by default); provided as the
//! natural extension for studying how prefetch-generated sequential
//! traffic interacts with μbank row-buffer locality — prefetched lines are
//! row hits under page interleaving, so prefetching amplifies the
//! open-page policy's advantage.

use microbank_core::CACHE_LINE_BYTES;

/// Per-core stream detector: two consecutive-line misses arm the stream;
/// while armed, every further sequential miss asks for `degree` lines
/// ahead of the miss address.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    degree: usize,
    last_miss: Option<u64>,
    streak: u32,
    pub issued: u64,
}

impl StreamPrefetcher {
    pub fn new(degree: usize) -> Self {
        StreamPrefetcher {
            degree,
            last_miss: None,
            streak: 0,
            issued: 0,
        }
    }

    pub fn enabled(&self) -> bool {
        self.degree > 0
    }

    /// Observe a demand miss to `line`; returns the lines to prefetch.
    pub fn on_miss(&mut self, line: u64) -> Vec<u64> {
        if self.degree == 0 {
            return Vec::new();
        }
        let sequential = self.last_miss == Some(line.wrapping_sub(CACHE_LINE_BYTES));
        self.last_miss = Some(line);
        if sequential {
            self.streak += 1;
        } else {
            self.streak = 0;
            return Vec::new();
        }
        if self.streak < 2 {
            return Vec::new();
        }
        let out: Vec<u64> = (1..=self.degree as u64)
            .map(|k| line.wrapping_add(k * CACHE_LINE_BYTES))
            .collect();
        self.issued += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_prefetcher_stays_silent() {
        let mut p = StreamPrefetcher::new(0);
        for i in 0..10u64 {
            assert!(p.on_miss(i * 64).is_empty());
        }
        assert!(!p.enabled());
        assert_eq!(p.issued, 0);
    }

    #[test]
    fn stream_arms_after_two_sequential_misses() {
        let mut p = StreamPrefetcher::new(4);
        assert!(p.on_miss(0).is_empty(), "first miss: no history");
        assert!(p.on_miss(64).is_empty(), "streak 1: not armed yet");
        let pf = p.on_miss(128);
        assert_eq!(pf, vec![192, 256, 320, 384]);
        assert_eq!(p.issued, 4);
    }

    #[test]
    fn random_misses_never_arm() {
        let mut p = StreamPrefetcher::new(4);
        for line in [0u64, 4096, 64, 8192, 128] {
            assert!(p.on_miss(line * 64).is_empty());
        }
    }

    #[test]
    fn stream_break_resets_streak() {
        let mut p = StreamPrefetcher::new(2);
        p.on_miss(0);
        p.on_miss(64);
        assert!(!p.on_miss(128).is_empty());
        assert!(p.on_miss(1 << 20).is_empty(), "break");
        assert!(p.on_miss((1 << 20) + 64).is_empty(), "streak 1 again");
        assert!(!p.on_miss((1 << 20) + 128).is_empty(), "re-armed");
    }
}
