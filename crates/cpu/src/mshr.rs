//! Miss-status holding registers: the per-core limiter on outstanding line
//! misses and the merge point for accesses to an in-flight line.

use microbank_core::fxhash::FxHashMap;

/// A waiter to notify when the line arrives: the ROB sequence number of the
/// load (stores are posted and never wait).
pub type Waiter = u64;

/// One in-flight line miss.
#[derive(Debug, Clone)]
pub struct MshrEntry {
    pub line: u64,
    pub waiters: Vec<Waiter>,
    /// The fill must also perform a write (a store merged into the miss).
    pub write_intent: bool,
}

/// Per-core MSHR file.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    // Point lookups keyed by line address; never iterated.
    entries: FxHashMap<u64, MshrEntry>,
    pub merges: u64,
}

impl MshrFile {
    pub fn new(capacity: usize) -> Self {
        MshrFile {
            capacity,
            entries: FxHashMap::default(),
            merges: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Is a miss to `line` already outstanding?
    pub fn contains(&self, line: u64) -> bool {
        self.entries.contains_key(&line)
    }

    /// Merge a new access into an existing entry. Returns false if absent.
    pub fn merge(&mut self, line: u64, waiter: Option<Waiter>, is_write: bool) -> bool {
        match self.entries.get_mut(&line) {
            Some(e) => {
                if let Some(w) = waiter {
                    e.waiters.push(w);
                }
                e.write_intent |= is_write;
                self.merges += 1;
                true
            }
            None => false,
        }
    }

    /// Allocate a new entry. Returns false when full (caller must stall).
    pub fn allocate(&mut self, line: u64, waiter: Option<Waiter>, is_write: bool) -> bool {
        if self.is_full() {
            return false;
        }
        debug_assert!(!self.entries.contains_key(&line));
        self.entries.insert(
            line,
            MshrEntry {
                line,
                waiters: waiter.into_iter().collect(),
                write_intent: is_write,
            },
        );
        true
    }

    /// The fill for `line` arrived: release and return the entry.
    pub fn complete(&mut self, line: u64) -> Option<MshrEntry> {
        self.entries.remove(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut m = MshrFile::new(2);
        assert!(m.allocate(0, Some(1), false));
        assert!(m.allocate(64, Some(2), false));
        assert!(m.is_full());
        assert!(!m.allocate(128, Some(3), false));
    }

    #[test]
    fn merge_joins_waiters_and_write_intent() {
        let mut m = MshrFile::new(2);
        m.allocate(0, Some(1), false);
        assert!(m.merge(0, Some(2), true));
        assert!(!m.merge(64, None, false), "no entry for other line");
        let e = m.complete(0).unwrap();
        assert_eq!(e.waiters, vec![1, 2]);
        assert!(e.write_intent);
        assert_eq!(m.merges, 1);
        assert!(m.is_empty());
    }

    #[test]
    fn complete_unknown_line_is_none() {
        let mut m = MshrFile::new(1);
        assert!(m.complete(0).is_none());
    }
}
