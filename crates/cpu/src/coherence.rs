//! Directory-based MESI coherence among the per-cluster L2 slices.
//!
//! The paper's platform keeps a reverse directory at each memory controller
//! (§VI-A). We model one logical directory (the sim routes lookups to the
//! line's home controller for latency purposes): per line, either nobody
//! caches it, a set of clusters share it clean, or exactly one cluster owns
//! it modified. The directory tells the requesting L2 where data comes from
//! (memory or a remote L2) and which caches to invalidate — the invariants
//! of MESI at the inter-L2 granularity our CMP model resolves.

use microbank_core::fxhash::FxHashMap;

/// Directory state for one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    Uncached,
    /// Clean copies in the clusters of the sharer bitmap.
    Shared,
    /// Exactly one cluster holds a dirty copy.
    Modified,
}

#[derive(Debug, Clone, Copy)]
struct DirEntry {
    state: LineState,
    /// Bitmap over clusters (≤ 64).
    sharers: u64,
}

/// Where the requester gets its data, as decided by the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceAction {
    /// Nobody else caches it (or only clean copies far away): main memory.
    FetchFromMemory,
    /// Cache-to-cache transfer from `owner`'s L2. `demote_writeback` is
    /// true when a modified owner is demoted to shared and its dirty data
    /// must also be written back to memory.
    ForwardFromOwner {
        owner: usize,
        demote_writeback: bool,
    },
}

/// Clusters whose copies must be invalidated before a write proceeds.
pub type Invalidations = u64;

/// The MESI directory.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    // Point lookups only on the sim path (`check_invariants` iterates but
    // is diagnostic-only), so hash choice cannot affect behavior.
    entries: FxHashMap<u64, DirEntry>,
    pub forwards: u64,
    pub invalidation_msgs: u64,
}

impl Directory {
    pub fn new() -> Self {
        Self::default()
    }

    fn first_sharer(bitmap: u64) -> usize {
        bitmap.trailing_zeros() as usize
    }

    /// A read miss from `cluster`. Returns where data comes from.
    pub fn read_miss(&mut self, line: u64, cluster: usize) -> CoherenceAction {
        let bit = 1u64 << cluster;
        match self.entries.get_mut(&line) {
            None => {
                self.entries.insert(
                    line,
                    DirEntry {
                        state: LineState::Shared,
                        sharers: bit,
                    },
                );
                CoherenceAction::FetchFromMemory
            }
            Some(e) => match e.state {
                LineState::Uncached => {
                    e.state = LineState::Shared;
                    e.sharers = bit;
                    CoherenceAction::FetchFromMemory
                }
                LineState::Shared => {
                    let owner = Self::first_sharer(e.sharers);
                    e.sharers |= bit;
                    if owner == cluster {
                        // Stale directory entry for our own copy (can only
                        // happen after a silent L2 refill); treat as memory.
                        CoherenceAction::FetchFromMemory
                    } else {
                        self.forwards += 1;
                        CoherenceAction::ForwardFromOwner {
                            owner,
                            demote_writeback: false,
                        }
                    }
                }
                LineState::Modified => {
                    let owner = Self::first_sharer(e.sharers);
                    debug_assert_eq!(e.sharers.count_ones(), 1);
                    e.state = LineState::Shared;
                    e.sharers |= bit;
                    if owner == cluster {
                        CoherenceAction::FetchFromMemory
                    } else {
                        self.forwards += 1;
                        CoherenceAction::ForwardFromOwner {
                            owner,
                            demote_writeback: true,
                        }
                    }
                }
            },
        }
    }

    /// A write miss (or upgrade) from `cluster`. Returns the data source
    /// and the set of clusters to invalidate (excluding the requester).
    pub fn write_miss(&mut self, line: u64, cluster: usize) -> (CoherenceAction, Invalidations) {
        let bit = 1u64 << cluster;
        let e = self.entries.entry(line).or_insert(DirEntry {
            state: LineState::Uncached,
            sharers: 0,
        });
        let others = e.sharers & !bit;
        let action = match e.state {
            LineState::Uncached => CoherenceAction::FetchFromMemory,
            LineState::Shared => {
                if e.sharers & bit != 0 {
                    // Upgrade: data already local.
                    CoherenceAction::ForwardFromOwner {
                        owner: cluster,
                        demote_writeback: false,
                    }
                } else if others != 0 {
                    self.forwards += 1;
                    CoherenceAction::ForwardFromOwner {
                        owner: Self::first_sharer(others),
                        demote_writeback: false,
                    }
                } else {
                    CoherenceAction::FetchFromMemory
                }
            }
            LineState::Modified => {
                if others == 0 {
                    // Already the modified owner (silent upgrade).
                    CoherenceAction::ForwardFromOwner {
                        owner: cluster,
                        demote_writeback: false,
                    }
                } else {
                    self.forwards += 1;
                    // Dirty ownership migrates; no memory writeback needed.
                    CoherenceAction::ForwardFromOwner {
                        owner: Self::first_sharer(others),
                        demote_writeback: false,
                    }
                }
            }
        };
        self.invalidation_msgs += others.count_ones() as u64;
        e.state = LineState::Modified;
        e.sharers = bit;
        (action, others)
    }

    /// `cluster` evicted its copy of `line` (`dirty` = it was modified).
    /// Returns true when the caller must write the line back to memory.
    pub fn evict(&mut self, line: u64, cluster: usize, dirty: bool) -> bool {
        let bit = 1u64 << cluster;
        let Some(e) = self.entries.get_mut(&line) else {
            return dirty;
        };
        e.sharers &= !bit;
        let was_modified = e.state == LineState::Modified;
        if e.sharers == 0 {
            self.entries.remove(&line);
        } else if was_modified {
            e.state = LineState::Shared;
        }
        // A dirty eviction always writes back, whether the directory held
        // the line Modified or a silent L1 write dirtied a Shared copy.
        dirty
    }

    /// Directory state of a line (for tests/invariants).
    pub fn state_of(&self, line: u64) -> (LineState, u64) {
        match self.entries.get(&line) {
            None => (LineState::Uncached, 0),
            Some(e) => (e.state, e.sharers),
        }
    }

    /// MESI invariant check: Modified lines have exactly one sharer.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (&line, e) in &self.entries {
            match e.state {
                LineState::Modified if e.sharers.count_ones() != 1 => {
                    return Err(format!(
                        "line {line:#x}: modified with {} sharers",
                        e.sharers.count_ones()
                    ));
                }
                LineState::Shared if e.sharers == 0 => {
                    return Err(format!("line {line:#x}: shared with no sharers"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_read_fetches_from_memory() {
        let mut d = Directory::new();
        assert_eq!(d.read_miss(0x40, 0), CoherenceAction::FetchFromMemory);
        assert_eq!(d.state_of(0x40), (LineState::Shared, 0b1));
        d.check_invariants().unwrap();
    }

    #[test]
    fn second_reader_gets_forwarded() {
        let mut d = Directory::new();
        d.read_miss(0x40, 0);
        let a = d.read_miss(0x40, 3);
        assert_eq!(
            a,
            CoherenceAction::ForwardFromOwner {
                owner: 0,
                demote_writeback: false
            }
        );
        assert_eq!(d.state_of(0x40), (LineState::Shared, 0b1001));
        assert_eq!(d.forwards, 1);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.read_miss(0x40, 0);
        d.read_miss(0x40, 1);
        d.read_miss(0x40, 2);
        let (action, inv) = d.write_miss(0x40, 1);
        assert_eq!(inv, 0b101, "clusters 0 and 2 invalidated");
        assert!(matches!(action, CoherenceAction::ForwardFromOwner { .. }));
        assert_eq!(d.state_of(0x40), (LineState::Modified, 0b10));
        d.check_invariants().unwrap();
    }

    #[test]
    fn read_of_modified_line_demotes_with_writeback() {
        let mut d = Directory::new();
        d.write_miss(0x40, 2);
        let a = d.read_miss(0x40, 5);
        assert_eq!(
            a,
            CoherenceAction::ForwardFromOwner {
                owner: 2,
                demote_writeback: true
            }
        );
        assert_eq!(d.state_of(0x40), (LineState::Shared, (1 << 2) | (1 << 5)));
        d.check_invariants().unwrap();
    }

    #[test]
    fn ownership_migrates_between_writers() {
        let mut d = Directory::new();
        d.write_miss(0x40, 0);
        let (a, inv) = d.write_miss(0x40, 7);
        assert_eq!(
            a,
            CoherenceAction::ForwardFromOwner {
                owner: 0,
                demote_writeback: false
            }
        );
        assert_eq!(inv, 1);
        assert_eq!(d.state_of(0x40), (LineState::Modified, 1 << 7));
        d.check_invariants().unwrap();
    }

    #[test]
    fn eviction_of_modified_requires_writeback() {
        let mut d = Directory::new();
        d.write_miss(0x40, 4);
        assert!(d.evict(0x40, 4, true));
        assert_eq!(d.state_of(0x40), (LineState::Uncached, 0));
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn eviction_of_shared_copy_is_silent() {
        let mut d = Directory::new();
        d.read_miss(0x40, 0);
        d.read_miss(0x40, 1);
        assert!(!d.evict(0x40, 0, false));
        assert_eq!(d.state_of(0x40), (LineState::Shared, 0b10));
    }

    #[test]
    fn upgrade_does_not_refetch() {
        let mut d = Directory::new();
        d.read_miss(0x40, 3);
        let (a, inv) = d.write_miss(0x40, 3);
        assert_eq!(
            a,
            CoherenceAction::ForwardFromOwner {
                owner: 3,
                demote_writeback: false
            }
        );
        assert_eq!(inv, 0);
    }
}
