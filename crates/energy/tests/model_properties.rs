//! Property tests over the area/energy/power model space: monotonicity,
//! additivity, and cross-model consistency for all interfaces and
//! partitioning degrees.

use microbank_core::config::Interface;
use microbank_core::geometry::UbankConfig;
use microbank_core::stats::DramStats;
use microbank_energy::area::AreaModel;
use microbank_energy::corepower::CorePowerModel;
use microbank_energy::energy::EnergyModel;
use microbank_energy::params::EnergyParams;
use microbank_energy::power::PowerIntegrator;
use proptest::prelude::*;

fn any_ubank() -> impl Strategy<Value = UbankConfig> {
    (
        prop::sample::select(vec![1usize, 2, 4, 8, 16]),
        prop::sample::select(vec![1usize, 2, 4, 8, 16]),
    )
        .prop_map(|(w, b)| UbankConfig::new(w, b))
}

fn any_iface() -> impl Strategy<Value = Interface> {
    prop::sample::select(vec![
        Interface::Ddr3Pcb,
        Interface::Ddr3Tsi,
        Interface::LpddrTsi,
    ])
}

proptest! {
    #[test]
    fn act_pre_energy_is_monotone_decreasing_in_nw(iface in any_iface(), nb in prop::sample::select(vec![1usize, 2, 4, 8, 16])) {
        let p = EnergyParams::for_interface(iface);
        let mut prev = f64::INFINITY;
        for nw in [1usize, 2, 4, 8, 16] {
            let e = EnergyModel::new(p, UbankConfig::new(nw, nb)).act_pre_nj();
            prop_assert!(e < prev, "nw={nw}: {e} !< {prev}");
            prev = e;
        }
    }

    #[test]
    fn energy_per_read_is_monotone_in_beta(iface in any_iface(), u in any_ubank()) {
        let m = EnergyModel::new(EnergyParams::for_interface(iface), u);
        let mut prev = 0.0;
        for beta in [0.0, 0.1, 0.25, 0.5, 1.0] {
            let e = m.energy_per_read_nj(beta);
            prop_assert!(e >= prev);
            prev = e;
        }
    }

    #[test]
    fn power_integration_is_linear_in_events(
        iface in any_iface(),
        u in any_ubank(),
        acts in 0u64..10_000,
        reads in 0u64..10_000,
        writes in 0u64..10_000,
        k in 1u64..5,
    ) {
        let integ = PowerIntegrator::new(EnergyModel::new(EnergyParams::for_interface(iface), u), 16);
        let s1 = DramStats { activates: acts, reads, writes, ..Default::default() };
        let sk = DramStats {
            activates: acts * k,
            reads: reads * k,
            writes: writes * k,
            ..Default::default()
        };
        let e1 = integ.integrate(&s1, 0).total_nj();
        let ek = integ.integrate(&sk, 0).total_nj();
        prop_assert!((ek - k as f64 * e1).abs() < 1e-6 * ek.max(1.0));
    }

    #[test]
    fn area_overhead_superadditive_in_partition_count(u in any_ubank()) {
        // More μbanks never cost less area, and area is finite/sane.
        let m = AreaModel::new();
        let a = m.relative_area(u);
        prop_assert!((1.0..1.30).contains(&a), "{a}");
        if u.n_w > 1 {
            let smaller = UbankConfig::new(u.n_w / 2, u.n_b);
            prop_assert!(m.relative_area(smaller) < a);
        }
        if u.n_b > 1 {
            let smaller = UbankConfig::new(u.n_w, u.n_b / 2);
            prop_assert!(m.relative_area(smaller) < a);
        }
    }

    #[test]
    fn core_energy_is_monotone_in_work_and_time(
        instrs in 0u64..1_000_000,
        cycles in 0u64..10_000_000,
        cores in 1usize..64,
    ) {
        let m = CorePowerModel::default();
        let base = m.energy_nj(instrs, cycles, cores);
        prop_assert!(base >= 0.0);
        prop_assert!(m.energy_nj(instrs + 1000, cycles, cores) > base);
        prop_assert!(m.energy_nj(instrs, cycles + 1_000_000, cores) > base);
        prop_assert!(m.energy_nj(instrs, cycles, cores) <= m.energy_nj(instrs, cycles, cores + 1) || cycles == 0);
    }

    #[test]
    fn interface_energy_ordering_holds_for_all_configs(u in any_ubank(), beta in 0.0f64..1.0) {
        // LPDDR-TSI ≤ DDR3-TSI ≤ DDR3-PCB per read, at every partitioning.
        let e = |i: Interface| EnergyModel::new(EnergyParams::for_interface(i), u).energy_per_read_nj(beta);
        prop_assert!(e(Interface::LpddrTsi) <= e(Interface::Ddr3Tsi) + 1e-12);
        prop_assert!(e(Interface::Ddr3Tsi) <= e(Interface::Ddr3Pcb) + 1e-12);
    }
}
