//! Die-area model for μbank partitioning — reproduces the paper's Fig. 6(a).
//!
//! Partitioning a bank costs die area in three places (§IV-B):
//!
//! 1. **Wordline-direction partitioning (`nW`)** adds a μbank column-decoder
//!    strip and multiplexers between the (now more numerous) global
//!    datalines and the unchanged global-dataline sense amplifiers. The
//!    strip is needed as soon as `nW > 1`; the mux/routing cost then grows
//!    with every additional partition. Because global datalines and column
//!    select lines share one metal layer and trade off one-for-one, the sum
//!    of the two does not grow with `nW` (§IV-B) — the overhead is the
//!    decoder/mux silicon, not wiring tracks.
//! 2. **Bitline-direction partitioning (`nB`)** adds a μbank row-decoder
//!    strip per partition boundary.
//! 3. **Per-μbank latches** between the row predecoders and the local row
//!    decoders hold the active local-wordline selection per μbank
//!    (§IV-A, [33]); their count grows with `nW × nB`.
//!
//! The three coefficients below are calibrated against the CACTI-3DD
//! results the paper publishes as the Fig. 6(a) matrix; the unit test
//! checks all 25 published values to ±0.2% absolute area.

use microbank_core::geometry::{DeviceGeometry, UbankConfig};
use serde::{Deserialize, Serialize};

/// Structural area model for a μbank-partitioned DRAM die.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Reference die geometry (8 Gb, 80 mm²).
    pub geometry: DeviceGeometry,
    /// Fixed + per-partition cost of wordline-direction partitioning, as a
    /// fraction of die area per partition (μbank column decoder strip and
    /// GDL multiplexers): contributes `w_frac · nW` for `nW > 1`.
    pub w_frac: f64,
    /// μbank row-decoder strip per bitline-direction partition boundary:
    /// contributes `b_frac · (nB − 1)`.
    pub b_frac: f64,
    /// Per-μbank latch area: contributes `latch_frac · (nW−1)(nB−1)`
    /// beyond the strips already counted on each axis.
    pub latch_frac: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            geometry: DeviceGeometry::reference(),
            w_frac: 0.002,
            b_frac: 0.000933,
            latch_frac: 0.000987,
        }
    }
}

impl AreaModel {
    pub fn new() -> Self {
        Self::default()
    }

    /// Die area relative to the unpartitioned baseline (Fig. 6(a)).
    pub fn relative_area(&self, u: UbankConfig) -> f64 {
        let nw = u.n_w as f64;
        let nb = u.n_b as f64;
        let w_term = if u.n_w > 1 { self.w_frac * nw } else { 0.0 };
        let b_term = self.b_frac * (nb - 1.0);
        let cross = self.latch_frac * (nw - 1.0) * (nb - 1.0);
        1.0 + w_term + b_term + cross
    }

    /// Absolute die area in mm².
    pub fn die_area_mm2(&self, u: UbankConfig) -> f64 {
        self.geometry.die_area_mm2 * self.relative_area(u)
    }

    /// The full Fig. 6(a) matrix over `{1,2,4,8,16}²`, row-major in `nB`.
    pub fn figure6a_matrix(&self) -> Vec<Vec<f64>> {
        let degrees = [1usize, 2, 4, 8, 16];
        degrees
            .iter()
            .map(|&nb| {
                degrees
                    .iter()
                    .map(|&nw| self.relative_area(UbankConfig::new(nw, nb)))
                    .collect()
            })
            .collect()
    }

    /// Configurations with area overhead below `limit` (e.g. the paper's
    /// "less than 3%" constraint that selects the Fig. 10 representative
    /// configurations).
    pub fn configs_under_overhead(&self, limit: f64) -> Vec<UbankConfig> {
        let degrees = [1usize, 2, 4, 8, 16];
        let mut out = Vec::new();
        for &nw in &degrees {
            for &nb in &degrees {
                let u = UbankConfig::new(nw, nb);
                if self.relative_area(u) - 1.0 < limit {
                    out.push(u);
                }
            }
        }
        out
    }

    /// The single-subarray (SSA) alternative the paper rejects: dedicating
    /// one mat per cache line needs 512 local datalines per mat and blows
    /// the die up ~3.8× (§IV-A). Exposed for the documentation example.
    pub fn ssa_relative_area(&self) -> f64 {
        3.8
    }
}

/// The 25 relative-area values the paper publishes in Fig. 6(a),
/// `PAPER_FIG6A[ib][iw]` for `nB, nW ∈ {1,2,4,8,16}`.
pub const PAPER_FIG6A: [[f64; 5]; 5] = [
    [1.000, 1.004, 1.008, 1.015, 1.031],
    [1.001, 1.006, 1.012, 1.023, 1.047],
    [1.003, 1.010, 1.019, 1.039, 1.078],
    [1.007, 1.017, 1.035, 1.070, 1.142],
    [1.014, 1.033, 1.066, 1.132, 1.268],
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_no_overhead() {
        assert_eq!(AreaModel::new().relative_area(UbankConfig::BASELINE), 1.0);
    }

    #[test]
    fn matches_paper_fig6a_within_tolerance() {
        let m = AreaModel::new();
        let degrees = [1usize, 2, 4, 8, 16];
        for (ib, &nb) in degrees.iter().enumerate() {
            for (iw, &nw) in degrees.iter().enumerate() {
                let got = m.relative_area(UbankConfig::new(nw, nb));
                let want = PAPER_FIG6A[ib][iw];
                assert!(
                    (got - want).abs() < 0.002,
                    "({nw},{nb}): model {got:.4} vs paper {want:.4}"
                );
            }
        }
    }

    #[test]
    fn sixteen_by_sixteen_costs_about_27_percent() {
        let m = AreaModel::new();
        let a = m.relative_area(UbankConfig::new(16, 16));
        assert!((a - 1.268).abs() < 0.002, "{a}");
    }

    #[test]
    fn most_configs_stay_under_5_percent() {
        // §IV-B: "for most of the other μbank configurations (when
        // nW × nB < 64), the area overhead is under 5%".
        let m = AreaModel::new();
        let degrees = [1usize, 2, 4, 8, 16];
        for &nw in &degrees {
            for &nb in &degrees {
                if nw * nb < 64 {
                    let a = m.relative_area(UbankConfig::new(nw, nb));
                    assert!(a < 1.05, "({nw},{nb}) = {a}");
                }
            }
        }
    }

    #[test]
    fn fig10_representatives_are_under_3_percent() {
        // The paper picks (2,8), (4,4), (8,2) as <3% overhead configs.
        let m = AreaModel::new();
        let under = m.configs_under_overhead(0.03);
        for (nw, nb) in [(2usize, 8usize), (4, 4), (8, 2)] {
            assert!(under.contains(&UbankConfig::new(nw, nb)), "({nw},{nb})");
        }
        // …and (16,16) is not.
        assert!(!under.contains(&UbankConfig::new(16, 16)));
    }

    #[test]
    fn area_is_monotone_in_each_direction() {
        let m = AreaModel::new();
        let degrees = [1usize, 2, 4, 8, 16];
        for &nb in &degrees {
            let mut prev = 0.0;
            for &nw in &degrees {
                let a = m.relative_area(UbankConfig::new(nw, nb));
                assert!(a > prev);
                prev = a;
            }
        }
        for &nw in &degrees {
            let mut prev = 0.0;
            for &nb in &degrees {
                let a = m.relative_area(UbankConfig::new(nw, nb));
                assert!(a > prev);
                prev = a;
            }
        }
    }

    #[test]
    fn matrix_shape() {
        let m = AreaModel::new().figure6a_matrix();
        assert_eq!(m.len(), 5);
        assert!(m.iter().all(|r| r.len() == 5));
        assert_eq!(m[0][0], 1.0);
    }
}
