//! # microbank-energy
//!
//! Area, energy, power, and energy-delay-product models for μbank DRAM
//! devices and the three processor–memory interfaces studied in the paper
//! (*Microbank*, SC 2014).
//!
//! * [`params`] — Table I energy parameters per interface.
//! * [`area`] — the structural die-area model behind Fig. 6(a): latches,
//!   μbank decoders, global-dataline multiplexers, and routing overheads as
//!   a function of the partitioning degree `(nW, nB)`.
//! * [`energy`] — per-operation DRAM energy and the Fig. 6(b) relative
//!   energy-per-read matrix parameterized by the paper's β (ACT-per-column
//!   ratio).
//! * [`power`] — integrates [`microbank_core::stats::DramStats`] event
//!   counts over time into the Fig. 10 / Fig. 14 power breakdowns.
//! * [`corepower`] — the McPAT-derived processor energy abstraction the
//!   paper uses (200 pJ/op dual-issue OoO core at 22 nm, §III-B).
//! * [`breakdown`] — the Fig. 1 per-bit energy breakdown of PCB vs TSI vs
//!   TSI+μbank memory systems.
//! * [`edp`] — energy-delay-product helpers.

pub mod area;
pub mod breakdown;
pub mod corepower;
pub mod edp;
pub mod energy;
pub mod params;
pub mod power;

pub use area::AreaModel;
pub use breakdown::{system_breakdown, BitEnergyBreakdown, SystemKind};
pub use corepower::CorePowerModel;
pub use edp::{edp, relative_inverse_edp};
pub use energy::EnergyModel;
pub use params::EnergyParams;
pub use power::{MemoryEnergy, PowerIntegrator};
