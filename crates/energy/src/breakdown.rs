//! Fig. 1: per-bit energy breakdown of the three memory-system designs —
//! conventional PCB-based DDR3, TSI-based LPDDR, and TSI + μbank.
//!
//! The figure's point: TSI removes most of the I/O energy, which leaves the
//! design "unbalanced" — ACT/PRE dominates — and μbank then removes most of
//! the ACT/PRE energy.

use crate::energy::EnergyModel;
use crate::params::EnergyParams;
use microbank_core::geometry::UbankConfig;
use serde::{Deserialize, Serialize};

/// The three bars of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemKind {
    /// Conventional DDR3 DIMMs over PCB.
    PcbBaseline,
    /// LPDDR-type stacked dies over TSI, conventional banks.
    Tsi,
    /// LPDDR-type stacked dies over TSI with μbank partitioning (nW = 8,
    /// a <3% area-overhead configuration).
    TsiMicrobank,
}

impl SystemKind {
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::PcbBaseline => "PCB (baseline)",
            SystemKind::Tsi => "TSI",
            SystemKind::TsiMicrobank => "TSI+ubanks",
        }
    }

    fn energy_model(&self) -> EnergyModel {
        match self {
            SystemKind::PcbBaseline => {
                EnergyModel::new(EnergyParams::ddr3_pcb(), UbankConfig::BASELINE)
            }
            SystemKind::Tsi => EnergyModel::new(EnergyParams::lpddr_tsi(), UbankConfig::BASELINE),
            SystemKind::TsiMicrobank => {
                EnergyModel::new(EnergyParams::lpddr_tsi(), UbankConfig::new(8, 2))
            }
        }
    }
}

/// Per-bit energy breakdown (pJ/b), the Fig. 1 stacked-bar buckets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitEnergyBreakdown {
    /// DRAM core background energy amortized per transferred bit
    /// (peripheral/static; "Core" in Fig. 1).
    pub core_pj_b: f64,
    pub act_pre_pj_b: f64,
    pub rdwr_pj_b: f64,
    pub io_pj_b: f64,
}

impl BitEnergyBreakdown {
    pub fn total(&self) -> f64 {
        self.core_pj_b + self.act_pre_pj_b + self.rdwr_pj_b + self.io_pj_b
    }
}

/// Compute one Fig. 1 bar. `beta` is the ACT-per-column ratio of the
/// traffic (Fig. 1 uses low-locality traffic, β = 1) and `utilization` the
/// fraction of peak channel bandwidth carried (amortizes static power).
pub fn system_breakdown(kind: SystemKind, beta: f64, utilization: f64) -> BitEnergyBreakdown {
    let m = kind.energy_model();
    let peak_gbps = match kind {
        SystemKind::PcbBaseline => 12.8,
        _ => 16.0,
    };
    let bits_per_s = utilization * peak_gbps * 1e9 * 8.0;
    let core_pj_b = m.params.static_mw_per_channel * 1e-3 / bits_per_s * 1e12;
    BitEnergyBreakdown {
        core_pj_b,
        act_pre_pj_b: beta * m.act_pre_nj() * 1000.0 / 512.0,
        rdwr_pj_b: m.params.rdwr_pj_per_bit,
        io_pj_b: m.params.io_pj_per_bit,
    }
}

/// All three Fig. 1 bars at the figure's nominal traffic (β = 1, 30%
/// channel utilization).
pub fn figure1() -> Vec<(SystemKind, BitEnergyBreakdown)> {
    [
        SystemKind::PcbBaseline,
        SystemKind::Tsi,
        SystemKind::TsiMicrobank,
    ]
    .into_iter()
    .map(|k| (k, system_breakdown(k, 1.0, 0.3)))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcb_io_is_20_pj_per_bit() {
        let b = system_breakdown(SystemKind::PcbBaseline, 1.0, 0.3);
        assert_eq!(b.io_pj_b, 20.0);
        assert_eq!(b.rdwr_pj_b, 13.0);
    }

    #[test]
    fn tsi_shifts_dominance_to_act_pre() {
        let pcb = system_breakdown(SystemKind::PcbBaseline, 1.0, 0.3);
        let tsi = system_breakdown(SystemKind::Tsi, 1.0, 0.3);
        // I/O shrinks 5×…
        assert!(tsi.io_pj_b * 4.0 < pcb.io_pj_b);
        // …so ACT/PRE becomes the dominant bucket of the TSI bar.
        assert!(tsi.act_pre_pj_b > 0.5 * tsi.total());
    }

    #[test]
    fn microbank_rebalances_the_tsi_bar() {
        let tsi = system_breakdown(SystemKind::Tsi, 1.0, 0.3);
        let ub = system_breakdown(SystemKind::TsiMicrobank, 1.0, 0.3);
        assert!(ub.act_pre_pj_b < tsi.act_pre_pj_b / 4.0);
        assert!(ub.total() < 0.4 * tsi.total());
        // No longer a single dominant bucket.
        assert!(ub.act_pre_pj_b < 0.6 * ub.total());
    }

    #[test]
    fn figure1_bar_order_and_magnitudes() {
        let bars = figure1();
        assert_eq!(bars.len(), 3);
        let totals: Vec<f64> = bars.iter().map(|(_, b)| b.total()).collect();
        // Strictly decreasing energy per bit, PCB ≈ 100 pJ/b territory.
        assert!(totals[0] > totals[1] && totals[1] > totals[2]);
        assert!(totals[0] > 80.0 && totals[0] < 120.0, "{}", totals[0]);
        assert!(totals[2] < 25.0, "{}", totals[2]);
    }
}
