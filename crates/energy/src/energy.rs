//! Per-operation DRAM energy and the Fig. 6(b) relative energy matrix.
//!
//! The dominant lever is the activate/precharge energy: an ACT+PRE pair on
//! a full 8 KB page costs 30 nJ (Table I), and a μbank configuration with
//! `nW` wordline partitions activates only `1/nW` of the page, so the pair
//! costs `30 nJ / nW` (plus a small per-μbank latch overhead). Read/write
//! and I/O energy are per-bit values from Table I.

use crate::params::EnergyParams;
use microbank_core::geometry::UbankConfig;
use microbank_core::variant::DeviceVariant;
use serde::{Deserialize, Serialize};

/// Bits in one 64 B cache-line transfer.
const LINE_BITS: f64 = 512.0;

/// Per-operation DRAM energy model for one (interface, μbank, variant)
/// combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    pub params: EnergyParams,
    pub ubank: UbankConfig,
    /// Activation-granularity variant (DESIGN §5h). Conventional, μbank
    /// and SALP all activate per-μbank rows, so they share the geometric
    /// formula; only Sectored DRAM's latch accounting differs (sense amps
    /// span all sectors of the row even when one group activates).
    #[serde(default)]
    pub variant: DeviceVariant,
}

impl EnergyModel {
    pub fn new(params: EnergyParams, ubank: UbankConfig) -> Self {
        EnergyModel {
            params,
            ubank,
            variant: DeviceVariant::Microbank,
        }
    }

    /// Builder: select the device variant whose activation granularity the
    /// ACT/PRE accounting should follow.
    pub fn with_variant(mut self, v: DeviceVariant) -> Self {
        self.variant = v;
        self
    }

    /// Array energy of one ACT+PRE pair, nJ: the 8 KB-page energy scaled
    /// by the fraction of the page actually activated.
    pub fn act_pre_array_nj(&self) -> f64 {
        self.params.act_pre_nj_8kb / self.ubank.n_w as f64
    }

    /// Latch/sense-amp update energy per activation, nJ. Conventional,
    /// μbank and SALP pay per row buffer present in the bank; Sectored
    /// DRAM's row spans `sectors` latch groups regardless of how many are
    /// activated at once.
    pub fn act_latch_nj(&self) -> f64 {
        let latches = match self.variant {
            DeviceVariant::Sectored { sectors, .. } => sectors,
            _ => self.ubank.ubanks_per_bank(),
        };
        self.params.latch_pj_per_act_per_ubank * latches as f64 / 1000.0
    }

    /// Energy of one ACT+PRE pair, nJ: the 8 KB-page energy divided by the
    /// number of wordline partitions, plus latch update energy that grows
    /// with the μbank count (negligible, §IV-B — but modeled).
    pub fn act_pre_nj(&self) -> f64 {
        self.act_pre_array_nj() + self.act_latch_nj()
    }

    /// DRAM-side datapath energy of one 64 B read or write, nJ (no I/O).
    pub fn rdwr_nj(&self) -> f64 {
        LINE_BITS * self.params.rdwr_pj_per_bit / 1000.0
    }

    /// Inter-die I/O energy of one 64 B transfer, nJ.
    pub fn io_nj(&self) -> f64 {
        LINE_BITS * self.params.io_pj_per_bit / 1000.0
    }

    /// Energy of one all-bank refresh, nJ.
    pub fn refresh_nj(&self) -> f64 {
        self.params.refresh_nj
    }

    /// Average energy per read including amortized activation, nJ, for an
    /// ACT-to-column ratio β (§IV-B): `β · E_actpre + E_rdwr + E_io`.
    pub fn energy_per_read_nj(&self, beta: f64) -> f64 {
        beta * self.act_pre_nj() + self.rdwr_nj() + self.io_nj()
    }

    /// Fig. 6(b): energy per read relative to the unpartitioned baseline at
    /// the same β.
    pub fn relative_energy_per_read(&self, beta: f64) -> f64 {
        let base = EnergyModel::new(self.params, UbankConfig::BASELINE);
        self.energy_per_read_nj(beta) / base.energy_per_read_nj(beta)
    }
}

/// The full Fig. 6(b)-style matrix over `{1,2,4,8,16}²` for a given β,
/// row-major in `nB` (values relative to `(1,1)`).
pub fn figure6b_matrix(params: EnergyParams, beta: f64) -> Vec<Vec<f64>> {
    let degrees = [1usize, 2, 4, 8, 16];
    degrees
        .iter()
        .map(|&nb| {
            degrees
                .iter()
                .map(|&nw| {
                    EnergyModel::new(params, UbankConfig::new(nw, nb))
                        .relative_energy_per_read(beta)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tsi(nw: usize, nb: usize) -> EnergyModel {
        EnergyModel::new(EnergyParams::lpddr_tsi(), UbankConfig::new(nw, nb))
    }

    #[test]
    fn baseline_act_pre_is_30nj() {
        let e = tsi(1, 1);
        assert!((e.act_pre_nj() - 30.0).abs() < 0.01);
    }

    #[test]
    fn nw_divides_activation_energy() {
        assert!(tsi(8, 1).act_pre_nj() < 30.0 / 8.0 + 0.1);
        assert!(tsi(16, 1).act_pre_nj() < tsi(8, 1).act_pre_nj());
    }

    #[test]
    fn latch_overhead_is_negligible_but_present() {
        // (1,16) has 16× the latches of (1,1) but nearly identical energy.
        let base = tsi(1, 1).act_pre_nj();
        let many = tsi(1, 16).act_pre_nj();
        assert!(many > base);
        assert!((many - base) / base < 0.01, "latch overhead too large");
    }

    #[test]
    fn high_beta_amplifies_nw_savings() {
        // β = 1: activation dominates, nW=16 saves ~80% of read energy.
        let rel_hot = tsi(16, 1).relative_energy_per_read(1.0);
        assert!(rel_hot < 0.25, "{rel_hot}");
        // β = 0.1: activation amortized, savings much smaller.
        let rel_cold = tsi(16, 1).relative_energy_per_read(0.1);
        assert!(rel_cold > rel_hot);
        assert!(rel_cold > 0.5, "{rel_cold}");
    }

    #[test]
    fn nb_alone_barely_changes_energy() {
        let rel = tsi(1, 16).relative_energy_per_read(1.0);
        assert!((rel - 1.0).abs() < 0.01, "{rel}");
    }

    #[test]
    fn fig1_fifteen_x_ratio_reproduced() {
        // §IV-A: ACT+PRE ≈ 15× the energy of a TSI line transfer.
        let e = tsi(1, 1);
        let ratio = e.act_pre_nj() / (e.rdwr_nj() + e.io_nj());
        assert!(ratio > 7.0 && ratio < 16.0, "{ratio}");
    }

    #[test]
    fn matrix_is_monotone_nonincreasing_in_nw() {
        for beta in [1.0, 0.1] {
            let m = figure6b_matrix(EnergyParams::lpddr_tsi(), beta);
            for row in &m {
                for pair in row.windows(2) {
                    assert!(pair[1] <= pair[0] + 1e-9, "beta {beta}: {pair:?}");
                }
            }
        }
    }

    #[test]
    fn energy_per_read_composition() {
        let e = tsi(4, 4);
        let manual = 0.5 * e.act_pre_nj() + e.rdwr_nj() + e.io_nj();
        assert!((e.energy_per_read_nj(0.5) - manual).abs() < 1e-12);
    }

    #[test]
    fn default_variant_matches_legacy_formula() {
        // The variant seam must not change pre-seam numbers: the default
        // (Microbank) reproduces the original closed-form expression.
        let e = tsi(4, 4);
        let p = e.params;
        let legacy = p.act_pre_nj_8kb / 4.0 + p.latch_pj_per_act_per_ubank * 16.0 / 1000.0;
        assert!((e.act_pre_nj() - legacy).abs() < 1e-12);
        assert!((e.act_pre_nj() - e.act_pre_array_nj() - e.act_latch_nj()).abs() < 1e-12);
    }

    #[test]
    fn sectored_pays_latches_for_the_whole_row() {
        use microbank_core::variant::DeviceVariant;
        // 2-of-16 sectored: (nW, nB) = (8, 1) — array energy is 1/8 of the
        // page like μbank(8,1), but the latch term covers all 16 sectors,
        // twice the 8 latch groups a μbank(8,1) bank holds.
        let sect = tsi(8, 1).with_variant(DeviceVariant::Sectored {
            sectors: 16,
            sectors_per_act: 2,
        });
        let ub = tsi(8, 1);
        assert!((sect.act_pre_array_nj() - ub.act_pre_array_nj()).abs() < 1e-12);
        assert!((sect.act_latch_nj() - 2.0 * ub.act_latch_nj()).abs() < 1e-12);
        assert!(sect.act_pre_nj() > ub.act_pre_nj());
    }

    #[test]
    fn salp_and_conventional_share_the_geometric_formula() {
        use microbank_core::variant::{DeviceVariant, SalpMode};
        let conv = tsi(1, 1).with_variant(DeviceVariant::Conventional);
        assert!((conv.act_pre_nj() - tsi(1, 1).act_pre_nj()).abs() < 1e-12);
        let salp = tsi(1, 8).with_variant(DeviceVariant::Salp {
            subarrays: 8,
            mode: SalpMode::Masa,
        });
        assert!((salp.act_pre_nj() - tsi(1, 8).act_pre_nj()).abs() < 1e-12);
    }
}
