//! Power integration: turn DRAM event counters into the energy and power
//! breakdowns reported in Fig. 10 and Fig. 14 (ACT/PRE, RD/WR, I/O, and
//! DRAM static components).

use crate::energy::EnergyModel;
use microbank_core::stats::DramStats;
use microbank_core::Cycle;
use serde::{Deserialize, Serialize};

/// Seconds per simulated CPU cycle (2 GHz clock).
const SECONDS_PER_CYCLE: f64 = 0.5e-9;

/// Memory-system energy broken into the paper's reporting buckets (all nJ).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryEnergy {
    pub act_pre_nj: f64,
    pub rdwr_nj: f64,
    pub io_nj: f64,
    pub static_nj: f64,
    pub refresh_nj: f64,
}

impl MemoryEnergy {
    pub fn total_nj(&self) -> f64 {
        self.act_pre_nj + self.rdwr_nj + self.io_nj + self.static_nj + self.refresh_nj
    }

    /// Fraction of memory energy spent on activate/precharge — the paper's
    /// Fig. 14 headline is that this reaches 76.2% under LPDDR-TSI.
    pub fn act_pre_fraction(&self) -> f64 {
        if self.total_nj() == 0.0 {
            0.0
        } else {
            self.act_pre_nj / self.total_nj()
        }
    }

    /// Convert to average power in watts over `cycles` CPU cycles.
    pub fn to_watts(&self, cycles: Cycle) -> MemoryPowerW {
        let t = cycles as f64 * SECONDS_PER_CYCLE;
        let w = |nj: f64| if t == 0.0 { 0.0 } else { nj * 1e-9 / t };
        MemoryPowerW {
            act_pre_w: w(self.act_pre_nj),
            rdwr_w: w(self.rdwr_nj),
            io_w: w(self.io_nj),
            static_w: w(self.static_nj),
            refresh_w: w(self.refresh_nj),
        }
    }
}

/// Average memory power in watts, same buckets as [`MemoryEnergy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryPowerW {
    pub act_pre_w: f64,
    pub rdwr_w: f64,
    pub io_w: f64,
    pub static_w: f64,
    pub refresh_w: f64,
}

impl MemoryPowerW {
    pub fn total_w(&self) -> f64 {
        self.act_pre_w + self.rdwr_w + self.io_w + self.static_w + self.refresh_w
    }
}

/// Integrates DRAM event counts into [`MemoryEnergy`].
#[derive(Debug, Clone, Copy)]
pub struct PowerIntegrator {
    pub model: EnergyModel,
    /// Number of channels contributing static power.
    pub channels: usize,
    /// Ranks per channel (power-down accounting granularity).
    pub ranks_per_channel: usize,
}

impl PowerIntegrator {
    pub fn new(model: EnergyModel, channels: usize) -> Self {
        PowerIntegrator {
            model,
            channels,
            ranks_per_channel: 1,
        }
    }

    /// Builder: set the rank count used to apportion power-down savings.
    pub fn with_ranks(mut self, ranks_per_channel: usize) -> Self {
        self.ranks_per_channel = ranks_per_channel.max(1);
        self
    }

    /// Energy consumed by `stats` worth of events over `cycles` CPU cycles.
    pub fn integrate(&self, stats: &DramStats, cycles: Cycle) -> MemoryEnergy {
        let m = &self.model;
        let seconds = cycles as f64 * SECONDS_PER_CYCLE;
        let static_mw = m.params.static_mw_per_channel * self.channels as f64;
        // Power-down savings: the fraction of rank-time spent CKE-low
        // draws only `powerdown_static_ratio` of the static power.
        let total_rank_cycles = (cycles * (self.channels * self.ranks_per_channel) as u64) as f64;
        let pd_frac = if total_rank_cycles == 0.0 {
            0.0
        } else {
            (stats.powerdown_rank_cycles as f64 / total_rank_cycles).min(1.0)
        };
        let static_scale = 1.0 - pd_frac * (1.0 - m.params.powerdown_static_ratio);
        MemoryEnergy {
            act_pre_nj: stats.activates as f64 * m.act_pre_nj(),
            rdwr_nj: (stats.reads + stats.writes) as f64 * m.rdwr_nj(),
            io_nj: (stats.reads + stats.writes) as f64 * m.io_nj(),
            static_nj: static_mw * 1e-3 * seconds * 1e9 * static_scale,
            refresh_nj: stats.refreshes as f64 * m.refresh_nj(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EnergyParams;
    use microbank_core::geometry::UbankConfig;

    fn integ(nw: usize, nb: usize) -> PowerIntegrator {
        PowerIntegrator::new(
            EnergyModel::new(EnergyParams::lpddr_tsi(), UbankConfig::new(nw, nb)),
            16,
        )
    }

    fn stats(acts: u64, reads: u64, writes: u64) -> DramStats {
        DramStats {
            activates: acts,
            reads,
            writes,
            ..Default::default()
        }
    }

    #[test]
    fn energy_is_additive_in_events() {
        let p = integ(1, 1);
        let one = p.integrate(&stats(1, 1, 0), 0);
        let ten = p.integrate(&stats(10, 10, 0), 0);
        assert!((ten.total_nj() - 10.0 * one.total_nj()).abs() < 1e-9);
    }

    #[test]
    fn nw_cuts_act_pre_bucket_only() {
        let base = integ(1, 1).integrate(&stats(100, 100, 0), 2_000_000);
        let part = integ(8, 1).integrate(&stats(100, 100, 0), 2_000_000);
        assert!(part.act_pre_nj < base.act_pre_nj / 7.0);
        assert_eq!(part.rdwr_nj, base.rdwr_nj);
        assert_eq!(part.io_nj, base.io_nj);
        assert_eq!(part.static_nj, base.static_nj);
    }

    #[test]
    fn static_energy_scales_with_time() {
        let p = integ(1, 1);
        let a = p.integrate(&stats(0, 0, 0), 1_000_000);
        let b = p.integrate(&stats(0, 0, 0), 2_000_000);
        assert!((b.static_nj - 2.0 * a.static_nj).abs() < 1e-6);
        assert!(a.static_nj > 0.0);
    }

    #[test]
    fn watts_conversion_roundtrips() {
        let p = integ(1, 1);
        let e = p.integrate(&stats(1000, 5000, 1000), 10_000_000);
        let w = e.to_watts(10_000_000);
        let seconds = 10_000_000f64 * 0.5e-9;
        assert!((w.total_w() * seconds - e.total_nj() * 1e-9).abs() < 1e-12);
    }

    #[test]
    fn act_pre_fraction_is_high_for_random_traffic_on_tsi() {
        // β = 1 traffic on LPDDR-TSI: ACT/PRE should dominate (paper: the
        // motivation for μbank, §III-B / Fig. 14).
        let p = integ(1, 1);
        // 1M accesses over 10M cycles (5 ms): a busy memory system.
        let e = p.integrate(&stats(1_000_000, 1_000_000, 0), 10_000_000);
        assert!(e.act_pre_fraction() > 0.6, "{}", e.act_pre_fraction());
    }

    #[test]
    fn zero_time_power_is_zero() {
        let e = MemoryEnergy {
            act_pre_nj: 5.0,
            ..Default::default()
        };
        assert_eq!(e.to_watts(0).total_w(), 0.0);
    }
}
