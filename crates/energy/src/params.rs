//! DRAM energy parameters (paper Table I) for the three processor–memory
//! interfaces, plus background (static) power figures.
//!
//! Table I gives: 20 pJ/b I/O and 13 pJ/b core read/write for DDR3 over a
//! PCB; 4 pJ/b I/O and 4 pJ/b read/write for LPDDR over TSI; and
//! 30 nJ for an ACT+PRE pair on an 8 KB page. The intermediate DDR3-TSI
//! point (Fig. 14) keeps the DDR3 PHY — ODTs and DLLs — so its I/O energy
//! improves only modestly (§III-B); we model it at 10 pJ/b with the DDR3
//! 13 pJ/b core read/write energy.

use microbank_core::config::Interface;
use serde::{Deserialize, Serialize};

/// Per-interface DRAM energy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Inter-die I/O energy, pJ per bit (Table I).
    pub io_pj_per_bit: f64,
    /// Read/write datapath energy without I/O, pJ per bit (Table I).
    pub rdwr_pj_per_bit: f64,
    /// ACT+PRE pair energy for a full 8 KB DRAM page, nJ (Table I). μbank
    /// partitioning divides this by `nW` ([`crate::energy::EnergyModel`]).
    pub act_pre_nj_8kb: f64,
    /// Extra energy per ACT per μbank latch set, pJ. "More latches dissipate
    /// power, but their impact on the overall energy is negligible" (§IV-B);
    /// kept non-zero so the Fig. 6(b) matrix shows the slight upturn.
    pub latch_pj_per_act_per_ubank: f64,
    /// Background (static) DRAM power per channel, mW: peripheral logic,
    /// and for DDR3 PHYs the always-on DLL/ODT circuitry.
    pub static_mw_per_channel: f64,
    /// Energy per all-bank refresh of one rank, nJ (scales with die size;
    /// a full-die refresh rewrites every row over tRFC).
    pub refresh_nj: f64,
    /// Fraction of static power still drawn in precharge power-down
    /// (CKE-low keeps DLL-off retention circuitry only).
    pub powerdown_static_ratio: f64,
}

impl EnergyParams {
    /// DDR3 module over PCB (baseline; Table I: 20 pJ/b I/O, 13 pJ/b RD/WR).
    pub fn ddr3_pcb() -> Self {
        EnergyParams {
            io_pj_per_bit: 20.0,
            rdwr_pj_per_bit: 13.0,
            act_pre_nj_8kb: 30.0,
            latch_pj_per_act_per_ubank: 0.4,
            static_mw_per_channel: 180.0,
            refresh_nj: 120.0,
            powerdown_static_ratio: 0.25,
        }
    }

    /// DDR3-type stacked dies over TSI: TSI removes the PCB channel but the
    /// DDR3 PHY (ODT + DLL) remains, so I/O energy improves only modestly.
    pub fn ddr3_tsi() -> Self {
        EnergyParams {
            io_pj_per_bit: 10.0,
            rdwr_pj_per_bit: 13.0,
            static_mw_per_channel: 140.0,
            ..Self::ddr3_pcb()
        }
    }

    /// LPDDR-type stacked dies over TSI (Table I: 4 pJ/b I/O, 4 pJ/b RD/WR);
    /// no ODT/DLL, so background power drops sharply.
    pub fn lpddr_tsi() -> Self {
        EnergyParams {
            io_pj_per_bit: 4.0,
            rdwr_pj_per_bit: 4.0,
            static_mw_per_channel: 40.0,
            ..Self::ddr3_pcb()
        }
    }

    pub fn for_interface(i: Interface) -> Self {
        match i {
            Interface::Ddr3Pcb => Self::ddr3_pcb(),
            Interface::Ddr3Tsi => Self::ddr3_tsi(),
            Interface::LpddrTsi => Self::lpddr_tsi(),
        }
    }

    /// Energy to move one 64 B line across the interface, pJ (datapath + I/O).
    pub fn line_transfer_pj(&self) -> f64 {
        512.0 * (self.io_pj_per_bit + self.rdwr_pj_per_bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_energy_values() {
        let pcb = EnergyParams::ddr3_pcb();
        assert_eq!(pcb.io_pj_per_bit, 20.0);
        assert_eq!(pcb.rdwr_pj_per_bit, 13.0);
        assert_eq!(pcb.act_pre_nj_8kb, 30.0);
        let tsi = EnergyParams::lpddr_tsi();
        assert_eq!(tsi.io_pj_per_bit, 4.0);
        assert_eq!(tsi.rdwr_pj_per_bit, 4.0);
    }

    #[test]
    fn act_pre_dominates_tsi_line_transfer() {
        // §IV-A: ACT/PRE energy is ~15× the energy to read a line *through
        // the inter-die channels* (the I/O term) over TSI.
        let tsi = EnergyParams::lpddr_tsi();
        let io_pj_per_line = 512.0 * tsi.io_pj_per_bit;
        let ratio = tsi.act_pre_nj_8kb * 1000.0 / io_pj_per_line;
        assert!((ratio - 14.6).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn interface_ordering_holds() {
        let pcb = EnergyParams::ddr3_pcb();
        let dtsi = EnergyParams::ddr3_tsi();
        let ltsi = EnergyParams::lpddr_tsi();
        assert!(pcb.io_pj_per_bit > dtsi.io_pj_per_bit);
        assert!(dtsi.io_pj_per_bit > ltsi.io_pj_per_bit);
        assert!(pcb.line_transfer_pj() > dtsi.line_transfer_pj());
        assert!(dtsi.line_transfer_pj() > ltsi.line_transfer_pj());
    }

    #[test]
    fn for_interface_dispatch() {
        use microbank_core::config::Interface::*;
        assert_eq!(
            EnergyParams::for_interface(Ddr3Pcb),
            EnergyParams::ddr3_pcb()
        );
        assert_eq!(
            EnergyParams::for_interface(LpddrTsi),
            EnergyParams::lpddr_tsi()
        );
    }
}
