//! Energy-delay product helpers.
//!
//! The paper reports *relative 1/EDP* (higher is better) everywhere
//! (Figs. 9, 10, 12, 14). EDP = total system energy × execution time.

/// Energy-delay product. `energy_nj` is the total system energy (processor
/// plus memory) and `seconds` the execution time of the fixed work unit.
pub fn edp(energy_nj: f64, seconds: f64) -> f64 {
    energy_nj * 1e-9 * seconds
}

/// Relative inverse EDP of a candidate vs a baseline: > 1 means the
/// candidate is more energy-efficient (the paper's reporting convention).
pub fn relative_inverse_edp(
    base_energy_nj: f64,
    base_seconds: f64,
    cand_energy_nj: f64,
    cand_seconds: f64,
) -> f64 {
    edp(base_energy_nj, base_seconds) / edp(cand_energy_nj, cand_seconds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edp_definition() {
        assert!((edp(2.0e9, 3.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn better_candidate_scores_above_one() {
        // Half the energy at half the time → 4× better 1/EDP.
        let r = relative_inverse_edp(100.0, 1.0, 50.0, 0.5);
        assert!((r - 4.0).abs() < 1e-12);
    }

    #[test]
    fn identical_systems_score_one() {
        assert!((relative_inverse_edp(7.0, 2.0, 7.0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slower_but_leaner_tradeoff() {
        // 4× less energy but 2× slower → 2× better EDP.
        let r = relative_inverse_edp(100.0, 1.0, 25.0, 2.0);
        assert!((r - 2.0).abs() < 1e-12);
    }
}
