//! Processor-side energy, at the abstraction level the paper uses.
//!
//! §III-B: "a dual-issue out-of-order core, modeled by McPAT, consumes
//! 200 pJ/op in 22 nm". The paper's EDP figures combine this per-operation
//! core energy with cache/uncore static power; we expose the same terms.

use microbank_core::Cycle;
use serde::{Deserialize, Serialize};

/// Seconds per CPU cycle at 2 GHz.
const SECONDS_PER_CYCLE: f64 = 0.5e-9;

/// Processor (cores + caches + uncore) power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorePowerModel {
    /// Dynamic energy per committed instruction, pJ (200 pJ/op, §III-B).
    pub epi_pj: f64,
    /// Static power per core, mW (leakage + clock tree of a small
    /// dual-issue OoO core plus its share of L1).
    pub static_mw_per_core: f64,
    /// Static power per L2 slice / cluster uncore, mW.
    pub static_mw_per_cluster: f64,
    /// Cores per cluster (4, §VI-A).
    pub cores_per_cluster: usize,
}

impl Default for CorePowerModel {
    fn default() -> Self {
        CorePowerModel {
            epi_pj: 200.0,
            static_mw_per_core: 50.0,
            static_mw_per_cluster: 100.0,
            cores_per_cluster: 4,
        }
    }
}

impl CorePowerModel {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total processor energy in nJ for `instructions` committed over
    /// `cycles` on `cores` active cores.
    pub fn energy_nj(&self, instructions: u64, cycles: Cycle, cores: usize) -> f64 {
        let seconds = cycles as f64 * SECONDS_PER_CYCLE;
        let clusters = cores.div_ceil(self.cores_per_cluster);
        let static_mw =
            self.static_mw_per_core * cores as f64 + self.static_mw_per_cluster * clusters as f64;
        instructions as f64 * self.epi_pj / 1000.0 + static_mw * 1e-3 * seconds * 1e9
    }

    /// Average processor power in watts.
    pub fn power_w(&self, instructions: u64, cycles: Cycle, cores: usize) -> f64 {
        let seconds = cycles as f64 * SECONDS_PER_CYCLE;
        if seconds == 0.0 {
            0.0
        } else {
            self.energy_nj(instructions, cycles, cores) * 1e-9 / seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_epi_default() {
        assert_eq!(CorePowerModel::default().epi_pj, 200.0);
    }

    #[test]
    fn dynamic_term_matches_paper_math() {
        // §III-B example: at 200 pJ/op, 1e9 ops = 0.2 J = 2e8 nJ dynamic.
        let m = CorePowerModel {
            static_mw_per_core: 0.0,
            static_mw_per_cluster: 0.0,
            ..Default::default()
        };
        let e = m.energy_nj(1_000_000_000, 0, 1);
        assert!((e - 2.0e8).abs() < 1.0);
    }

    #[test]
    fn power_at_full_throughput_is_sane() {
        // One core at IPC 1 (2 Gops/s): 0.4 W dynamic + 50 mW static.
        let m = CorePowerModel::default();
        let cycles = 2_000_000_000u64; // one second
        let w = m.power_w(2_000_000_000, cycles, 1);
        assert!(w > 0.4 && w < 0.6, "{w}");
    }

    #[test]
    fn static_scales_with_cores_and_clusters() {
        let m = CorePowerModel::default();
        let e4 = m.energy_nj(0, 2_000_000, 4);
        let e64 = m.energy_nj(0, 2_000_000, 64);
        assert!(e64 > 15.0 * e4 && e64 < 17.0 * e4);
    }
}
