//! Property tests for the analytic ECC decoder (satellite of the
//! reliability-subsystem PR): the decoding guarantees the model claims —
//! SEC-DED corrects every 1-bit error and detects every 2-bit error,
//! chipkill corrects any error confined to one symbol — must hold for
//! *arbitrary* bit positions, not just the hand-picked unit-test cases.
//! Each access also gets exactly one verdict: never simultaneously
//! corrected and uncorrectable.

use microbank_faults::ecc::{decide, EccMode, EccOutcome, ErrorPattern, DATA_BITS, SYMBOL_BITS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// SEC-DED corrects every possible single-bit error.
    #[test]
    fn secded_corrects_all_single_bit_errors(pos in 0u16..DATA_BITS as u16) {
        let p = ErrorPattern::from_bit_positions(&[pos]);
        prop_assert_eq!(decide(EccMode::SecDed, p), EccOutcome::Corrected);
    }

    /// SEC-DED detects every possible double-bit error (distinct bits).
    #[test]
    fn secded_detects_all_double_bit_errors(
        a in 0u16..DATA_BITS as u16,
        b in 0u16..DATA_BITS as u16,
    ) {
        prop_assume!(a != b);
        let p = ErrorPattern::from_bit_positions(&[a, b]);
        prop_assert_eq!(decide(EccMode::SecDed, p), EccOutcome::Detected);
    }

    /// Chipkill corrects any error pattern confined to a single symbol,
    /// whatever its bit weight — the whole point of wide-symbol codes.
    #[test]
    fn chipkill_corrects_any_single_symbol_error(
        symbol in 0u16..(DATA_BITS / SYMBOL_BITS) as u16,
        mask in 1u8..=u8::MAX,
    ) {
        let base = symbol * SYMBOL_BITS as u16;
        let positions: Vec<u16> = (0..SYMBOL_BITS as u16)
            .filter(|b| mask & (1 << b) != 0)
            .map(|b| base + b)
            .collect();
        let p = ErrorPattern::from_bit_positions(&positions);
        prop_assert_eq!(p.symbols, 1);
        prop_assert_eq!(decide(EccMode::Chipkill, p), EccOutcome::Corrected);
    }

    /// Chipkill detects every distinct double-symbol error where each
    /// symbol carries multiple bad bits (beyond SEC-DED's reach).
    #[test]
    fn chipkill_detects_double_symbol_errors(
        s1 in 0u16..(DATA_BITS / SYMBOL_BITS) as u16,
        s2 in 0u16..(DATA_BITS / SYMBOL_BITS) as u16,
        m1 in 1u8..=u8::MAX,
        m2 in 1u8..=u8::MAX,
    ) {
        prop_assume!(s1 != s2);
        let mut positions = Vec::new();
        for (s, m) in [(s1, m1), (s2, m2)] {
            let base = s * SYMBOL_BITS as u16;
            positions.extend((0..SYMBOL_BITS as u16).filter(|b| m & (1 << b) != 0).map(|b| base + b));
        }
        let p = ErrorPattern::from_bit_positions(&positions);
        prop_assert_eq!(p.symbols, 2);
        prop_assert_eq!(decide(EccMode::Chipkill, p), EccOutcome::Detected);
    }

    /// Exactly one verdict per access, for every mode and any error shape:
    /// a corrected access is never also uncorrectable, a clean pattern is
    /// never anything but Clean, and a dirty pattern is never Clean.
    #[test]
    fn verdicts_are_exclusive_and_exhaustive(
        positions in prop::collection::vec(0u16..DATA_BITS as u16, 0..20),
        mode_sel in 0u8..3,
    ) {
        let mode = [EccMode::None, EccMode::SecDed, EccMode::Chipkill][mode_sel as usize];
        let p = ErrorPattern::from_bit_positions(&positions);
        let outcome = decide(mode, p);
        if p.is_clean() {
            prop_assert_eq!(outcome, EccOutcome::Clean);
        } else {
            prop_assert_ne!(outcome, EccOutcome::Clean);
        }
        // The outcome is a single enum value by construction; assert the
        // semantic exclusivity the counters rely on: corrected implies
        // data delivered, detected implies it is not — they cannot both
        // be reported for one access.
        let corrected = outcome == EccOutcome::Corrected;
        let uncorrectable = outcome == EccOutcome::Detected;
        prop_assert!(!(corrected && uncorrectable));
    }

    /// Monotone severity: adding error bits to a pattern never turns an
    /// uncorrectable access back into a clean one.
    #[test]
    fn more_errors_never_look_clean(
        positions in prop::collection::vec(0u16..DATA_BITS as u16, 1..40),
        extra in 0u16..DATA_BITS as u16,
    ) {
        let mut with_extra = positions.clone();
        with_extra.push(extra);
        for mode in [EccMode::SecDed, EccMode::Chipkill] {
            let o = decide(mode, ErrorPattern::from_bit_positions(&with_extra));
            prop_assert_ne!(o, EccOutcome::Clean);
        }
    }
}
