//! Per-channel fault engine: owns the hard-fault map, the transient RNG
//! stream, the degradation state, and the optional patrol scrubber, and
//! exposes the two assessment entry points the memory controller calls —
//! one per demand read, one per scrub command.
//!
//! Everything here is analytic: no payload bits are simulated. An access
//! combines its hard-fault contribution (from the projected defect map)
//! with a Poisson-sampled transient contribution, and the ECC decoder
//! verdict is decided from the resulting pattern shape alone.

use crate::degrade::Degrade;
use crate::ecc::{decide, EccOutcome};
use crate::inject::{transient_pattern, FaultConfig, FaultMap};
use crate::scrub::Scrubber;
use microbank_core::address::Location;
use microbank_core::config::MemConfig;
use microbank_core::fxhash::FxBuild;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Aggregate reliability counters, summed across channels into
/// `SimResult::reliability`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct FaultSummary {
    /// Demand reads assessed by the engine.
    pub reads_checked: u64,
    /// Scrub commands assessed.
    pub scrub_checks: u64,
    /// Accesses whose error was corrected by ECC.
    pub corrected: u64,
    /// Corrected accesses with a hard-fault contribution (drives
    /// predictive retirement).
    pub corrected_hard: u64,
    /// Detected-uncorrectable accesses.
    pub detected: u64,
    /// Silently miscorrected accesses (or any error at all with ECC off).
    pub miscorrected: u64,
    /// Demand reads re-issued after a corrected error.
    pub retries: u64,
    /// μbank rows retired.
    pub retired_rows: u64,
    /// Whole μbanks retired.
    pub retired_ubanks: u64,
    /// Retirements refused to protect the channel's last live μbank.
    pub retire_refused: u64,
    /// Effective capacity lost to retirement, in bytes.
    pub capacity_lost_bytes: u64,
}

impl FaultSummary {
    /// Accumulate another channel's (or shard's) counters. Saturating,
    /// matching the cross-shard merge contract of the other telemetry
    /// counters: pinned at `u64::MAX` rather than wrapped.
    pub fn merge(&mut self, other: &FaultSummary) {
        self.reads_checked = self.reads_checked.saturating_add(other.reads_checked);
        self.scrub_checks = self.scrub_checks.saturating_add(other.scrub_checks);
        self.corrected = self.corrected.saturating_add(other.corrected);
        self.corrected_hard = self.corrected_hard.saturating_add(other.corrected_hard);
        self.detected = self.detected.saturating_add(other.detected);
        self.miscorrected = self.miscorrected.saturating_add(other.miscorrected);
        self.retries = self.retries.saturating_add(other.retries);
        self.retired_rows = self.retired_rows.saturating_add(other.retired_rows);
        self.retired_ubanks = self.retired_ubanks.saturating_add(other.retired_ubanks);
        self.retire_refused = self.retire_refused.saturating_add(other.retire_refused);
        self.capacity_lost_bytes = self
            .capacity_lost_bytes
            .saturating_add(other.capacity_lost_bytes);
    }
}

/// What the controller should do with the access just assessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessVerdict {
    /// Deliver the data; nothing else to do.
    Ok,
    /// Corrected error on a demand read: re-issue the read once.
    Retry,
    /// Uncorrectable: data lost, target (possibly) retired. The request
    /// still completes — the model charges the timing/energy cost and the
    /// retirement capacity cost, not a machine check.
    Uncorrectable,
}

/// One channel's reliability state.
#[derive(Debug)]
pub struct FaultEngine {
    fc: FaultConfig,
    map: FaultMap,
    pub degrade: Degrade,
    pub scrub: Option<Scrubber>,
    rng: StdRng,
    /// Corrected hard-error count per flat μbank (predictive-retirement
    /// trigger).
    hard_ce: HashMap<u32, u32, FxBuild>,
    pub summary: FaultSummary,
    // Geometry needed to decompose remapped flat indices back into
    // Location fields.
    n_w: u32,
    per_bank: u32,
    banks_per_rank: u32,
}

impl FaultEngine {
    /// Build the engine for `channel` of a `cfg`-shaped system. Each
    /// channel derives an independent deterministic stream from the master
    /// seed, so multi-channel runs stay reproducible regardless of
    /// per-channel service order.
    pub fn new(cfg: &MemConfig, fc: &FaultConfig, channel: usize) -> Self {
        let seed = fc
            .seed
            .wrapping_add((channel as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let n_ubanks = cfg.ubanks_per_channel();
        let ubank_rows = cfg.ubank_rows();
        let row_bytes = cfg.geometry.ubank_row_bytes(cfg.ubank) as u64;
        FaultEngine {
            map: FaultMap::generate(cfg, fc, seed),
            degrade: Degrade::new(n_ubanks, ubank_rows, row_bytes),
            scrub: fc
                .scrub_interval
                .map(|iv| Scrubber::new(iv, n_ubanks, ubank_rows)),
            rng: StdRng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03),
            hard_ce: HashMap::with_hasher(FxBuild::default()),
            summary: FaultSummary::default(),
            n_w: cfg.ubank.n_w as u32,
            per_bank: cfg.ubank.ubanks_per_bank() as u32,
            banks_per_rank: cfg.banks_per_rank as u32,
            fc: fc.clone(),
        }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.fc
    }

    /// Rewrite `loc` around retired μbanks/rows (identity while nothing is
    /// retired). Called once per request at enqueue, so in-flight requests
    /// are never re-pointed mid-service.
    pub fn remap_loc(&self, loc: &mut Location) {
        if self.degrade.lost_bytes == 0 {
            return;
        }
        let rb = loc.rank as u32 * self.banks_per_rank + loc.bank as u32;
        let flat = rb * self.per_bank + loc.b as u32 * self.n_w + loc.w as u32;
        let (f2, r2) = self.degrade.remap(flat, loc.row);
        if f2 != flat {
            let within = f2 % self.per_bank;
            let rb2 = f2 / self.per_bank;
            loc.w = (within % self.n_w) as u8;
            loc.b = (within / self.n_w) as u8;
            loc.bank = (rb2 % self.banks_per_rank) as u8;
            loc.rank = (rb2 / self.banks_per_rank) as u8;
        }
        loc.row = r2;
    }

    /// Assess one demand read of `(flat, row)`. `age_frac` ∈ [0,1] is the
    /// rank's refresh age (retention-decay scaling); `retried` marks a
    /// request already re-issued once, which is never retried again.
    pub fn assess_demand_read(
        &mut self,
        flat: u32,
        row: u32,
        age_frac: f64,
        retried: bool,
    ) -> AccessVerdict {
        self.summary.reads_checked += 1;
        match self.assess(flat, row, age_frac) {
            EccOutcome::Corrected if !retried => {
                self.summary.retries += 1;
                AccessVerdict::Retry
            }
            EccOutcome::Detected => AccessVerdict::Uncorrectable,
            _ => AccessVerdict::Ok,
        }
    }

    /// Assess one patrol-scrub read. Scrubs never retry (the scrub cycle
    /// itself rewrites corrected data), but they trigger the same
    /// detection-driven and predictive retirement as demand reads — that
    /// is their purpose: finding decayed/defective cells before demand
    /// traffic does.
    pub fn assess_scrub(&mut self, flat: u32, row: u32, age_frac: f64) {
        self.summary.scrub_checks += 1;
        self.assess(flat, row, age_frac);
    }

    /// Shared assessment: combine hard + transient patterns, decide the
    /// ECC outcome, count it, and apply the retirement policy.
    fn assess(&mut self, flat: u32, row: u32, age_frac: f64) -> EccOutcome {
        let (hard, row_scope, ubank_scope) = self.map.hard_pattern(flat, row);
        let pattern = hard.combine(transient_pattern(&mut self.rng, &self.fc, age_frac));
        let outcome = decide(self.fc.ecc, pattern);
        match outcome {
            EccOutcome::Clean => {}
            EccOutcome::Corrected => {
                self.summary.corrected += 1;
                if !hard.is_clean() {
                    self.summary.corrected_hard += 1;
                    let n = self.hard_ce.entry(flat).or_insert(0);
                    *n += 1;
                    if *n >= self.fc.hard_ce_retire_threshold {
                        *n = 0;
                        // Chronic corrected errors: retire the μbank when
                        // the defect is μbank-wide (bitline/sense-amp),
                        // else just the affected row (stuck cells).
                        if self.map.bad_cols.contains_key(&flat) {
                            self.retire_ubank(flat);
                        } else {
                            self.retire_row(flat, row);
                        }
                    }
                }
            }
            EccOutcome::Detected => {
                self.summary.detected += 1;
                // Detection localizes the failure; retire at the defect's
                // scope (μbank-wide beats row-wide when both contribute).
                if ubank_scope {
                    self.retire_ubank(flat);
                } else if row_scope {
                    self.retire_row(flat, row);
                }
                // Pure-transient detections retire nothing: the cell is
                // fine, the data was not.
            }
            EccOutcome::Miscorrected => self.summary.miscorrected += 1,
        }
        outcome
    }

    fn retire_row(&mut self, flat: u32, row: u32) {
        let ubanks_before = self.degrade.retired_ubanks();
        if self.degrade.retire_row(flat, row) {
            self.summary.retired_rows += 1;
        }
        // retire_row can escalate to a whole-μbank retirement.
        self.summary.retired_ubanks += self.degrade.retired_ubanks() - ubanks_before;
        self.sync_capacity();
    }

    fn retire_ubank(&mut self, flat: u32) {
        if self.degrade.retire_ubank(flat) {
            self.summary.retired_ubanks += 1;
        }
        self.sync_capacity();
    }

    fn sync_capacity(&mut self) {
        self.summary.retire_refused = self.degrade.refused;
        self.summary.capacity_lost_bytes = self.degrade.lost_bytes;
    }

    /// Is `(flat, row)` already retired? (Scrub walk skips these without
    /// spending a command slot.)
    pub fn is_retired(&self, flat: u32, row: u32) -> bool {
        self.degrade.is_ubank_retired(flat) || self.degrade.is_row_retired(flat, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecc::EccMode;

    fn cfg(nw: usize, nb: usize) -> MemConfig {
        MemConfig::lpddr_tsi().with_ubanks(nw, nb).with_channels(1)
    }

    fn find_bad_ubank(e: &FaultEngine) -> u32 {
        *e.map.bad_ubanks.iter().min().unwrap()
    }

    #[test]
    fn summary_merge_saturates() {
        let mut a = FaultSummary {
            corrected: u64::MAX - 1,
            ..Default::default()
        };
        let b = FaultSummary {
            corrected: 10,
            retries: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.corrected, u64::MAX);
        assert_eq!(a.retries, 3);
    }

    #[test]
    fn clean_engine_never_intervenes() {
        let c = cfg(8, 8);
        let mut e = FaultEngine::new(&c, &FaultConfig::new(1), 0);
        for i in 0..100 {
            assert_eq!(
                e.assess_demand_read(i % 64, i, 0.5, false),
                AccessVerdict::Ok
            );
        }
        assert_eq!(e.summary.corrected, 0);
        assert_eq!(e.summary.capacity_lost_bytes, 0);
    }

    #[test]
    fn detected_ubank_fault_retires_the_ubank() {
        let c = cfg(4, 4);
        let mut fc = FaultConfig::new(3);
        fc.subarray_faults = 1;
        let mut e = FaultEngine::new(&c, &fc, 0);
        let bad = find_bad_ubank(&e);
        assert_eq!(
            e.assess_demand_read(bad, 0, 0.0, false),
            AccessVerdict::Uncorrectable
        );
        assert_eq!(e.summary.retired_ubanks, 1);
        assert!(e.is_retired(bad, 0));
        // Subsequent enqueue-time remap steers demand traffic away.
        assert_ne!(e.degrade.remap(bad, 0).0, bad);
    }

    #[test]
    fn corrected_demand_read_retries_exactly_once() {
        let c = cfg(4, 4);
        let mut fc = FaultConfig::new(5).with_ecc(EccMode::Chipkill);
        fc.col_faults = 1;
        let mut e = FaultEngine::new(&c, &fc, 0);
        let bad = *e.map.bad_cols.keys().min().unwrap();
        assert_eq!(
            e.assess_demand_read(bad, 0, 0.0, false),
            AccessVerdict::Retry
        );
        assert_eq!(e.assess_demand_read(bad, 0, 0.0, true), AccessVerdict::Ok);
        assert_eq!(e.summary.retries, 1);
        assert_eq!(e.summary.corrected, 2);
        assert_eq!(e.summary.corrected_hard, 2);
    }

    #[test]
    fn chronic_corrected_errors_trigger_predictive_retirement() {
        let c = cfg(4, 4);
        let mut fc = FaultConfig::new(5).with_ecc(EccMode::Chipkill);
        fc.col_faults = 1;
        fc.hard_ce_retire_threshold = 4;
        let mut e = FaultEngine::new(&c, &fc, 0);
        let bad = *e.map.bad_cols.keys().min().unwrap();
        for _ in 0..4 {
            e.assess_demand_read(bad, 0, 0.0, true);
        }
        assert_eq!(
            e.summary.retired_ubanks, 1,
            "μbank-wide defect → μbank retired"
        );
        assert!(e.degrade.is_ubank_retired(bad));
    }

    #[test]
    fn remap_loc_round_trips_geometry() {
        let c = cfg(4, 4);
        let mut fc = FaultConfig::new(3);
        fc.subarray_faults = 1;
        let mut e = FaultEngine::new(&c, &fc, 0);
        let bad = find_bad_ubank(&e);
        e.assess_demand_read(bad, 0, 0.0, false); // retires `bad`
                                                  // Build the Location that maps onto `bad` and check remap_loc
                                                  // agrees with degrade.remap through the field decomposition.
        let per_bank = c.ubank.ubanks_per_bank() as u32;
        let rb = bad / per_bank;
        let within = bad % per_bank;
        let mut loc = Location {
            channel: 0,
            rank: (rb / c.banks_per_rank as u32) as u8,
            bank: (rb % c.banks_per_rank as u32) as u8,
            w: (within % c.ubank.n_w as u32) as u8,
            b: (within / c.ubank.n_w as u32) as u8,
            row: 0,
            col: 0,
        };
        e.remap_loc(&mut loc);
        let expect = e.degrade.remap(bad, 0);
        assert_eq!(loc.ubank_flat(&c) as u32, expect.0);
        assert_eq!(loc.row, expect.1);
    }

    #[test]
    fn per_channel_streams_are_independent_and_deterministic() {
        let c = cfg(8, 8);
        let fc = FaultConfig::stress(77);
        let run = |ch: usize| {
            let mut e = FaultEngine::new(&c, &fc, ch);
            for i in 0..500u32 {
                e.assess_demand_read(i % 64, i % 128, 0.5, false);
            }
            e.summary
        };
        assert_eq!(run(0), run(0), "same channel → same summary");
        let (e0, e1) = (FaultEngine::new(&c, &fc, 0), FaultEngine::new(&c, &fc, 1));
        assert_ne!(
            (&e0.map.bad_ubanks, &e0.map.bad_rows, &e0.map.stuck),
            (&e1.map.bad_ubanks, &e1.map.bad_rows, &e1.map.stuck),
            "channels carry independently seeded fault maps"
        );
    }

    #[test]
    fn no_ecc_detects_nothing_and_retires_nothing() {
        let c = cfg(4, 4);
        let mut fc = FaultConfig::new(3).with_ecc(EccMode::None);
        fc.subarray_faults = 1;
        let mut e = FaultEngine::new(&c, &fc, 0);
        let bad = find_bad_ubank(&e);
        assert_eq!(e.assess_demand_read(bad, 0, 0.0, false), AccessVerdict::Ok);
        assert_eq!(e.summary.miscorrected, 1);
        assert_eq!(
            e.summary.capacity_lost_bytes, 0,
            "silent corruption: no signal to act on"
        );
    }
}
