//! Deterministic, seeded fault injection.
//!
//! Hard faults are *physical* defects, so they are sampled in physical
//! device coordinates — (bank, wordline 0..8192, column 0..128) — in a
//! fixed order from the seed, independent of the μbank partitioning. The
//! same seed therefore places the same physical defects under every
//! `(nW, nB)` geometry; only the *blast radius* (which μbank/row the
//! defect projects onto, and how many bytes retiring it costs) changes
//! with the partitioning. That projection is exactly the paper-adjacent
//! claim the `reliability` bench measures.
//!
//! Transient errors (particle strikes on access, retention decay between
//! refreshes) are sampled per read from per-bit rates, approximated as
//! Poisson draws over the 512 data bits (exact binomial and Poisson are
//! indistinguishable at the modeled rates, and the Knuth sampler is
//! allocation-free and deterministic).

use crate::ecc::{EccMode, ErrorPattern, DATA_BITS};
use microbank_core::config::MemConfig;
use microbank_core::fxhash::FxBuild;
use microbank_core::Cycle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Reliability-subsystem configuration, disabled by default (a `SimConfig`
/// carries `Option<FaultConfig>`; `None` keeps the golden path untouched).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Master seed; each channel derives its own stream from (seed, channel).
    pub seed: u64,
    pub ecc: EccMode,
    /// Per-bit probability of a transient flip on each read access.
    pub access_flip_rate: f64,
    /// Per-bit retention-failure probability at a full tREFI of age;
    /// scaled linearly by the fraction of tREFI elapsed since the rank's
    /// last refresh.
    pub retention_flip_rate: f64,
    /// Hard single-cell stuck-at faults per channel.
    pub stuck_cells: u32,
    /// Hard wordline(-segment) faults per channel: the covering μbank row
    /// reads as garbage.
    pub row_faults: u32,
    /// Hard bitline/sense-amp faults per channel: one bad bit on every
    /// access to the covering μbank (correctable, but chronic).
    pub col_faults: u32,
    /// Hard subarray faults per channel (local decoder/driver): the
    /// covering μbank reads as garbage. At (1,1) the covering μbank is the
    /// whole bank — the blast-radius headline case.
    pub subarray_faults: u32,
    /// Hard whole-bank faults per channel (global bank logic).
    pub bank_faults: u32,
    /// Hard whole-rank faults per channel.
    pub rank_faults: u32,
    /// Patrol-scrub command period in CPU cycles (`None` = no scrubbing).
    pub scrub_interval: Option<Cycle>,
    /// Corrected *hard* errors tolerated per μbank before predictive
    /// retirement kicks in (column-fault μbanks get retired, stuck-cell
    /// rows get retired).
    pub hard_ce_retire_threshold: u32,
}

impl FaultConfig {
    /// A clean, ECC-on configuration: no injected faults, no scrubbing.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            ecc: EccMode::SecDed,
            access_flip_rate: 0.0,
            retention_flip_rate: 0.0,
            stuck_cells: 0,
            row_faults: 0,
            col_faults: 0,
            subarray_faults: 0,
            bank_faults: 0,
            rank_faults: 0,
            scrub_interval: None,
            hard_ce_retire_threshold: 16,
        }
    }

    /// A stress preset exercising every fault mode: used by the golden
    /// determinism suite and the `reliability` bench's "high" point.
    pub fn stress(seed: u64) -> Self {
        FaultConfig {
            access_flip_rate: 2e-7,
            retention_flip_rate: 1e-6,
            stuck_cells: 6,
            row_faults: 4,
            col_faults: 3,
            subarray_faults: 2,
            scrub_interval: Some(4_096),
            hard_ce_retire_threshold: 8,
            ..Self::new(seed)
        }
    }

    pub fn with_ecc(mut self, ecc: EccMode) -> Self {
        self.ecc = ecc;
        self
    }

    pub fn with_scrub(mut self, interval: Cycle) -> Self {
        self.scrub_interval = Some(interval);
        self
    }
}

/// One channel's hard-fault map, projected from physical defect positions
/// onto the channel's `(nW, nB)` geometry. Keys are flat μbank indices
/// (and rows within the μbank where applicable).
#[derive(Debug, Clone)]
pub struct FaultMap {
    /// Stuck bit count per (flat, μbank row).
    pub stuck: HashMap<u64, u32, FxBuild>,
    /// μbank rows reading as garbage (wordline-segment defects).
    pub bad_rows: HashSet<u64, FxBuild>,
    /// Chronic single-bit defects per flat μbank (bitline/sense-amp).
    pub bad_cols: HashMap<u32, u32, FxBuild>,
    /// μbanks reading as garbage (subarray, bank, or rank scope defects,
    /// all projected down to the μbanks they cover).
    pub bad_ubanks: HashSet<u32, FxBuild>,
}

/// Key for per-(μbank, row) maps.
#[inline]
pub fn row_key(flat: u32, row: u32) -> u64 {
    ((flat as u64) << 32) | row as u64
}

impl FaultMap {
    /// Generate the channel's map from `seed`. Sampling happens in
    /// physical coordinates in a fixed order, so two configs differing
    /// only in `(nW, nB)` see the *same* physical defects.
    pub fn generate(cfg: &MemConfig, fc: &FaultConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows_per_bank = cfg.geometry.rows_per_bank() as u64;
        let cols_per_row = cfg.geometry.cols_per_row() as u64;
        let banks = (cfg.ranks_per_channel * cfg.banks_per_rank) as u64;
        let (nw, nb) = (cfg.ubank.n_w as u64, cfg.ubank.n_b as u64);
        let per_bank = nw * nb;
        let ubank_rows = rows_per_bank / nb;
        let seg_cols = cols_per_row / nw;

        // Physical (bank, wordline, column) → (flat μbank, μbank row).
        let project = |bank: u64, prow: u64, pcol: u64| -> (u32, u32) {
            let b = prow / ubank_rows;
            let w = pcol / seg_cols;
            let flat = bank * per_bank + b * nw + w;
            (flat as u32, (prow % ubank_rows) as u32)
        };

        let mut map = FaultMap {
            stuck: HashMap::with_hasher(FxBuild::default()),
            bad_rows: HashSet::with_hasher(FxBuild::default()),
            bad_cols: HashMap::with_hasher(FxBuild::default()),
            bad_ubanks: HashSet::with_hasher(FxBuild::default()),
        };

        for _ in 0..fc.stuck_cells {
            let (bank, prow, pcol) = (
                rng.gen_range(0..banks),
                rng.gen_range(0..rows_per_bank),
                rng.gen_range(0..cols_per_row),
            );
            let (flat, row) = project(bank, prow, pcol);
            *map.stuck.entry(row_key(flat, row)).or_insert(0) += 1;
        }
        for _ in 0..fc.row_faults {
            let (bank, prow, pcol) = (
                rng.gen_range(0..banks),
                rng.gen_range(0..rows_per_bank),
                rng.gen_range(0..cols_per_row),
            );
            let (flat, row) = project(bank, prow, pcol);
            map.bad_rows.insert(row_key(flat, row));
        }
        for _ in 0..fc.col_faults {
            let (bank, prow, pcol) = (
                rng.gen_range(0..banks),
                rng.gen_range(0..rows_per_bank),
                rng.gen_range(0..cols_per_row),
            );
            let (flat, _) = project(bank, prow, pcol);
            *map.bad_cols.entry(flat).or_insert(0) += 1;
        }
        for _ in 0..fc.subarray_faults {
            let (bank, prow, pcol) = (
                rng.gen_range(0..banks),
                rng.gen_range(0..rows_per_bank),
                rng.gen_range(0..cols_per_row),
            );
            let (flat, _) = project(bank, prow, pcol);
            map.bad_ubanks.insert(flat);
        }
        for _ in 0..fc.bank_faults {
            let bank = rng.gen_range(0..banks);
            for within in 0..per_bank {
                map.bad_ubanks.insert((bank * per_bank + within) as u32);
            }
        }
        for _ in 0..fc.rank_faults {
            let rank = rng.gen_range(0..cfg.ranks_per_channel as u64);
            let per_rank = cfg.banks_per_rank as u64 * per_bank;
            for within in 0..per_rank {
                map.bad_ubanks.insert((rank * per_rank + within) as u32);
            }
        }
        map
    }

    /// Hard-error pattern for one access, plus whether any hard source
    /// contributed at each scope. Returns `(pattern, row_scope, ubank_scope)`.
    pub fn hard_pattern(&self, flat: u32, row: u32) -> (ErrorPattern, bool, bool) {
        let mut p = ErrorPattern::CLEAN;
        let mut row_scope = false;
        let mut ubank_scope = false;
        if self.bad_ubanks.contains(&flat) {
            p = p.combine(ErrorPattern::GARBAGE);
            ubank_scope = true;
        }
        if self.bad_rows.contains(&row_key(flat, row)) {
            p = p.combine(ErrorPattern::GARBAGE);
            row_scope = true;
        }
        if let Some(&n) = self.stuck.get(&row_key(flat, row)) {
            p = p.combine(ErrorPattern::scattered_bits(n));
            row_scope = true;
        }
        if let Some(&n) = self.bad_cols.get(&flat) {
            p = p.combine(ErrorPattern::scattered_bits(n));
            ubank_scope = true;
        }
        (p, row_scope, ubank_scope)
    }
}

/// Knuth Poisson sampler (deterministic, loop-free for λ = 0). Adequate
/// for the small λ this model produces (λ = 512 × per-bit rate ≪ 1).
pub fn poisson(rng: &mut StdRng, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit || k > DATA_BITS {
            return k;
        }
        k += 1;
    }
}

/// Transient contribution for one read: access noise plus retention decay
/// aged by `age_frac` ∈ [0, 1] (fraction of tREFI since the rank's last
/// refresh). Consumes RNG only when the corresponding rate is nonzero, so
/// an all-hard configuration stays draw-free on the hot path.
pub fn transient_pattern(rng: &mut StdRng, fc: &FaultConfig, age_frac: f64) -> ErrorPattern {
    let mut k = 0u32;
    if fc.access_flip_rate > 0.0 {
        k += poisson(rng, DATA_BITS as f64 * fc.access_flip_rate);
    }
    if fc.retention_flip_rate > 0.0 {
        k += poisson(rng, DATA_BITS as f64 * fc.retention_flip_rate * age_frac);
    }
    ErrorPattern::scattered_bits(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nw: usize, nb: usize) -> MemConfig {
        MemConfig::lpddr_tsi().with_ubanks(nw, nb).with_channels(1)
    }

    #[test]
    fn generation_is_deterministic() {
        let c = cfg(8, 8);
        let fc = FaultConfig::stress(42);
        let a = FaultMap::generate(&c, &fc, 7);
        let b = FaultMap::generate(&c, &fc, 7);
        assert_eq!(a.bad_ubanks, b.bad_ubanks);
        assert_eq!(a.bad_rows, b.bad_rows);
        assert_eq!(a.stuck, b.stuck);
        assert_eq!(a.bad_cols, b.bad_cols);
    }

    #[test]
    fn different_seeds_differ() {
        let c = cfg(8, 8);
        let fc = FaultConfig::stress(42);
        let a = FaultMap::generate(&c, &fc, 7);
        let b = FaultMap::generate(&c, &fc, 8);
        assert_ne!(
            (a.bad_ubanks, a.bad_rows, a.stuck),
            (b.bad_ubanks, b.bad_rows, b.stuck)
        );
    }

    #[test]
    fn physical_defects_are_geometry_invariant() {
        // The same seed must place the same *number* of distinct physical
        // defects under every partitioning; only the projection changes.
        let fc = FaultConfig::stress(99);
        let fine = FaultMap::generate(&cfg(16, 16), &fc, 3);
        let coarse = FaultMap::generate(&cfg(1, 1), &fc, 3);
        // Subarray faults at (1,1) cover whole banks → indices fall in
        // 0..8; at (16,16) they land somewhere in 0..2048.
        assert!(coarse.bad_ubanks.iter().all(|&f| f < 8));
        assert_eq!(coarse.bad_ubanks.len(), fine.bad_ubanks.len());
        assert_eq!(coarse.bad_rows.len(), fine.bad_rows.len());
    }

    #[test]
    fn bank_faults_cover_every_covering_ubank() {
        let c = cfg(4, 4);
        let mut fc = FaultConfig::new(1);
        fc.bank_faults = 1;
        let m = FaultMap::generate(&c, &fc, 11);
        assert_eq!(m.bad_ubanks.len(), 16, "one bank = nW×nB μbanks");
    }

    #[test]
    fn poisson_zero_rate_consumes_nothing() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(poisson(&mut a, 0.0), 0);
        // Identical next draw proves no RNG state was consumed.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 0.5) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "poisson mean {mean}");
    }

    #[test]
    fn hard_pattern_reports_scopes() {
        let c = cfg(2, 2);
        let mut fc = FaultConfig::new(0);
        fc.subarray_faults = 1;
        let m = FaultMap::generate(&c, &fc, 2);
        let &flat = m.bad_ubanks.iter().next().unwrap();
        let (p, row_scope, ubank_scope) = m.hard_pattern(flat, 0);
        assert!(!p.is_clean());
        assert!(ubank_scope);
        assert!(!row_scope);
        let (clean, _, _) = m.hard_pattern(flat + 1000, 0);
        assert!(clean.is_clean());
    }
}
