//! Reliability subsystem for the μbank memory simulator: deterministic
//! seeded fault injection, analytic per-64 B ECC (SEC-DED / chipkill),
//! patrol scrubbing scheduled through the real command pipeline, and
//! μbank-granular graceful degradation (retire-and-remap instead of fail).
//!
//! Everything is off unless a [`FaultConfig`] is attached to the
//! simulation: with it absent, the controller hot path takes a single
//! `Option` branch and the golden fingerprints are bit-identical to a
//! build without this crate.
//!
//! The headline experiment (`cargo run --release --bin reliability`) is
//! the blast-radius claim: the *same physical defects* cost a (16,16)
//! partitioning 1/256 of the capacity they cost a (1,1) baseline, because
//! retirement granularity shrinks with the μbank size.

pub mod degrade;
pub mod ecc;
pub mod engine;
pub mod inject;
pub mod scrub;

pub use degrade::Degrade;
pub use ecc::{decide, EccMode, EccOutcome, ErrorPattern, DATA_BITS, SYMBOLS, SYMBOL_BITS};
pub use engine::{AccessVerdict, FaultEngine, FaultSummary};
pub use inject::{FaultConfig, FaultMap};
pub use scrub::Scrubber;
