//! Analytic ECC model for 64 B (512-bit) codewords.
//!
//! The simulator never carries data payloads, so ECC outcomes are decided
//! from the *shape* of the injected error pattern — how many bits flipped
//! and how many distinct symbols they touch — using the standard decoding
//! guarantees of each code:
//!
//! - **SEC-DED** (single-error-correct, double-error-detect Hamming):
//!   1 flipped bit is corrected, 2 are detected, and ≥3 alias onto the
//!   syndrome space — odd weights look like a correctable single-bit error
//!   (miscorrection), even weights land on detectable syndromes.
//! - **Chipkill** (wide-symbol RS-style code over 8-bit symbols): any
//!   number of flipped bits confined to one symbol is corrected, two
//!   corrupted symbols are detected, and ≥3 alias the same way (odd symbol
//!   counts miscorrect, even ones detect).
//!
//! These rules are exact for weights ≤ 2 (the cases that dominate at
//! realistic fault rates) and the conventional worst-case convention for
//! higher weights.

/// Data bits in one ECC word (64 B cache line).
pub const DATA_BITS: u32 = 512;
/// Bits per chipkill symbol (one x8 device's contribution per beat).
pub const SYMBOL_BITS: u32 = 8;
/// Symbols per ECC word.
pub const SYMBOLS: u32 = DATA_BITS / SYMBOL_BITS;

/// ECC scheme protecting each 64 B access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum EccMode {
    /// No ECC: every injected error is consumed silently.
    None,
    /// Per-64 B SEC-DED Hamming code.
    SecDed,
    /// Chipkill-style wide-symbol code (8-bit symbols).
    Chipkill,
}

impl EccMode {
    pub fn name(self) -> &'static str {
        match self {
            EccMode::None => "none",
            EccMode::SecDed => "secded",
            EccMode::Chipkill => "chipkill",
        }
    }
}

/// Shape of the error affecting one codeword: flipped-bit count and the
/// number of distinct symbols containing at least one flipped bit. No bit
/// positions are stored — contributions from independent fault sources are
/// assumed to land in disjoint bits/symbols (the collision probability at
/// modeled rates is negligible), so patterns combine by addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorPattern {
    pub bits: u32,
    pub symbols: u32,
}

impl ErrorPattern {
    pub const CLEAN: ErrorPattern = ErrorPattern {
        bits: 0,
        symbols: 0,
    };

    /// Pattern shape from explicit flipped-bit positions in `0..DATA_BITS`
    /// (duplicates collapse): the constructor the property tests drive.
    pub fn from_bit_positions(positions: &[u16]) -> Self {
        let mut bits = [false; DATA_BITS as usize];
        let mut syms = [false; SYMBOLS as usize];
        for &p in positions {
            let p = p as usize % DATA_BITS as usize;
            bits[p] = true;
            syms[p / SYMBOL_BITS as usize] = true;
        }
        ErrorPattern {
            bits: bits.iter().filter(|&&b| b).count() as u32,
            symbols: syms.iter().filter(|&&s| s).count() as u32,
        }
    }

    /// `k` flipped bits assumed to hit `k` distinct symbols (exact for the
    /// sparse transient/stuck contributions this models).
    pub fn scattered_bits(k: u32) -> Self {
        ErrorPattern {
            bits: k,
            symbols: k.min(SYMBOLS),
        }
    }

    /// A region-fault pattern: wholesale garbage (wordline / subarray /
    /// bank scope). Uncorrectable under both codes.
    pub const GARBAGE: ErrorPattern = ErrorPattern {
        bits: DATA_BITS / 2,
        symbols: SYMBOLS,
    };

    pub fn is_clean(self) -> bool {
        self.bits == 0
    }

    /// Combine two independent contributions (disjoint-support shortcut).
    pub fn combine(self, other: ErrorPattern) -> ErrorPattern {
        ErrorPattern {
            bits: (self.bits + other.bits).min(DATA_BITS),
            symbols: (self.symbols + other.symbols).min(SYMBOLS),
        }
    }
}

/// Decoder verdict for one access. Exactly one outcome per access — a
/// codeword is never simultaneously corrected and uncorrectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// No error present.
    Clean,
    /// Error present and corrected; data delivered is good.
    Corrected,
    /// Error detected but uncorrectable; data delivery fails.
    Detected,
    /// Error aliased onto a correctable syndrome (or no ECC at all): bad
    /// data delivered silently.
    Miscorrected,
}

/// Decide the decoder outcome for `pattern` under `mode`.
pub fn decide(mode: EccMode, pattern: ErrorPattern) -> EccOutcome {
    if pattern.is_clean() {
        return EccOutcome::Clean;
    }
    match mode {
        EccMode::None => EccOutcome::Miscorrected,
        EccMode::SecDed => match pattern.bits {
            1 => EccOutcome::Corrected,
            2 => EccOutcome::Detected,
            n if n % 2 == 1 => EccOutcome::Miscorrected,
            _ => EccOutcome::Detected,
        },
        EccMode::Chipkill => match pattern.symbols {
            1 => EccOutcome::Corrected,
            2 => EccOutcome::Detected,
            n if n % 2 == 1 => EccOutcome::Miscorrected,
            _ => EccOutcome::Detected,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_is_clean_under_all_modes() {
        for mode in [EccMode::None, EccMode::SecDed, EccMode::Chipkill] {
            assert_eq!(decide(mode, ErrorPattern::CLEAN), EccOutcome::Clean);
        }
    }

    #[test]
    fn secded_ladder() {
        let p = ErrorPattern::scattered_bits;
        assert_eq!(decide(EccMode::SecDed, p(1)), EccOutcome::Corrected);
        assert_eq!(decide(EccMode::SecDed, p(2)), EccOutcome::Detected);
        assert_eq!(decide(EccMode::SecDed, p(3)), EccOutcome::Miscorrected);
        assert_eq!(decide(EccMode::SecDed, p(4)), EccOutcome::Detected);
    }

    #[test]
    fn chipkill_corrects_multi_bit_single_symbol() {
        // All 8 bits of one symbol dead: SEC-DED is lost, chipkill corrects.
        let p = ErrorPattern::from_bit_positions(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(p.symbols, 1);
        assert_eq!(decide(EccMode::Chipkill, p), EccOutcome::Corrected);
        assert_eq!(decide(EccMode::SecDed, p), EccOutcome::Detected);
    }

    #[test]
    fn no_ecc_swallows_everything_silently() {
        assert_eq!(
            decide(EccMode::None, ErrorPattern::scattered_bits(1)),
            EccOutcome::Miscorrected
        );
        assert_eq!(
            decide(EccMode::None, ErrorPattern::GARBAGE),
            EccOutcome::Miscorrected
        );
    }

    #[test]
    fn garbage_is_never_corrected() {
        for mode in [EccMode::SecDed, EccMode::Chipkill] {
            assert_eq!(decide(mode, ErrorPattern::GARBAGE), EccOutcome::Detected);
        }
    }

    #[test]
    fn bit_positions_deduplicate() {
        let p = ErrorPattern::from_bit_positions(&[9, 9, 9]);
        assert_eq!(p.bits, 1);
        assert_eq!(p.symbols, 1);
    }

    #[test]
    fn combine_saturates_at_word_shape() {
        let g = ErrorPattern::GARBAGE.combine(ErrorPattern::GARBAGE);
        assert!(g.bits <= DATA_BITS);
        assert_eq!(g.symbols, SYMBOLS);
    }
}
