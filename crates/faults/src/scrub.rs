//! Patrol-scrub schedule: a deadline-driven walk over every (μbank, row)
//! of the channel. The memory controller services the walk on idle
//! command slots (demand traffic and refresh always win), issuing one
//! `Scrub` command per due target — an internal RAS cycle that reads,
//! ECC-corrects, and restores the row, occupying the μbank for tRC.

use microbank_core::Cycle;

#[derive(Debug, Clone)]
pub struct Scrubber {
    interval: Cycle,
    next_due: Cycle,
    n_ubanks: u32,
    ubank_rows: u32,
    flat: u32,
    row: u32,
    /// Full sweeps of the channel completed.
    pub passes: u64,
}

impl Scrubber {
    pub fn new(interval: Cycle, n_ubanks: usize, ubank_rows: usize) -> Self {
        Scrubber {
            interval,
            next_due: interval,
            n_ubanks: n_ubanks as u32,
            ubank_rows: ubank_rows as u32,
            flat: 0,
            row: 0,
            passes: 0,
        }
    }

    /// Is a scrub command due at `now`?
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_due
    }

    /// Cycle at which the next scrub becomes due. Lets the controller's
    /// `next_event` fold the patrol schedule into its sleep horizon
    /// instead of refusing to skip whenever a fault engine is armed.
    pub fn next_due(&self) -> Cycle {
        self.next_due
    }

    /// Current walk target.
    pub fn target(&self) -> (u32, u32) {
        (self.flat, self.row)
    }

    /// Step the walk cursor without touching the deadline (used to skip
    /// already-retired targets without spending a command slot).
    pub fn skip(&mut self) {
        self.advance_cursor();
    }

    /// A scrub command for the current target issued at `now`: reschedule
    /// and step the cursor.
    pub fn issued(&mut self, now: Cycle) {
        self.next_due = now + self.interval;
        self.advance_cursor();
    }

    fn advance_cursor(&mut self) {
        self.row += 1;
        if self.row >= self.ubank_rows {
            self.row = 0;
            self.flat += 1;
            if self.flat >= self.n_ubanks {
                self.flat = 0;
                self.passes += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_covers_rows_then_ubanks() {
        let mut s = Scrubber::new(100, 2, 3);
        assert!(!s.due(99));
        assert!(s.due(100));
        assert_eq!(s.target(), (0, 0));
        s.issued(100);
        assert!(!s.due(150));
        assert!(s.due(200));
        assert_eq!(s.target(), (0, 1));
        s.issued(200);
        s.issued(300);
        assert_eq!(s.target(), (1, 0), "row wrap advances the μbank");
    }

    #[test]
    fn full_sweep_counts_a_pass() {
        let mut s = Scrubber::new(1, 2, 2);
        for i in 0..4 {
            s.issued(i);
        }
        assert_eq!(s.passes, 1);
        assert_eq!(s.target(), (0, 0));
    }

    #[test]
    fn skip_moves_cursor_not_deadline() {
        let mut s = Scrubber::new(10, 4, 4);
        assert!(s.due(10));
        s.skip();
        assert!(s.due(10), "deadline unchanged by skip");
        assert_eq!(s.target(), (0, 1));
    }
}
