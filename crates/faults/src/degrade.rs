//! Graceful degradation: retire faulty rows/μbanks and remap future
//! accesses around them, shrinking effective capacity instead of failing
//! the run.
//!
//! Retirement granularity is the point of the exercise: a wordline defect
//! costs one μbank row (`8 KB / nW`), a subarray defect one μbank
//! (`bank / (nW·nB)`). At `(1,1)` those same physical defects cost a full
//! 8 KB row and a full bank respectively — the blast-radius argument the
//! `reliability` bench quantifies.
//!
//! Remapping is deterministic and stateless (no spare-region bookkeeping):
//! a retired μbank forwards to the next live μbank in flat order, a
//! retired row to the next live row in the μbank. Aliasing with the
//! forwarded-to region's own traffic is intentional — it is what produces
//! the realistic performance cost of running degraded (the spare capacity
//! must come from somewhere).

use crate::inject::row_key;
use microbank_core::fxhash::FxBuild;
use std::collections::{HashMap, HashSet};

/// Per-channel retirement state and remap tables.
#[derive(Debug, Clone)]
pub struct Degrade {
    n_ubanks: u32,
    ubank_rows: u32,
    row_bytes: u64,
    retired_rows: HashSet<u64, FxBuild>,
    /// Retired-row count per μbank (drives whole-μbank retirement when a
    /// μbank bleeds out row by row).
    rows_per_ubank: HashMap<u32, u32, FxBuild>,
    retired_ubanks: Vec<bool>,
    retired_ubank_count: u32,
    /// Retirements refused because they would have killed the last live
    /// μbank of the channel.
    pub refused: u64,
    /// Bytes of effective capacity lost to retirement.
    pub lost_bytes: u64,
}

impl Degrade {
    pub fn new(n_ubanks: usize, ubank_rows: usize, row_bytes: u64) -> Self {
        Degrade {
            n_ubanks: n_ubanks as u32,
            ubank_rows: ubank_rows as u32,
            row_bytes,
            retired_rows: HashSet::with_hasher(FxBuild::default()),
            rows_per_ubank: HashMap::with_hasher(FxBuild::default()),
            retired_ubanks: vec![false; n_ubanks],
            retired_ubank_count: 0,
            refused: 0,
            lost_bytes: 0,
        }
    }

    pub fn is_ubank_retired(&self, flat: u32) -> bool {
        self.retired_ubanks[flat as usize]
    }

    pub fn is_row_retired(&self, flat: u32, row: u32) -> bool {
        self.retired_rows.contains(&row_key(flat, row))
    }

    pub fn retired_rows(&self) -> u64 {
        self.retired_rows.len() as u64
    }

    pub fn retired_ubanks(&self) -> u64 {
        self.retired_ubank_count as u64
    }

    /// Retire one μbank row. Returns `true` if newly retired. Retiring the
    /// last live row of a μbank escalates to μbank retirement.
    pub fn retire_row(&mut self, flat: u32, row: u32) -> bool {
        if self.is_ubank_retired(flat) || self.retired_rows.contains(&row_key(flat, row)) {
            return false;
        }
        let n = self.rows_per_ubank.get(&flat).copied().unwrap_or(0);
        if n + 1 >= self.ubank_rows && self.retired_ubank_count + 1 >= self.n_ubanks {
            // Retiring this μbank's last live row would escalate into
            // retiring the channel's last live μbank; refuse so `remap`
            // always has a live (μbank, row) to land on.
            self.refused += 1;
            return false;
        }
        self.retired_rows.insert(row_key(flat, row));
        self.lost_bytes += self.row_bytes;
        self.rows_per_ubank.insert(flat, n + 1);
        if n + 1 >= self.ubank_rows {
            self.retire_ubank(flat);
        }
        true
    }

    /// Retire a whole μbank. Returns `true` if newly retired; refuses (and
    /// counts) when it would leave the channel with no live μbank.
    pub fn retire_ubank(&mut self, flat: u32) -> bool {
        if self.is_ubank_retired(flat) {
            return false;
        }
        if self.retired_ubank_count + 1 >= self.n_ubanks {
            self.refused += 1;
            return false;
        }
        self.retired_ubanks[flat as usize] = true;
        self.retired_ubank_count += 1;
        // Rows already retired individually inside this μbank were counted;
        // charge only the remainder.
        let already = self.rows_per_ubank.get(&flat).copied().unwrap_or(0) as u64;
        self.lost_bytes += (self.ubank_rows as u64 - already) * self.row_bytes;
        true
    }

    /// Remap `(flat, row)` around retirements: a retired μbank forwards to
    /// the next live μbank (wrapping flat order), a retired row to the
    /// next live row. Identity for live targets; total by construction
    /// (retirement never kills the last μbank, and a μbank with all rows
    /// retired escalates to μbank retirement).
    pub fn remap(&self, flat: u32, row: u32) -> (u32, u32) {
        let mut f = flat;
        while self.is_ubank_retired(f) {
            f = (f + 1) % self.n_ubanks;
        }
        let mut r = row;
        while self.is_row_retired(f, r) {
            r = (r + 1) % self.ubank_rows;
        }
        (f, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_targets_map_to_themselves() {
        let d = Degrade::new(8, 16, 512);
        assert_eq!(d.remap(3, 7), (3, 7));
        assert_eq!(d.lost_bytes, 0);
    }

    #[test]
    fn retired_row_forwards_and_charges_bytes() {
        let mut d = Degrade::new(8, 16, 512);
        assert!(d.retire_row(2, 5));
        assert!(!d.retire_row(2, 5), "idempotent");
        assert_eq!(d.remap(2, 5), (2, 6));
        assert_eq!(d.remap(2, 4), (2, 4));
        assert_eq!(d.lost_bytes, 512);
        assert_eq!(d.retired_rows(), 1);
    }

    #[test]
    fn retired_ubank_forwards_to_next_live() {
        let mut d = Degrade::new(4, 16, 512);
        assert!(d.retire_ubank(1));
        assert_eq!(d.remap(1, 0), (2, 0));
        assert_eq!(d.lost_bytes, 16 * 512);
        // Wrap-around past the end.
        assert!(d.retire_ubank(3));
        assert_eq!(d.remap(3, 2), (0, 2));
    }

    #[test]
    fn last_live_ubank_is_protected() {
        let mut d = Degrade::new(2, 4, 64);
        assert!(d.retire_ubank(0));
        assert!(!d.retire_ubank(1), "must refuse to kill the channel");
        assert_eq!(d.refused, 1);
        assert_eq!(d.remap(0, 0), (1, 0));
    }

    #[test]
    fn bleeding_ubank_escalates_to_ubank_retirement() {
        let mut d = Degrade::new(4, 4, 64);
        for row in 0..4 {
            d.retire_row(1, row);
        }
        assert!(d.is_ubank_retired(1));
        // Escalation charges exactly one μbank's bytes in total.
        assert_eq!(d.lost_bytes, 4 * 64);
        assert_eq!(d.remap(1, 0), (2, 0));
    }

    #[test]
    fn last_live_ubank_keeps_at_least_one_live_row() {
        // One live μbank (the other retired): bleeding it row by row must
        // stop short of the final row so remap stays total.
        let mut d = Degrade::new(2, 4, 64);
        assert!(d.retire_ubank(0));
        for row in 0..3 {
            assert!(d.retire_row(1, row));
        }
        assert!(!d.retire_row(1, 3), "final row of final μbank is protected");
        assert_eq!(d.refused, 1);
        assert_eq!(d.remap(1, 0), (1, 3));
    }

    #[test]
    fn chained_row_retirements_forward_transitively() {
        let mut d = Degrade::new(2, 8, 64);
        d.retire_row(0, 3);
        d.retire_row(0, 4);
        assert_eq!(d.remap(0, 3), (0, 5));
        // Wrap within the μbank.
        d.retire_row(0, 7);
        assert_eq!(d.remap(0, 7), (0, 0));
    }
}
