//! Fig. 10: relative IPC, relative 1/EDP, and power breakdown of the
//! <3%-area-overhead μbank configurations (1,1), (2,8), (4,4), (8,2) on
//! single-threaded, multiprogrammed, and multithreaded workloads.
//!
//! Usage: `fig10_representative [--quick]`

use microbank_sim::experiment::representative_study;
use microbank_workloads::spec::SpecGroup;
use microbank_workloads::suite::Workload;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let workloads = [
        Workload::Spec("429.mcf"),
        Workload::Spec("450.soplex"),
        Workload::SpecGroupAvg(SpecGroup::High),
        Workload::SpecAll,
        Workload::MixHigh,
        Workload::MixBlend,
        Workload::Radix,
        Workload::Fft,
    ];
    let rows = representative_study(&workloads, quick);
    println!(
        "{:<12}{:>7}{:>9}{:>9} | {:>9}{:>9}{:>9}{:>8}{:>7}  (power, W)",
        "workload", "(nW,nB)", "relIPC", "rel1/EDP", "proc", "ACT/PRE", "static", "RD/WR", "I/O"
    );
    for r in rows {
        println!(
            "{:<12}{:>7}{:>9.3}{:>9.3} | {:>9.2}{:>9.2}{:>9.2}{:>8.2}{:>7.2}",
            r.workload,
            format!("({},{})", r.ubank.0, r.ubank.1),
            r.rel_ipc,
            r.rel_inv_edp,
            r.power_w[0],
            r.power_w[1],
            r.power_w[2],
            r.power_w[3],
            r.power_w[4],
        );
    }
}
