//! Fig. 14: IPC, power breakdown, and relative 1/EDP of the three
//! processor–memory interfaces — DDR3-PCB, DDR3-TSI, LPDDR-TSI — without
//! μbanks, across multiprogrammed and multithreaded workloads.
//!
//! Usage: `fig14_interfaces [--quick]`

use microbank_sim::experiment::interface_study;
use microbank_workloads::spec::SpecGroup;
use microbank_workloads::suite::Workload;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let workloads = [
        Workload::MixHigh,
        Workload::MixBlend,
        Workload::Canneal,
        Workload::Fft,
        Workload::Radix,
        Workload::SpecGroupAvg(SpecGroup::High),
    ];
    let rows = interface_study(&workloads, quick);
    println!(
        "{:<12}{:<11}{:>7}{:>8}{:>9} | {:>8}{:>9}{:>8}{:>7}{:>7}  {:>9}",
        "workload",
        "interface",
        "IPC",
        "relIPC",
        "rel1/EDP",
        "proc",
        "ACT/PRE",
        "static",
        "RD/WR",
        "I/O",
        "AP-frac"
    );
    for r in rows {
        println!(
            "{:<12}{:<11}{:>7.2}{:>8.3}{:>9.3} | {:>8.2}{:>9.2}{:>8.2}{:>7.2}{:>7.2}  {:>8.1}%",
            r.workload,
            r.interface.name(),
            r.ipc,
            r.rel_ipc,
            r.rel_inv_edp,
            r.power_w[0],
            r.power_w[1],
            r.power_w[2],
            r.power_w[3],
            r.power_w[4],
            100.0 * r.act_pre_fraction,
        );
    }
}
