//! Multi-tenant QoS study (DESIGN §5g): a latency-critical service
//! (TPC-C-like, tenant 0) colocated with throughput batch jobs
//! (RADIX-like, tenant 1) on shared channels, across the regulation modes
//! × μbank geometry grid.
//!
//! Modes: `unregulated` (accounting only — the contention baseline),
//! `priority` (tenant-priority scheduling, no budgets), and `regulated`
//! (per-μbank token-bucket budgets on the batch tenant, work-conserving).
//! Geometries: the unpartitioned (1,1) baseline vs the paper's (16,16)
//! μbank partition, where "per-bank" regulation becomes per-μbank.
//!
//! The headline gate: at (16,16), regulating the batch tenant must not
//! worsen — and is expected to improve — the latency-critical tenant's
//! p99 read latency relative to the unregulated baseline. The harness
//! fails loudly if the gate breaks.
//!
//! Usage: `bench_qos [--quick] [--out DIR]`

use microbank_sim::simulator::{run, SimConfig};
use microbank_sim::{QosConfig, QosGranularity};
use microbank_telemetry::json::JsonWriter;
use microbank_workloads::suite::Workload;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Cores given to the latency-critical tenant (the rest run batch).
const LC_CORES: u16 = 4;
/// Batch tenant's token budget per μbank-granularity bucket per window.
const BATCH_BUDGET: u32 = 4;
/// Replenishment window, memory-controller cycles.
const WINDOW: u64 = 1_000;

struct Point {
    geometry: String,
    mode: &'static str,
    ipc: f64,
    lc_p50: f64,
    lc_p99: f64,
    lc_mean: f64,
    lc_share: f64,
    batch_share: f64,
    /// Batch tenant column bursts per kilocycle — its realized throughput.
    batch_cols_per_kcycle: f64,
    throttled: u64,
    reclaimed: u64,
}

fn base_cfg(nw: usize, nb: usize, quick: bool) -> SimConfig {
    let mut cfg = SimConfig::paper_default(Workload::TenantMix { lc_cores: LC_CORES });
    cfg.cmp.cores = 16;
    cfg.mem = cfg.mem.with_channels(4).with_ubanks(nw, nb);
    if quick {
        cfg.warmup_cycles = 5_000;
        cfg.measure_cycles = 15_000;
    } else {
        cfg.warmup_cycles = 20_000;
        cfg.measure_cycles = 60_000;
    }
    cfg
}

fn mode_cfg(mode: &str) -> QosConfig {
    match mode {
        // Accounting only: per-tenant attribution without any policy.
        "unregulated" => QosConfig::tracking(),
        // Tenant-priority scheduling: the latency-critical tenant ranks
        // above batch inside every scheduling round, no budgets.
        "priority" => QosConfig::tracking()
            .with_tenant(None, 0)
            .with_tenant(None, 1),
        // Per-μbank token buckets on the batch tenant, work-conserving,
        // plus the same priority axis a deployment would arm.
        "regulated" => QosConfig::tracking()
            .with_granularity(QosGranularity::Ubank)
            .with_replenish_period(WINDOW)
            .with_tenant(None, 0)
            .with_tenant(Some(BATCH_BUDGET), 1),
        other => panic!("unknown mode {other}"),
    }
}

fn measure(nw: usize, nb: usize, mode: &'static str, quick: bool) -> Point {
    let cfg = base_cfg(nw, nb, quick).with_qos(mode_cfg(mode));
    let measure_cycles = cfg.measure_cycles;
    let r = run(&cfg);
    let q = r.qos.expect("QoS was armed");
    assert_eq!(q.tenants.len(), 2, "TenantMix reports both tenants");
    let (lc, batch) = (&q.tenants[0], &q.tenants[1]);
    Point {
        geometry: format!("{nw}x{nb}"),
        mode,
        ipc: r.ipc,
        lc_p50: lc.p50_lat,
        lc_p99: lc.p99_lat,
        lc_mean: lc.mean_lat,
        lc_share: lc.share,
        batch_share: batch.share,
        batch_cols_per_kcycle: batch.cols as f64 / (measure_cycles as f64 / 1_000.0),
        throttled: q.throttled,
        reclaimed: q.reclaimed,
    }
}

fn to_json(points: &[Point], quick: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .key("bench")
        .string("qos")
        .key("workload")
        .string(&format!("tenant-mix-lc{LC_CORES}"))
        .key("quick")
        .boolean(quick)
        .key("batch_budget")
        .uint(BATCH_BUDGET as u64)
        .key("replenish_period")
        .uint(WINDOW)
        .key("points")
        .begin_array();
    for p in points {
        w.begin_object()
            .key("geometry")
            .string(&p.geometry)
            .key("mode")
            .string(p.mode)
            .key("ipc")
            .num(p.ipc)
            .key("lc_p50_lat")
            .num(p.lc_p50)
            .key("lc_p99_lat")
            .num(p.lc_p99)
            .key("lc_mean_lat")
            .num(p.lc_mean)
            .key("lc_share")
            .num(p.lc_share)
            .key("batch_share")
            .num(p.batch_share)
            .key("batch_cols_per_kcycle")
            .num(p.batch_cols_per_kcycle)
            .key("throttled")
            .uint(p.throttled)
            .key("reclaimed")
            .uint(p.reclaimed)
            .end_object();
    }
    w.end_array().end_object();
    w.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&out).expect("create output dir");

    let geometries = [(1usize, 1usize), (16, 16)];
    let modes = ["unregulated", "priority", "regulated"];

    let mut text = String::new();
    let _ = writeln!(
        text,
        "qos study  tenant-mix (lc {LC_CORES} cores tpc-c, batch radix)  \
         batch budget {BATCH_BUDGET}/{WINDOW}cyc per μbank{}\n",
        if quick { "  [quick]" } else { "" }
    );
    let _ = writeln!(
        text,
        "{:>7} {:>12} {:>7} {:>8} {:>8} {:>8} {:>7} {:>7} {:>10} {:>9} {:>9}",
        "geom",
        "mode",
        "ipc",
        "lc-p50",
        "lc-p99",
        "lc-mean",
        "lc-bw",
        "bat-bw",
        "bat-cols/k",
        "throttled",
        "reclaimed"
    );

    let mut points = Vec::new();
    for (nw, nb) in geometries {
        for mode in modes {
            let p = measure(nw, nb, mode, quick);
            let _ = writeln!(
                text,
                "{:>7} {:>12} {:>7.3} {:>8.0} {:>8.0} {:>8.1} {:>6.1}% {:>6.1}% {:>10.1} {:>9} {:>9}",
                p.geometry,
                p.mode,
                p.ipc,
                p.lc_p50,
                p.lc_p99,
                p.lc_mean,
                p.lc_share * 100.0,
                p.batch_share * 100.0,
                p.batch_cols_per_kcycle,
                p.throttled,
                p.reclaimed
            );
            points.push(p);
        }
    }

    // Headline gate: per-μbank regulation at (16,16) must not worsen the
    // latency-critical tenant's p99 vs the unregulated contention baseline.
    let pick = |geom: &str, mode: &str| {
        points
            .iter()
            .find(|p| p.geometry == geom && p.mode == mode)
            .unwrap()
    };
    let base = pick("16x16", "unregulated");
    let reg = pick("16x16", "regulated");
    let gate_ok = reg.lc_p99 <= base.lc_p99;
    let _ = writeln!(
        text,
        "\nqos gate {}: 16x16 regulated lc-p99 {:.0} <= unregulated {:.0}  \
         (batch throughput kept {:.0}% of baseline)",
        if gate_ok { "OK" } else { "FAIL" },
        reg.lc_p99,
        base.lc_p99,
        if base.batch_cols_per_kcycle > 0.0 {
            reg.batch_cols_per_kcycle / base.batch_cols_per_kcycle * 100.0
        } else {
            0.0
        }
    );

    print!("{text}");
    let json = to_json(&points, quick);
    // Self-validate the artifact before writing it.
    let parsed = microbank_telemetry::json::parse(&json).expect("artifact must parse");
    assert_eq!(
        parsed.get("points").expect("points").items().len(),
        points.len()
    );
    let write = |name: &str, bytes: &[u8]| {
        if let Err(e) = microbank_telemetry::atomic_write(out.join(name), bytes) {
            eprintln!("bench_qos: failed to write {name}: {e}");
            std::process::exit(1);
        }
    };
    write("BENCH_qos.txt", text.as_bytes());
    write("BENCH_qos.json", json.as_bytes());
    println!("artifacts written to {}", out.display());
    if !gate_ok {
        eprintln!("FAIL: regulation worsened the latency-critical p99 (see table)");
        std::process::exit(1);
    }
}
