//! Observability smoke harness: runs a short multi-slot sweep with the
//! live status surface enabled, so CI (or a curious human) can scrape
//! `/status` and `/metrics` while slots are executing.
//!
//! The slots are real simulations — a μbank-partition mini-sweep on a
//! small controller-stress configuration — sized so the sweep lasts a
//! few seconds: long enough for an external scraper to observe
//! intermediate states, short enough for a CI smoke step.
//!
//! Usage:
//!   sweep_smoke [--slots N] [--cycles N] [--out DIR] [--addr HOST:PORT]
//!
//! The endpoint address comes from `--addr` or the `MICROBANK_STATUS_ADDR`
//! environment variable (the flag wins). The bound address is printed as
//! `status endpoint: <addr>` on stdout before the first slot runs.

use microbank_sim::simulator::SimConfig;
use microbank_sim::{summarize, summary_columns, SlotStatus, SweepRunner, SweepSlot, Table};
use microbank_workloads::suite::Workload;

fn smoke_cfg(ubanks: usize, cycles: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(Workload::Spec("429.mcf"));
    cfg.mem = cfg.mem.with_ubanks(ubanks, ubanks).with_queue_size(64);
    cfg.cmp.cores = 4;
    cfg.cmp.prefetch_degree = 4;
    cfg.cmp.mshrs_per_core = 32;
    cfg.warmup_cycles = 10_000;
    cfg.measure_cycles = cycles;
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let n_slots: usize = flag("--slots").and_then(|v| v.parse().ok()).unwrap_or(4);
    let cycles: u64 = flag("--cycles")
        .and_then(|v| v.parse().ok())
        .unwrap_or(600_000);
    let out = flag("--out").unwrap_or_else(|| "results/smoke".to_string());

    let partitions = [1usize, 2, 4, 8, 16];
    let slots: Vec<SweepSlot> = (0..n_slots)
        .map(|i| {
            let u = partitions[i % partitions.len()];
            SweepSlot {
                id: format!("ubank_{u}x{u}"),
                cfg: smoke_cfg(u, cycles),
            }
        })
        .collect();

    let mut runner = SweepRunner::new("smoke", &out);
    if let Some(addr) = flag("--addr") {
        if let Err(e) = runner.serve_status(&addr) {
            eprintln!("sweep_smoke: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    }
    match runner.status_addr() {
        Some(addr) => println!("status endpoint: {addr}"),
        None => println!("status endpoint: disabled (no --addr / MICROBANK_STATUS_ADDR)"),
    }
    println!("status file: {}", runner.status_path().display());

    let records = match runner.run_slots(&slots, summarize) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep_smoke: {e}");
            std::process::exit(1);
        }
    };

    let mut table = Table::new("smoke", &summary_columns());
    for r in &records {
        if r.status == SlotStatus::Ok {
            table.push(r.id.clone(), r.values.clone());
        }
    }
    if let Err(e) = runner.write_table(&table) {
        eprintln!("sweep_smoke: {e}");
        std::process::exit(1);
    }

    let failed = records
        .iter()
        .filter(|r| r.status == SlotStatus::Failed)
        .count();
    println!(
        "smoke sweep: {} slots, {} failed, artifacts under {out}",
        records.len(),
        failed
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
