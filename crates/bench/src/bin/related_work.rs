//! Related-work comparison (paper §VII): conventional banks vs SALP
//! (subarray-level parallelism, bitline-only) vs Half-DRAM (2×2) vs μbank,
//! all on the LPDDR-TSI substrate with 429.mcf. μbank subsumes SALP and
//! Half-DRAM: equal bank-level parallelism at equal row-buffer count, plus
//! activation-energy savings whenever nW > 1.
//!
//! Usage: `related_work [--quick]`

use microbank_sim::experiment::organization_comparison;
use microbank_workloads::suite::Workload;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = organization_comparison(Workload::Spec("429.mcf"), quick);
    let base = rows[0].1.clone();
    println!("Related work (§VII) — 429.mcf on LPDDR-TSI:");
    println!(
        "{:<14}{:>8}{:>10}{:>14}{:>10}",
        "organization", "relIPC", "rel1/EDP", "nJ per ACT", "ACTs"
    );
    for (label, r) in &rows {
        let per_act = r.mem_energy.act_pre_nj / r.dram.activates.max(1) as f64;
        println!(
            "{:<14}{:>8.3}{:>10.3}{:>14.2}{:>10}",
            label,
            r.ipc / base.ipc,
            r.inverse_edp_vs(&base),
            per_act,
            r.dram.activates
        );
    }
    println!();
    println!("(μbank matches SALP's parallelism at equal row-buffer count while");
    println!(" cutting per-activation energy — the §VII subsumption argument)");
}
