//! Table II: the SPEC CPU2006 applications grouped by main-memory accesses
//! per kilo-instruction (MAPKI), plus each profile's nominal MAPKI in our
//! synthetic catalog.

use microbank_workloads::spec::{group, SpecGroup};

fn main() {
    println!("Table II: SPEC CPU2006 MAPKI groups");
    println!("-----------------------------------");
    for g in [SpecGroup::High, SpecGroup::Med, SpecGroup::Low] {
        println!("{}:", g.label());
        for p in group(g) {
            println!("  {:<16} nominal MAPKI {:>6.1}", p.name, p.nominal_mapki());
        }
    }
}
