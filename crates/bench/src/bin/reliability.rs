//! Reliability study: fault rate × μbank geometry × ECC mode.
//!
//! For each μbank partition the harness first runs fault-free to establish
//! the IPC baseline, then sweeps {low, high} fault loads × {SEC-DED,
//! chipkill} ECC, reporting error/retirement counters, effective-capacity
//! loss, and IPC loss relative to that geometry's own clean baseline.
//!
//! The headline is the paper-adjacent *blast-radius* claim: hard defects
//! are sampled in physical device coordinates from the same seed, so every
//! geometry sees the *same* defects — but finer μbank partitions retire
//! smaller units around them. At equal fault load, (8,8) and (16,16) must
//! lose strictly less effective capacity and IPC to retirement than the
//! unpartitioned (1,1) baseline; the harness checks this and fails loudly
//! if the ordering breaks.
//!
//! Usage: `reliability [--reps N] [--out DIR]`   (reps reserved; runs are
//! deterministic so one rep suffices)

use microbank_faults::{EccMode, FaultConfig};
use microbank_sim::simulator::{run, SimConfig, SimResult};
use microbank_telemetry::json::JsonWriter;
use microbank_workloads::suite::Workload;
use std::fmt::Write as _;
use std::path::PathBuf;

const SEED: u64 = 0xFA_017;

struct Point {
    geometry: String,
    load: String,
    ecc: String,
    ipc: f64,
    ipc_loss_pct: f64,
    cap_lost_bytes: u64,
    cap_lost_pct: f64,
    corrected: u64,
    detected: u64,
    miscorrected: u64,
    retries: u64,
    scrubs: u64,
    retired_rows: u64,
    retired_ubanks: u64,
}

fn base_cfg(nw: usize, nb: usize) -> SimConfig {
    let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
    cfg.mem = cfg.mem.with_ubanks(nw, nb);
    cfg
}

/// Fault load presets. "high" is the stress preset the golden suite pins;
/// "low" keeps one defect per hard-fault class and an order less transient
/// activity.
fn load_cfg(load: &str) -> FaultConfig {
    match load {
        "low" => FaultConfig {
            access_flip_rate: 5e-8,
            retention_flip_rate: 2e-7,
            stuck_cells: 2,
            row_faults: 1,
            col_faults: 1,
            subarray_faults: 1,
            scrub_interval: Some(8_192),
            hard_ce_retire_threshold: 8,
            ..FaultConfig::new(SEED)
        },
        "high" => FaultConfig::stress(SEED),
        other => panic!("unknown load {other}"),
    }
}

fn channel_bytes(cfg: &SimConfig) -> u64 {
    let m = &cfg.mem;
    (m.ubanks_per_channel() * m.ubank_rows() * m.geometry.ubank_row_bytes(m.ubank)) as u64
}

fn measure(nw: usize, nb: usize, load: &str, ecc: EccMode, base_ipc: f64) -> Point {
    let cfg = base_cfg(nw, nb).with_faults(load_cfg(load).with_ecc(ecc));
    let total = channel_bytes(&cfg) * cfg.mem.channels as u64;
    let r: SimResult = run(&cfg);
    let s = r.reliability.expect("faults were armed");
    Point {
        geometry: format!("{nw}x{nb}"),
        load: load.to_string(),
        ecc: ecc.name().to_string(),
        ipc: r.ipc,
        ipc_loss_pct: (base_ipc - r.ipc) / base_ipc * 100.0,
        cap_lost_bytes: s.capacity_lost_bytes,
        cap_lost_pct: s.capacity_lost_bytes as f64 / total as f64 * 100.0,
        corrected: s.corrected,
        detected: s.detected,
        miscorrected: s.miscorrected,
        retries: s.retries,
        scrubs: s.scrub_checks,
        retired_rows: s.retired_rows,
        retired_ubanks: s.retired_ubanks,
    }
}

fn to_json(baselines: &[(String, f64)], points: &[Point]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .key("bench")
        .string("reliability")
        .key("workload")
        .string("429.mcf")
        .key("seed")
        .uint(SEED)
        .key("baselines")
        .begin_array();
    for (geom, ipc) in baselines {
        w.begin_object()
            .key("geometry")
            .string(geom)
            .key("ipc")
            .num(*ipc)
            .end_object();
    }
    w.end_array().key("points").begin_array();
    for p in points {
        w.begin_object()
            .key("geometry")
            .string(&p.geometry)
            .key("load")
            .string(&p.load)
            .key("ecc")
            .string(&p.ecc)
            .key("ipc")
            .num(p.ipc)
            .key("ipc_loss_pct")
            .num(p.ipc_loss_pct)
            .key("capacity_lost_bytes")
            .uint(p.cap_lost_bytes)
            .key("capacity_lost_pct")
            .num(p.cap_lost_pct)
            .key("corrected")
            .uint(p.corrected)
            .key("detected")
            .uint(p.detected)
            .key("miscorrected")
            .uint(p.miscorrected)
            .key("retries")
            .uint(p.retries)
            .key("scrub_checks")
            .uint(p.scrubs)
            .key("retired_rows")
            .uint(p.retired_rows)
            .key("retired_ubanks")
            .uint(p.retired_ubanks)
            .end_object();
    }
    w.end_array().end_object();
    w.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&out).expect("create output dir");

    let geometries = [(1usize, 1usize), (8, 8), (16, 16)];
    let loads = ["low", "high"];
    let eccs = [EccMode::SecDed, EccMode::Chipkill];

    let mut text = String::new();
    let _ = writeln!(
        text,
        "reliability sweep  429.mcf quick  seed {SEED:#x}\n\
         fault loads: low (1 defect/class, 5e-8 access) and high (stress preset)\n"
    );
    let _ = writeln!(
        text,
        "{:>7} {:>5} {:>9} {:>7} {:>8} {:>10} {:>8} {:>9} {:>6} {:>6} {:>7} {:>7} {:>7}",
        "geom",
        "load",
        "ecc",
        "ipc",
        "ipc-loss",
        "cap-lost",
        "cap%",
        "corr",
        "det",
        "misc",
        "retry",
        "r.rows",
        "r.ubank"
    );

    let mut baselines = Vec::new();
    let mut points = Vec::new();
    for (nw, nb) in geometries {
        let base = run(&base_cfg(nw, nb));
        let _ = writeln!(
            text,
            "{:>7} {:>5} {:>9} {:>7.3}   (clean baseline)",
            format!("{nw}x{nb}"),
            "-",
            "-",
            base.ipc
        );
        baselines.push((format!("{nw}x{nb}"), base.ipc));
        for load in loads {
            for ecc in eccs {
                let p = measure(nw, nb, load, ecc, base.ipc);
                let _ = writeln!(
                    text,
                    "{:>7} {:>5} {:>9} {:>7.3} {:>7.2}% {:>10} {:>7.3}% {:>9} {:>6} {:>6} {:>7} {:>7} {:>7}",
                    p.geometry,
                    p.load,
                    p.ecc,
                    p.ipc,
                    p.ipc_loss_pct,
                    p.cap_lost_bytes,
                    p.cap_lost_pct,
                    p.corrected,
                    p.detected,
                    p.miscorrected,
                    p.retries,
                    p.retired_rows,
                    p.retired_ubanks
                );
                points.push(p);
            }
        }
    }

    // Blast-radius gate: at equal fault load + ECC, finer partitions must
    // lose strictly less capacity and IPC than the unpartitioned baseline.
    let pick = |geom: &str, load: &str, ecc: &str| {
        points
            .iter()
            .find(|p| p.geometry == geom && p.load == load && p.ecc == ecc)
            .unwrap()
    };
    let mut gate_ok = true;
    for load in loads {
        for ecc in ["secded", "chipkill"] {
            let coarse = pick("1x1", load, ecc);
            for fine_geom in ["8x8", "16x16"] {
                let fine = pick(fine_geom, load, ecc);
                let cap_ok = fine.cap_lost_bytes < coarse.cap_lost_bytes;
                let ipc_ok = fine.ipc_loss_pct < coarse.ipc_loss_pct;
                let verdict = if cap_ok && ipc_ok { "OK" } else { "FAIL" };
                gate_ok &= cap_ok && ipc_ok;
                let _ = writeln!(
                    text,
                    "blast-radius {verdict}: {fine_geom} vs 1x1 ({load}/{ecc})  \
                     cap {} < {}  ipc-loss {:.2}% < {:.2}%",
                    fine.cap_lost_bytes,
                    coarse.cap_lost_bytes,
                    fine.ipc_loss_pct,
                    coarse.ipc_loss_pct
                );
            }
        }
    }

    print!("{text}");
    let write = |name: &str, bytes: &[u8]| {
        if let Err(e) = microbank_telemetry::atomic_write(out.join(name), bytes) {
            eprintln!("reliability: failed to write {name}: {e}");
            std::process::exit(1);
        }
    };
    write("reliability.txt", text.as_bytes());
    write("reliability.json", to_json(&baselines, &points).as_bytes());
    println!("artifacts written to {}", out.display());
    if !gate_ok {
        eprintln!("FAIL: blast-radius ordering violated (see table above)");
        std::process::exit(1);
    }
}
