//! Table I: DRAM energy and timing parameters. These are model *inputs*
//! (taken from the paper); the harness prints them for the record so every
//! downstream figure is traceable to its parameter set.

use microbank_core::config::Interface;
use microbank_energy::params::EnergyParams;

fn main() {
    println!("Table I: DRAM energy and timing parameters");
    println!("------------------------------------------");
    println!("Energy parameters:");
    for i in [Interface::Ddr3Pcb, Interface::Ddr3Tsi, Interface::LpddrTsi] {
        let e = EnergyParams::for_interface(i);
        println!(
            "  {:<10}  I/O {:>5.1} pJ/b   RD/WR {:>5.1} pJ/b   static {:>6.1} mW/ch",
            i.name(),
            e.io_pj_per_bit,
            e.rdwr_pj_per_bit,
            e.static_mw_per_channel
        );
    }
    let e = EnergyParams::lpddr_tsi();
    println!(
        "  ACT+PRE energy (8KB DRAM page): {:.0} nJ",
        e.act_pre_nj_8kb
    );
    println!();
    println!("Timing parameters:");
    for i in [Interface::Ddr3Pcb, Interface::LpddrTsi] {
        let t = i.timing_params();
        println!(
            "  {:<10}  tRCD {:>4.1} ns  tAA {:>4.1} ns  tRAS {:>4.1} ns  tRP {:>4.1} ns  tRC {:>4.1} ns  burst {:>3.1} ns",
            i.name(),
            t.t_rcd_ns,
            t.t_aa_ns,
            t.t_ras_ns,
            t.t_rp_ns,
            t.t_rc_ns(),
            t.t_burst_ns,
        );
    }
}
