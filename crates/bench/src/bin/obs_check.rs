//! Validates the observability surfaces a sweep exposes: a captured
//! `/status` (or `<name>.status.json`) document and a captured
//! `/metrics` exposition. CI scrapes a live `sweep_smoke` run and hands
//! the captures here; a human can point it at the files a finished
//! sweep left behind.
//!
//! Checks:
//!   * the status document parses as JSON and carries the progress
//!     schema (`sweep`, `total_slots`, `done`, `slots[].state`, ...)
//!     with internally consistent counts;
//!   * the metrics exposition parses under the Prometheus 0.0.4 text
//!     format, histograms are cumulative-monotone, and the sweep
//!     progress metrics are present.
//!
//! Usage: obs_check --status FILE [--metrics FILE]

use microbank_telemetry::json::parse;
use microbank_telemetry::metrics::validate_exposition;

fn check_status(text: &str) -> Result<(), String> {
    let doc = parse(text).map_err(|off| format!("status is not JSON (byte {off})"))?;
    for key in [
        "sweep",
        "total_slots",
        "done",
        "executed",
        "failed",
        "slots",
    ] {
        if doc.get(key).is_none() {
            return Err(format!("status missing key {key:?}"));
        }
    }
    let total = doc
        .get("total_slots")
        .and_then(|v| v.as_f64())
        .ok_or("total_slots not a number")? as usize;
    let done = doc
        .get("done")
        .and_then(|v| v.as_f64())
        .ok_or("done not a number")? as usize;
    if done > total {
        return Err(format!("done {done} exceeds total_slots {total}"));
    }
    let slots = doc.get("slots").ok_or("missing slots")?.items();
    if slots.len() != total {
        return Err(format!(
            "slots array has {} entries, total_slots says {total}",
            slots.len()
        ));
    }
    let mut settled = 0usize;
    for s in slots {
        let state = s
            .get("state")
            .and_then(|v| v.as_str())
            .ok_or("slot missing state")?;
        match state {
            "ok" | "failed" | "resumed" => settled += 1,
            "running" | "pending" => {}
            other => return Err(format!("unknown slot state {other:?}")),
        }
        if s.get("id").and_then(|v| v.as_str()).is_none() {
            return Err("slot missing id".to_string());
        }
    }
    if settled != done {
        return Err(format!("{settled} settled slot states but done = {done}"));
    }
    Ok(())
}

fn check_metrics(text: &str) -> Result<usize, String> {
    let n = validate_exposition(text)?;
    if n == 0 {
        return Err("exposition contains no samples".to_string());
    }
    if !text.contains("microbank_sweep_slots_done") {
        return Err("exposition missing microbank_sweep_slots_done".to_string());
    }
    Ok(n)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let Some(status_path) = flag("--status") else {
        eprintln!("usage: obs_check --status FILE [--metrics FILE]");
        std::process::exit(2);
    };
    let status = match std::fs::read_to_string(&status_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("obs_check: cannot read {status_path}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = check_status(&status) {
        eprintln!("obs_check: status invalid: {e}");
        std::process::exit(1);
    }
    println!("status ok: {status_path}");

    if let Some(metrics_path) = flag("--metrics") {
        let metrics = match std::fs::read_to_string(&metrics_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("obs_check: cannot read {metrics_path}: {e}");
                std::process::exit(1);
            }
        };
        match check_metrics(&metrics) {
            Ok(n) => println!("metrics ok: {metrics_path} ({n} samples)"),
            Err(e) => {
                eprintln!("obs_check: metrics invalid: {e}");
                std::process::exit(1);
            }
        }
    }
}
