//! Fig. 1: per-bit energy breakdown (pJ/b) of the conventional PCB-based,
//! TSI-based, and μbank-based memory systems — the paper's motivating
//! figure. Buckets: Core (DRAM background), ACT/PRE, RD/WR, I/O.

use microbank_energy::breakdown::figure1;

fn main() {
    println!("Fig. 1: energy breakdown (pJ/b)");
    println!(
        "{:<16}{:>8}{:>10}{:>8}{:>8}{:>9}",
        "system", "Core", "ACT/PRE", "RD/WR", "I/O", "total"
    );
    for (kind, b) in figure1() {
        println!(
            "{:<16}{:>8.1}{:>10.1}{:>8.1}{:>8.1}{:>9.1}",
            kind.label(),
            b.core_pj_b,
            b.act_pre_pj_b,
            b.rdwr_pj_b,
            b.io_pj_b,
            b.total()
        );
    }
    println!();
    println!("(β = 1 traffic at 30% channel utilization; TSI+ubanks uses (nW,nB)=(8,2))");
}
