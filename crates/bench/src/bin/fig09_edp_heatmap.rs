//! Fig. 9: relative 1/EDP of 429.mcf, the spec-high average, and TPC-H
//! over the full (nW, nB) μbank grid (higher is better), normalized to the
//! unpartitioned baseline.
//!
//! Usage: `fig09_edp_heatmap [--quick]`

use microbank_bench::format_matrix;
use microbank_sim::experiment::ubank_grid;
use microbank_workloads::spec::SpecGroup;
use microbank_workloads::suite::Workload;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for (tag, w) in [
        ("(a) 429.mcf", Workload::Spec("429.mcf")),
        ("(b) spec-high", Workload::SpecGroupAvg(SpecGroup::High)),
        ("(c) TPC-H", Workload::TpcH),
    ] {
        let g = ubank_grid(w, quick);
        println!(
            "{}",
            format_matrix(&format!("Fig. 9{tag}: relative 1/EDP"), &g.rel_inv_edp)
        );
    }
}
