//! Regenerate the golden snapshot rows consumed by
//! `tests/integration_golden.rs`.
//!
//! Prints one Rust tuple literal per {scheduler} × {policy} × {μbank
//! partition} golden configuration. The hot-path refactors in the
//! controller/simulator are required to be *behavior-preserving*: after any
//! such change this dump must match the table committed in the test
//! byte-for-byte. Regenerate (and scrutinize the diff) only when a PR
//! deliberately changes simulated behavior.
//!
//! Usage: `golden_dump`

use microbank_ctrl::policy::PolicyKind;
use microbank_ctrl::predictor::PredictorKind;
use microbank_ctrl::scheduler::SchedulerKind;
use microbank_sim::simulator::{golden_fingerprint, run, SimConfig};
use microbank_workloads::suite::Workload;

fn main() {
    let schedulers = [
        ("frfcfs", SchedulerKind::FrFcfs),
        ("parbs", SchedulerKind::ParBs { marking_cap: 5 }),
    ];
    let policies = [
        ("open", PolicyKind::Open),
        ("close", PolicyKind::Close),
        ("pred", PolicyKind::Predictive(PredictorKind::Local)),
    ];
    for (nw, nb) in [(1usize, 1usize), (8, 8)] {
        for (sname, sched) in schedulers {
            for (pname, policy) in policies {
                let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
                cfg.mem = cfg.mem.with_ubanks(nw, nb);
                cfg.warmup_cycles = 10_000;
                cfg.measure_cycles = 30_000;
                cfg.scheduler = sched;
                cfg.policy = policy;
                let r = run(&cfg);
                let f = golden_fingerprint(&r);
                println!("    (\"{nw}x{nb}\", \"{sname}\", \"{pname}\", {f:?}),");
            }
        }
    }
}
