//! Fig. 11: the address-interleaving schemes — the bit-level layout the
//! mapper assigns for (nW, nB) = (2, 8) at cache-line granularity (iB = 6)
//! and at DRAM-row granularity (iB = 12, the maximum for nW = 2).

use microbank_core::address::AddressMap;
use microbank_core::config::MemConfig;

fn print_layout(ib: u32) {
    let cfg = MemConfig::lpddr_tsi()
        .with_ubanks(2, 8)
        .with_interleave_base(ib);
    let map = AddressMap::new(&cfg);
    println!("iB = {} (effective {}):", ib, map.interleave_base);
    for f in map.layout().iter().rev() {
        println!(
            "  bits {:>2}..{:>2}  {}",
            f.lsb,
            f.lsb + f.width - 1,
            f.name
        );
    }
    println!();
}

fn main() {
    println!("Fig. 11: address interleaving for (nW, nB) = (2, 8)");
    println!("====================================================");
    println!("cache-line-granularity interleaving:");
    print_layout(6);
    println!("DRAM-row-granularity interleaving:");
    print_layout(12);
}
