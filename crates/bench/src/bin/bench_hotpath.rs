//! Perf-regression harness for the controller/simulator hot path.
//!
//! Runs the (1,1) and (16,16) single-channel 429.mcf quick configs — the
//! two ends of the μbank-count spectrum — and records each config's
//! simulated-Mcycles-per-second (best of `--reps` repetitions, so one
//! noisy rep cannot fake a regression). Writes `results/BENCH_hotpath.json`,
//! the repo's committed perf baseline.
//!
//! Usage:
//!   bench_hotpath [--reps N] [--out PATH]
//!   bench_hotpath --check BASELINE.json [--tolerance FRAC] [--floor MCPS]
//!
//! With `--check`, the run additionally compares the fresh (16,16)
//! throughput against the baseline file and exits nonzero when it fell
//! more than FRAC (default 0.25) below it — the CI perf-smoke gate.
//! `--floor` adds an absolute gate: the fresh (16,16) number must be at
//! least MCPS simulated Mcycles/s, so the event-driven core can never
//! quietly regress below a committed per-cycle-era baseline even if the
//! checked-in baseline file drifts upward.

use microbank_sim::simulator::{run, SimConfig};
use microbank_telemetry::json::{parse, JsonWriter};
use microbank_workloads::suite::Workload;

struct BenchPoint {
    label: String,
    nw: usize,
    nb: usize,
    mcps: f64,
    committed: u64,
    dram_reads: u64,
}

fn measure(nw: usize, nb: usize, reps: usize) -> BenchPoint {
    let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf")).quick();
    cfg.mem = cfg.mem.with_ubanks(nw, nb);
    let mut best = 0.0f64;
    let mut committed = 0;
    let mut dram_reads = 0;
    for _ in 0..reps.max(1) {
        let r = run(&cfg);
        if r.profile.sim_mcycles_per_sec > best {
            best = r.profile.sim_mcycles_per_sec;
        }
        committed = r.committed;
        dram_reads = r.dram.reads;
    }
    BenchPoint {
        label: format!("{nw}x{nb}"),
        nw,
        nb,
        mcps: best,
        committed,
        dram_reads,
    }
}

fn to_json(points: &[BenchPoint], reps: usize) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .key("bench")
        .string("hotpath")
        .key("workload")
        .string("429.mcf")
        .key("reps")
        .uint(reps as u64)
        .key("configs")
        .begin_array();
    for p in points {
        w.begin_object()
            .key("label")
            .string(&p.label)
            .key("nw")
            .uint(p.nw as u64)
            .key("nb")
            .uint(p.nb as u64)
            .key("sim_mcycles_per_sec")
            .num(p.mcps)
            .key("committed")
            .uint(p.committed)
            .key("dram_reads")
            .uint(p.dram_reads)
            .end_object();
    }
    w.end_array().end_object();
    w.finish()
}

/// Baseline (16,16) throughput from a previously written artifact.
fn baseline_mcps(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let v = parse(&text).ok()?;
    v.get("configs")?
        .items()
        .iter()
        .find(|c| c.get("label").and_then(|l| l.as_str()) == Some("16x16"))?
        .get("sim_mcycles_per_sec")?
        .as_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let reps: usize = flag("--reps").and_then(|v| v.parse().ok()).unwrap_or(3);
    let out = flag("--out").unwrap_or_else(|| "results/BENCH_hotpath.json".to_string());
    let tolerance: f64 = flag("--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);

    let points = vec![measure(1, 1, reps), measure(16, 16, reps)];
    for p in &points {
        println!(
            "{:>6}: {:8.2} Mcycles/s  (committed {}, dram reads {})",
            p.label, p.mcps, p.committed, p.dram_reads
        );
    }

    let json = to_json(&points, reps);
    if let Err(e) = microbank_telemetry::atomic_write(&out, &json) {
        eprintln!("bench_hotpath: failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");

    if let Some(baseline) = flag("--check") {
        let base = baseline_mcps(&baseline)
            .unwrap_or_else(|| panic!("no 16x16 sim_mcycles_per_sec in {baseline}"));
        let fresh = points.last().expect("16x16 point").mcps;
        let floor = base * (1.0 - tolerance);
        println!(
            "perf gate: fresh {fresh:.2} vs baseline {base:.2} Mcycles/s \
             (floor {floor:.2}, tolerance {tolerance})"
        );
        if fresh < floor {
            eprintln!("FAIL: (16,16) hot-path throughput regressed more than {tolerance:.0?}");
            std::process::exit(1);
        }
        println!("perf gate: OK");
    }

    if let Some(abs_floor) = flag("--floor").and_then(|v| v.parse::<f64>().ok()) {
        let fresh = points.last().expect("16x16 point").mcps;
        println!("perf floor: fresh {fresh:.2} vs absolute floor {abs_floor:.2} Mcycles/s");
        if fresh < abs_floor {
            eprintln!("FAIL: (16,16) hot-path throughput below the absolute floor {abs_floor:.2}");
            std::process::exit(1);
        }
        println!("perf floor: OK");
    }
}
