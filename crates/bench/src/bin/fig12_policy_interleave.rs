//! Fig. 12: relative IPC and 1/EDP as the page-management policy (open vs
//! close) and the interleaving base bit iB vary over the representative
//! μbank configurations, for spec-all and spec-high. Baseline:
//! (1,1)/open/iB=13.
//!
//! Usage: `fig12_policy_interleave [--quick]`

use microbank_ctrl::policy::PolicyKind;
use microbank_sim::experiment::interleave_policy_study;
use microbank_workloads::spec::SpecGroup;
use microbank_workloads::suite::Workload;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let workloads = [Workload::SpecAll, Workload::SpecGroupAvg(SpecGroup::High)];
    let rows = interleave_policy_study(&workloads, quick);
    println!(
        "{:<12}{:>8}{:>5}{:>4}{:>10}{:>10}",
        "workload", "(nW,nB)", "iB", "pol", "relIPC", "rel1/EDP"
    );
    for r in rows {
        println!(
            "{:<12}{:>8}{:>5}{:>4}{:>10.3}{:>10.3}",
            r.workload,
            format!("({},{})", r.ubank.0, r.ubank.1),
            r.interleave_base,
            match r.policy {
                PolicyKind::Open => "O",
                PolicyKind::Close => "C",
                _ => "?",
            },
            r.rel_ipc,
            r.rel_inv_edp,
        );
    }
}
