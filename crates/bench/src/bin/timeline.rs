//! Telemetry showcase: instrumented runs of 429.mcf on the unpartitioned
//! baseline (1,1) and the paper's sweet-spot μbank config (4,4), exporting
//! every artifact the telemetry layer produces:
//!
//!   results/timeline_<tag>.csv / .json   epoch time-series
//!   results/heat_<tag>.csv / .json       per-μbank heat map
//!   results/trace_<tag>.json             Chrome trace_event command trace,
//!                                        with harness span rows merged in
//!   results/spans_<tag>.json             hierarchical harness span tree
//!
//! Also cross-checks the heat map against the run's DRAM stats (the totals
//! must reconcile exactly) and round-trips the trace through the parser
//! (which must skip the merged harness rows).
//!
//! Usage: `timeline [--quick] [--out DIR]`

use microbank_sim::simulator::{run_instrumented, SimConfig};
use microbank_telemetry::{atomic_write, trace, TelemetryConfig};
use microbank_workloads::suite::Workload;
use std::path::PathBuf;

fn main() {
    if let Err(e) = real_main() {
        eprintln!("timeline: {e}");
        std::process::exit(1);
    }
}

fn real_main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));

    let cases = [("1x1", 1, 1), ("4x4", 4, 4)];
    for (tag, n_w, n_b) in cases {
        let mut cfg = SimConfig::spec_single_channel(Workload::Spec("429.mcf"))
            .with_telemetry(TelemetryConfig::new(
                if quick { 2_000 } else { 10_000 },
                65_536,
            ))
            .with_spans(true);
        cfg.mem = cfg.mem.with_ubanks(n_w, n_b);
        if quick {
            cfg = cfg.quick();
        }
        let (r, rep) = run_instrumented(&cfg);

        // The heat map is only trustworthy if it reconciles with the
        // stats the figures are computed from; fail loudly otherwise.
        let heat = rep.merged_heat();
        assert_eq!(
            heat.total_activates(),
            r.dram.activates,
            "heat map does not reconcile with DramStats"
        );
        assert_eq!(heat.total_hits(), r.dram.row_hits);
        assert_eq!(heat.total_conflicts(), r.dram.row_conflicts);

        // Trace must survive a round-trip through the Chrome JSON parser;
        // harness span rows ride along under their own pid and must be
        // skipped by the parser, not confused with device commands.
        let trace_json = trace::to_chrome_json_with_spans(&rep.trace, &r.profile.spans);
        let parsed = trace::from_chrome_json(&trace_json).expect("trace round-trip");
        assert_eq!(
            parsed.len(),
            rep.trace.len(),
            "trace round-trip lost records"
        );

        atomic_write(
            out.join(format!("timeline_{tag}.csv")),
            rep.timeline.to_csv(),
        )?;
        atomic_write(
            out.join(format!("timeline_{tag}.json")),
            rep.timeline.to_json(),
        )?;
        atomic_write(out.join(format!("heat_{tag}.csv")), heat.to_csv())?;
        atomic_write(out.join(format!("heat_{tag}.json")), heat.to_json())?;
        atomic_write(out.join(format!("trace_{tag}.json")), &trace_json)?;
        atomic_write(
            out.join(format!("spans_{tag}.json")),
            microbank_telemetry::span::rows_to_json(&r.profile.spans),
        )?;

        println!(
            "429.mcf ({n_w},{n_b})  ipc {:.3}  row-hit {:.2}",
            r.ipc, r.row_hit_rate
        );
        println!(
            "  heat: {} μbanks, {} ACTs, imbalance {:.2}",
            heat.num_ubanks(),
            heat.total_activates(),
            microbank_telemetry::HeatCounters::imbalance(&heat.activates),
        );
        println!(
            "  timeline: {} epochs × {} metrics   trace: {} records ({} dropped)",
            rep.timeline.len(),
            rep.timeline.metrics().len(),
            rep.trace.len(),
            rep.trace_dropped,
        );
        println!(
            "  harness: {:.1} Mcycles/s  (setup {:.2}s, warmup {:.2}s, measure {:.2}s, {} spans)",
            r.profile.sim_mcycles_per_sec,
            r.profile.setup_secs,
            r.profile.warmup_secs,
            r.profile.measure_secs,
            r.profile.spans.len(),
        );
    }
    println!("\nartifacts written to {}", out.display());
    Ok(())
}
