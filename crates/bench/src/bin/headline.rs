//! §I / §VI headline numbers: the μbank LPDDR-TSI system vs the DDR3-PCB
//! baseline on the memory-intensive spec-high applications. The paper
//! reports 1.62× IPC and 4.80× energy-delay product.
//!
//! Runs through the crash-safe [`SweepRunner`]: each system is a manifest
//! slot, so a killed run resumes from `results/headline.manifest.json`,
//! and `results/headline.csv` / `results/headline.json` are written
//! atomically.
//!
//! Usage: `headline [--quick]`

use microbank_sim::experiment::headline_cfgs;
use microbank_sim::report::{summarize, summary_columns, Table};
use microbank_sim::{SimError, SlotStatus, SweepRunner, SweepSlot};

fn main() {
    if let Err(e) = real_main() {
        eprintln!("headline: {e}");
        std::process::exit(1);
    }
}

fn real_main() -> Result<(), SimError> {
    let quick = std::env::args().any(|a| a == "--quick");
    let (base_cfg, ub_cfg) = headline_cfgs(quick);
    let slots = vec![
        SweepSlot {
            id: "ddr3_pcb_1x1".to_string(),
            cfg: base_cfg,
        },
        SweepSlot {
            id: "lpddr_tsi_4x4".to_string(),
            cfg: ub_cfg,
        },
    ];

    let mut runner = SweepRunner::new("headline", "results");
    // Summary columns plus EDP-per-work, so the stdout ratios can be
    // rebuilt from the manifest on a resumed run without re-simulating.
    let records = runner.run_slots(&slots, |r| {
        let mut v = summarize(r);
        v.push(r.edp_per_work());
        v
    })?;

    for rec in &records {
        if rec.status == SlotStatus::Failed {
            return Err(SimError::Panic {
                message: format!(
                    "slot '{}' failed after {} attempt(s): {}",
                    rec.id,
                    rec.attempts,
                    rec.error.as_deref().unwrap_or("unknown error")
                ),
            });
        }
    }
    let (base, ub) = (&records[0].values, &records[1].values);

    println!("Headline (spec-high average):");
    println!(
        "  baseline  DDR3-PCB (1,1):    IPC {:.3}  MAPKI {:.1}",
        base[0], base[1]
    );
    println!(
        "  proposed  LPDDR-TSI (4,4):   IPC {:.3}  MAPKI {:.1}",
        ub[0], ub[1]
    );
    println!();
    let ipc_ratio = ub[0] / base[0];
    // EDP-per-work rides after the summary columns (pushed above).
    let edp_i = summary_columns().len();
    let edp_ratio = base[edp_i] / ub[edp_i];
    println!("  IPC improvement:   {ipc_ratio:.2}x   (paper: 1.62x)");
    println!("  1/EDP improvement: {edp_ratio:.2}x   (paper: 4.80x)");

    let mut t = Table::new("headline", &summary_columns());
    for rec in &records {
        t.push(
            rec.id.clone(),
            rec.values[..summary_columns().len()].to_vec(),
        );
    }
    runner.write_table(&t)?;
    println!("\nwrote results/headline.csv and results/headline.json");
    Ok(())
}
