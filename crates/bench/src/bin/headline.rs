//! §I / §VI headline numbers: the μbank LPDDR-TSI system vs the DDR3-PCB
//! baseline on the memory-intensive spec-high applications. The paper
//! reports 1.62× IPC and 4.80× energy-delay product.
//!
//! Writes the summary table to `results/headline.csv` and
//! `results/headline.json` alongside the stdout report.
//!
//! Usage: `headline [--quick]`

use microbank_sim::experiment::headline;
use microbank_sim::report::{summarize, summary_columns, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (ipc_ratio, edp_ratio, base, ub) = headline(quick);
    println!("Headline (spec-high average):");
    println!(
        "  baseline  DDR3-PCB (1,1):    IPC {:.3}  MAPKI {:.1}",
        base.ipc, base.mapki
    );
    println!(
        "  proposed  LPDDR-TSI (4,4):   IPC {:.3}  MAPKI {:.1}",
        ub.ipc, ub.mapki
    );
    println!();
    println!("  IPC improvement:   {ipc_ratio:.2}x   (paper: 1.62x)");
    println!("  1/EDP improvement: {edp_ratio:.2}x   (paper: 4.80x)");

    let mut t = Table::new("headline", &summary_columns());
    t.push("ddr3_pcb_1x1", summarize(&base));
    t.push("lpddr_tsi_4x4", summarize(&ub));
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write("results/headline.csv", t.to_csv());
        let _ = std::fs::write("results/headline.json", t.to_json());
        println!("\nwrote results/headline.csv and results/headline.json");
    }
}
