//! Device-variant comparison lab (DESIGN §5h): the same workload swept
//! across the four fine-grained-DRAM designs the variant seam models —
//! conventional monolithic banks, SALP-1/SALP-2/MASA subarray parallelism,
//! Sectored DRAM, and the paper's μbank — on IPC, memory energy, and EDP.
//!
//! This is the paper's Related Work argument (§VII) made executable: SALP
//! adds row buffers but keeps full-row activation energy; Sectored cuts
//! activation energy but shares one row decoder per bank; μbank partitions
//! both directions and should win the energy-delay product. The harness
//! gates on exactly that: μbank's EDP must not exceed conventional's.
//!
//! EDP here is per-instruction energy × per-instruction delay (CPI), so a
//! fixed measurement window cannot mask a throughput loss as an energy win.
//!
//! Usage: `bench_variants [--quick] [--out DIR]`

use microbank_core::variant::DeviceVariant;
use microbank_sim::simulator::{run, SimConfig};
use microbank_telemetry::json::JsonWriter;
use microbank_workloads::suite::Workload;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Representative μbank partition the `Microbank` variant runs at (the
/// paper's sweet-spot region; SALP/Sectored derive their own geometry).
const UBANK_NW: usize = 8;
const UBANK_NB: usize = 8;

struct Point {
    label: String,
    ubank: String,
    ipc: f64,
    row_hit_rate: f64,
    reads: u64,
    /// Memory energy per served read, nJ.
    energy_per_read_nj: f64,
    /// Activate/precharge share of memory energy (Fig. 14 axis).
    act_pre_frac: f64,
    /// Energy per committed kilo-instruction, nJ.
    epki_nj: f64,
    /// Cycles per committed instruction (system-level).
    cpi: f64,
    /// Energy-delay product per instruction: `epki/1000 × cpi`.
    edp: f64,
}

fn base_cfg(quick: bool) -> SimConfig {
    let mut cfg = SimConfig::paper_default(Workload::MixHigh);
    cfg.cmp.cores = 16;
    cfg.mem = cfg.mem.with_channels(4).with_ubanks(UBANK_NW, UBANK_NB);
    if quick {
        cfg.warmup_cycles = 5_000;
        cfg.measure_cycles = 15_000;
    } else {
        cfg.warmup_cycles = 20_000;
        cfg.measure_cycles = 60_000;
    }
    cfg
}

fn measure(v: DeviceVariant, quick: bool) -> Point {
    let mut cfg = base_cfg(quick);
    cfg.mem = cfg.mem.with_variant(v);
    cfg.validate().expect("variant config must validate");
    let u = cfg.mem.ubank;
    let r = run(&cfg);
    let committed = r.committed.max(1) as f64;
    let mem_nj = r.mem_energy.total_nj();
    let epki_nj = mem_nj / committed * 1000.0;
    let cpi = if r.ipc > 0.0 { 1.0 / r.ipc } else { f64::MAX };
    Point {
        label: v.label(),
        ubank: format!("{}x{}", u.n_w, u.n_b),
        ipc: r.ipc,
        row_hit_rate: r.row_hit_rate,
        reads: r.dram.reads,
        energy_per_read_nj: mem_nj / r.dram.reads.max(1) as f64,
        act_pre_frac: r.mem_energy.act_pre_fraction(),
        epki_nj,
        cpi,
        edp: epki_nj / 1000.0 * cpi,
    }
}

fn to_json(points: &[Point], quick: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .key("bench")
        .string("variants")
        .key("workload")
        .string("mix-high")
        .key("quick")
        .boolean(quick)
        .key("microbank_geometry")
        .string(&format!("{UBANK_NW}x{UBANK_NB}"))
        .key("points")
        .begin_array();
    for p in points {
        w.begin_object()
            .key("variant")
            .string(&p.label)
            .key("ubank")
            .string(&p.ubank)
            .key("ipc")
            .num(p.ipc)
            .key("row_hit_rate")
            .num(p.row_hit_rate)
            .key("reads")
            .uint(p.reads)
            .key("energy_per_read_nj")
            .num(p.energy_per_read_nj)
            .key("act_pre_fraction")
            .num(p.act_pre_frac)
            .key("epki_nj")
            .num(p.epki_nj)
            .key("cpi")
            .num(p.cpi)
            .key("edp")
            .num(p.edp)
            .end_object();
    }
    w.end_array().end_object();
    w.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&out).expect("create output dir");

    let mut text = String::new();
    let _ = writeln!(
        text,
        "device-variant lab  mix-high, 16 cores, 4 channels, μbank at \
         {UBANK_NW}x{UBANK_NB}{}\n",
        if quick { "  [quick]" } else { "" }
    );
    let _ = writeln!(
        text,
        "{:>16} {:>6} {:>7} {:>6} {:>7} {:>9} {:>7} {:>9} {:>7} {:>9}",
        "variant", "ubank", "ipc", "rhit", "reads", "nJ/read", "act%", "nJ/kinst", "cpi", "edp"
    );

    let mut points = Vec::new();
    for v in DeviceVariant::comparison_set() {
        let p = measure(v, quick);
        let _ = writeln!(
            text,
            "{:>16} {:>6} {:>7.3} {:>6.3} {:>7} {:>9.2} {:>6.1}% {:>9.1} {:>7.3} {:>9.4}",
            p.label,
            p.ubank,
            p.ipc,
            p.row_hit_rate,
            p.reads,
            p.energy_per_read_nj,
            p.act_pre_frac * 100.0,
            p.epki_nj,
            p.cpi,
            p.edp
        );
        points.push(p);
    }

    // Headline gate (the paper's thesis): μbank's energy-delay product
    // must not exceed the conventional baseline's on the same workload.
    let pick = |label: &str| {
        points
            .iter()
            .find(|p| p.label == label)
            .unwrap_or_else(|| panic!("comparison set must include {label}"))
    };
    let conv = pick("conventional");
    let ubank = pick("microbank");
    let gate_ok = ubank.edp <= conv.edp;
    let _ = writeln!(
        text,
        "\nvariant gate {}: microbank edp {:.4} <= conventional edp {:.4}  \
         (ipc {:+.1}%, energy/read {:+.1}%)",
        if gate_ok { "OK" } else { "FAIL" },
        ubank.edp,
        conv.edp,
        (ubank.ipc / conv.ipc - 1.0) * 100.0,
        (ubank.energy_per_read_nj / conv.energy_per_read_nj - 1.0) * 100.0
    );

    print!("{text}");
    let json = to_json(&points, quick);
    // Self-validate the artifact before writing it.
    let parsed = microbank_telemetry::json::parse(&json).expect("artifact must parse");
    assert_eq!(
        parsed.get("points").expect("points").items().len(),
        points.len()
    );
    let write = |name: &str, bytes: &[u8]| {
        if let Err(e) = microbank_telemetry::atomic_write(out.join(name), bytes) {
            eprintln!("bench_variants: failed to write {name}: {e}");
            std::process::exit(1);
        }
    };
    write("BENCH_variants.txt", text.as_bytes());
    write("BENCH_variants.json", json.as_bytes());
    println!("artifacts written to {}", out.display());
    if !gate_ok {
        eprintln!("FAIL: microbank EDP exceeds the conventional baseline (see table)");
        std::process::exit(1);
    }
}
