//! Worker-count scaling harness for the channel-sharded parallel drive.
//!
//! Runs one controller-stress quick configuration — 16 channels at the
//! (16,16) μbank partition with a small, prefetch-heavy CPU front end —
//! at 1, 2, and 4 worker threads, and records each sweep point's
//! simulated-Mcycles-per-second (best of `--reps`) plus its speedup over
//! the single-thread run. Writes `results/BENCH_parallel.json`.
//!
//! The CPU front end is deliberately small (4 cores, prefetch degree 4,
//! 32 MSHRs/core): the paper-default 64-core system spends nearly every
//! cycle in the serial CPU model, capping any channel-sharded speedup
//! near 1.06× (Amdahl). This configuration pushes most of the cycle
//! loop into the controllers, so the sweep measures the parallel
//! headroom of the sharded drive itself — the same philosophy as
//! `bench_hotpath`, which isolates one controller. The actual shares
//! are not estimated but measured: each sweep point also does one
//! span-traced run (`SimConfig::with_spans`) and records the
//! controller / coordinator / spin-wait breakdown in the artifact's
//! `measured_shares` objects.
//!
//! Usage:
//!   bench_parallel [--reps N] [--out PATH]
//!   bench_parallel --check [--target SPEEDUP]
//!
//! Every run — gated or not — asserts that the golden fingerprint is
//! bit-identical across all worker counts. With `--check`, the run
//! additionally requires the 4-worker speedup to reach `--target`
//! (default 1.5) — but only when the host has at least 5 hardware
//! threads (coordinator + 4 workers); wall-clock parallel speedup is
//! physically unmeasurable on a smaller host, so the gate reports
//! itself skipped rather than emitting a meaningless verdict.

use microbank_sim::simulator::{golden_fingerprint, run, SimConfig};
use microbank_telemetry::json::{parse, JsonWriter};
use microbank_telemetry::SpanRow;
use microbank_workloads::suite::Workload;

const SWEEP: [usize; 3] = [1, 2, 4];

/// The controller-stress sweep configuration (see module docs).
fn stress_cfg() -> SimConfig {
    let mut cfg = SimConfig::paper_default(Workload::Spec("429.mcf"));
    cfg.mem = cfg.mem.with_ubanks(16, 16).with_queue_size(64);
    cfg.cmp.cores = 4;
    cfg.cmp.prefetch_degree = 4;
    cfg.cmp.mshrs_per_core = 32;
    cfg.warmup_cycles = 20_000;
    cfg.measure_cycles = 180_000;
    cfg
}

struct SweepPoint {
    threads: usize,
    mcps: f64,
    fingerprint: [u64; 13],
    /// Wall-clock shares of the drive phase, measured from one
    /// span-traced run: `(name, fraction)` pairs.
    shares: Vec<(String, f64)>,
}

/// Sum of `secs` over span rows with exactly this path.
fn span_secs(spans: &[SpanRow], path: &str) -> f64 {
    spans
        .iter()
        .filter(|s| s.path == path)
        .map(|s| s.secs)
        .sum()
}

/// Reduce a span-traced run's rows to named fractions of the drive
/// phase. Sequential runs report the controller-tick share; sharded
/// runs report coordinator-busy, drain-wait, and the mean worker
/// work/spin shares.
fn drive_shares(spans: &[SpanRow], threads: usize) -> Vec<(String, f64)> {
    let drive = span_secs(spans, "drive").max(1e-12);
    let frac = |path: &str| span_secs(spans, path) / drive;
    if threads <= 1 {
        return vec![
            ("ctrl_tick".to_string(), frac("drive/ctrl-tick")),
            ("cpu_and_noc".to_string(), frac("drive/cpu-and-noc")),
        ];
    }
    let mut out = vec![
        ("coordinator_busy".to_string(), frac("drive/coordinator")),
        (
            "coordinator_drain_wait".to_string(),
            frac("drive/coordinator/drain-wait"),
        ),
    ];
    let mut work = 0.0;
    let mut spin = 0.0;
    for w in 0..threads {
        work += frac(&format!("drive/worker-{w}/work"));
        spin += frac(&format!("drive/worker-{w}/spin-wait"));
    }
    out.push(("worker_work_mean".to_string(), work / threads as f64));
    out.push(("worker_spin_mean".to_string(), spin / threads as f64));
    out
}

fn measure(threads: usize, reps: usize) -> SweepPoint {
    let cfg = stress_cfg().with_threads(threads);
    let mut best = 0.0f64;
    let mut fingerprint = [0u64; 13];
    for _ in 0..reps.max(1) {
        let r = run(&cfg);
        if r.profile.sim_mcycles_per_sec > best {
            best = r.profile.sim_mcycles_per_sec;
        }
        fingerprint = golden_fingerprint(&r);
    }
    // One extra span-traced run for the share breakdown. Span tracing is
    // observation only; a diverging fingerprint here would mean the
    // observability layer leaked into simulated state.
    let traced = run(&cfg.clone().with_spans(true));
    assert_eq!(
        golden_fingerprint(&traced),
        fingerprint,
        "span tracing changed results at {threads} threads"
    );
    SweepPoint {
        threads,
        mcps: best,
        fingerprint,
        shares: drive_shares(&traced.profile.spans, threads),
    }
}

/// The committed single-thread (16,16) hot-path baseline, for
/// cross-reference in the artifact.
fn hotpath_baseline(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let v = parse(&text).ok()?;
    v.get("configs")?
        .items()
        .iter()
        .find(|c| c.get("label").and_then(|l| l.as_str()) == Some("16x16"))?
        .get("sim_mcycles_per_sec")?
        .as_f64()
}

fn to_json(points: &[SweepPoint], reps: usize, host_cpus: usize, gate: &str) -> String {
    let base = points[0].mcps;
    let mut w = JsonWriter::new();
    w.begin_object()
        .key("bench")
        .string("parallel")
        .key("workload")
        .string("429.mcf")
        .key("config")
        .string("16ch 16x16 q64 cores4 pf4 mshr32")
        .key("reps")
        .uint(reps as u64)
        .key("host_cpus")
        .uint(host_cpus as u64)
        .key("gate")
        .string(gate)
        .key("configs")
        .begin_array();
    for p in points {
        w.begin_object()
            .key("threads")
            .uint(p.threads as u64)
            .key("sim_mcycles_per_sec")
            .num(p.mcps)
            .key("speedup_vs_1thread")
            .num(p.mcps / base);
        w.key("measured_shares").begin_object();
        for (name, v) in &p.shares {
            w.key(name).num(*v);
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    if let Some(hp) = hotpath_baseline("results/BENCH_hotpath.json") {
        w.key("hotpath_16x16_baseline_mcps").num(hp);
    }
    w.end_object();
    w.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let reps: usize = flag("--reps").and_then(|v| v.parse().ok()).unwrap_or(3);
    let out = flag("--out").unwrap_or_else(|| "results/BENCH_parallel.json".to_string());
    let target: f64 = flag("--target").and_then(|v| v.parse().ok()).unwrap_or(1.5);
    let check = args.iter().any(|a| a == "--check");
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_workers = *SWEEP.last().expect("sweep nonempty");

    let points: Vec<SweepPoint> = SWEEP.iter().map(|&t| measure(t, reps)).collect();
    let base = points[0].mcps;
    for p in &points {
        let shares: Vec<String> = p
            .shares
            .iter()
            .map(|(n, v)| format!("{n} {:.0}%", v * 100.0))
            .collect();
        println!(
            "threads {}: {:8.3} Mcycles/s  speedup {:.2}x  [{}]",
            p.threads,
            p.mcps,
            p.mcps / base,
            shares.join(", ")
        );
    }

    // Determinism is non-negotiable on every host: sharding may change
    // wall-clock time and nothing else.
    for p in &points[1..] {
        assert_eq!(
            p.fingerprint, points[0].fingerprint,
            "golden fingerprint diverged at {} threads",
            p.threads
        );
    }
    println!("determinism: fingerprints identical across {SWEEP:?} threads");

    // The wall-clock gate only means something when the host can run
    // the coordinator and every worker simultaneously.
    let measurable = host_cpus > max_workers;
    let speedup = points.last().expect("sweep nonempty").mcps / base;
    let gate = if !check {
        "not-requested".to_string()
    } else if !measurable {
        println!(
            "perf gate: skipped — host has {host_cpus} cpu(s); \
             a {max_workers}-worker wall-clock gate needs at least {}",
            max_workers + 1
        );
        format!("skipped-insufficient-cpus-{host_cpus}")
    } else if speedup >= target {
        println!("perf gate: OK — {speedup:.2}x at {max_workers} workers (target {target})");
        "ok".to_string()
    } else {
        eprintln!("FAIL: {max_workers}-worker speedup {speedup:.2}x below target {target}x");
        "fail".to_string()
    };

    let json = to_json(&points, reps, host_cpus, &gate);
    if let Err(e) = microbank_telemetry::atomic_write(&out, &json) {
        eprintln!("bench_parallel: failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    if gate == "fail" {
        std::process::exit(1);
    }
}
