//! Fig. 13: relative IPC and prediction hit rate of the page-management
//! schemes — close (C), open (O), local bimodal (L), tournament (T), and
//! the perfect oracle (P) — across workloads and μbank configurations.
//! IPC is normalized to open at (1,1) per workload.
//!
//! Usage: `fig13_predictors [--quick]`

use microbank_sim::experiment::predictor_study;
use microbank_workloads::spec::SpecGroup;
use microbank_workloads::suite::Workload;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let workloads = [
        Workload::Spec("471.omnetpp"),
        Workload::Spec("429.mcf"),
        Workload::SpecGroupAvg(SpecGroup::High),
        Workload::Canneal,
        Workload::Radix,
        Workload::MixHigh,
        Workload::MixBlend,
    ];
    let configs = [(1, 1), (2, 8), (4, 4)];
    let rows = predictor_study(&workloads, &configs, quick);
    println!(
        "{:<14}{:>8}{:>4}{:>10}{:>10}",
        "workload", "(nW,nB)", "pol", "relIPC", "hit-rate"
    );
    for r in rows {
        println!(
            "{:<14}{:>8}{:>4}{:>10.3}{:>10.3}",
            r.workload,
            format!("({},{})", r.ubank.0, r.ubank.1),
            r.policy.mnemonic(),
            r.rel_ipc,
            r.hit_rate,
        );
    }
}
