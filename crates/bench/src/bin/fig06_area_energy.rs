//! Fig. 6: (a) relative DRAM die area and (b) relative energy per read for
//! every (nW, nB) partitioning degree, with the paper's published area
//! matrix printed beside the model for comparison.

use microbank_bench::format_matrix;
use microbank_energy::area::{AreaModel, PAPER_FIG6A};
use microbank_energy::energy::figure6b_matrix;
use microbank_energy::params::EnergyParams;

fn main() {
    let model = AreaModel::new();
    println!(
        "{}",
        format_matrix("Fig. 6(a): relative area (model)", &model.figure6a_matrix())
    );
    let paper: Vec<Vec<f64>> = PAPER_FIG6A.iter().map(|r| r.to_vec()).collect();
    println!(
        "{}",
        format_matrix("Fig. 6(a): relative area (paper, for reference)", &paper)
    );
    for beta in [1.0, 0.1] {
        let m = figure6b_matrix(EnergyParams::lpddr_tsi(), beta);
        println!(
            "{}",
            format_matrix(
                &format!("Fig. 6(b): relative energy per read, beta = {beta}"),
                &m
            )
        );
    }
}
