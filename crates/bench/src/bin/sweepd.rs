//! `sweepd` — the sweep-as-a-service daemon (DESIGN.md §5i).
//!
//! Accepts simulation jobs over HTTP and executes them with the full
//! fault-tolerance stack in `microbank_sim::service`: durable
//! write-ahead queue (kill -9 + restart resumes every admitted job),
//! per-job deadlines, error-class-aware retry with backoff, bounded
//! admission, and graceful drain on SIGTERM/ctrl-C or `POST /shutdown`.
//!
//! Usage:
//!   sweepd [--addr HOST:PORT] [--dir DIR] [--workers N]
//!          [--queue-cap N] [--deadline-ms N] [--drain-grace-ms N]
//!
//! Endpoints: POST /jobs, GET /jobs, GET /jobs/{id}, DELETE /jobs/{id},
//! POST /shutdown, GET /status, GET /metrics. The bound address is
//! printed as `sweepd listening: <addr>` on stdout once ready.

use microbank_sim::{ServiceConfig, SweepService};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Dependency-free signal hooks: `signal(2)` from the platform libc
    // every unix Rust binary already links. The handler only stores an
    // atomic flag — the only thing that is async-signal-safe to do —
    // and the main loop turns it into a graceful drain.
    use std::os::raw::c_int;
    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: c_int) {
        SIGNALLED.store(true, Ordering::Release);
    }
    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;
    unsafe {
        let handler = on_signal as *const () as usize;
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let addr = flag("--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let mut cfg = ServiceConfig::new(flag("--dir").unwrap_or_else(|| "results/sweepd".to_string()));
    if let Some(n) = flag("--workers").and_then(|v| v.parse().ok()) {
        cfg.workers = n;
    }
    if let Some(n) = flag("--queue-cap").and_then(|v| v.parse().ok()) {
        cfg.queue_cap = n;
    }
    if let Some(n) = flag("--deadline-ms").and_then(|v| v.parse().ok()) {
        cfg.default_deadline_ms = n;
    }
    if let Some(n) = flag("--drain-grace-ms").and_then(|v| v.parse().ok()) {
        cfg.drain_grace_ms = n;
    }

    install_signal_handlers();

    let mut service = match SweepService::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sweepd: cannot start: {e}");
            std::process::exit(1);
        }
    };
    let bound = match service.serve(&addr) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("sweepd: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("sweepd listening: {bound}");

    // Run until a signal or an HTTP shutdown completes the drain.
    loop {
        if SIGNALLED.load(Ordering::Acquire) {
            eprintln!("sweepd: signal received; draining");
            break;
        }
        if service.stopped() {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    service.shutdown();
    println!("sweepd: stopped cleanly");
}
