//! # microbank-bench
//!
//! Shared plumbing for the paper-reproduction harness binaries (`fig*`,
//! `table*`, `headline`) and the Criterion micro/macro benchmarks. The
//! heavy lifting lives in `microbank-sim`; this crate holds output
//! formatting helpers shared by the binaries.

/// Format a 5×5 (nW, nB) matrix the way the paper's heatmap figures print:
/// rows are `nB` ∈ {1,2,4,8,16} (top = 1), columns `nW` ∈ {1,2,4,8,16}.
pub fn format_matrix(title: &str, m: &[Vec<f64>]) -> String {
    let degrees = [1usize, 2, 4, 8, 16];
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str("nB\\nW ");
    for d in degrees {
        out.push_str(&format!("{d:>8}"));
    }
    out.push('\n');
    for (i, row) in m.iter().enumerate() {
        out.push_str(&format!("{:>5} ", degrees[i]));
        for v in row {
            out.push_str(&format!("{v:>8.3}"));
        }
        out.push('\n');
    }
    out
}

/// Format a labelled series as `label: v1 v2 v3 …`.
pub fn format_series(label: &str, values: &[f64]) -> String {
    let mut out = format!("{label:<24}");
    for v in values {
        out.push_str(&format!("{v:>9.3}"));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn matrix_formatting_includes_all_cells() {
        let m: Vec<Vec<f64>> = (0..5)
            .map(|i| (0..5).map(|j| (i * 5 + j) as f64).collect())
            .collect();
        let s = super::format_matrix("t", &m);
        assert!(s.contains("24.000"));
        assert_eq!(s.lines().count(), 7);
    }

    #[test]
    fn series_formatting() {
        let s = super::format_series("spec-high", &[1.0, 1.5]);
        assert!(s.starts_with("spec-high"));
        assert!(s.contains("1.500"));
    }
}
