//! Workload-generator microbenchmarks: instruction-stream production rates
//! for the pointer-chasing, streaming, and database profiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use microbank_cpu::instr::InstrSource;
use microbank_workloads::spec::by_name;
use microbank_workloads::suite::tpc_h;
use microbank_workloads::synth::SynthSource;
use std::hint::black_box;

fn bench_sources(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_gen");
    let profiles = [
        by_name("429.mcf").unwrap(),
        by_name("462.libquantum").unwrap(),
        tpc_h(),
    ];
    for p in profiles {
        g.bench_with_input(BenchmarkId::from_parameter(p.name), &p, |b, p| {
            b.iter(|| {
                let mut s = SynthSource::new(*p, 7, 0, 64 << 20, 1 << 30, 1 << 24);
                let mut acc = 0u64;
                for _ in 0..8192 {
                    if let microbank_cpu::instr::Instr::Mem { addr, .. } = s.next_instr() {
                        acc ^= black_box(addr);
                    }
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sources);
criterion_main!(benches);
