//! Memory-controller microbenchmarks: sustained request throughput under
//! FR-FCFS vs PAR-BS, and queue-scan cost at full occupancy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use microbank_core::config::MemConfig;
use microbank_core::request::{MemRequest, ReqKind};
use microbank_ctrl::controller::{Completion, MemoryController};
use microbank_ctrl::policy::PolicyKind;
use microbank_ctrl::scheduler::SchedulerKind;
use std::hint::black_box;

fn drive(sched: SchedulerKind, reqs: u64) -> u64 {
    let cfg = MemConfig::lpddr_tsi()
        .with_ubanks(4, 4)
        .with_channels(1)
        .with_refresh(false);
    let mut c = MemoryController::new(&cfg, sched, PolicyKind::Open, 8);
    let mut done: Vec<Completion> = Vec::new();
    let mut issued = 0u64;
    let mut completed = 0u64;
    let mut now = 0u64;
    // Pseudo-random deterministic address stream over 8 threads.
    let mut state = 0x12345678u64;
    while completed < reqs {
        while issued < reqs && c.free_slots() > 0 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((state >> 16) % (1 << 28)) & !63;
            let mut r = MemRequest::new(issued, addr, ReqKind::Read, (issued % 8) as u16, now);
            r.loc = c.map().decode(addr);
            c.enqueue(r, now);
            issued += 1;
        }
        c.tick(now);
        done.clear();
        c.take_completions(&mut done);
        completed += done.len() as u64;
        now += 4;
    }
    now
}

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("controller_throughput");
    g.sample_size(20);
    for (name, sched) in [
        ("fr-fcfs", SchedulerKind::FrFcfs),
        ("par-bs", SchedulerKind::ParBs { marking_cap: 5 }),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &sched, |b, &s| {
            b.iter(|| drive(black_box(s), 400))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
