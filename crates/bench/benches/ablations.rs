//! Ablation benchmarks for the design decisions called out in DESIGN.md:
//! PAR-BS marking cap, request-queue depth, refresh on/off, and scheduler
//! choice. Each reports the committed-instruction count of a fixed short
//! window (higher = better), so Criterion's timing doubles as a
//! sensitivity sweep log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use microbank_ctrl::scheduler::SchedulerKind;
use microbank_sim::simulator::{run, SimConfig};
use microbank_workloads::suite::Workload;
use std::hint::black_box;

fn base() -> SimConfig {
    let mut c = SimConfig::spec_single_channel(Workload::Spec("429.mcf"));
    c.warmup_cycles = 5_000;
    c.measure_cycles = 20_000;
    c.mem = c.mem.with_ubanks(4, 4);
    c
}

fn bench_marking_cap(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_parbs_cap");
    g.sample_size(10);
    for cap in [1usize, 5, 16] {
        let mut cfg = base();
        cfg.scheduler = SchedulerKind::ParBs { marking_cap: cap };
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cfg, |b, cfg| {
            b.iter(|| black_box(run(cfg)).committed)
        });
    }
    g.finish();
}

fn bench_queue_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_queue_depth");
    g.sample_size(10);
    for q in [8usize, 32, 64] {
        let mut cfg = base();
        cfg.mem = cfg.mem.with_queue_size(q);
        g.bench_with_input(BenchmarkId::from_parameter(q), &cfg, |b, cfg| {
            b.iter(|| black_box(run(cfg)).committed)
        });
    }
    g.finish();
}

fn bench_refresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_refresh");
    g.sample_size(10);
    for on in [true, false] {
        let mut cfg = base();
        cfg.mem = cfg.mem.with_refresh(on);
        g.bench_with_input(BenchmarkId::from_parameter(on), &cfg, |b, cfg| {
            b.iter(|| black_box(run(cfg)).committed)
        });
    }
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scheduler");
    g.sample_size(10);
    for (name, s) in [
        ("fr-fcfs", SchedulerKind::FrFcfs),
        ("par-bs", SchedulerKind::ParBs { marking_cap: 5 }),
    ] {
        let mut cfg = base();
        cfg.scheduler = s;
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(run(cfg)).committed)
        });
    }
    g.finish();
}

fn bench_organizations(c: &mut Criterion) {
    use microbank_core::organization::Organization;
    let mut g = c.benchmark_group("ablation_organization");
    g.sample_size(10);
    for org in Organization::comparison_set() {
        let mut cfg = base();
        cfg.mem = cfg.mem.with_organization(org);
        g.bench_with_input(BenchmarkId::from_parameter(org.label()), &cfg, |b, cfg| {
            b.iter(|| black_box(run(cfg)).committed)
        });
    }
    g.finish();
}

fn bench_write_drain(c: &mut Criterion) {
    // Write-drain is a controller-level option exercised via the soak path
    // in microbank-ctrl; here we measure its end-to-end cost proxy by
    // comparing a write-heavy workload with small vs large queues (the
    // drain watermarks scale with queue size).
    let mut g = c.benchmark_group("ablation_write_heavy_queue");
    g.sample_size(10);
    for q in [16usize, 32] {
        let mut cfg = base();
        cfg.workload = microbank_workloads::suite::Workload::Radix;
        cfg.mem = cfg.mem.with_queue_size(q);
        g.bench_with_input(BenchmarkId::from_parameter(q), &cfg, |b, cfg| {
            b.iter(|| black_box(run(cfg)).committed)
        });
    }
    g.finish();
}

fn bench_prefetch(c: &mut Criterion) {
    // Stream prefetching (extension, off in the paper's platform) on a
    // streaming workload: prefetched lines are row hits under page
    // interleaving, compounding with the open-page policy.
    let mut g = c.benchmark_group("ablation_prefetch_degree");
    g.sample_size(10);
    for degree in [0usize, 2, 4] {
        let mut cfg = base();
        cfg.workload = microbank_workloads::suite::Workload::Spec("462.libquantum");
        cfg.cmp.prefetch_degree = degree;
        g.bench_with_input(BenchmarkId::from_parameter(degree), &cfg, |b, cfg| {
            b.iter(|| black_box(run(cfg)).committed)
        });
    }
    g.finish();
}

fn bench_xor_hash(c: &mut Criterion) {
    // Permutation-based interleaving vs plain: an alternative
    // conflict-reduction lever to compare against μbank partitioning.
    let mut g = c.benchmark_group("ablation_xor_hash");
    g.sample_size(10);
    for on in [false, true] {
        let mut cfg = base();
        cfg.mem = cfg.mem.with_ubanks(1, 1).with_bank_xor_hash(on);
        g.bench_with_input(BenchmarkId::from_parameter(on), &cfg, |b, cfg| {
            b.iter(|| black_box(run(cfg)).committed)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_marking_cap,
    bench_queue_depth,
    bench_refresh,
    bench_scheduler,
    bench_organizations,
    bench_write_drain,
    bench_prefetch,
    bench_xor_hash
);
criterion_main!(benches);
