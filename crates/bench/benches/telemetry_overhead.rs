//! Cost of the telemetry layer on the end-to-end simulation loop:
//!
//!   off      hooks compiled in but disabled (the default) — this must
//!            stay within noise of the pre-telemetry simulator, since
//!            every hook is a single `Option` branch
//!   on       full collection: epoch sampling, heat counters, command
//!            trace ring — the price of an instrumented run
//!
//! Run with `cargo bench --bench telemetry_overhead`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use microbank_sim::simulator::{run, SimConfig};
use microbank_telemetry::TelemetryConfig;
use microbank_workloads::suite::Workload;
use std::hint::black_box;

fn short(n_w: usize, n_b: usize) -> SimConfig {
    let mut c = SimConfig::spec_single_channel(Workload::Spec("429.mcf"));
    c.mem = c.mem.with_ubanks(n_w, n_b);
    c.warmup_cycles = 5_000;
    c.measure_cycles = 20_000;
    c
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(10);
    for (name, n_w, n_b) in [("mcf_1x1", 1, 1), ("mcf_4x4", 4, 4)] {
        let off = short(n_w, n_b);
        let on = short(n_w, n_b).with_telemetry(TelemetryConfig::new(2_000, 16_384));
        g.bench_with_input(BenchmarkId::new("off", name), &off, |b, cfg| {
            b.iter(|| black_box(run(cfg)).committed)
        });
        g.bench_with_input(BenchmarkId::new("on", name), &on, |b, cfg| {
            b.iter(|| black_box(run(cfg)).committed)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
