//! Microbenchmarks of the DRAM device model: command-issue throughput of a
//! channel under row-hit streams and random (row-miss) traffic, across
//! μbank configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use microbank_core::address::AddressMap;
use microbank_core::channel::Channel;
use microbank_core::config::MemConfig;
use std::hint::black_box;

/// Drive `n` sequential-line reads through a channel, returning the cycle
/// the last burst finished (throughput proxy).
fn stream_reads(cfg: &MemConfig, n: u64) -> u64 {
    let map = AddressMap::new(cfg);
    let mut ch = Channel::new(cfg);
    let mut now = 0u64;
    let mut last = 0;
    for i in 0..n {
        let loc = map.decode(i * 64);
        let flat = loc.ubank_flat(cfg);
        loop {
            if ch.open_row_flat(flat) == Some(loc.row) {
                if ch.can_column_flat(flat, loc.row, false, now) {
                    last = ch.read_flat(flat, now);
                    break;
                }
            } else if ch.open_row_flat(flat).is_none() {
                if ch.can_activate_flat(flat, now) {
                    ch.activate_flat(flat, loc.row, now);
                }
            } else if ch.can_precharge_flat(flat, now) {
                ch.precharge_flat(flat, now);
            }
            now += 1;
        }
    }
    last
}

fn bench_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_channel_stream");
    for (nw, nb) in [(1usize, 1usize), (4, 4), (16, 16)] {
        let cfg = MemConfig::lpddr_tsi()
            .with_ubanks(nw, nb)
            .with_refresh(false);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{nw}x{nb}")),
            &cfg,
            |b, cfg| b.iter(|| stream_reads(black_box(cfg), 512)),
        );
    }
    g.finish();
}

fn bench_address_map(c: &mut Criterion) {
    let cfg = MemConfig::lpddr_tsi().with_ubanks(4, 4);
    let map = AddressMap::new(&cfg);
    c.bench_function("address_decode_encode", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                let loc = map.decode(black_box(i * 4096));
                acc ^= map.encode(&loc);
            }
            acc
        })
    });
}

criterion_group!(benches, bench_channel, bench_address_map);
criterion_main!(benches);
